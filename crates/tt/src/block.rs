//! 256-bit signature blocks: the wide generalization of the one-word
//! Bloom-style tricks used across the mapping flow.
//!
//! Cut enumeration, T1 detection and the mapper all lean on the same idea:
//! hash every element of a small set to one bit of a fixed-width word, so
//! that set union is bitwise OR, a popcount lower-bounds the union's size,
//! and `a & !b == 0` is a necessary condition for `a ⊆ b`. With a 64-bit
//! word two distinct elements collide with probability 1/64 per pair, and
//! every collision weakens a prefilter (a too-small popcount lets a doomed
//! merge through to the exact check). [`Sig256`] widens the word to 256
//! bits — four `u64` lanes, all operations straight-line lane-wise code the
//! compiler autovectorizes to two 128-bit (or one 256-bit) vector ops — so
//! each probe processes four words at once and pairwise collisions drop to
//! 1/256.
//!
//! The 256-bit bit index of an element must **refine** its 64-bit index
//! (`index₂₅₆ ≡ index₆₄ (mod 64)`, which any `hash & 255` vs `hash & 63`
//! derivation satisfies). Then every 256-bit collision is also a 64-bit
//! collision, so `popcount₂₅₆ ≥ popcount₆₄` holds *per instance*, never
//! just in expectation: the wide prefilter rejects a superset of what the
//! narrow one rejects while staying sound (both popcounts lower-bound the
//! true union size). The cut-enumeration proptests pin exactly this
//! relation against the retired 64-bit reference.

use std::ops::{BitAnd, BitOr, BitOrAssign, Not};

/// A 256-bit signature: four `u64` lanes treated as one wide bit set.
///
/// Supports exactly the operations the signature prefilters need — single
/// bit injection ([`Sig256::bit`]), union (`|`), intersection (`&`),
/// complement (`!`), [`count_ones`](Sig256::count_ones) and the subset
/// test [`is_subset_of`](Sig256::is_subset_of) — each compiled as four
/// independent lane operations with no branches, so the optimizer can keep
/// the whole signature in vector registers.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Sig256([u64; 4]);

impl Sig256 {
    /// The empty signature (no bits set).
    pub const EMPTY: Sig256 = Sig256([0; 4]);

    /// A signature with exactly bit `index` (0..256) set.
    ///
    /// Callers derive `index` from a hash; only the low 8 bits are used, so
    /// any `u64` hash value is a valid argument.
    #[inline]
    pub fn bit(index: u64) -> Sig256 {
        let i = (index & 255) as usize;
        let mut lanes = [0u64; 4];
        lanes[i >> 6] = 1u64 << (i & 63);
        Sig256(lanes)
    }

    /// Number of set bits across all four lanes.
    #[inline]
    pub fn count_ones(self) -> u32 {
        self.0[0].count_ones()
            + self.0[1].count_ones()
            + self.0[2].count_ones()
            + self.0[3].count_ones()
    }

    /// True when no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        (self.0[0] | self.0[1] | self.0[2] | self.0[3]) == 0
    }

    /// Bit-set subset test: every bit of `self` is also set in `other`
    /// (`self & !other == 0`, evaluated without materializing the
    /// complement). The necessary-condition half of the dominance
    /// prefilter: `A ⊆ B` on leaf sets implies `sig(A) ⊆ sig(B)`.
    #[inline]
    pub fn is_subset_of(self, other: Sig256) -> bool {
        (self.0[0] & !other.0[0])
            | (self.0[1] & !other.0[1])
            | (self.0[2] & !other.0[2])
            | (self.0[3] & !other.0[3])
            == 0
    }

    /// The four raw lanes (lane `k` holds bits `64k..64k+64`).
    #[inline]
    pub fn lanes(self) -> [u64; 4] {
        self.0
    }
}

impl BitOr for Sig256 {
    type Output = Sig256;
    #[inline]
    fn bitor(self, rhs: Sig256) -> Sig256 {
        Sig256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitOrAssign for Sig256 {
    #[inline]
    fn bitor_assign(&mut self, rhs: Sig256) {
        *self = *self | rhs;
    }
}

impl BitAnd for Sig256 {
    type Output = Sig256;
    #[inline]
    fn bitand(self, rhs: Sig256) -> Sig256 {
        Sig256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl Not for Sig256 {
    type Output = Sig256;
    #[inline]
    fn not(self) -> Sig256 {
        Sig256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl std::fmt::Debug for Sig256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Sig256({:016x}_{:016x}_{:016x}_{:016x})",
            self.0[3], self.0[2], self.0[1], self.0[0]
        )
    }
}
