//! Truth tables for functions of up to six variables, plus the Boolean
//! matching utilities used by T1-aware SFQ technology mapping.
//!
//! This crate is the stand-in for the `kitty` truth-table library that the
//! paper's mockturtle-based implementation relies on. A [`TruthTable`] packs
//! the function's output column into a single `u64` (functions of `n ≤ 6`
//! variables), which makes the bitwise algebra, cofactoring and canonization
//! operations cheap enough for cut-based matching over large networks.
//!
//! # Example
//!
//! ```
//! use sfq_tt::TruthTable;
//!
//! let a = TruthTable::var(3, 0);
//! let b = TruthTable::var(3, 1);
//! let c = TruthTable::var(3, 2);
//! let maj = (a & b) | (a & c) | (b & c);
//! assert_eq!(maj, TruthTable::maj3());
//! assert!(maj.is_totally_symmetric());
//! ```

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

mod block;
mod npn;
mod t1db;
mod table;

pub use block::Sig256;
pub use npn::{npn_canonize, NpnTransform};
pub use t1db::{T1Base, T1Match, T1MatchDb};
pub use table::{TruthTable, TruthTableError};

#[cfg(test)]
mod tests;
