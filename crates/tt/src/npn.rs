//! Exact NPN canonization for small functions.
//!
//! Two functions are NPN-equivalent when one can be obtained from the other
//! by Negating inputs, Permuting inputs, and/or Negating the output. The
//! canonical representative is the lexicographically smallest raw truth-table
//! value reachable through any such transform. Exhaustive enumeration is used
//! (`2 · 2ⁿ · n!` transforms), which is practical for the `n ≤ 4` functions
//! handled during matching; T1-specific matching (3 inputs) uses the faster
//! polarity-only database in [`crate::T1MatchDb`].

use crate::table::TruthTable;

/// The transform that maps an original function to its NPN representative.
///
/// Applying the transform means: first negate the inputs in
/// [`input_negation`](Self::input_negation) (bit `i` ⇒ input `i`), then feed
/// original input `perm[i]` into canonical slot `i`, then negate the output if
/// [`output_negation`](Self::output_negation) is set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NpnTransform {
    /// Input negation mask applied before permutation.
    pub input_negation: u8,
    /// `perm[i]` = original input placed in canonical position `i`.
    pub perm: Vec<usize>,
    /// Whether the output is complemented.
    pub output_negation: bool,
}

impl NpnTransform {
    /// Identity transform over `n` inputs.
    pub fn identity(n: usize) -> Self {
        NpnTransform {
            input_negation: 0,
            perm: (0..n).collect(),
            output_negation: false,
        }
    }

    /// Applies this transform to a function.
    ///
    /// # Panics
    /// Panics if the permutation length does not match the variable count.
    pub fn apply(&self, tt: &TruthTable) -> TruthTable {
        let t = tt.flip_vars(self.input_negation).permute_vars(&self.perm);
        if self.output_negation {
            !t
        } else {
            t
        }
    }
}

fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut items: Vec<usize> = (0..n).collect();
    heap_permute(&mut items, n, &mut out);
    out
}

fn heap_permute(items: &mut Vec<usize>, k: usize, out: &mut Vec<Vec<usize>>) {
    if k <= 1 {
        out.push(items.clone());
        return;
    }
    for i in 0..k {
        heap_permute(items, k - 1, out);
        if k.is_multiple_of(2) {
            items.swap(i, k - 1);
        } else {
            items.swap(0, k - 1);
        }
    }
}

/// Computes the NPN canonical form of `tt` and the transform producing it.
///
/// The canonical form is the minimum raw bit value over all NPN transforms.
///
/// # Example
///
/// ```
/// use sfq_tt::{npn_canonize, TruthTable};
/// let and2 = TruthTable::from_bits(2, 0x8).unwrap();
/// let nor2 = TruthTable::from_bits(2, 0x1).unwrap();
/// assert_eq!(npn_canonize(&and2).0, npn_canonize(&nor2).0);
/// ```
pub fn npn_canonize(tt: &TruthTable) -> (TruthTable, NpnTransform) {
    let n = tt.num_vars();
    let mut best = *tt;
    let mut best_tf = NpnTransform::identity(n);
    for perm in permutations(n) {
        for neg in 0..(1u16 << n) {
            let base = tt.flip_vars(neg as u8).permute_vars(&perm);
            for out_neg in [false, true] {
                let cand = if out_neg { !base } else { base };
                if cand.bits() < best.bits() {
                    best = cand;
                    best_tf = NpnTransform {
                        input_negation: neg as u8,
                        perm: perm.clone(),
                        output_negation: out_neg,
                    };
                }
            }
        }
    }
    (best, best_tf)
}
