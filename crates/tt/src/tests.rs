use crate::{npn_canonize, T1Base, T1MatchDb, TruthTable, TruthTableError};
use proptest::prelude::*;

fn tt3(bits: u64) -> TruthTable {
    TruthTable::from_bits(3, bits).unwrap()
}

#[test]
fn constants_and_vars() {
    for n in 0..=6 {
        let z = TruthTable::zero(n);
        let o = TruthTable::one(n);
        assert_eq!(z.count_ones(), 0);
        assert_eq!(o.count_ones(), 1 << n);
        assert!(z.is_constant() && o.is_constant());
        assert_eq!(!z, o);
        for v in 0..n {
            let x = TruthTable::var(n, v);
            assert_eq!(x.count_ones() as usize, 1 << (n - 1));
            assert_eq!(x.support_mask(), 1 << v);
        }
    }
}

#[test]
fn from_bits_validates() {
    assert_eq!(
        TruthTable::from_bits(7, 0),
        Err(TruthTableError::TooManyVars(7))
    );
    assert_eq!(
        TruthTable::from_bits(2, 0x10),
        Err(TruthTableError::ExcessBits)
    );
    assert!(TruthTable::from_bits(2, 0xF).is_ok());
    assert_eq!(TruthTable::from_bits_truncated(2, 0xFF).bits(), 0xF);
}

#[test]
fn eval_matches_bits() {
    let maj = TruthTable::maj3();
    assert!(!maj.eval(&[false, false, false]));
    assert!(!maj.eval(&[true, false, false]));
    assert!(maj.eval(&[true, true, false]));
    assert!(maj.eval(&[true, true, true]));
    let or3 = TruthTable::or3();
    assert!(!or3.eval(&[false, false, false]));
    assert!(or3.eval(&[false, false, true]));
}

#[test]
fn boolean_algebra() {
    let a = TruthTable::var(3, 0);
    let b = TruthTable::var(3, 1);
    let c = TruthTable::var(3, 2);
    assert_eq!(a ^ b ^ c, TruthTable::xor3());
    assert_eq!((a & b) | (a & c) | (b & c), TruthTable::maj3());
    assert_eq!(a | b | c, TruthTable::or3());
    // De Morgan.
    assert_eq!(!(a & b), !a | !b);
    assert_eq!(!(a | b), !a & !b);
}

#[test]
fn cofactors_and_support() {
    let a = TruthTable::var(3, 0);
    let b = TruthTable::var(3, 1);
    let f = a & b; // independent of c
    assert!(f.is_dont_care(2));
    assert!(!f.is_dont_care(0));
    assert_eq!(f.support_mask(), 0b011);
    assert_eq!(f.support_size(), 2);
    // Shannon expansion: f = ¬x·f0 + x·f1.
    for v in 0..3 {
        let maj = TruthTable::maj3();
        let x = TruthTable::var(3, v);
        let expanded = (!x & maj.cofactor0(v)) | (x & maj.cofactor1(v));
        assert_eq!(expanded, maj);
    }
}

#[test]
fn swap_and_permute() {
    let a = TruthTable::var(3, 0);
    let c = TruthTable::var(3, 2);
    let f = a & !c;
    let g = f.swap_vars(0, 2);
    assert_eq!(g, c & !a);
    // permute_vars with rotation: new input i reads old perm[i].
    let rot = f.permute_vars(&[1, 2, 0]);
    let b = TruthTable::var(3, 1);
    // new var0 = old var1, new var1 = old var2, new var2 = old var0:
    // f(a,c) = a & !c  becomes  f evaluated with a ↦ position of old 0.
    // old var0 appears at new slot 2; old var2 appears at new slot 1.
    assert_eq!(rot, c & !b);
}

#[test]
fn flip_vars_involution() {
    let maj = TruthTable::maj3();
    for m in 0u8..8 {
        assert_eq!(maj.flip_vars(m).flip_vars(m), maj);
    }
    // XOR3 linearity: flipping odd #inputs complements the function.
    let xor = TruthTable::xor3();
    assert_eq!(xor.flip_var(0), !xor);
    assert_eq!(xor.flip_vars(0b011), xor);
    assert_eq!(xor.flip_vars(0b111), !xor);
}

#[test]
fn total_symmetry() {
    assert!(TruthTable::xor3().is_totally_symmetric());
    assert!(TruthTable::maj3().is_totally_symmetric());
    assert!(TruthTable::or3().is_totally_symmetric());
    let a = TruthTable::var(3, 0);
    let b = TruthTable::var(3, 1);
    assert!(!(a & !b).is_totally_symmetric());
}

#[test]
fn extend_and_shrink() {
    let and2 = TruthTable::var(2, 0) & TruthTable::var(2, 1);
    let ext = and2.extend_to(4);
    assert_eq!(ext.num_vars(), 4);
    assert!(ext.is_dont_care(2) && ext.is_dont_care(3));
    let (shrunk, support) = ext.shrink_to_support();
    assert_eq!(shrunk, and2);
    assert_eq!(support, vec![0, 1]);

    // Shrinking picks up scattered support.
    let f = TruthTable::var(4, 1) ^ TruthTable::var(4, 3);
    let (s, sup) = f.shrink_to_support();
    assert_eq!(sup, vec![1, 3]);
    assert_eq!(s, TruthTable::var(2, 0) ^ TruthTable::var(2, 1));
}

#[test]
fn npn_groups_known_classes() {
    // All 2-input AND-like gates share one NPN class.
    let and2 = TruthTable::from_bits(2, 0x8).unwrap();
    let nand2 = !and2;
    let or2 = TruthTable::from_bits(2, 0xE).unwrap();
    let nor2 = !or2;
    let canon = npn_canonize(&and2).0;
    for f in [nand2, or2, nor2] {
        assert_eq!(npn_canonize(&f).0, canon);
    }
    // XOR and AND are in different classes.
    let xor2 = TruthTable::from_bits(2, 0x6).unwrap();
    assert_ne!(npn_canonize(&xor2).0, canon);
}

#[test]
fn npn_transform_reproduces_canon() {
    for bits in 0u64..256 {
        let f = tt3(bits);
        let (canon, tf) = npn_canonize(&f);
        assert_eq!(
            tf.apply(&f),
            canon,
            "transform must map f to canon for {bits:#x}"
        );
    }
}

#[test]
fn npn_class_count_3vars() {
    // The number of NPN classes of exactly-3-variable-or-fewer functions is
    // a known constant: 14 classes over all 256 functions.
    let mut classes = std::collections::HashSet::new();
    for bits in 0u64..256 {
        classes.insert(npn_canonize(&tt3(bits)).0);
    }
    assert_eq!(classes.len(), 14);
}

#[test]
fn t1db_matches_bases() {
    let db = T1MatchDb::new();
    let m = db.lookup(&TruthTable::xor3(), 0).unwrap();
    assert_eq!(m.base, T1Base::Xor3);
    assert!(!m.output_negated);
    let m = db.lookup(&TruthTable::maj3(), 0).unwrap();
    assert_eq!(m.base, T1Base::Maj3);
    assert!(!m.output_negated);
    let m = db.lookup(&TruthTable::or3(), 0).unwrap();
    assert_eq!(m.base, T1Base::Or3);
    assert!(!m.output_negated);
    // Complements at mask 0 require output negation.
    assert!(db.lookup(&!TruthTable::maj3(), 0).unwrap().output_negated);
    assert!(db.lookup(&!TruthTable::or3(), 0).unwrap().output_negated);
}

#[test]
fn t1db_mask_semantics() {
    let db = T1MatchDb::new();
    for mask in 0u8..8 {
        for base in T1Base::ALL {
            // The physically produced function under this mask:
            let f = base.truth_table().flip_vars(mask);
            let m = db.lookup(&f, mask).unwrap();
            assert_eq!(m.base, base);
            assert!(!m.output_negated);
            let m = db.lookup(&!f, mask).unwrap();
            assert_eq!(m.base, base);
            assert!(m.output_negated);
        }
    }
}

#[test]
fn t1db_rejects_non_t1_functions() {
    let db = T1MatchDb::new();
    let a = TruthTable::var(3, 0);
    let b = TruthTable::var(3, 1);
    let c = TruthTable::var(3, 2);
    // a ⊕ (b·c) is not realizable under any polarity.
    assert!(!db.is_t1_function(&(a ^ (b & c))));
    // MUX(a; b, c) is not.
    assert!(!db.is_t1_function(&((a & b) | (!a & c))));
    // AND3, by contrast, *is* realizable: negate all inputs and invert Q*
    // (¬(¬a ∨ ¬b ∨ ¬c) = a·b·c) — but only under the all-negated mask.
    let and3 = a & b & c;
    let masks = db.all_masks(&and3);
    assert_eq!(masks.len(), 1);
    assert_eq!(masks[0].0, 0b111);
    assert_eq!(masks[0].1.base, T1Base::Or3);
    assert!(masks[0].1.output_negated);
}

#[test]
fn t1db_xor_matches_under_every_mask() {
    let db = T1MatchDb::new();
    let xor = TruthTable::xor3();
    assert_eq!(db.all_masks(&xor).len(), 8);
    assert_eq!(db.all_masks(&!xor).len(), 8);
    // MAJ3 matches plain under exactly one mask (and negated under one).
    let plain: Vec<_> = db
        .all_masks(&TruthTable::maj3())
        .into_iter()
        .filter(|(_, m)| !m.output_negated)
        .collect();
    assert_eq!(plain.len(), 1);
    assert_eq!(plain[0].0, 0);
}

#[test]
fn t1db_counts_realizable_functions() {
    // Under a fixed mask the realizable set is {XOR3, XNOR3, MAJ^m, ¬MAJ^m,
    // OR^m, ¬OR^m} — six distinct functions.
    let db = T1MatchDb::new();
    for mask in 0u8..8 {
        let count = (0u64..256)
            .filter(|&b| db.lookup(&tt3(b), mask).is_some())
            .count();
        assert_eq!(count, 6, "mask {mask}");
    }
}

proptest! {
    #[test]
    fn prop_not_involution(bits in 0u64..256) {
        let f = tt3(bits);
        prop_assert_eq!(!!f, f);
    }

    #[test]
    fn prop_cofactor_eliminates_var(bits in 0u64..256, var in 0usize..3) {
        let f = tt3(bits);
        prop_assert!(f.cofactor0(var).is_dont_care(var));
        prop_assert!(f.cofactor1(var).is_dont_care(var));
    }

    #[test]
    fn prop_flip_matches_pointwise(bits in 0u64..256, mask in 0u8..8) {
        let f = tt3(bits);
        let g = f.flip_vars(mask);
        for row in 0..8usize {
            prop_assert_eq!(g.eval_row(row), f.eval_row(row ^ mask as usize));
        }
    }

    #[test]
    fn prop_permute_matches_pointwise(bits in 0u64..256, seed in 0usize..6) {
        const PERMS: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let perm = PERMS[seed];
        let f = tt3(bits);
        let g = f.permute_vars(&perm);
        for row in 0..8usize {
            // new input i reads old input perm[i]
            let mut src = 0usize;
            for (new_i, &old_i) in perm.iter().enumerate() {
                if (row >> new_i) & 1 == 1 {
                    src |= 1 << old_i;
                }
            }
            prop_assert_eq!(g.eval_row(row), f.eval_row(src));
        }
    }

    #[test]
    fn prop_npn_canonical_is_invariant(bits in 0u64..256, mask in 0u8..8, seed in 0usize..6, out_neg: bool) {
        const PERMS: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let f = tt3(bits);
        let mut g = f.flip_vars(mask).permute_vars(&PERMS[seed]);
        if out_neg { g = !g; }
        prop_assert_eq!(npn_canonize(&f).0, npn_canonize(&g).0);
    }

    #[test]
    fn prop_extend_preserves_eval(bits in 0u64..16) {
        let f = TruthTable::from_bits(2, bits).unwrap();
        let g = f.extend_to(4);
        for row in 0..16usize {
            prop_assert_eq!(g.eval_row(row), f.eval_row(row & 3));
        }
    }

    #[test]
    fn prop_shrink_then_extend_roundtrip(bits in 0u64..256) {
        let f = tt3(bits);
        let (s, support) = f.shrink_to_support();
        prop_assert_eq!(s.support_size(), s.num_vars());
        // Re-expand and compare pointwise.
        for row in 0..8usize {
            let mut small = 0usize;
            for (new_i, &old_i) in support.iter().enumerate() {
                if (row >> old_i) & 1 == 1 {
                    small |= 1 << new_i;
                }
            }
            prop_assert_eq!(f.eval_row(row), s.eval_row(small));
        }
    }

    #[test]
    fn prop_t1_match_is_sound(bits in 0u64..256, mask in 0u8..8) {
        let db = T1MatchDb::new();
        let f = tt3(bits);
        if let Some(m) = db.lookup(&f, mask) {
            // Reconstruct: base(inputs ^ mask) [⊕ out] must equal f.
            let mut g = m.base.truth_table().flip_vars(mask);
            if m.output_negated { g = !g; }
            prop_assert_eq!(g, f);
        }
    }
}
