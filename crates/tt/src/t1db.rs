//! The T1 function database: which 3-input functions a T1 cell can realize,
//! and under which input/output polarities.
//!
//! A T1 flip-flop whose `T` input merges three data pulses `a, b, c` offers
//! (paper §I-A) the synchronous outputs
//!
//! * `S  = XOR3(a,b,c)`
//! * `C  = MAJ3(a,b,c)`  (`C*` latched by a DFF)
//! * `Q  = OR3(a,b,c)`   (`Q*` latched by a DFF)
//! * `¬MAJ3`, `¬OR3` via clocked inverters on `C*` / `Q*`.
//!
//! If some inputs are fed through inverters (polarity mask `m`), **every**
//! output of the cell sees the negated inputs, so a group of cuts mapped onto
//! one T1 must agree on `m`. XOR3 is linear, hence tolerant: negating an input
//! only complements the output, so an XOR3/XNOR3 cut matches under *any* mask
//! with an output-polarity fixup. MAJ3/OR3 matches are mask-specific.
//!
//! [`T1MatchDb`] precomputes, for all 256 possible 3-input truth tables and
//! all 8 input-polarity masks, whether/how the function is realizable. Lookup
//! is a table index — this is the Boolean-matching [9] step of the paper's
//! detection flow, specialized to the totally-symmetric T1 bases.
//!
//! Note on the `S` port: the paper's five synchronous outputs are `S`, `C`,
//! `Q`, `C*`+INV and `Q*`+INV. An inverter on `S` is *not* among them (the
//! `S` pulse fires at the T1's own clock stage, so a same-stage inverter is
//! impossible), hence detection must reject `(Xor3, output_negated = true)`
//! matches; the complementary parity mask offers XNOR3 on `S` directly.

use crate::table::TruthTable;

/// The three function families a T1 cell produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum T1Base {
    /// Parity of the three inputs: the `S` ("sum") output.
    Xor3,
    /// Majority of the three inputs: the `C` ("carry") output.
    Maj3,
    /// Disjunction of the three inputs: the `Q` output.
    Or3,
}

impl T1Base {
    /// Truth table of the base function on positive inputs.
    pub fn truth_table(self) -> TruthTable {
        match self {
            T1Base::Xor3 => TruthTable::xor3(),
            T1Base::Maj3 => TruthTable::maj3(),
            T1Base::Or3 => TruthTable::or3(),
        }
    }

    /// All three bases.
    pub const ALL: [T1Base; 3] = [T1Base::Xor3, T1Base::Maj3, T1Base::Or3];
}

/// How a specific 3-input function is realized by a T1 cell under a given
/// input-polarity mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct T1Match {
    /// Which base output produces the function.
    pub base: T1Base,
    /// Whether the base output must be complemented (e.g. `C*`+INV for
    /// `¬MAJ3`, or the XOR3 parity fixup).
    pub output_negated: bool,
}

/// Precomputed matcher from (3-input truth table, input-polarity mask) to a
/// T1 realization.
///
/// # Example
///
/// ```
/// use sfq_tt::{T1Base, T1MatchDb, TruthTable};
///
/// let db = T1MatchDb::new();
/// let xnor3 = !TruthTable::xor3();
/// // XNOR3 is XOR3 with the output complemented — realizable at mask 0.
/// let m = db.lookup(&xnor3, 0).unwrap();
/// assert_eq!(m.base, T1Base::Xor3);
/// assert!(m.output_negated);
/// // MAJ3 with input 0 negated is only realizable when the mask says so.
/// let maj_n0 = TruthTable::maj3().flip_var(0);
/// assert!(db.lookup(&maj_n0, 0).is_none());
/// assert!(db.lookup(&maj_n0, 0b001).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct T1MatchDb {
    // [mask][tt_bits] — 8 masks × 256 functions.
    table: Vec<[Option<T1Match>; 256]>,
    // [tt_bits] — bit `m` set iff `table[m][tt_bits]` is `Some`. Lets the
    // detection hot loop probe one byte instead of eight table slots (most
    // cut functions are realizable under no mask at all).
    mask_sets: [u8; 256],
}

impl Default for T1MatchDb {
    fn default() -> Self {
        Self::new()
    }
}

impl T1MatchDb {
    /// Builds the full 8×256 lookup table.
    pub fn new() -> Self {
        let mut table = vec![[None; 256]; 8];
        for mask in 0u8..8 {
            for base in T1Base::ALL {
                for out_neg in [false, true] {
                    // The function *computed by the network* equals
                    // base(inputs ^ mask), possibly complemented. A cut whose
                    // truth table (over positive leaves) equals this value is
                    // realizable by port `base` when leaves are fed through
                    // inverters selected by `mask`.
                    let mut f = base.truth_table().flip_vars(mask);
                    if out_neg {
                        f = !f;
                    }
                    let idx = f.bits() as usize;
                    let entry = &mut table[mask as usize][idx];
                    // Distinct (base, polarity) realizations never collide on
                    // the same function bits for a fixed mask, so first write
                    // wins; iteration order (XOR3 < MAJ3 < OR3, plain before
                    // negated) makes the choice deterministic.
                    if entry.is_none() {
                        *entry = Some(T1Match {
                            base,
                            output_negated: out_neg,
                        });
                    }
                }
            }
        }
        let mut mask_sets = [0u8; 256];
        for (bits, set) in mask_sets.iter_mut().enumerate() {
            for mask in 0u8..8 {
                if table[mask as usize][bits].is_some() {
                    *set |= 1 << mask;
                }
            }
        }
        T1MatchDb { table, mask_sets }
    }

    /// The set of input-polarity masks under which `tt` is realizable, as a
    /// bitmask (bit `m` ⇔ [`T1MatchDb::lookup`] succeeds for mask `m`).
    ///
    /// One byte probe; `0` for the overwhelmingly common unrealizable case.
    ///
    /// # Panics
    /// Panics if `tt` does not have exactly 3 variables.
    pub fn realizable_masks(&self, tt: &TruthTable) -> u8 {
        assert_eq!(tt.num_vars(), 3, "T1 matching requires 3-input functions");
        self.mask_sets[tt.bits() as usize]
    }

    /// Looks up a 3-input function under a given input-polarity mask.
    ///
    /// Returns `None` when the T1 cell cannot produce the function with that
    /// mask.
    ///
    /// # Panics
    /// Panics if `tt` does not have exactly 3 variables or `mask >= 8`.
    pub fn lookup(&self, tt: &TruthTable, mask: u8) -> Option<T1Match> {
        assert_eq!(tt.num_vars(), 3, "T1 matching requires 3-input functions");
        assert!(mask < 8, "mask must be a 3-bit polarity mask");
        self.table[mask as usize][tt.bits() as usize]
    }

    /// All masks under which `tt` is realizable, with their matches.
    ///
    /// # Panics
    /// Panics if `tt` does not have exactly 3 variables.
    pub fn all_masks(&self, tt: &TruthTable) -> Vec<(u8, T1Match)> {
        assert_eq!(tt.num_vars(), 3, "T1 matching requires 3-input functions");
        (0u8..8)
            .filter_map(|m| self.table[m as usize][tt.bits() as usize].map(|r| (m, r)))
            .collect()
    }

    /// True if `tt` is realizable under at least one polarity mask.
    pub fn is_t1_function(&self, tt: &TruthTable) -> bool {
        !self.all_masks(tt).is_empty()
    }
}
