use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// Error raised when constructing a [`TruthTable`] from invalid parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TruthTableError {
    /// The requested variable count is outside `0..=6`.
    TooManyVars(usize),
    /// A variable index was not smaller than the variable count.
    VarOutOfRange {
        /// The offending variable index.
        var: usize,
        /// The table's variable count.
        num_vars: usize,
    },
    /// Raw bits contained ones above the `2^n` valid positions.
    ExcessBits,
}

impl fmt::Display for TruthTableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TruthTableError::TooManyVars(n) => {
                write!(f, "truth tables support at most 6 variables, got {n}")
            }
            TruthTableError::VarOutOfRange { var, num_vars } => {
                write!(
                    f,
                    "variable index {var} out of range for {num_vars} variables"
                )
            }
            TruthTableError::ExcessBits => {
                write!(f, "raw truth-table bits set above the 2^n valid positions")
            }
        }
    }
}

impl std::error::Error for TruthTableError {}

/// A complete truth table of a Boolean function with `n ≤ 6` inputs.
///
/// Bit `i` of [`bits`](Self::bits) holds the function value on the input
/// assignment whose binary encoding is `i` (variable 0 is the least
/// significant input). Bits above `2^n` are kept at zero — an invariant all
/// constructors and operators preserve.
///
/// The type is `Copy` and cheap to hash, which cut enumeration exploits.
///
/// # Example
///
/// ```
/// use sfq_tt::TruthTable;
/// let xor3 = TruthTable::xor3();
/// assert_eq!(xor3.num_vars(), 3);
/// assert_eq!(xor3.count_ones(), 4);
/// assert!(xor3.eval(&[true, false, false]));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TruthTable {
    bits: u64,
    num_vars: u8,
}

/// Bit patterns of each input variable over the 64 rows of a 6-var table.
const VAR_PATTERNS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

impl TruthTable {
    /// Largest supported variable count.
    pub const MAX_VARS: usize = 6;

    /// The constant-zero function of `num_vars` variables.
    ///
    /// # Panics
    /// Panics if `num_vars > 6`.
    pub fn zero(num_vars: usize) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "at most 6 variables");
        TruthTable {
            bits: 0,
            num_vars: num_vars as u8,
        }
    }

    /// The constant-one function of `num_vars` variables.
    ///
    /// # Panics
    /// Panics if `num_vars > 6`.
    pub fn one(num_vars: usize) -> Self {
        let mut t = Self::zero(num_vars);
        t.bits = t.full_mask();
        t
    }

    /// The projection function returning input `var` among `num_vars` inputs.
    ///
    /// # Panics
    /// Panics if `num_vars > 6` or `var >= num_vars`.
    pub fn var(num_vars: usize, var: usize) -> Self {
        assert!(num_vars <= Self::MAX_VARS, "at most 6 variables");
        assert!(var < num_vars, "variable index out of range");
        let mut t = Self::zero(num_vars);
        t.bits = VAR_PATTERNS[var] & t.full_mask();
        t
    }

    /// Builds a table from raw bits.
    ///
    /// # Errors
    /// Returns [`TruthTableError::TooManyVars`] if `num_vars > 6` and
    /// [`TruthTableError::ExcessBits`] if `bits` has ones above `2^num_vars`.
    pub fn from_bits(num_vars: usize, bits: u64) -> Result<Self, TruthTableError> {
        if num_vars > Self::MAX_VARS {
            return Err(TruthTableError::TooManyVars(num_vars));
        }
        let t = TruthTable {
            bits,
            num_vars: num_vars as u8,
        };
        if bits & !t.full_mask() != 0 {
            return Err(TruthTableError::ExcessBits);
        }
        Ok(t)
    }

    /// Builds a table from raw bits, masking away any excess bits.
    ///
    /// # Panics
    /// Panics if `num_vars > 6`.
    pub fn from_bits_truncated(num_vars: usize, bits: u64) -> Self {
        let mut t = Self::zero(num_vars);
        t.bits = bits & t.full_mask();
        t
    }

    /// Three-input exclusive OR (the T1 cell's `S` output).
    pub fn xor3() -> Self {
        Self::from_bits_truncated(3, 0x96)
    }

    /// Three-input majority (the T1 cell's `C` output).
    pub fn maj3() -> Self {
        Self::from_bits_truncated(3, 0xE8)
    }

    /// Three-input OR (the T1 cell's `Q` output).
    pub fn or3() -> Self {
        Self::from_bits_truncated(3, 0xFE)
    }

    /// Raw output column, valid in the low `2^n` bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// Number of rows (`2^n`).
    pub fn num_rows(&self) -> usize {
        1 << self.num_vars
    }

    fn full_mask(&self) -> u64 {
        if self.num_vars == 6 {
            u64::MAX
        } else {
            (1u64 << (1 << self.num_vars)) - 1
        }
    }

    /// Evaluates the function on one assignment (`inputs.len() == n`).
    ///
    /// # Panics
    /// Panics if `inputs.len() != num_vars()`.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_vars(), "wrong input count");
        let mut row = 0usize;
        for (i, &b) in inputs.iter().enumerate() {
            if b {
                row |= 1 << i;
            }
        }
        (self.bits >> row) & 1 == 1
    }

    /// Evaluates the function on a row index encoding the assignment.
    pub fn eval_row(&self, row: usize) -> bool {
        debug_assert!(row < self.num_rows());
        (self.bits >> row) & 1 == 1
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u32 {
        self.bits.count_ones()
    }

    /// True if the function is constant (zero or one).
    pub fn is_constant(&self) -> bool {
        self.bits == 0 || self.bits == self.full_mask()
    }

    /// Negative cofactor with respect to variable `var`.
    ///
    /// The result still has `n` variables; `var` becomes a don't-care.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn cofactor0(&self, var: usize) -> Self {
        assert!(var < self.num_vars(), "variable index out of range");
        let p = VAR_PATTERNS[var];
        let shift = 1u32 << var;
        let lo = self.bits & !p;
        TruthTable {
            bits: (lo | (lo << shift)) & self.full_mask(),
            num_vars: self.num_vars,
        }
    }

    /// Positive cofactor with respect to variable `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn cofactor1(&self, var: usize) -> Self {
        assert!(var < self.num_vars(), "variable index out of range");
        let p = VAR_PATTERNS[var];
        let shift = 1u32 << var;
        let hi = self.bits & p;
        TruthTable {
            bits: (hi | (hi >> shift)) & self.full_mask(),
            num_vars: self.num_vars,
        }
    }

    /// True if the function does not depend on variable `var`.
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn is_dont_care(&self, var: usize) -> bool {
        self.cofactor0(var) == self.cofactor1(var)
    }

    /// Bitmask of variables the function actually depends on.
    pub fn support_mask(&self) -> u8 {
        let mut m = 0u8;
        for v in 0..self.num_vars() {
            if !self.is_dont_care(v) {
                m |= 1 << v;
            }
        }
        m
    }

    /// Number of variables in the functional support.
    pub fn support_size(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Returns the same function with inputs `a` and `b` swapped.
    ///
    /// # Panics
    /// Panics if `a` or `b` is out of range.
    pub fn swap_vars(&self, a: usize, b: usize) -> Self {
        assert!(a < self.num_vars() && b < self.num_vars());
        if a == b {
            return *self;
        }
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        let mut out = 0u64;
        for row in 0..self.num_rows() {
            let ba = (row >> a) & 1;
            let bb = (row >> b) & 1;
            let mut src = row & !((1 << a) | (1 << b));
            src |= bb << a;
            src |= ba << b;
            out |= u64::from(self.eval_row(src)) << row;
        }
        TruthTable {
            bits: out,
            num_vars: self.num_vars,
        }
    }

    /// Applies a permutation of inputs: new input `i` is old input `perm[i]`.
    ///
    /// # Panics
    /// Panics if `perm` is not a permutation of `0..n`.
    pub fn permute_vars(&self, perm: &[usize]) -> Self {
        let n = self.num_vars();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut seen = [false; 6];
        for &p in perm {
            assert!(p < n && !seen[p], "not a permutation");
            seen[p] = true;
        }
        let mut out = 0u64;
        for row in 0..self.num_rows() {
            // Row in the *new* table; build the old row it reads from.
            let mut src = 0usize;
            for (new_i, &old_i) in perm.iter().enumerate() {
                if (row >> new_i) & 1 == 1 {
                    src |= 1 << old_i;
                }
            }
            out |= u64::from(self.eval_row(src)) << row;
        }
        TruthTable {
            bits: out,
            num_vars: self.num_vars,
        }
    }

    /// Negates input `var` (substitutes `¬x` for `x`).
    ///
    /// # Panics
    /// Panics if `var >= num_vars()`.
    pub fn flip_var(&self, var: usize) -> Self {
        assert!(var < self.num_vars(), "variable index out of range");
        let p = VAR_PATTERNS[var] & self.full_mask();
        let shift = 1u32 << var;
        let hi = self.bits & p;
        let lo = self.bits & !p;
        TruthTable {
            bits: ((hi >> shift) | (lo << shift)) & self.full_mask(),
            num_vars: self.num_vars,
        }
    }

    /// Negates inputs selected by `mask` (bit `i` set ⇒ input `i` negated).
    pub fn flip_vars(&self, mask: u8) -> Self {
        let mut t = *self;
        for v in 0..self.num_vars() {
            if (mask >> v) & 1 == 1 {
                t = t.flip_var(v);
            }
        }
        t
    }

    /// True if swapping any pair of inputs leaves the function unchanged.
    ///
    /// All three T1-realizable bases (XOR3, MAJ3, OR3) are totally symmetric,
    /// which is why T1 matching only needs polarity enumeration.
    pub fn is_totally_symmetric(&self) -> bool {
        let n = self.num_vars();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.swap_vars(a, b) != *self {
                    return false;
                }
            }
        }
        true
    }

    /// Extends the function to `new_num_vars` variables (new inputs are
    /// don't-cares appended above the existing ones).
    ///
    /// # Panics
    /// Panics if `new_num_vars` is smaller than the current count or exceeds 6.
    pub fn extend_to(&self, new_num_vars: usize) -> Self {
        assert!(new_num_vars >= self.num_vars(), "cannot shrink");
        assert!(new_num_vars <= Self::MAX_VARS, "at most 6 variables");
        let mut bits = self.bits;
        let mut rows = self.num_rows();
        for _ in self.num_vars()..new_num_vars {
            bits |= bits << rows;
            rows <<= 1;
        }
        TruthTable {
            bits,
            num_vars: new_num_vars as u8,
        }
    }

    /// Removes don't-care variables, compacting the support into the low
    /// indices. Returns the shrunk table and, for each new variable, the old
    /// variable index it came from.
    pub fn shrink_to_support(&self) -> (Self, Vec<usize>) {
        let support: Vec<usize> = (0..self.num_vars())
            .filter(|&v| !self.is_dont_care(v))
            .collect();
        let k = support.len();
        let mut bits = 0u64;
        for row in 0..(1usize << k) {
            let mut src = 0usize;
            for (new_i, &old_i) in support.iter().enumerate() {
                if (row >> new_i) & 1 == 1 {
                    src |= 1 << old_i;
                }
            }
            bits |= u64::from(self.eval_row(src)) << row;
        }
        (
            TruthTable {
                bits,
                num_vars: k as u8,
            },
            support,
        )
    }
}

impl Not for TruthTable {
    type Output = TruthTable;
    fn not(self) -> TruthTable {
        TruthTable {
            bits: !self.bits & self.full_mask(),
            num_vars: self.num_vars,
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for TruthTable {
            type Output = TruthTable;
            fn $method(self, rhs: TruthTable) -> TruthTable {
                assert_eq!(
                    self.num_vars, rhs.num_vars,
                    "truth-table operands must have the same variable count"
                );
                TruthTable { bits: self.bits $op rhs.bits, num_vars: self.num_vars }
            }
        }
    };
}

impl_binop!(BitAnd, bitand, &);
impl_binop!(BitOr, bitor, |);
impl_binop!(BitXor, bitxor, ^);

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({}v, ", self.num_vars)?;
        let digits = self.num_rows().div_ceil(4);
        write!(f, "{:0width$x})", self.bits, width = digits)
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = self.num_rows().div_ceil(4);
        write!(f, "{:0width$x}", self.bits, width = digits)
    }
}

impl fmt::LowerHex for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.bits, f)
    }
}

impl fmt::Binary for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.bits, f)
    }
}
