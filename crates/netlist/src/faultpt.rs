//! Deterministic fault injection at named sites (the `fault-injection`
//! feature).
//!
//! Every hardened layer of the flow declares *fault points* — named sites
//! where a test (or an operator probing a deployment) can force a failure:
//!
//! | site          | where it fires                                   | context (`ctx`)        |
//! |---------------|--------------------------------------------------|------------------------|
//! | `parse`       | [`crate::design::Design::parse`]                 | design fallback name   |
//! | `flow.map`    | start of technology mapping (`sfq_core`)         | design name            |
//! | `flow.detect` | before T1 detection                              | network name           |
//! | `flow.phase`  | before phase assignment                          | network name           |
//! | `flow.dff`    | before DFF emission                              | network name           |
//! | `flow.verify` | before audit + equivalence check                 | network name           |
//! | `par.item`    | inside every [`crate::par::map_ordered`] worker  | item index (decimal)   |
//! | `par.cuts`    | inside cut-enumeration workers                   | network name           |
//! | `par.detect`  | inside detection workers                         | network name           |
//!
//! Faults are armed programmatically ([`arm`] / [`arm_limited`]) or from the
//! `SFQ_FAULTS` environment variable (read once, at first use), a
//! comma-separated list of `site[@ctx]:action` specs where `action` is
//! `panic`, `err`, or `delay:<ms>`:
//!
//! ```text
//! SFQ_FAULTS='parse@adder8:err,flow.detect@mult4:panic,flow.phase@voter7:delay:60000'
//! ```
//!
//! An armed site without `@ctx` matches every context. Actions:
//!
//! * `panic` — [`hit`] panics with the deterministic message
//!   `injected panic at <site>`, exercising the containment paths
//!   (supervised `catch_unwind`, per-item isolation in `map_ordered`);
//! * `err` — [`hit`] returns `true`; the call site maps that to its own
//!   typed error (e.g. [`crate::design::DesignError::Injected`]);
//! * `delay:<ms>` — [`hit`] sleeps that long in short slices, calling
//!   [`crate::budget::checkpoint`] between slices so an armed deadline
//!   aborts the sleep promptly — this is how deadline handling is tested in
//!   bounded wall-clock time.
//!
//! Without the `fault-injection` feature every function here compiles to a
//! no-op ([`hit`] constantly `false`), so production builds carry zero
//! overhead and no `SFQ_FAULTS` parsing.

/// What an armed fault point does when [`hit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with `injected panic at <site>`.
    Panic,
    /// Report the hit (`true`) so the call site returns its own error.
    Err,
    /// Sleep for this many milliseconds (sliced, deadline-aware).
    Delay(u64),
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::FaultAction;
    use crate::sync::{Mutex, Once, OnceLock};

    struct Fault {
        site: String,
        /// `None` matches every context.
        ctx: Option<String>,
        action: FaultAction,
        /// Remaining fires; `None` = unlimited.
        remaining: Option<u32>,
    }

    fn table() -> &'static Mutex<Vec<Fault>> {
        static TABLE: OnceLock<Mutex<Vec<Fault>>> = OnceLock::new();
        TABLE.get_or_init(|| Mutex::new(Vec::new()))
    }

    /// Parses `SFQ_FAULTS` exactly once, before the first table access.
    fn load_env() {
        static ONCE: Once = Once::new();
        ONCE.call_once(|| {
            let Ok(spec) = std::env::var("SFQ_FAULTS") else {
                return;
            };
            for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
                let (site_spec, action) = parse_spec(part.trim())
                    .unwrap_or_else(|| panic!("SFQ_FAULTS: malformed fault spec `{part}`"));
                let (site, ctx) = match site_spec.split_once('@') {
                    Some((s, c)) => (s.to_string(), Some(c.to_string())),
                    None => (site_spec.to_string(), None),
                };
                table().lock().expect("fault table lock").push(Fault {
                    site,
                    ctx,
                    action,
                    remaining: None,
                });
            }
        });
    }

    /// Splits `site[@ctx]:action` into the site part and the parsed action.
    fn parse_spec(part: &str) -> Option<(&str, FaultAction)> {
        let (site_spec, action) = part.split_once(':')?;
        let action = match action {
            "panic" => FaultAction::Panic,
            "err" => FaultAction::Err,
            delay => {
                let ms = delay.strip_prefix("delay:")?.parse().ok()?;
                FaultAction::Delay(ms)
            }
        };
        Some((site_spec, action))
    }

    pub fn arm(site: &str, ctx: Option<&str>, action: FaultAction, remaining: Option<u32>) {
        load_env();
        table().lock().expect("fault table lock").push(Fault {
            site: site.to_string(),
            ctx: ctx.map(str::to_string),
            action,
            remaining,
        });
    }

    pub fn disarm(site: &str, ctx: Option<&str>) {
        load_env();
        table()
            .lock()
            .expect("fault table lock")
            .retain(|f| !(f.site == site && f.ctx.as_deref() == ctx));
    }

    pub fn armed() -> usize {
        load_env();
        table().lock().expect("fault table lock").len()
    }

    pub fn hit(site: &str, ctx: &str) -> bool {
        load_env();
        let action = {
            let mut table = table().lock().expect("fault table lock");
            let found = table.iter_mut().find(|f| {
                f.site == site
                    && f.ctx.as_deref().is_none_or(|c| c == ctx)
                    && f.remaining != Some(0)
            });
            let Some(fault) = found else { return false };
            if let Some(n) = fault.remaining.as_mut() {
                *n -= 1;
            }
            fault.action
            // Lock released here: the action below may panic or sleep.
        };
        match action {
            FaultAction::Panic => panic!("injected panic at {site}"),
            FaultAction::Err => true,
            FaultAction::Delay(ms) => {
                // Sliced so an installed deadline budget fires mid-sleep
                // instead of after the full delay.
                let mut left = ms;
                while left > 0 {
                    crate::budget::checkpoint();
                    let slice = left.min(5);
                    std::thread::sleep(std::time::Duration::from_millis(slice));
                    left -= slice;
                }
                crate::budget::checkpoint();
                false
            }
        }
    }
}

/// Arms a fault at `site` (optionally only for context `ctx`), firing on
/// every [`hit`] until [`disarm`]ed. No-op without the `fault-injection`
/// feature.
pub fn arm(site: &str, ctx: Option<&str>, action: FaultAction) {
    #[cfg(feature = "fault-injection")]
    imp::arm(site, ctx, action, None);
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (site, ctx, action);
    }
}

/// Arms a fault that fires at most `count` times, then lies dormant until
/// [`disarm`]ed — the hook for "fails once, retry succeeds" tests. No-op
/// without the `fault-injection` feature.
pub fn arm_limited(site: &str, ctx: Option<&str>, action: FaultAction, count: u32) {
    #[cfg(feature = "fault-injection")]
    imp::arm(site, ctx, action, Some(count));
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (site, ctx, action, count);
    }
}

/// Removes every armed fault matching `site` and `ctx` exactly (a `None`
/// ctx only removes match-all entries). No-op without the feature.
pub fn disarm(site: &str, ctx: Option<&str>) {
    #[cfg(feature = "fault-injection")]
    imp::disarm(site, ctx);
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (site, ctx);
    }
}

/// Number of armed fault entries (including exhausted limited ones);
/// constantly 0 without the feature.
pub fn armed() -> usize {
    #[cfg(feature = "fault-injection")]
    {
        imp::armed()
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        0
    }
}

/// Fires the fault point `site` in context `ctx`, if one is armed.
///
/// Returns `true` when an `err`-action fault fired (the call site should
/// fail with its own error type), `false` otherwise. Without the
/// `fault-injection` feature this is constantly `false` and the call
/// optimizes away.
///
/// # Panics
/// When a `panic`-action fault is armed for this site/context, or when an
/// armed `delay` overlaps an exceeded budget deadline.
#[inline]
pub fn hit(site: &str, ctx: &str) -> bool {
    #[cfg(feature = "fault-injection")]
    {
        imp::hit(site, ctx)
    }
    #[cfg(not(feature = "fault-injection"))]
    {
        let _ = (site, ctx);
        false
    }
}
