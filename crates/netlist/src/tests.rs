use crate::aig::Aig;
use crate::aiger::{read_aag, write_aag};
use crate::cell::{CellKind, GateKind, Library, T1Port};
use crate::cuts::{enumerate_cuts, CutConfig};
use crate::mapper::map_aig;
use crate::mffc::{mffc_area, mffc_nodes, reference_counts};
use crate::network::{Network, NetworkError, Signal};
use proptest::prelude::*;
use sfq_tt::TruthTable;

// ---------------------------------------------------------------- AIG ----

#[test]
fn aig_constant_folding() {
    let mut aig = Aig::new("fold");
    let a = aig.input("a");
    assert_eq!(aig.and(a, aig.const_false()), aig.const_false());
    assert_eq!(aig.and(a, aig.const_true()), a);
    assert_eq!(aig.and(a, a), a);
    assert_eq!(aig.and(a, !a), aig.const_false());
    assert_eq!(aig.num_ands(), 0);
}

#[test]
fn aig_structural_hashing() {
    let mut aig = Aig::new("strash");
    let a = aig.input("a");
    let b = aig.input("b");
    let x = aig.and(a, b);
    let y = aig.and(b, a);
    assert_eq!(x, y);
    assert_eq!(aig.num_ands(), 1);
}

#[test]
fn aig_full_adder_function() {
    let mut aig = Aig::new("fa");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let (s, co) = aig.full_adder(a, b, c);
    aig.output("s", s);
    aig.output("co", co);
    // Exhaustive 8-row check via bit-parallel simulation.
    let pa = 0b10101010u64;
    let pb = 0b11001100u64;
    let pc = 0b11110000u64;
    let out = aig.simulate(&[pa, pb, pc]);
    assert_eq!(out[0] & 0xFF, (pa ^ pb ^ pc) & 0xFF);
    assert_eq!(out[1] & 0xFF, ((pa & pb) | (pa & pc) | (pb & pc)) & 0xFF);
}

#[test]
fn aig_levels_and_depth() {
    let mut aig = Aig::new("depth");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let t = aig.and(a, b);
    let u = aig.and(t, c);
    aig.output("u", u);
    assert_eq!(aig.depth(), 2);
    // XOR adds two levels (OR of two ANDs).
    let mut aig2 = Aig::new("x");
    let a = aig2.input("a");
    let b = aig2.input("b");
    let x = aig2.xor(a, b);
    aig2.output("x", x);
    assert_eq!(aig2.depth(), 2);
}

#[test]
fn aig_live_node_count() {
    let mut aig = Aig::new("dead");
    let a = aig.input("a");
    let b = aig.input("b");
    let live = aig.and(a, b);
    let _dead = aig.or(a, b); // never used by an output
    aig.output("f", live);
    assert_eq!(aig.num_live_ands(), 1);
    assert!(aig.num_ands() > aig.num_live_ands());
}

#[test]
fn aiger_roundtrip_preserves_function() {
    let mut aig = Aig::new("rt");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let (s, co) = aig.full_adder(a, b, c);
    let g = aig.mux(s, co, c);
    aig.output("s", s);
    aig.output("g", g);

    let mut buf = Vec::new();
    write_aag(&aig, &mut buf).unwrap();
    let back = read_aag(std::io::Cursor::new(&buf), "rt2").unwrap();
    assert_eq!(back.num_inputs(), 3);
    assert_eq!(back.num_outputs(), 2);
    let pats = [
        0xDEADBEEF12345678u64,
        0x0F0F33555AA5C3C3,
        0x123456789ABCDEF0,
    ];
    assert_eq!(aig.simulate(&pats), back.simulate(&pats));
}

#[test]
fn aiger_rejects_garbage() {
    assert!(read_aag(std::io::Cursor::new(b"not an aiger" as &[u8]), "x").is_err());
    assert!(read_aag(std::io::Cursor::new(b"aag 1 1 1 0 0\n2\n" as &[u8]), "x").is_err());
}

#[test]
fn aiger_symbol_table_restores_names() {
    let mut aig = Aig::new("named");
    let a = aig.input("op_a");
    let b = aig.input("op_b");
    let s = aig.xor(a, b);
    let c = aig.and(a, b);
    aig.output("sum", s);
    aig.output("carry", c);

    let mut buf = Vec::new();
    write_aag(&aig, &mut buf).unwrap();
    // `read_aag` must keep the symbol table, not drop it: names and the
    // design name (first comment line) survive the round trip.
    let back = read_aag(buf.as_slice(), "fallback").unwrap();
    assert_eq!(back.name(), "named");
    assert_eq!(back.input_name(0), "op_a");
    assert_eq!(back.input_name(1), "op_b");
    assert_eq!(back.output_name(0), "sum");
    assert_eq!(back.output_name(1), "carry");

    // Byte-level fixpoint: write → read → write is the identity.
    let mut buf2 = Vec::new();
    write_aag(&back, &mut buf2).unwrap();
    assert_eq!(buf, buf2, "write→read→write must be byte-identical");
}

#[test]
fn aiger_partial_symbols_fall_back_to_positional_names() {
    let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\ni1 beta\n";
    let aig = read_aag(src.as_bytes(), "part").unwrap();
    assert_eq!(aig.name(), "part", "no comment section keeps fallback name");
    assert_eq!(aig.input_name(0), "i0");
    assert_eq!(aig.input_name(1), "beta");
    assert_eq!(aig.output_name(0), "o0");
}

#[test]
fn aiger_tolerates_trailing_blank_lines() {
    // Editor-appended blank lines around the symbol table are not symbol
    // lines; external files carry them routinely.
    let src = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n\ni0 alpha\n\nc\nblanky\n\n";
    let aig = read_aag(src.as_bytes(), "x").unwrap();
    assert_eq!(aig.input_name(0), "alpha");
    assert_eq!(aig.name(), "blanky");
}

#[test]
fn aiger_rejects_malformed_symbol_lines() {
    let body = "aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n";
    for (sym, why) in [
        ("i0\n", "symbol without a name"),
        ("i0 \n", "empty symbol name"),
        ("i9 x\n", "symbol position out of range"),
        ("o1 x\n", "output symbol position out of range"),
        ("q0 x\n", "unknown symbol kind"),
        ("i0 a\ni0 b\n", "duplicate symbol"),
        ("ix x\n", "non-numeric symbol position"),
        ("l0 x\n", "latch symbol in a combinational file"),
    ] {
        let text = format!("{body}{sym}");
        assert!(
            read_aag(text.as_bytes(), "x").is_err(),
            "accepted {why}: {sym:?}"
        );
    }
}

#[test]
fn aiger_rejects_invalid_definitions() {
    for (src, why) in [
        ("aag 3 2 0 1 1\n3\n4\n6\n6 2 4\n", "odd input literal"),
        ("aag 3 2 0 1 1\n2\n2\n6\n6 2 4\n", "duplicate input literal"),
        ("aag 3 2 0 1 1\n2\n8\n6\n6 2 4\n", "input literal beyond m"),
        (
            "aag 3 2 0 1 1\n0\n4\n6\n6 2 4\n",
            "constant as input literal",
        ),
        ("aag 3 2 0 1 1\n2\n4\n6\n7 2 4\n", "odd and definition"),
        ("aag 3 2 0 1 1\n2\n4\n6\n4 2 4\n", "and clobbers an input"),
        ("aag 3 2 0 1 1\n2\n4\n6\n8 2 4\n", "and literal beyond m"),
        ("aag 3 2 0 1 1\n2\n4\n9\n6 2 4\n", "output literal beyond m"),
        ("aag 2 2 0 1 1\n2\n4\n6\n6 2 4\n", "header bound too small"),
    ] {
        assert!(read_aag(src.as_bytes(), "x").is_err(), "accepted {why}");
    }
    // The well-formed sibling of the rejected files parses.
    let ok = read_aag("aag 3 2 0 1 1\n2\n4\n6\n6 2 4\n".as_bytes(), "ok").unwrap();
    assert_eq!(ok.num_inputs(), 2);
    assert_eq!(ok.num_outputs(), 1);
}

// ------------------------------------------------------------ Network ----

fn full_adder_net() -> Network {
    // Conventional mapped FA: s = (a⊕b)⊕c, co = ab ∨ (a⊕b)c.
    let mut net = Network::new("fa");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let axb = net.add_gate(GateKind::Xor2, &[a, b]);
    let s = net.add_gate(GateKind::Xor2, &[axb, c]);
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let t = net.add_gate(GateKind::And2, &[axb, c]);
    let co = net.add_gate(GateKind::Or2, &[ab, t]);
    net.add_output("s", s);
    net.add_output("co", co);
    net
}

#[test]
fn network_validate_ok() {
    full_adder_net().validate().unwrap();
}

#[test]
fn network_validate_catches_bad_port() {
    let mut net = Network::new("bad");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let g = net.add_gate(GateKind::And2, &[a, b]);
    // Reference a non-existent port 3 of a plain gate.
    let bogus = Signal {
        cell: g.cell,
        port: 3,
    };
    net.add_output("f", bogus);
    assert!(matches!(
        net.validate(),
        Err(NetworkError::BadOutput { .. })
    ));
}

#[test]
fn network_validate_catches_unused_t1_port() {
    let mut net = Network::new("t1bad");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let t1 = net.add_t1(0b00001, &[a, b, c]); // only S used
    net.add_output("s", Signal::t1(t1, T1Port::S));
    net.validate().unwrap();
    let mut bad = net.clone();
    bad.add_output("carry", Signal::t1(t1, T1Port::C)); // C not in mask
    assert!(matches!(
        bad.validate(),
        Err(NetworkError::BadOutput { .. })
    ));
}

#[test]
fn network_simulation_matches_boolean_function() {
    let net = full_adder_net();
    let pa = 0xAAAA_AAAA_AAAA_AAAAu64;
    let pb = 0xCCCC_CCCC_CCCC_CCCCu64;
    let pc = 0xF0F0_F0F0_F0F0_F0F0u64;
    let out = net.simulate(&[pa, pb, pc]);
    assert_eq!(out[0], pa ^ pb ^ pc);
    assert_eq!(out[1], (pa & pb) | (pa & pc) | (pb & pc));
}

#[test]
fn network_t1_simulation_ports() {
    let mut net = Network::new("t1");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let t1 = net.add_t1(0b11111, &[a, b, c]);
    for port in T1Port::ALL {
        net.add_output(format!("{port}"), Signal::t1(t1, port));
    }
    let pa = 0xAAu64;
    let pb = 0xCCu64;
    let pc = 0xF0u64;
    let out = net.simulate(&[pa, pb, pc]);
    let maj = (pa & pb) | (pa & pc) | (pb & pc);
    let or3 = pa | pb | pc;
    assert_eq!(out[0] & 0xFF, (pa ^ pb ^ pc) & 0xFF);
    assert_eq!(out[1] & 0xFF, maj & 0xFF);
    assert_eq!(out[2] & 0xFF, or3 & 0xFF);
    assert_eq!(out[3] & 0xFF, !maj & 0xFF);
    assert_eq!(out[4] & 0xFF, !or3 & 0xFF);
}

#[test]
fn network_area_counts_cells_and_splitters() {
    let lib = Library::default();
    let net = full_adder_net();
    // Gates: 2×XOR2 + 2×AND2 + OR2 = 22 + 22 + 9 = 53.
    // Fanouts: a→2, b→2, c→2, axb→2 ⇒ 4 splitters = 12.
    assert_eq!(net.area(&lib), 53 + 12);
}

#[test]
fn network_depth() {
    let net = full_adder_net();
    assert_eq!(net.depth(), 3); // xor→xor for sum; xor→and→or for carry
}

#[test]
fn network_cleaned_removes_dead_cells() {
    let mut net = full_adder_net();
    let a = Signal::from_cell(net.inputs()[0]);
    let dead = net.add_gate(GateKind::Inv, &[a]);
    let _dead2 = net.add_gate(GateKind::Inv, &[dead]);
    let (clean, removed) = net.cleaned();
    assert_eq!(removed, 2);
    clean.validate().unwrap();
    assert_eq!(clean.num_gates(), 5);
    // Function unchanged.
    let pats = [0x12345678u64, 0x9ABCDEF0, 0x0F0F0F0F];
    assert_eq!(net.simulate(&pats), clean.simulate(&pats));
}

#[test]
fn cone_function_extracts_local_tt() {
    let net = full_adder_net();
    // Cells: 0,1,2 inputs; 3 = a⊕b; 4 = (a⊕b)⊕c; 6 = (a⊕b)·c
    let a = Signal::from_cell(net.inputs()[0]);
    let b = Signal::from_cell(net.inputs()[1]);
    let c = Signal::from_cell(net.inputs()[2]);
    let s = net.outputs()[0];
    let tt = net.cone_function(s, &[a, b, c]);
    assert_eq!(tt, TruthTable::xor3());
    let co = net.outputs()[1];
    assert_eq!(net.cone_function(co, &[a, b, c]), TruthTable::maj3());
}

// --------------------------------------------------------------- cuts ----

#[test]
fn cuts_find_xor3_and_maj3_in_full_adder() {
    let net = full_adder_net();
    let cuts = enumerate_cuts(&net, &CutConfig::default());
    let a = Signal::from_cell(net.inputs()[0]);
    let b = Signal::from_cell(net.inputs()[1]);
    let c = Signal::from_cell(net.inputs()[2]);
    let mut leaves = vec![a, b, c];
    leaves.sort();

    let s_cell = net.outputs()[0].cell;
    let co_cell = net.outputs()[1].cell;
    let s_cut = cuts
        .of(s_cell)
        .iter()
        .find(|cut| cut.leaves == leaves)
        .expect("xor3 cut");
    assert_eq!(s_cut.tt, TruthTable::xor3());
    let co_cut = cuts
        .of(co_cell)
        .iter()
        .find(|cut| cut.leaves == leaves)
        .expect("maj3 cut");
    assert_eq!(co_cut.tt, TruthTable::maj3());
}

#[test]
fn cuts_trivial_always_first() {
    let net = full_adder_net();
    let cuts = enumerate_cuts(&net, &CutConfig::default());
    for id in net.cell_ids() {
        let cs = cuts.of(id);
        assert!(!cs.is_empty());
        assert_eq!(cs[0].leaves, vec![Signal::from_cell(id)]);
        assert_eq!(cs[0].tt, TruthTable::var(1, 0));
    }
}

#[test]
fn cuts_respect_leaf_budget() {
    // A 4-input cone: cuts must never exceed 3 leaves under default config.
    let mut net = Network::new("wide");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let d = net.add_input("d");
    let ab = net.add_gate(GateKind::And2, &[a, b]);
    let cd = net.add_gate(GateKind::And2, &[c, d]);
    let f = net.add_gate(GateKind::And2, &[ab, cd]);
    net.add_output("f", f);
    let cuts = enumerate_cuts(&net, &CutConfig::default());
    for id in net.cell_ids() {
        for cut in cuts.of(id) {
            assert!(cut.leaves.len() <= 3);
        }
    }
    // The 4-leaf cut {a,b,c,d} must be absent from f's set.
    let f_cuts = cuts.of(f.cell);
    assert!(f_cuts.iter().all(|cut| cut.leaves.len() <= 3));
    // But {ab, cd} is there with an AND function.
    let mut pair = vec![ab, cd];
    pair.sort();
    let found = f_cuts.iter().find(|cut| cut.leaves == pair).unwrap();
    assert_eq!(found.tt, TruthTable::var(2, 0) & TruthTable::var(2, 1));
}

#[test]
fn cuts_tt_matches_cone_function() {
    let net = full_adder_net();
    let cuts = enumerate_cuts(&net, &CutConfig::default());
    for id in net.cell_ids() {
        if !matches!(net.kind(id), CellKind::Gate(_)) {
            continue;
        }
        for cut in cuts.of(id) {
            let direct = net.cone_function(Signal::from_cell(id), &cut.leaves);
            assert_eq!(direct, cut.tt, "cut tt mismatch at c{}", id.0);
        }
    }
}

// --------------------------------------------------------------- mffc ----

#[test]
fn mffc_of_single_fanout_chain() {
    let net = full_adder_net();
    let refs = reference_counts(&net);
    // The sum output cell's MFFC is just the output XOR (axb is shared with
    // the carry AND).
    let s_cell = net.outputs()[0].cell;
    let cone = mffc_nodes(&net, s_cell, &refs);
    assert_eq!(cone.len(), 1);
    // The carry OR's MFFC contains or, both ANDs — but not the shared XOR.
    let co_cell = net.outputs()[1].cell;
    let mut cone = mffc_nodes(&net, co_cell, &refs);
    cone.sort();
    assert_eq!(cone.len(), 3);
}

#[test]
fn mffc_area_sums_cells() {
    let lib = Library::default();
    let net = full_adder_net();
    let refs = reference_counts(&net);
    let co_cell = net.outputs()[1].cell;
    // or2 + and2 + and2 = 9 + 11 + 11.
    assert_eq!(mffc_area(&net, co_cell, &refs, &lib), 31);
}

#[test]
fn mffc_never_contains_inputs() {
    let net = full_adder_net();
    let refs = reference_counts(&net);
    for id in net.cell_ids() {
        if matches!(net.kind(id), CellKind::Gate(_)) {
            for n in mffc_nodes(&net, id, &refs) {
                assert!(matches!(net.kind(n), CellKind::Gate(_)));
            }
        }
    }
}

// ------------------------------------------------------------- mapper ----

#[test]
fn mapper_collapses_xor_pattern() {
    let mut aig = Aig::new("x");
    let a = aig.input("a");
    let b = aig.input("b");
    let x = aig.xor(a, b);
    aig.output("x", x);
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    assert_eq!(net.num_gates(), 1);
    assert!(matches!(
        net.kind(net.outputs()[0].cell),
        CellKind::Gate(GateKind::Xor2)
    ));
}

#[test]
fn mapper_handles_negated_output() {
    let mut aig = Aig::new("nand");
    let a = aig.input("a");
    let b = aig.input("b");
    let x = aig.and(a, b);
    aig.output("f", !x);
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    assert_eq!(net.num_gates(), 1);
    assert!(matches!(
        net.kind(net.outputs()[0].cell),
        CellKind::Gate(GateKind::Nand2)
    ));
}

#[test]
fn mapper_preserves_function_full_adder() {
    let mut aig = Aig::new("fa");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let (s, co) = aig.full_adder(a, b, c);
    aig.output("s", s);
    aig.output("co", co);
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    let pats = [
        0x123456789ABCDEF0u64,
        0xFEDCBA9876543210,
        0x0F1E2D3C4B5A6978,
    ];
    assert_eq!(aig.simulate(&pats), net.simulate(&pats));
}

#[test]
fn mapper_passes_through_input_outputs() {
    let mut aig = Aig::new("wire");
    let a = aig.input("a");
    let b = aig.input("b");
    aig.output("a_again", a);
    aig.output("not_b", !b);
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    assert_eq!(net.num_gates(), 1); // only the INV for !b
    let pats = [0x5555u64, 0x3333];
    let out = net.simulate(&pats);
    assert_eq!(out[0], 0x5555);
    assert_eq!(out[1], !0x3333u64);
}

/// The single-cell-per-node discipline: the cover must never materialize a
/// gate and its complement over identical fanins (that duplication is what
/// destroyed the multiplier's T1-detectable FA boundaries).
#[test]
fn mapper_never_duplicates_a_node_in_both_polarities() {
    fn complement(g: GateKind) -> GateKind {
        match g {
            GateKind::And2 => GateKind::Nand2,
            GateKind::Nand2 => GateKind::And2,
            GateKind::Or2 => GateKind::Nor2,
            GateKind::Nor2 => GateKind::Or2,
            GateKind::Xor2 => GateKind::Xnor2,
            GateKind::Xnor2 => GateKind::Xor2,
            GateKind::Inv => GateKind::Buf,
            GateKind::Buf => GateKind::Inv,
        }
    }
    let aig = sample_multiplier(4);
    let net = map_aig(&aig, &Library::default());
    let mut seen: std::collections::HashMap<Vec<Signal>, Vec<GateKind>> =
        std::collections::HashMap::new();
    for id in net.cell_ids() {
        if let CellKind::Gate(g) = net.kind(id) {
            let mut fanins = net.fanins(id).to_vec();
            fanins.sort();
            let kinds = seen.entry(fanins).or_default();
            assert!(
                !kinds.contains(&g) && !kinds.contains(&complement(g)),
                "cell c{} duplicates {g:?} (or its complement) over shared fanins",
                id.0
            );
            kinds.push(g);
        }
    }
}

/// Builds a small array multiplier without depending on sfq-circuits
/// (netlist cannot depend on it — circuits depends on netlist).
fn sample_multiplier(bits: usize) -> Aig {
    let mut aig = Aig::new("mult_local");
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let w = 2 * bits;
    let mut cols: Vec<Vec<crate::aig::AigLit>> = vec![Vec::new(); w];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            cols[i + j].push(pp);
        }
    }
    let mut carry_in: Vec<crate::aig::AigLit> = Vec::new();
    let mut product = Vec::with_capacity(w);
    for col in cols.iter_mut() {
        col.append(&mut carry_in);
        while col.len() > 1 {
            if col.len() >= 3 {
                let (s, c) = {
                    let (x, y, z) = (col.remove(0), col.remove(0), col.remove(0));
                    aig.full_adder(x, y, z)
                };
                col.push(s);
                carry_in.push(c);
            } else {
                let (x, y) = (col.remove(0), col.remove(0));
                let (s, c) = aig.half_adder(x, y);
                col.push(s);
                carry_in.push(c);
            }
        }
        product.push(col.first().copied().unwrap_or(crate::aig::AigLit::FALSE));
    }
    aig.output_word("p", &product);
    aig
}

/// Constant outputs (bit 1 of a squarer is 0 for every input) map to live
/// logic, not to a panic or a dangling net.
#[test]
fn mapper_materializes_constant_outputs() {
    let mut aig = Aig::new("consts");
    let a = aig.input("a");
    let b = aig.input("b");
    let x = aig.and(a, b);
    aig.output("f", x);
    aig.output("zero", aig.const_false());
    aig.output("one", aig.const_true());
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    let pats = [0xFFFF_0000_FFFF_0000u64, 0xAAAA_AAAA_5555_5555];
    let out = net.simulate(&pats);
    assert_eq!(out[0], pats[0] & pats[1]);
    assert_eq!(out[1], 0, "constant-0 output");
    assert_eq!(out[2], u64::MAX, "constant-1 output");
}

/// A node demanded in both polarities gets one gate plus one shared INV —
/// never two gates.
#[test]
fn mapper_shares_inverter_on_dual_polarity_demand() {
    let mut aig = Aig::new("dual");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.input("c");
    let x = aig.and(a, b);
    let y = aig.and(x, c); // positive use of x
    aig.output("y", y);
    aig.output("nx", !x); // complemented use of x
    aig.output("nx2", !x); // second complemented use — same INV
    let net = map_aig(&aig, &Library::default());
    net.validate().unwrap();
    let inversions = net
        .cell_ids()
        .filter(|&id| matches!(net.kind(id), CellKind::Gate(GateKind::Inv)))
        .count();
    assert_eq!(inversions, 1, "one shared INV for both complemented uses");
    assert_eq!(net.num_gates(), 3); // AND(a,b), AND(x,c), INV(x)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random 3-level AIGs: mapping must preserve the function exactly.
    #[test]
    fn prop_mapper_equivalence(ops in proptest::collection::vec((0u8..3, 0usize..12, 0usize..12, prop::bool::ANY, prop::bool::ANY), 1..40)) {
        let mut aig = Aig::new("rand");
        let mut pool: Vec<crate::aig::AigLit> = (0..4).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib, na, nb) in ops {
            let a = pool[ia % pool.len()];
            let b = pool[ib % pool.len()];
            let a = if na { !a } else { a };
            let b = if nb { !b } else { b };
            let r = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        prop_assume!(!f.is_constant());
        aig.output("f", f);
        let net = map_aig(&aig, &Library::default());
        net.validate().unwrap();
        let pats = [0xAAAA_AAAA_AAAA_AAAAu64, 0xCCCC_CCCC_CCCC_CCCC,
                    0xF0F0_F0F0_F0F0_F0F0, 0xFF00_FF00_FF00_FF00];
        prop_assert_eq!(aig.simulate(&pats), net.simulate(&pats));
    }

    /// BLIF round trip: map → render → parse must preserve the function.
    #[test]
    fn prop_blif_round_trip(ops in proptest::collection::vec((0u8..3, 0usize..12, 0usize..12, prop::bool::ANY, prop::bool::ANY), 1..40)) {
        let mut aig = Aig::new("rt");
        let mut pool: Vec<crate::aig::AigLit> = (0..4).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib, na, nb) in ops {
            let a = pool[ia % pool.len()];
            let b = pool[ib % pool.len()];
            let a = if na { !a } else { a };
            let b = if nb { !b } else { b };
            let r = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        prop_assume!(!f.is_constant());
        aig.output("f", f);
        aig.output("g", !f);
        let net = map_aig(&aig, &Library::default());
        let text = crate::export::render_blif(&net);
        let back = crate::blif::parse_blif(&text).expect("exported blif parses");
        prop_assert_eq!(back.num_inputs(), aig.num_inputs());
        prop_assert_eq!(back.num_outputs(), aig.num_outputs());
        let pats = [0xAAAA_AAAA_AAAA_AAAAu64, 0xCCCC_CCCC_CCCC_CCCC,
                    0xF0F0_F0F0_F0F0_F0F0, 0xFF00_FF00_FF00_FF00];
        prop_assert_eq!(aig.simulate(&pats), back.simulate(&pats));
    }

    /// AIGER round trip on the same family of random AIGs.
    #[test]
    fn prop_aiger_round_trip(ops in proptest::collection::vec((0u8..3, 0usize..12, 0usize..12, prop::bool::ANY), 1..40)) {
        let mut aig = Aig::new("rt");
        let mut pool: Vec<crate::aig::AigLit> = (0..4).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib, na) in ops {
            let a = pool[ia % pool.len()];
            let b = pool[ib % pool.len()];
            let a = if na { !a } else { a };
            let r = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        aig.output("f", f);
        let mut buf = Vec::new();
        write_aag(&aig, &mut buf).expect("write to memory");
        let back = read_aag(buf.as_slice(), "rt").expect("written aag parses");
        let pats = [0x0123_4567_89AB_CDEFu64, 0xFEDC_BA98_7654_3210,
                    0xDEAD_BEEF_CAFE_F00D, 0x0F0F_0F0F_0F0F_0F0F];
        prop_assert_eq!(aig.simulate(&pats), back.simulate(&pats));
    }

    /// Cut truth tables always agree with direct cone evaluation.
    #[test]
    fn prop_cut_tts_sound(ops in proptest::collection::vec((0u8..3, 0usize..10, 0usize..10), 1..25)) {
        let mut aig = Aig::new("rand");
        let mut pool: Vec<crate::aig::AigLit> = (0..3).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib) in ops {
            let a = pool[ia % pool.len()];
            let b = pool[ib % pool.len()];
            let r = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        prop_assume!(!f.is_constant());
        aig.output("f", f);
        let net = map_aig(&aig, &Library::default());
        let cuts = enumerate_cuts(&net, &CutConfig::default());
        for id in net.cell_ids() {
            if !matches!(net.kind(id), CellKind::Gate(_)) { continue; }
            for cut in cuts.of(id) {
                let direct = net.cone_function(Signal::from_cell(id), &cut.leaves);
                prop_assert_eq!(direct, cut.tt);
            }
        }
    }

    /// Tightening the per-node cut budget only ever *removes* cuts: every
    /// node's budgeted cut set is a subset of its set under a larger budget
    /// (the ranked dominance scan keeps a prefix, and upstream prefixes only
    /// shrink downstream candidate pools). Guards the budget knob the flow
    /// exposes through [`CutConfig::max_cuts`].
    #[test]
    fn prop_cut_budget_prunes_to_subset(ops in proptest::collection::vec((0u8..3, 0usize..12, 0usize..12), 1..30)) {
        let mut aig = Aig::new("rand");
        let mut pool: Vec<crate::aig::AigLit> = (0..4).map(|i| aig.input(format!("x{i}"))).collect();
        for (op, ia, ib) in ops {
            let a = pool[ia % pool.len()];
            let b = pool[ib % pool.len()];
            let r = match op {
                0 => aig.and(a, b),
                1 => aig.or(a, b),
                _ => aig.xor(a, b),
            };
            pool.push(r);
        }
        let f = *pool.last().unwrap();
        prop_assume!(!f.is_constant());
        aig.output("f", f);
        let net = map_aig(&aig, &Library::default());
        let full = enumerate_cuts(&net, &CutConfig { max_leaves: 3, max_cuts: 24 });
        for budget in [12usize, 6, 2] {
            let tight = enumerate_cuts(&net, &CutConfig { max_leaves: 3, max_cuts: budget });
            for id in net.cell_ids() {
                prop_assert!(tight.of(id).len() <= budget + 1, "budget respected at c{}", id.0);
                for cut in tight.of(id) {
                    prop_assert!(
                        full.of(id).iter().any(|c| c.leaves == cut.leaves && c.tt == cut.tt),
                        "budget-{} cut {:?} of c{} missing from the unpruned set",
                        budget, cut.leaves, id.0
                    );
                }
            }
        }
    }

    /// The 256-bit leaf signatures refine the original 64-bit scheme
    /// (bit `hash & 255` instead of `hash & 63`): OR-folding the four
    /// lanes of a [`Sig256`] onto 64 bits must reproduce the 64-bit
    /// reference signature exactly, and every subset decision the wide
    /// prefilter accepts must also be accepted by the narrow reference —
    /// the widening only ever *rejects more*, never differently.
    #[test]
    fn prop_sig256_refines_the_64_bit_reference(
        leaves_a in proptest::collection::vec((0u32..400, 0u8..3), 1..8),
        leaves_b in proptest::collection::vec((0u32..400, 0u8..3), 1..8),
    ) {
        use crate::cuts::leaf_hash;
        use crate::network::CellId;
        use sfq_tt::Sig256;

        let signal = |(cell, port): (u32, u8)| Signal { cell: CellId(cell), port };
        let sig256 = |ls: &[(u32, u8)]| {
            ls.iter().fold(Sig256::EMPTY, |s, &l| s | Sig256::bit(leaf_hash(signal(l))))
        };
        let sig64 = |ls: &[(u32, u8)]| {
            ls.iter().fold(0u64, |s, &l| s | (1u64 << (leaf_hash(signal(l)) & 63)))
        };
        let fold = |s: Sig256| s.lanes().iter().fold(0u64, |acc, &lane| acc | lane);

        let (a256, b256) = (sig256(&leaves_a), sig256(&leaves_b));
        let (a64, b64) = (sig64(&leaves_a), sig64(&leaves_b));
        prop_assert_eq!(fold(a256), a64, "lane fold must reproduce the 64-bit signature");
        prop_assert_eq!(fold(b256), b64);

        // Decision pinning: wide-accept ⇒ narrow-accept.
        if a256.is_subset_of(b256) {
            prop_assert_eq!(a64 & !b64, 0, "256-bit subset accepted what 64-bit rejects");
        }
        // Soundness: a genuine leaf-set inclusion is always accepted.
        if leaves_a.iter().all(|l| leaves_b.contains(l)) {
            prop_assert!(sig256(&leaves_a).is_subset_of(b256));
        }
    }
}

/// The parallel enumeration driver must agree with the sequential
/// executable specification cut-for-cut on every node. Without the
/// `parallel` feature both names resolve to the same code path, so the
/// test then pins simple determinism.
#[test]
fn parallel_enumeration_matches_sequential() {
    /// A `bits × bits` array multiplier: reconvergent carry-save structure
    /// with wide topological levels, so the level-parallel driver really
    /// spawns workers (narrow designs run inline even with workers forced).
    fn array_multiplier(bits: usize) -> Aig {
        let mut aig = Aig::new("mult");
        let a: Vec<_> = (0..bits).map(|i| aig.input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..bits).map(|i| aig.input(format!("b{i}"))).collect();
        let mut cols: Vec<Vec<crate::aig::AigLit>> = vec![Vec::new(); 2 * bits];
        for i in 0..bits {
            for j in 0..bits {
                let p = aig.and(a[i], b[j]);
                cols[i + j].push(p);
            }
        }
        // Carry-save reduction, one full adder per three column entries.
        for k in 0..cols.len() {
            while cols[k].len() > 2 {
                let (x, y, z) = (
                    cols[k].pop().unwrap(),
                    cols[k].pop().unwrap(),
                    cols[k].pop().unwrap(),
                );
                let (s, c) = aig.full_adder(x, y, z);
                cols[k].push(s);
                cols[k + 1].push(c);
            }
        }
        let mut carry = aig.const_false();
        for (k, col) in cols.iter().enumerate() {
            let (x, y) = (
                col.first().copied().unwrap_or_else(|| aig.const_false()),
                col.get(1).copied().unwrap_or_else(|| aig.const_false()),
            );
            let (s, c) = aig.full_adder(x, y, carry);
            carry = c;
            aig.output(format!("p{k}"), s);
        }
        aig.output("p_top", carry);
        aig
    }

    // Exercise the scoped-worker merges even on single-core hosts. The
    // atomic override avoids `std::env::set_var`, which would race against
    // concurrent `getenv` from sibling test threads.
    crate::par::force_workers(4);
    let lib = Library::default();
    let config = CutConfig::default();
    for bits in [8usize, 12] {
        let aig = array_multiplier(bits);
        let net = map_aig(&aig, &lib);
        let par = enumerate_cuts(&net, &config);
        let seq = crate::cuts::enumerate_cuts_sequential(&net, &config);
        assert_eq!(par.total(), seq.total(), "total cut count ({bits} bits)");
        for id in net.cell_ids() {
            assert_eq!(par.of(id), seq.of(id), "cut set of c{} ({bits} bits)", id.0);
        }
        // Drive the frontier scheduler directly so it is exercised even
        // below the dispatcher's network-size threshold, at several worker
        // counts (including more workers than the ready frontier can feed).
        #[cfg(feature = "parallel")]
        for workers in [2usize, 4, 8] {
            let frontier = crate::cuts::enumerate_cuts_frontier(&net, &config, workers);
            assert_eq!(
                frontier.total(),
                seq.total(),
                "frontier total cut count ({bits} bits, {workers} workers)"
            );
            for id in net.cell_ids() {
                assert_eq!(
                    frontier.of(id),
                    seq.of(id),
                    "frontier cut set of c{} ({bits} bits, {workers} workers)",
                    id.0
                );
            }
        }
    }
    crate::par::force_workers(0);
}

// ---------------------------------------------- supervision primitives ----

#[test]
fn map_ordered_caught_contains_single_item_panic() {
    // One poisoned item must not take down the others, and the surviving
    // results must be byte-identical in input order for any worker count.
    for workers in [1usize, 4] {
        crate::par::force_workers(workers);
        let items: Vec<u32> = (0..8).collect();
        let results = crate::par::map_ordered_caught(items, |k| {
            if k == 3 {
                panic!("poisoned item {k}");
            }
            format!("item-{k}")
        });
        crate::par::force_workers(0);
        assert_eq!(results.len(), 8, "{workers} workers");
        for (k, r) in results.iter().enumerate() {
            if k == 3 {
                let p = r.as_ref().expect_err("item 3 panicked");
                assert_eq!(p.message(), "poisoned item 3", "{workers} workers");
            } else {
                assert_eq!(
                    r.as_ref().expect("survivor"),
                    &format!("item-{k}"),
                    "{workers} workers"
                );
            }
        }
    }
}

#[test]
fn map_ordered_resumes_the_lowest_index_panic() {
    for workers in [1usize, 4] {
        crate::par::force_workers(workers);
        let caught = std::panic::catch_unwind(|| {
            crate::par::map_ordered((0..8u32).collect(), |k| {
                if k == 2 || k == 5 {
                    panic!("boom {k}");
                }
                k
            })
        });
        crate::par::force_workers(0);
        let payload = caught.expect_err("map_ordered re-raises");
        assert_eq!(
            crate::par::panic_message(payload.as_ref()),
            "boom 2",
            "lowest input index wins deterministically ({workers} workers)"
        );
    }
}

#[test]
fn map_ordered_streamed_emits_every_item_in_input_order() {
    for workers in [1usize, 4] {
        crate::par::force_workers(workers);
        let mut emitted: Vec<(usize, Result<String, String>)> = Vec::new();
        crate::par::map_ordered_streamed(
            (0..8usize).collect(),
            |k| {
                if k == 3 {
                    panic!("poisoned item {k}");
                }
                format!("item-{k}")
            },
            |k, r| emitted.push((k, r.map_err(|p| p.message()))),
        );
        crate::par::force_workers(0);
        let order: Vec<usize> = emitted.iter().map(|(k, _)| *k).collect();
        assert_eq!(
            order,
            (0..8).collect::<Vec<_>>(),
            "emission is in input order ({workers} workers)"
        );
        for (k, r) in &emitted {
            match r {
                Ok(s) => assert_eq!(s, &format!("item-{k}"), "{workers} workers"),
                Err(m) => {
                    assert_eq!(*k, 3, "only the poisoned item errs ({workers} workers)");
                    assert_eq!(m, "poisoned item 3");
                }
            }
        }
    }
}

#[test]
fn par_sort_matches_sequential_for_every_worker_count() {
    // A strict total order (unique trailing index), so the chunked sort +
    // k-way merge must be byte-identical to the sequential sort for any
    // worker count — including more workers than cores.
    let mut expect: Vec<(u64, u32)> = (0..20_000u32)
        .map(|i| (u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 7, i))
        .collect();
    let mut sorted = expect.clone();
    sorted.sort_unstable_by_key(|&e| e);
    for workers in [1usize, 2, 4, 8] {
        crate::par::force_workers(workers);
        let mut items = expect.clone();
        crate::par::sort_unstable_by_key(&mut items, |&e| e);
        crate::par::force_workers(0);
        assert_eq!(items, sorted, "{workers} workers");
    }
    // Below the spawn threshold the call is exactly the sequential sort.
    expect.truncate(100);
    let mut small = expect.clone();
    crate::par::sort_unstable_by_key(&mut small, |&e| e);
    expect.sort_unstable_by_key(|&e| e);
    assert_eq!(small, expect);
}

#[test]
fn parse_workers_rejects_invalid_counts_with_a_reason() {
    assert_eq!(crate::par::parse_workers("4"), Ok(4));
    assert_eq!(
        crate::par::parse_workers(" 2 "),
        Ok(2),
        "whitespace trimmed"
    );
    assert_eq!(
        crate::par::parse_workers("20"),
        Ok(20),
        "oversubscription allowed up to MAX_WORKERS"
    );
    assert_eq!(
        crate::par::parse_workers("10000"),
        Ok(crate::par::MAX_WORKERS),
        "capped at MAX_WORKERS"
    );
    let err = crate::par::parse_workers("0").expect_err("0 workers is invalid");
    assert!(err.contains("at least 1"), "{err}");
    let err = crate::par::parse_workers("all").expect_err("non-numeric rejected");
    assert!(err.contains("all"), "the reason names the value: {err}");
    assert!(crate::par::parse_workers("-2").is_err());
    assert!(crate::par::parse_workers("").is_err());
}

#[test]
fn budget_node_ceiling_aborts_with_typed_payload() {
    let guard = crate::budget::install(None, Some(10));
    let caught = std::panic::catch_unwind(|| {
        for _ in 0..100 {
            crate::budget::tick(1);
        }
    });
    drop(guard);
    let payload = caught.expect_err("ceiling exceeded");
    assert_eq!(
        payload.downcast_ref::<crate::budget::BudgetExceeded>(),
        Some(&crate::budget::BudgetExceeded::Nodes)
    );
    assert!(!crate::budget::active(), "guard drop clears the budget");
    crate::budget::tick(1_000_000); // and ticks are no-ops again
}

#[test]
fn budget_zero_deadline_fires_at_the_next_checkpoint() {
    let guard = crate::budget::install(Some(std::time::Duration::ZERO), None);
    let caught = std::panic::catch_unwind(crate::budget::checkpoint);
    drop(guard);
    let payload = caught.expect_err("deadline passed");
    assert_eq!(
        payload.downcast_ref::<crate::budget::BudgetExceeded>(),
        Some(&crate::budget::BudgetExceeded::Deadline)
    );
}

#[test]
fn budget_is_thread_local_and_spent_accumulates() {
    let _guard = crate::budget::install(None, Some(1_000));
    crate::budget::tick(7);
    crate::budget::tick(5);
    assert_eq!(crate::budget::spent(), 12);
    std::thread::scope(|scope| {
        scope.spawn(|| {
            assert!(!crate::budget::active(), "budgets do not cross threads");
            crate::budget::tick(1_000_000); // no-op on this thread
        });
    });
    assert_eq!(crate::budget::spent(), 12, "worker ticks never charge us");
}

#[test]
fn design_cache_bounds_occupancy_with_fifo_eviction() {
    use crate::design::DesignCache;
    let dir = std::env::temp_dir().join(format!("sfq-cache-bound-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let paths: Vec<_> = (0..3)
        .map(|k| {
            let p = dir.join(format!("d{k}.blif"));
            std::fs::write(
                &p,
                format!(".model d{k}\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n"),
            )
            .unwrap();
            p
        })
        .collect();
    let mut cache = DesignCache::with_capacity(2);
    cache.load(&paths[0]).unwrap();
    cache.load(&paths[1]).unwrap();
    cache.load(&paths[0]).unwrap(); // hit; FIFO order unchanged
    cache.load(&paths[2]).unwrap(); // evicts d0 (oldest inserted)
    let stats = cache.stats();
    assert_eq!(stats.len, 2);
    assert_eq!(stats.capacity, 2);
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 3);
    assert_eq!(stats.evictions, 1);
    cache.load(&paths[0]).unwrap(); // d0 was evicted: parses again
    assert_eq!(cache.stats().misses, 4, "FIFO evicted the oldest entry");
    assert_eq!(cache.stats().evictions, 2, "and the insert evicted d1");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_dir_results_records_broken_files_instead_of_aborting() {
    use crate::design::{load_dir, load_dir_results};
    let dir = std::env::temp_dir().join(format!("sfq-lenient-dir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        dir.join("a_good.blif"),
        ".model good\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
    )
    .unwrap();
    std::fs::write(dir.join("b_broken.aag"), "aag 1 1 0 1 0\nnot numbers\n").unwrap();
    std::fs::write(
        dir.join("c_late.blif"),
        ".model late\n.inputs b\n.outputs z\n.names b z\n0 1\n.end\n",
    )
    .unwrap();
    let (entries, _) = load_dir_results(&dir).expect("directory itself lists fine");
    assert_eq!(entries.len(), 3);
    assert!(entries[0].1.is_ok());
    assert!(entries[1].1.is_err(), "broken file is a per-design failure");
    assert!(
        entries[2].1.is_ok(),
        "designs after the broken one still load"
    );
    assert!(
        load_dir(&dir).is_err(),
        "the strict loader still fails the whole directory"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(feature = "fault-injection")]
#[test]
fn faultpt_err_action_fires_once_per_armed_count() {
    use crate::faultpt::{arm_limited, disarm, hit, FaultAction};
    // Unique context so concurrent tests sharing the global table never
    // see this fault.
    let ctx = "faultpt-unit-test-ctx";
    arm_limited("parse", Some(ctx), FaultAction::Err, 1);
    assert!(hit("parse", ctx), "first hit fires");
    assert!(!hit("parse", ctx), "limited fault is exhausted");
    assert!(!hit("parse", "other-ctx"), "context must match");
    disarm("parse", Some(ctx));
}

#[cfg(feature = "fault-injection")]
#[test]
fn faultpt_panic_action_is_contained_by_map_ordered_caught() {
    use crate::faultpt::{arm_limited, disarm, FaultAction};
    // `par.item` contexts are decimal input indices.
    arm_limited("par.item", Some("1"), FaultAction::Panic, 1);
    let results = crate::par::map_ordered_caught(vec![10u32, 20, 30], |x| x * 2);
    disarm("par.item", Some("1"));
    assert_eq!(results[0].as_ref().ok(), Some(&20));
    assert_eq!(
        results[1].as_ref().expect_err("injected").message(),
        "injected panic at par.item"
    );
    assert_eq!(results[2].as_ref().ok(), Some(&60));
}
