//! Cooperative per-flow work budgets: wall-clock deadlines and node-count
//! ceilings.
//!
//! A budget is installed on the current thread ([`install`] returns an RAII
//! [`BudgetGuard`] that clears it again) and checked cooperatively from the
//! flow's hot loops via [`tick`] and at stage boundaries via [`checkpoint`].
//! When a limit is exceeded the checking call aborts the flow by unwinding
//! with a [`BudgetExceeded`] payload (`std::panic::panic_any`), which the
//! supervision layer one crate up (`sfq_core::supervise`) catches and maps
//! to its `TimedOut` / `OverBudget` outcomes. Unwinding keeps the hot-loop
//! signatures untouched: cut enumeration, detection scoring and the phase
//! descent never have to thread a `Result` through every call.
//!
//! Design points:
//!
//! * **Thread-local.** The budget lives in a thread-local slot, so ticks on
//!   scoped worker threads (which never install one) are no-ops. All checks
//!   therefore happen on the coordinating thread; the parallel fan-outs
//!   bulk-[`tick`] the same unit totals their sequential bodies would, which
//!   keeps the *node-ceiling* abort decision identical between sequential
//!   and parallel builds.
//! * **Cheap.** A tick is a thread-local read/write; the wall clock is only
//!   consulted every [`CLOCK_CHECK_INTERVAL`] ticks (and at every
//!   [`checkpoint`]), so per-node overhead in the hot loops stays in the
//!   nanoseconds.
//! * **No budget, no cost.** With nothing installed (every non-supervised
//!   caller: tests, the corpus drivers, library users) the first branch of
//!   [`tick`] bails out immediately, so behavior and results are unchanged.

use std::cell::Cell;
use std::time::{Duration, Instant};

/// Why a budgeted flow was aborted — the unwind payload thrown by [`tick`]
/// / [`checkpoint`] and caught by the supervision layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The node-count ceiling was exceeded.
    Nodes,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetExceeded::Deadline => f.write_str("deadline exceeded"),
            BudgetExceeded::Nodes => f.write_str("node budget exceeded"),
        }
    }
}

/// Ticks between wall-clock reads in [`tick`]. Node-ceiling checks happen
/// on every tick (they are just an integer compare); `Instant::now` is
/// amortized over this many ticks so the hot loops never feel it.
pub const CLOCK_CHECK_INTERVAL: u32 = 256;

/// The installed budget of the current thread.
#[derive(Clone, Copy)]
struct Active {
    /// Absolute deadline (`None` = no time limit).
    deadline: Option<Instant>,
    /// Inclusive ceiling on cumulative tick units.
    max_nodes: u64,
    /// Units spent so far.
    spent: u64,
    /// Ticks since the wall clock was last consulted.
    unchecked: u32,
}

thread_local! {
    static ACTIVE: Cell<Option<Active>> = const { Cell::new(None) };
}

/// Clears the current thread's budget when dropped. Returned by
/// [`install`]; intentionally neither `Send` nor `Clone`, so the budget can
/// only be cleared on the thread that installed it.
#[derive(Debug)]
pub struct BudgetGuard {
    /// Keeps the type `!Send` (raw pointers are not `Send`/`Sync`).
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for BudgetGuard {
    fn drop(&mut self) {
        ACTIVE.set(None);
    }
}

/// Installs a budget on the current thread: an optional wall-clock
/// `deadline` (measured from now) and an optional `max_nodes` ceiling on
/// cumulative [`tick`] units. Passing `None` for both yields a guard that
/// never fires.
///
/// Budgets do not nest: a second `install` replaces the first, and whichever
/// guard drops first clears the slot. The supervision layer is the only
/// intended installer, one budget per supervised flow.
#[must_use = "dropping the guard immediately uninstalls the budget"]
pub fn install(deadline: Option<Duration>, max_nodes: Option<u64>) -> BudgetGuard {
    ACTIVE.set(Some(Active {
        deadline: deadline.map(|d| Instant::now() + d),
        max_nodes: max_nodes.unwrap_or(u64::MAX),
        spent: 0,
        unchecked: 0,
    }));
    BudgetGuard {
        _not_send: std::marker::PhantomData,
    }
}

/// True when the current thread has a budget installed (used by tests and
/// by callers that want to skip preparing tick totals entirely).
pub fn active() -> bool {
    ACTIVE.get().is_some()
}

/// Charges `units` of work (one unit ≈ one processed node/candidate) to the
/// current thread's budget. No-op without an installed budget.
///
/// # Panics
/// Unwinds with a [`BudgetExceeded`] payload when the ceiling or (every
/// [`CLOCK_CHECK_INTERVAL`] ticks) the deadline is exceeded. The panic is
/// part of the protocol: the supervision layer catches it.
#[inline]
pub fn tick(units: u64) {
    let Some(mut a) = ACTIVE.get() else { return };
    a.spent = a.spent.saturating_add(units);
    if a.spent > a.max_nodes {
        exceed(BudgetExceeded::Nodes);
    }
    a.unchecked += 1;
    if a.unchecked >= CLOCK_CHECK_INTERVAL {
        a.unchecked = 0;
        if let Some(deadline) = a.deadline {
            if Instant::now() >= deadline {
                exceed(BudgetExceeded::Deadline);
            }
        }
    }
    ACTIVE.set(Some(a));
}

/// Immediately checks both limits (the deadline without the tick-interval
/// amortization). Called at flow stage boundaries and from long sleeps, so
/// a deadline fires promptly even between hot loops. No-op without an
/// installed budget.
///
/// # Panics
/// Unwinds with a [`BudgetExceeded`] payload when a limit is exceeded.
pub fn checkpoint() {
    let Some(a) = ACTIVE.get() else { return };
    if a.spent > a.max_nodes {
        exceed(BudgetExceeded::Nodes);
    }
    if let Some(deadline) = a.deadline {
        if Instant::now() >= deadline {
            exceed(BudgetExceeded::Deadline);
        }
    }
}

/// Units charged so far on the current thread (0 without a budget).
pub fn spent() -> u64 {
    ACTIVE.get().map_or(0, |a| a.spent)
}

#[cold]
fn exceed(why: BudgetExceeded) -> ! {
    // Leave the slot installed — the guard clears it — but unwind now; the
    // supervision layer downcasts this payload to classify the outcome.
    std::panic::panic_any(why)
}
