//! Maximum fanout-free cones.
//!
//! The MFFC of a root cell is the set of cells whose every path to a primary
//! output passes through the root: exactly the logic that dies when the root
//! is replaced. T1 detection prices candidate replacements with
//! `ΔA = Σ A(MFFC(uᵢ)) − A_T1(C)` (paper eq. 2), so correct MFFC extent is
//! what makes the gain model sound.

use crate::cell::CellKind;
use crate::network::{CellId, Network};
use crate::Library;
use std::collections::HashMap;

/// Total fanout-reference count per cell (all ports, plus primary-output
/// references). This is the reference state [`mffc_nodes`] decrements.
pub fn reference_counts(net: &Network) -> Vec<u32> {
    let pin = net.pin_fanout_counts();
    pin.iter().map(|ports| ports.iter().sum()).collect()
}

/// Computes the MFFC of `root`: the root plus every *gate* cell that becomes
/// dead when the root is removed. Primary inputs, DFFs and T1 cells are never
/// pulled into a cone.
///
/// `refs` must come from [`reference_counts`] on the same network; the
/// function does not mutate it (decrements are tracked locally), so one
/// precomputed vector serves many queries.
pub fn mffc_nodes(net: &Network, root: CellId, refs: &[u32]) -> Vec<CellId> {
    let mut taken: HashMap<CellId, u32> = HashMap::new();
    let mut cone = vec![root];
    let mut stack = vec![root];
    while let Some(id) = stack.pop() {
        for f in net.fanins(id) {
            let d = f.cell;
            let t = taken.entry(d).or_insert(0);
            *t += 1;
            if *t == refs[d.0 as usize] && matches!(net.kind(d), CellKind::Gate(_)) {
                cone.push(d);
                stack.push(d);
            }
        }
    }
    cone
}

/// Area (in JJs) of the cells inside `root`'s MFFC.
///
/// Interior splitter trees are *not* counted here — the gain model follows
/// the paper's eq. 2, which sums node areas; splitter effects are reflected
/// in the final netlist statistics instead.
pub fn mffc_area(net: &Network, root: CellId, refs: &[u32], lib: &Library) -> u64 {
    mffc_nodes(net, root, refs)
        .iter()
        .map(|&id| lib.cell_area(net.kind(id)))
        .sum()
}
