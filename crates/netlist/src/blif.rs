//! BLIF reading (combinational subset) into an [`Aig`].
//!
//! [`export::render_blif`](crate::export::render_blif) writes mapped
//! networks out; this module closes the loop so externally synthesized
//! benchmarks (ABC, mockturtle, SIS dumps) can enter the flow. The supported
//! subset is the combinational single-model core of BLIF:
//!
//! * `.model`, `.inputs`, `.outputs` (with `\` line continuations),
//! * `.names` covers with on-set (`… 1`) or off-set (`… 0`) rows,
//!   including constant covers (`.names x` + `1`) and empty covers
//!   (constant 0),
//! * `#` comments, nets defined in any order (use-before-definition is
//!   legal BLIF and handled by memoized resolution).
//!
//! `.latch`, `.subckt`, `.gate` and multiple `.model`s are rejected with a
//! dedicated error — the paper's benchmarks are combinational, and hierarchy
//! is out of scope for the reproduction.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::blif::parse_blif;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = "\
//! .model mux
//! .inputs s a b
//! .outputs y
//! .names s a b y
//! 11- 1
//! 0-1 1
//! .end
//! ";
//! let aig = parse_blif(src)?;
//! assert_eq!(aig.num_inputs(), 3);
//! assert_eq!(aig.num_outputs(), 1);
//! # Ok(())
//! # }
//! ```

use crate::aig::{Aig, AigLit, AigNodeId};
use crate::export::{sanitize, unique_port_names};
use std::collections::HashMap;
use std::fmt;
use std::fmt::Write as _;

/// Errors produced while parsing BLIF text.
#[derive(Debug)]
pub enum BlifError {
    /// A line is malformed.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// A legal BLIF construct outside the supported combinational subset.
    Unsupported {
        /// 1-based source line.
        line: usize,
        /// The offending construct (e.g. `.latch`).
        construct: String,
    },
    /// A net is consumed but is neither a primary input nor covered by any
    /// `.names`.
    UndefinedNet(String),
    /// Two `.names` blocks drive the same net.
    MultipleDrivers(String),
    /// The cover graph is cyclic.
    CombinationalLoop(String),
    /// The file contains no `.model` content at all.
    Empty,
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            BlifError::Unsupported { line, construct } => {
                write!(
                    f,
                    "line {line}: `{construct}` is outside the combinational subset"
                )
            }
            BlifError::UndefinedNet(n) => write!(f, "net `{n}` has no driver"),
            BlifError::MultipleDrivers(n) => write!(f, "net `{n}` has multiple drivers"),
            BlifError::CombinationalLoop(n) => {
                write!(f, "combinational loop through net `{n}`")
            }
            BlifError::Empty => write!(f, "no model found"),
        }
    }
}

impl std::error::Error for BlifError {}

/// One `.names` block: input nets plus single-output cover rows.
#[derive(Debug, Clone)]
struct Cover {
    line: usize,
    inputs: Vec<String>,
    /// `(input pattern, output value)` rows; patterns use `0`, `1`, `-`.
    rows: Vec<(String, bool)>,
}

/// Logical lines with comments stripped and `\` continuations joined,
/// tagged with the 1-based number of their first physical line.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (k, raw) in src.lines().enumerate() {
        let body = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let (continued, body) = match body.trim_end().strip_suffix('\\') {
            Some(b) => (true, b.trim().to_string()),
            None => (false, body.trim().to_string()),
        };
        match pending.take() {
            Some((first, mut acc)) => {
                if !body.is_empty() {
                    acc.push(' ');
                    acc.push_str(&body);
                }
                if continued {
                    pending = Some((first, acc));
                } else if !acc.is_empty() {
                    out.push((first, acc));
                }
            }
            None => {
                if continued {
                    pending = Some((k + 1, body));
                } else if !body.is_empty() {
                    out.push((k + 1, body));
                }
            }
        }
    }
    if let Some((first, acc)) = pending {
        if !acc.is_empty() {
            out.push((first, acc));
        }
    }
    out
}

/// Parses the combinational single-model subset of BLIF into an [`Aig`].
///
/// Nets may be referenced before they are defined; covers are resolved in
/// dependency order. On-set and off-set covers, constants, comments and
/// continuation lines are handled per the BLIF specification.
///
/// # Errors
/// [`BlifError`] on malformed text, unsupported constructs (latches,
/// hierarchy), undriven or doubly-driven nets, and combinational loops.
pub fn parse_blif(src: &str) -> Result<Aig, BlifError> {
    let lines = logical_lines(src);
    let mut model_name = String::from("blif");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut covers: HashMap<String, Cover> = HashMap::new();
    let mut saw_model = false;
    let mut current: Option<Cover> = None;

    let finish_cover =
        |cover: Option<Cover>, covers: &mut HashMap<String, Cover>| -> Result<(), BlifError> {
            if let Some(c) = cover {
                let out = c
                    .inputs
                    .last()
                    .cloned()
                    .expect("covers are created with at least the output net");
                let mut c = c;
                c.inputs.pop();
                if covers.insert(out.clone(), c).is_some() {
                    return Err(BlifError::MultipleDrivers(out));
                }
            }
            Ok(())
        };

    for (lineno, text) in &lines {
        let lineno = *lineno;
        if let Some(rest) = text.strip_prefix('.') {
            finish_cover(current.take(), &mut covers)?;
            let mut toks = rest.split_whitespace();
            let cmd = toks.next().unwrap_or("");
            match cmd {
                "model" => {
                    if saw_model {
                        return Err(BlifError::Unsupported {
                            line: lineno,
                            construct: "second .model (hierarchy)".into(),
                        });
                    }
                    saw_model = true;
                    if let Some(n) = toks.next() {
                        model_name = n.to_string();
                    }
                }
                "inputs" => input_names.extend(toks.map(str::to_string)),
                "outputs" => output_names.extend(toks.map(str::to_string)),
                "names" => {
                    let nets: Vec<String> = toks.map(str::to_string).collect();
                    if nets.is_empty() {
                        return Err(BlifError::Syntax {
                            line: lineno,
                            message: ".names needs at least an output net".into(),
                        });
                    }
                    current = Some(Cover {
                        line: lineno,
                        inputs: nets,
                        rows: Vec::new(),
                    });
                }
                "end" => break,
                "latch" | "mlatch" | "subckt" | "gate" | "exdc" | "clock" => {
                    return Err(BlifError::Unsupported {
                        line: lineno,
                        construct: format!(".{cmd}"),
                    });
                }
                // Harmless metadata commands some writers emit.
                "default_input_arrival"
                | "input_arrival"
                | "area"
                | "delay"
                | "wire_load_slope"
                | "wire"
                | "input_drive"
                | "output_required"
                | "default_output_required"
                | "default_input_drive"
                | "default_max_input_load"
                | "max_input_load" => {}
                other => {
                    return Err(BlifError::Syntax {
                        line: lineno,
                        message: format!("unknown directive `.{other}`"),
                    });
                }
            }
        } else {
            // A cover row for the open .names block.
            let Some(cover) = current.as_mut() else {
                return Err(BlifError::Syntax {
                    line: lineno,
                    message: format!("cover row `{text}` outside a .names block"),
                });
            };
            let toks: Vec<&str> = text.split_whitespace().collect();
            let n_inputs = cover.inputs.len() - 1;
            let (pattern, out_bit) = match (toks.len(), n_inputs) {
                (1, 0) => (String::new(), toks[0]),
                (2, k) if k > 0 => (toks[0].to_string(), toks[1]),
                _ => {
                    return Err(BlifError::Syntax {
                        line: lineno,
                        message: format!(
                            "cover row `{text}` does not match {n_inputs} input(s) + output"
                        ),
                    });
                }
            };
            if pattern.len() != n_inputs || !pattern.chars().all(|c| matches!(c, '0' | '1' | '-')) {
                return Err(BlifError::Syntax {
                    line: lineno,
                    message: format!("bad input pattern `{pattern}`"),
                });
            }
            let out = match out_bit {
                "1" => true,
                "0" => false,
                _ => {
                    return Err(BlifError::Syntax {
                        line: lineno,
                        message: format!("bad output value `{out_bit}`"),
                    });
                }
            };
            if let Some(&(_, prev)) = cover.rows.first() {
                if prev != out {
                    return Err(BlifError::Syntax {
                        line: cover.line,
                        message: "cover mixes on-set and off-set rows".into(),
                    });
                }
            }
            cover.rows.push((pattern, out));
        }
    }
    finish_cover(current.take(), &mut covers)?;

    if !saw_model && input_names.is_empty() && covers.is_empty() {
        return Err(BlifError::Empty);
    }

    let mut aig = Aig::new(model_name);
    let mut lit_of: HashMap<String, AigLit> = HashMap::new();
    for name in &input_names {
        let lit = aig.input(name.clone());
        lit_of.insert(name.clone(), lit);
    }

    // Memoized resolution; `visiting` detects loops (`Some(false)` marks a
    // net whose cover is already scheduled in `order` — skipping those on
    // *every* pop, not just expanded ones, is what keeps shared nets from
    // being re-expanded once per consumer, which would be exponential on
    // reconvergent ladders).
    let mut order: Vec<String> = Vec::new();
    let mut stack: Vec<(String, bool)> = output_names
        .iter()
        .rev()
        .map(|n| (n.clone(), false))
        .collect();
    let mut visiting: HashMap<String, bool> = HashMap::new();
    while let Some((net, expanded)) = stack.pop() {
        if lit_of.contains_key(&net) || visiting.get(&net) == Some(&false) {
            continue;
        }
        if expanded {
            visiting.insert(net.clone(), false);
            order.push(net);
            continue;
        }
        if visiting.get(&net) == Some(&true) {
            return Err(BlifError::CombinationalLoop(net));
        }
        let cover = covers
            .get(&net)
            .ok_or_else(|| BlifError::UndefinedNet(net.clone()))?;
        visiting.insert(net.clone(), true);
        stack.push((net.clone(), true));
        // Reversed so the LIFO stack resolves dependencies in cover order:
        // earlier cover inputs get smaller node ids, which keeps the
        // strashing-canonical fanin order aligned with the printed order
        // (the invariant behind `write_blif`'s byte-level fixpoint).
        for dep in cover.inputs.iter().rev() {
            if !lit_of.contains_key(dep) {
                stack.push((dep.clone(), false));
            }
        }
    }

    for net in order {
        let cover = &covers[&net];
        let fanins: Vec<AigLit> = cover.inputs.iter().map(|n| lit_of[n]).collect();
        let lit = build_cover(&mut aig, &fanins, &cover.rows);
        lit_of.insert(net, lit);
    }

    for name in &output_names {
        let lit = *lit_of
            .get(name)
            .ok_or_else(|| BlifError::UndefinedNet(name.clone()))?;
        aig.output(name.clone(), lit);
    }
    Ok(aig)
}

/// Writes an [`Aig`] as combinational BLIF, the inverse of [`parse_blif`].
///
/// Every live AND node becomes a one-row `.names` cover (complemented
/// fanins encoded as `0` pattern bits); primary outputs get buffer or
/// inverter alias covers; constant outputs become constant covers. Dead
/// nodes (unreachable from any output) are not emitted. Port names go
/// through the same sanitize-and-uniquify table as
/// [`render_blif`](crate::export::render_blif), so distinct ports stay
/// distinct.
///
/// Nodes are emitted in exactly the order [`parse_blif`]'s dependency
/// resolution recreates them, and net names are renumbered to the ids the
/// parser will assign — so `write_blif → parse_blif → write_blif` is
/// byte-identical for **any** input AIG, which is what lets corpus files be
/// stored in canonical form and diffed bytewise.
///
/// For an AIG that never went through the parser, the strashing-canonical
/// fanin order can disagree with the file's resolution order (node ids are
/// arbitrary), so the raw emission is normalized through one internal
/// parse: the result is the canonical form directly.
pub fn write_blif(aig: &Aig) -> String {
    let raw = emit_blif(aig);
    // A parse-created AIG is resolution-ordered: its strashing-canonical
    // fanin order agrees with the emission order, so re-emitting it is
    // stable. One normalization pass makes the writer canonical for
    // arbitrary inputs.
    let normalized = parse_blif(&raw).expect("write_blif emits valid BLIF");
    emit_blif(&normalized)
}

/// Single emission pass of [`write_blif`] (stable only on
/// resolution-ordered AIGs — the public entry point normalizes).
fn emit_blif(aig: &Aig) -> String {
    let input_names: Vec<&str> = (0..aig.num_inputs()).map(|k| aig.input_name(k)).collect();
    let output_names: Vec<&str> = (0..aig.num_outputs()).map(|k| aig.output_name(k)).collect();
    let (input_names, output_names) = unique_port_names(&input_names, &output_names);

    // Emission order = the parser's resolution order: depth-first from the
    // outputs in declaration order, dependencies pushed in fanin order and
    // popped LIFO, each node scheduled once in post-order. Mirroring the
    // traversal exactly is what pins the byte-level fixpoint.
    let mut order: Vec<AigNodeId> = Vec::new();
    let mut scheduled: Vec<bool> = vec![false; aig.num_nodes()];
    let mut stack: Vec<(AigNodeId, bool)> = aig
        .outputs()
        .iter()
        .rev()
        .filter(|o| !o.is_constant())
        .map(|o| (o.node(), false))
        .collect();
    while let Some((node, expanded)) = stack.pop() {
        if !aig.is_and(node) || scheduled[node.0 as usize] {
            continue;
        }
        if expanded {
            scheduled[node.0 as usize] = true;
            order.push(node);
            continue;
        }
        stack.push((node, true));
        // Reversed push = in-order visit, mirroring the parser: the first
        // printed fanin resolves (and is numbered) first on re-read.
        let (a, b) = aig.and_fanins(node);
        for dep in [b, a] {
            if aig.is_and(dep.node()) && !scheduled[dep.node().0 as usize] {
                stack.push((dep.node(), false));
            }
        }
    }

    // The parser numbers inputs 1..=I and then ANDs in resolution order;
    // name nets after the ids the re-read AIG will carry.
    let mut file_id: HashMap<AigNodeId, usize> = HashMap::new();
    for (j, &node) in order.iter().enumerate() {
        file_id.insert(node, aig.num_inputs() + 1 + j);
    }
    let mut input_pos: Vec<usize> = vec![usize::MAX; aig.num_nodes()];
    for (k, &node) in aig.inputs().iter().enumerate() {
        input_pos[node.0 as usize] = k;
    }
    let net_of = |lit: AigLit| -> String {
        let node = lit.node();
        if aig.is_input(node) {
            input_names[input_pos[node.0 as usize]].clone()
        } else {
            format!("n{}", file_id[&node])
        }
    };

    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(aig.name()));
    let _ = write!(out, ".inputs");
    for name in &input_names {
        let _ = write!(out, " {name}");
    }
    out.push('\n');
    let _ = write!(out, ".outputs");
    for name in &output_names {
        let _ = write!(out, " {name}");
    }
    out.push('\n');

    for &node in &order {
        let (a, b) = aig.and_fanins(node);
        let _ = writeln!(
            out,
            ".names {} {} n{}",
            net_of(a),
            net_of(b),
            file_id[&node]
        );
        let bit = |l: AigLit| if l.is_complemented() { '0' } else { '1' };
        let _ = writeln!(out, "{}{} 1", bit(a), bit(b));
    }

    for (k, &o) in aig.outputs().iter().enumerate() {
        let name = &output_names[k];
        if o == AigLit::FALSE {
            let _ = writeln!(out, ".names {name}");
        } else if o == AigLit::TRUE {
            let _ = writeln!(out, ".names {name}");
            out.push_str("1\n");
        } else {
            let driver = net_of(o);
            let _ = writeln!(out, ".names {driver} {name}");
            out.push_str(if o.is_complemented() {
                "0 1\n"
            } else {
                "1 1\n"
            });
        }
    }
    out.push_str(".end\n");
    out
}

/// Builds the AIG literal for one SOP cover over already-resolved fanins.
fn build_cover(aig: &mut Aig, fanins: &[AigLit], rows: &[(String, bool)]) -> AigLit {
    // No rows at all means constant 0 per the BLIF convention.
    let Some(&(_, polarity)) = rows.first() else {
        return aig.const_false();
    };
    let mut sum = aig.const_false();
    for (pattern, _) in rows {
        let mut term = aig.const_true();
        for (k, c) in pattern.chars().enumerate() {
            match c {
                '1' => term = aig.and(term, fanins[k]),
                '0' => term = aig.and(term, !fanins[k]),
                _ => {}
            }
        }
        sum = aig.or(sum, term);
    }
    // Off-set covers (`… 0` rows) describe where the output is 0.
    if polarity {
        sum
    } else {
        !sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::Library;
    use crate::export::render_blif;
    use crate::mapper::map_aig;

    fn eval(aig: &Aig, inputs: &[bool]) -> Vec<bool> {
        let pats: Vec<u64> = inputs
            .iter()
            .map(|&b| if b { u64::MAX } else { 0 })
            .collect();
        aig.simulate(&pats).iter().map(|&w| w & 1 == 1).collect()
    }

    #[test]
    fn parses_onset_cover() {
        let aig = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n")
            .expect("valid blif");
        assert_eq!(eval(&aig, &[true, true]), vec![true]);
        assert_eq!(eval(&aig, &[true, false]), vec![false]);
    }

    #[test]
    fn parses_offset_cover_as_complement() {
        // y = NOT(a AND b) given as off-set rows.
        let aig = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n")
            .expect("valid blif");
        assert_eq!(eval(&aig, &[true, true]), vec![false]);
        assert_eq!(eval(&aig, &[false, true]), vec![true]);
    }

    #[test]
    fn parses_constants_and_empty_cover() {
        let aig = parse_blif(
            ".model m\n.inputs a\n.outputs one zero never\n.names one\n1\n.names zero\n0\n.names never\n.end\n",
        )
        .expect("valid blif");
        assert_eq!(eval(&aig, &[false]), vec![true, false, false]);
    }

    #[test]
    fn handles_use_before_definition_and_continuations() {
        let src = "\
.model ooo
.inputs a \\
        b
.outputs y
# y uses t before t is defined
.names t a y
11 1
.names b t
1 1
.end
";
        let aig = parse_blif(src).expect("valid blif");
        assert_eq!(eval(&aig, &[true, true]), vec![true]);
        assert_eq!(eval(&aig, &[true, false]), vec![false]);
    }

    #[test]
    fn rejects_latches_and_hierarchy() {
        let e = parse_blif(".model m\n.inputs a\n.outputs q\n.latch a q re clk 0\n.end\n")
            .expect_err("latches unsupported");
        assert!(matches!(e, BlifError::Unsupported { .. }), "{e}");
        let e = parse_blif(".model m\n.model n\n.end\n").expect_err("two models");
        assert!(matches!(e, BlifError::Unsupported { .. }), "{e}");
    }

    #[test]
    fn rejects_structural_errors() {
        let e = parse_blif(".model m\n.inputs a\n.outputs y\n.end\n").expect_err("y has no driver");
        assert!(
            matches!(e, BlifError::UndefinedNet(ref n) if n == "y"),
            "{e}"
        );

        let e =
            parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n")
                .expect_err("double driver");
        assert!(
            matches!(e, BlifError::MultipleDrivers(ref n) if n == "y"),
            "{e}"
        );

        let e =
            parse_blif(".model m\n.inputs a\n.outputs y\n.names z y\n1 1\n.names y z\n1 1\n.end\n")
                .expect_err("loop");
        assert!(matches!(e, BlifError::CombinationalLoop(_)), "{e}");

        let e = parse_blif(".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n00 0\n.end\n")
            .expect_err("mixed polarity");
        assert!(matches!(e, BlifError::Syntax { .. }), "{e}");
    }

    #[test]
    fn rejects_malformed_rows() {
        for src in [
            ".model m\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n",
            ".model m\n.inputs a\n.outputs y\n.names a y\n11 1\n.end\n",
            ".model m\n.inputs a\n.outputs y\n.names a y\n1 x\n.end\n",
            ".model m\n.inputs a\n.outputs y\n1 1\n.end\n",
            ".model m\n.inputs a\n.outputs y\n.names\n.end\n",
        ] {
            let e = parse_blif(src).expect_err("malformed");
            assert!(matches!(e, BlifError::Syntax { .. }), "{src}: {e}");
        }
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(matches!(parse_blif(""), Err(BlifError::Empty)));
        assert!(matches!(
            parse_blif("# only comments\n"),
            Err(BlifError::Empty)
        ));
    }

    #[test]
    fn round_trips_exported_gate_networks() {
        // render_blif(map(aig)) must parse back to a functionally equivalent
        // AIG (mapped networks carry no latches or T1 subckts here).
        let mut aig = Aig::new("rt");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("c");
        let (s0, c0) = aig.full_adder(a, b, c);
        let y = aig.mux(s0, c0, a);
        aig.output("s", s0);
        aig.output("y", y);
        let net = map_aig(&aig, &Library::default());
        let text = render_blif(&net);
        let back = parse_blif(&text).expect("exported blif parses");
        assert_eq!(back.num_inputs(), aig.num_inputs());
        assert_eq!(back.num_outputs(), aig.num_outputs());
        for pattern in 0..8u32 {
            let ins: Vec<bool> = (0..3).map(|k| pattern >> k & 1 == 1).collect();
            assert_eq!(eval(&back, &ins), eval(&aig, &ins), "pattern {pattern:03b}");
        }
    }

    #[test]
    fn write_blif_round_trips_bit_identically() {
        let mut aig = Aig::new("wr");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("c in"); // sanitized to c_in
        let (s, co) = aig.full_adder(a, b, c);
        let dead = aig.and(a, b); // live via co's cone, but also make a dead node
        let dead2 = aig.xor(dead, s);
        let _ = aig.and(dead2, c); // never used by an output
        aig.output("sum", s);
        aig.output("carry", !co);
        aig.output("const1", AigLit::TRUE);
        aig.output("const0", AigLit::FALSE);
        aig.output("alias", a);

        let w1 = write_blif(&aig);
        let back = parse_blif(&w1).expect("written blif parses");
        assert_eq!(back.name(), "wr");
        assert_eq!(back.input_name(2), "c_in", "sanitized names preserved");
        assert_eq!(back.output_name(1), "carry");
        assert_eq!(
            back.num_ands(),
            aig.num_live_ands(),
            "dead nodes are not exported"
        );
        let w2 = write_blif(&back);
        assert_eq!(w1, w2, "write→read→write must be byte-identical");
        for pattern in 0..8u64 {
            let pats: Vec<u64> = (0..3).map(|k| (pattern >> k & 1) * u64::MAX).collect();
            assert_eq!(aig.simulate(&pats), back.simulate(&pats), "{pattern:03b}");
        }
    }

    #[test]
    fn shared_nets_resolve_once_on_reconvergent_ladders() {
        // Before the resolution fix, every consumer of a shared net
        // re-expanded its whole cone: 2^48 expansions on this ladder. With
        // memoized resolution it parses instantly.
        let mut src = String::from(".model ladder\n.inputs x\n.outputs y\n");
        let mut prev = "x".to_string();
        for k in 0..48 {
            src.push_str(&format!(".names {prev} a{k}\n1 1\n"));
            src.push_str(&format!(".names {prev} b{k}\n0 1\n"));
            src.push_str(&format!(".names a{k} b{k} y{k}\n10 1\n01 1\n"));
            prev = format!("y{k}");
        }
        src.push_str(&format!(".names {prev} y\n1 1\n.end\n"));
        let aig = parse_blif(&src).expect("ladder parses");
        // y_k = a_k XOR b_k = prev XOR !prev = 1 for every k ≥ 0.
        assert_eq!(eval(&aig, &[false]), vec![true]);
        assert_eq!(eval(&aig, &[true]), vec![true]);
    }

    #[test]
    fn output_fed_directly_by_input_alias() {
        let aig =
            parse_blif(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n").expect("alias");
        assert_eq!(eval(&aig, &[true]), vec![true]);
        assert_eq!(eval(&aig, &[false]), vec![false]);
    }
}
