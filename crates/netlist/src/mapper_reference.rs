//! Reference implementation of the technology mapper.
//!
//! This is the original, straightforward `map_aig` — heap-allocated cut
//! lists, cloned fanin cut sets, `HashMap` polarity tables — kept verbatim
//! as the **executable specification** for the optimized mapper in
//! [`crate::mapper`]. The differential harness (`tests/differential_mapping.rs`)
//! and the netlist unit tests assert that [`map_aig_reference`] and
//! [`crate::map_aig`] produce bit-identical networks on every benchmark
//! generator and on random AIGs; any divergence is a bug in the fast path.
//!
//! Do not optimize this module: its value is being obviously correct.

use crate::aig::{Aig, AigLit, AigNodeId};
use crate::cell::{GateKind, Library};
use crate::mapper::{complement_gate, gate_patterns};
use crate::network::{Network, Signal};
use sfq_tt::TruthTable;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Match {
    gate: GateKind,
    /// Positive leaf nodes the gate reads.
    leaves: Vec<AigNodeId>,
    /// Bit `i` set ⇒ leaf `i` enters through the shared inverter cell.
    neg_mask: u8,
    cost: f64,
}

/// Reference mapper: same contract and bit-identical output as
/// [`crate::map_aig`], an order of magnitude slower on large AIGs.
///
/// # Panics
/// Panics if the AIG has no primary inputs but does have outputs.
pub fn map_aig_reference(aig: &Aig, lib: &Library) -> Network {
    let n = aig.num_nodes();
    let patterns = gate_patterns();

    // ---- fanout refs for area flow -------------------------------------
    let mut refs = vec![0u32; n];
    for id in aig.and_ids() {
        let (a, b) = aig.and_fanins(id);
        refs[a.node().0 as usize] += 1;
        refs[b.node().0 as usize] += 1;
    }
    for o in aig.outputs() {
        refs[o.node().0 as usize] += 1;
    }

    // ---- 2-feasible cuts -------------------------------------------------
    // cuts[node] = (positive leaf nodes sorted, tt of the node's positive
    // function over them)
    let mut cuts: Vec<Vec<(Vec<AigNodeId>, TruthTable)>> = vec![Vec::new(); n];
    for i in aig.inputs() {
        cuts[i.0 as usize] = vec![(vec![*i], TruthTable::var(1, 0))];
    }
    for id in aig.and_ids() {
        let (fa, fb) = aig.and_fanins(id);
        let trivial = (vec![id], TruthTable::var(1, 0));
        let mut set: Vec<(Vec<AigNodeId>, TruthTable)> = vec![trivial];
        let ca = leaf_cuts(&cuts, fa);
        let cb = leaf_cuts(&cuts, fb);
        for (la, ta) in &ca {
            for (lb, tb) in &cb {
                if let Some((leaves, tta, ttb)) = merge2(la, ta, lb, tb) {
                    let tt = tta & ttb;
                    if !set.iter().any(|(l, _)| *l == leaves) {
                        set.push((leaves, tt));
                    }
                }
            }
        }
        cuts[id.0 as usize] = set;
    }

    // ---- single-polarity DP ------------------------------------------------
    // best[node]: cheapest realization of the node's positive function.
    let mut best: Vec<Option<Match>> = vec![None; n];
    let node_cost = |best: &[Option<Match>], node: AigNodeId| -> f64 {
        if aig.is_input(node) {
            0.0
        } else {
            best[node.0 as usize]
                .as_ref()
                .map_or(f64::INFINITY, |m| m.cost)
        }
    };
    for id in aig.and_ids() {
        let mut found: Option<Match> = None;
        for (leaves, tt) in &cuts[id.0 as usize] {
            if leaves.len() == 1 {
                continue; // the trivial cut cannot implement its own root
            }
            for (g, gtt) in &patterns {
                for mask in 0u8..4 {
                    if gtt.flip_vars(mask) != *tt {
                        continue;
                    }
                    let mut cost = lib.gate_area(*g) as f64;
                    for (i, &leaf) in leaves.iter().enumerate() {
                        let fanout = f64::from(refs[leaf.0 as usize].max(1));
                        cost += node_cost(&best, leaf) / fanout;
                        if mask >> i & 1 == 1 {
                            // Shared inverter, amortized like the leaf.
                            cost += lib.inv as f64 / fanout;
                        }
                    }
                    if found.as_ref().is_none_or(|b| cost < b.cost) {
                        found = Some(Match {
                            gate: *g,
                            leaves: leaves.clone(),
                            neg_mask: mask,
                            cost,
                        });
                    }
                }
            }
        }
        best[id.0 as usize] = Some(found.expect("every AND node matches AND2 on its fanin cut"));
    }

    // ---- polarity demand over the chosen cover ------------------------------
    // demand[node] bits: 1 = positive use, 2 = complemented use.
    let mut demand = vec![0u8; n];
    {
        let mut stack: Vec<(AigNodeId, bool)> = aig
            .outputs()
            .iter()
            .filter(|l| !l.is_constant())
            .map(|l| (l.node(), l.is_complemented()))
            .collect();
        while let Some((node, neg)) = stack.pop() {
            let bit = if neg { 2u8 } else { 1 };
            if demand[node.0 as usize] & bit != 0 {
                continue;
            }
            demand[node.0 as usize] |= bit;
            if aig.is_input(node) {
                continue;
            }
            // The cover is polarity-oblivious below this node: its cell (of
            // either polarity) reads the same leaf polarities.
            if demand[node.0 as usize] & (bit ^ 3) != 0 {
                continue; // leaves already visited through the other polarity
            }
            let m = best[node.0 as usize].as_ref().expect("covered node");
            for (i, &leaf) in m.leaves.iter().enumerate() {
                stack.push((leaf, m.neg_mask >> i & 1 == 1));
            }
        }
    }

    // ---- cover extraction ---------------------------------------------------
    let mut builder = Cover {
        aig,
        best: &best,
        demand: &demand,
        net: Network::new(aig.name()),
        positive: HashMap::new(),
        inverted: HashMap::new(),
        complement: HashMap::new(),
    };
    for (k, i) in aig.inputs().iter().enumerate() {
        let s = builder.net.add_input(aig.input_name(k).to_string());
        builder.positive.insert(*i, s);
    }
    let outputs: Vec<(String, AigLit)> = (0..aig.num_outputs())
        .map(|k| (aig.output_name(k).to_string(), aig.outputs()[k]))
        .collect();
    let mut const_cache: [Option<Signal>; 2] = [None, None];
    for (name, lit) in outputs {
        let s = if lit.is_constant() {
            builder.constant(lit == AigLit::TRUE, &mut const_cache)
        } else {
            builder.literal(lit)
        };
        builder.net.add_output(name, s);
    }
    builder.net
}

/// Memoized cover materialization: one logic cell per AIG node (positive or
/// complement form), plus at most one shared INV when both polarities are
/// demanded.
struct Cover<'a> {
    aig: &'a Aig,
    best: &'a [Option<Match>],
    demand: &'a [u8],
    net: Network,
    positive: HashMap<AigNodeId, Signal>,
    inverted: HashMap<AigNodeId, Signal>,
    complement: HashMap<AigNodeId, Signal>,
}

impl Cover<'_> {
    fn fanins(&mut self, m: &Match) -> Vec<Signal> {
        m.leaves
            .iter()
            .enumerate()
            .map(|(i, &leaf)| {
                if m.neg_mask >> i & 1 == 1 {
                    self.negated(leaf)
                } else {
                    self.node(leaf)
                }
            })
            .collect()
    }

    fn node(&mut self, node: AigNodeId) -> Signal {
        if let Some(&s) = self.positive.get(&node) {
            return s;
        }
        let m = self.best[node.0 as usize]
            .clone()
            .unwrap_or_else(|| panic!("no match for node {node:?}"));
        let fanins = self.fanins(&m);
        let s = self.net.add_gate(m.gate, &fanins);
        self.positive.insert(node, s);
        s
    }

    fn negated(&mut self, node: AigNodeId) -> Signal {
        if let Some(&s) = self.inverted.get(&node) {
            return s;
        }
        if let Some(&s) = self.complement.get(&node) {
            return s;
        }
        // Complement-only demand on a logic node → the complement gate,
        // one cell, no inverter. Otherwise (inputs, dual demand) → shared INV.
        if !self.aig.is_input(node) && self.demand[node.0 as usize] == 2 {
            let m = self.best[node.0 as usize]
                .clone()
                .unwrap_or_else(|| panic!("no match for node {node:?}"));
            let fanins = self.fanins(&m);
            let s = self.net.add_gate(complement_gate(m.gate), &fanins);
            self.complement.insert(node, s);
            return s;
        }
        let pos = self.node(node);
        let s = self.net.add_gate(GateKind::Inv, &[pos]);
        self.inverted.insert(node, s);
        s
    }

    fn literal(&mut self, lit: AigLit) -> Signal {
        if lit.is_complemented() {
            self.negated(lit.node())
        } else {
            self.node(lit.node())
        }
    }

    /// Materializes a constant output as live logic over input 0:
    /// `AND(x, ¬x)` for 0, `OR(x, ¬x)` for 1.
    ///
    /// # Panics
    /// Panics if the AIG has no primary inputs.
    fn constant(&mut self, value: bool, cache: &mut [Option<Signal>; 2]) -> Signal {
        if let Some(s) = cache[usize::from(value)] {
            return s;
        }
        let first = *self
            .aig
            .inputs()
            .first()
            .expect("constant outputs need at least one input to derive from");
        let x = self.node(first);
        let nx = self.negated(first);
        let s = if value {
            self.net.add_gate(GateKind::Or2, &[x, nx])
        } else {
            self.net.add_gate(GateKind::And2, &[x, nx])
        };
        cache[usize::from(value)] = Some(s);
        s
    }
}

fn leaf_cuts(
    cuts: &[Vec<(Vec<AigNodeId>, TruthTable)>],
    lit: AigLit,
) -> Vec<(Vec<AigNodeId>, TruthTable)> {
    // Cut functions are stored over *positive* leaf variables; entering
    // through a complemented edge complements the cut function.
    cuts[lit.node().0 as usize]
        .iter()
        .map(|(l, t)| (l.clone(), if lit.is_complemented() { !*t } else { *t }))
        .collect()
}

fn merge2(
    la: &[AigNodeId],
    ta: &TruthTable,
    lb: &[AigNodeId],
    tb: &TruthTable,
) -> Option<(Vec<AigNodeId>, TruthTable, TruthTable)> {
    let mut leaves: Vec<AigNodeId> = la.to_vec();
    for &l in lb {
        if !leaves.contains(&l) {
            leaves.push(l);
        }
    }
    if leaves.len() > 2 {
        return None;
    }
    leaves.sort();
    let ea = expand_nodes(ta, la, &leaves);
    let eb = expand_nodes(tb, lb, &leaves);
    Some((leaves, ea, eb))
}

fn expand_nodes(tt: &TruthTable, old: &[AigNodeId], new: &[AigNodeId]) -> TruthTable {
    let n = new.len();
    let mut bits = 0u64;
    for row in 0..(1usize << n) {
        let mut src = 0usize;
        for (i, l) in old.iter().enumerate() {
            let p = new.iter().position(|x| x == l).expect("subset");
            if (row >> p) & 1 == 1 {
                src |= 1 << i;
            }
        }
        if tt.eval_row(src) {
            bits |= 1 << row;
        }
    }
    TruthTable::from_bits_truncated(n, bits)
}
