//! Unified ingestion of external designs: format auto-detection, validated
//! parsing into an [`Aig`], canonical re-emission, and a content-hash parse
//! cache.
//!
//! The `aag` ([`crate::aiger`]) and BLIF ([`crate::blif`]) frontends each
//! read one format; this module is the single entry point the CLI and the
//! batched benchmark drivers go through, so every consumer gets the same
//! detection, validation and error-reporting behavior:
//!
//! * [`DesignFormat::detect`] — extension first, content sniffing as the
//!   fallback, so `sfqt1 flow --batch` can ingest a mixed directory;
//! * [`Design::read`] / [`Design::parse`] — validated parse into an `Aig`
//!   that remembers its source format;
//! * [`Design::write_native`] — canonical re-emission in the source format.
//!   Both writers guarantee the write→read→write fixpoint: re-emitting a
//!   just-parsed canonical file reproduces it byte for byte, which is what
//!   lets corpus files be stored canonically and diffed bytewise in CI;
//! * [`DesignCache`] — memoizes parses by a 64-bit FNV-1a hash of the file
//!   *content* (plus its length, with hits verified by byte comparison, so
//!   a hash collision can never serve the wrong design), so a batch run or
//!   a long-lived daemon touching the same design under several paths (or
//!   the same path repeatedly) parses it once.
//!
//! # Example
//!
//! ```
//! use sfq_netlist::design::{Design, DesignFormat};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let src = ".model mux\n.inputs s a b\n.outputs y\n.names s a b y\n11- 1\n0-1 1\n.end\n";
//! let design = Design::parse(src, DesignFormat::detect(None, src)?, "mux")?;
//! assert_eq!(design.aig.num_inputs(), 3);
//! let canonical = design.write_native();
//! let again = Design::parse(&canonical, design.format, "mux")?;
//! assert_eq!(again.write_native(), canonical); // fixpoint
//! # Ok(())
//! # }
//! ```

use crate::aig::Aig;
use crate::aiger::{read_aag, write_aag, AigerError};
use crate::blif::{parse_blif, write_blif, BlifError};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::Path;

/// The interchange formats the ingestion layer understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignFormat {
    /// ASCII AIGER (`.aag`), combinational subset.
    Aag,
    /// BLIF (`.blif`), combinational single-model subset.
    Blif,
}

impl DesignFormat {
    /// File extension conventionally used for the format.
    pub fn extension(self) -> &'static str {
        match self {
            DesignFormat::Aag => "aag",
            DesignFormat::Blif => "blif",
        }
    }

    /// Detects the format of a design from its path and/or content.
    ///
    /// A recognized `.aag` / `.blif` extension wins (matched
    /// case-insensitively, so `X.AAG` and `y.Blif` ingest like their
    /// lowercase twins); otherwise the first non-blank content line decides:
    /// an `aag` header means AIGER, a `.` directive or `#` comment means
    /// BLIF.
    ///
    /// # Errors
    /// [`DesignError::UnknownFormat`] when neither signal is conclusive.
    pub fn detect(path: Option<&Path>, content: &str) -> Result<Self, DesignError> {
        if let Some(format) = path.and_then(Self::from_extension) {
            return Ok(format);
        }
        let first = content
            .lines()
            .map(str::trim_start)
            .find(|l| !l.is_empty())
            .unwrap_or("");
        if first.starts_with("aag ") {
            Ok(DesignFormat::Aag)
        } else if first.starts_with('.') || first.starts_with('#') {
            Ok(DesignFormat::Blif)
        } else {
            Err(DesignError::UnknownFormat {
                path: path
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "<memory>".into()),
            })
        }
    }

    /// The format a path's extension claims, matched case-insensitively
    /// (`.aag`/`.AAG`/`.Blif`…), or `None` for everything else. This is the
    /// one extension test shared by [`DesignFormat::detect`] and
    /// [`list_dir`], so single-file and directory ingestion can never
    /// disagree about which files are designs.
    pub fn from_extension(path: &Path) -> Option<Self> {
        let ext = path.extension()?.to_str()?;
        if ext.eq_ignore_ascii_case("aag") {
            Some(DesignFormat::Aag)
        } else if ext.eq_ignore_ascii_case("blif") {
            Some(DesignFormat::Blif)
        } else {
            None
        }
    }
}

impl fmt::Display for DesignFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.extension())
    }
}

/// Errors produced by the ingestion layer.
#[derive(Debug)]
pub enum DesignError {
    /// Reading the file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file is neither recognizable AIGER nor BLIF.
    UnknownFormat {
        /// The file involved (or `<memory>`).
        path: String,
    },
    /// AIGER parsing failed.
    Aiger(AigerError),
    /// BLIF parsing failed.
    Blif(BlifError),
    /// An armed `err`-action fault point fired (`fault-injection` feature
    /// only — see [`crate::faultpt`]). Never produced in production builds.
    Injected {
        /// The fault-point site that fired (e.g. `parse`).
        site: &'static str,
    },
}

impl fmt::Display for DesignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesignError::Io { path, source } => write!(f, "{path}: {source}"),
            DesignError::UnknownFormat { path } => {
                write!(f, "{path}: unknown design format (expected .aag or .blif)")
            }
            DesignError::Aiger(e) => write!(f, "aag: {e}"),
            DesignError::Blif(e) => write!(f, "blif: {e}"),
            DesignError::Injected { site } => write!(f, "injected fault at {site}"),
        }
    }
}

impl std::error::Error for DesignError {}

impl From<AigerError> for DesignError {
    fn from(e: AigerError) -> Self {
        DesignError::Aiger(e)
    }
}

impl From<BlifError> for DesignError {
    fn from(e: BlifError) -> Self {
        DesignError::Blif(e)
    }
}

/// An externally supplied design: the parsed [`Aig`] plus its source format.
#[derive(Debug, Clone)]
pub struct Design {
    /// The parsed and validated network.
    pub aig: Aig,
    /// The format the design arrived in (and that `write_native` emits).
    pub format: DesignFormat,
}

impl Design {
    /// Parses `content` as `format`; `fallback_name` names the design when
    /// the file itself does not (AIGER comment section, BLIF `.model`).
    ///
    /// # Errors
    /// [`DesignError`] on malformed content.
    pub fn parse(
        content: &str,
        format: DesignFormat,
        fallback_name: &str,
    ) -> Result<Self, DesignError> {
        if crate::faultpt::hit("parse", fallback_name) {
            return Err(DesignError::Injected { site: "parse" });
        }
        let aig = match format {
            DesignFormat::Aag => read_aag(content.as_bytes(), fallback_name)?,
            DesignFormat::Blif => parse_blif(content)?,
        };
        Ok(Design { aig, format })
    }

    /// Reads and parses a design file, auto-detecting its format.
    ///
    /// # Errors
    /// [`DesignError`] on I/O failures, unknown formats, or parse errors.
    pub fn read(path: &Path) -> Result<Self, DesignError> {
        let content = std::fs::read_to_string(path).map_err(|source| DesignError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let format = DesignFormat::detect(Some(path), &content)?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design");
        Design::parse(&content, format, stem)
    }

    /// Re-emits the design in its source format.
    ///
    /// The emission is canonical: parsing the result and re-emitting it is
    /// byte-identical (see [`write_aag`] and [`write_blif`]), so a corpus
    /// stored in this form can be diffed bytewise after a round trip.
    pub fn write_native(&self) -> String {
        match self.format {
            DesignFormat::Aag => {
                let mut buf = Vec::new();
                write_aag(&self.aig, &mut buf).expect("in-memory write cannot fail");
                String::from_utf8(buf).expect("write_aag emits UTF-8")
            }
            DesignFormat::Blif => write_blif(&self.aig),
        }
    }
}

/// Loads every `.aag`/`.blif` design under `dir` in file-name order,
/// parsing through a fresh [`DesignCache`] (identical file contents parse
/// once). Returns `(file name, design)` pairs plus the cache-hit count;
/// a directory with no matching files yields an empty vector — callers
/// decide whether that is an error.
///
/// This is the single directory-ingestion path shared by the batch
/// drivers (`sfqt1 flow --batch`, `table_corpus`), so they can never
/// disagree on which files a directory contains.
///
/// # Errors
/// [`DesignError`] on I/O failures, unknown formats, or parse errors.
pub fn load_dir(dir: &Path) -> Result<(Vec<(String, Design)>, usize), DesignError> {
    let (entries, hits) = load_dir_results(dir)?;
    let mut designs = Vec::with_capacity(entries.len());
    for (file, entry) in entries {
        designs.push((file, entry?));
    }
    Ok((designs, hits))
}

/// The fault-tolerant variant of [`load_dir`]: every `.aag`/`.blif` file
/// yields an entry, parseable or not, so a batch driver can render broken
/// designs as per-design failures instead of aborting the whole ingest on
/// the first bad file.
///
/// The outer `Result` only fails when the *directory* cannot be listed;
/// per-file read and parse failures land in the entry's `Result`. The
/// second component is the parse-cache hit count (identical file contents
/// still parse once).
///
/// # Errors
/// [`DesignError::Io`] when listing `dir` fails.
#[allow(clippy::type_complexity)]
pub fn load_dir_results(
    dir: &Path,
) -> Result<(Vec<(String, Result<Design, DesignError>)>, usize), DesignError> {
    let paths = list_dir(dir)?;
    let mut cache = DesignCache::new();
    let mut designs = Vec::with_capacity(paths.len());
    for path in &paths {
        let entry = cache.load(path).cloned();
        let file = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("design")
            .to_string();
        designs.push((file, entry));
    }
    Ok((designs, cache.stats().hits))
}

/// Lists the design files (`.aag`/`.blif`, extensions matched
/// case-insensitively) directly under `dir`, sorted by path — the one
/// directory-listing policy shared by [`load_dir_results`] and by batch
/// clients that submit paths to the `sfqt1d` daemon.
///
/// # Errors
/// [`DesignError::Io`] when listing `dir` fails.
pub fn list_dir(dir: &Path) -> Result<Vec<std::path::PathBuf>, DesignError> {
    let listing = |source| DesignError::Io {
        path: dir.display().to_string(),
        source,
    };
    let entries = std::fs::read_dir(dir).map_err(listing)?;
    let mut paths: Vec<std::path::PathBuf> = entries
        .collect::<Result<Vec<_>, _>>()
        .map_err(listing)?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| DesignFormat::from_extension(p).is_some())
        .collect();
    paths.sort();
    Ok(paths)
}

/// 64-bit FNV-1a — the content fingerprint [`DesignCache`] keys by
/// (together with the content length). Stable across runs and platforms
/// (unlike `DefaultHasher`) and cheap; the cache never *trusts* it — hits
/// are verified by byte comparison, so a collision degrades to a recorded
/// miss instead of serving the wrong design.
pub fn content_hash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Counters of a [`DesignCache`] — the health-endpoint numbers of the
/// future `sfqt1d` daemon, and the observability hook of today's batch
/// drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads served from the cache.
    pub hits: usize,
    /// Loads that had to parse (including failed parses).
    pub misses: usize,
    /// Entries evicted to respect the capacity bound.
    pub evictions: usize,
    /// Key-equal loads whose bytes did **not** match the cached content —
    /// verified hash collisions, each also counted as a miss. Nonzero only
    /// when two distinct inputs share a `(hash, len)` key.
    pub collisions: usize,
    /// Designs currently cached.
    pub len: usize,
    /// Capacity bound.
    pub capacity: usize,
}

/// The cache key: content fingerprint plus content length. Keying by the
/// pair (instead of the bare hash) makes accidental collisions rarer; the
/// byte comparison in [`DesignCache::parse_cached`] makes the remaining
/// ones harmless.
type CacheKey = (u64, usize);

/// One cached parse: the verified source bytes plus the parsed design.
/// The content is retained so key-equal loads can be byte-verified — a
/// daemon serving arbitrary client content must never let a 64-bit hash
/// collision silently answer with the wrong design.
#[derive(Debug)]
struct CacheEntry {
    content: Box<str>,
    design: Design,
}

/// A bounded parse cache keyed by file-content hash and length, with
/// byte-verified hits.
///
/// Batch drivers and the `sfqt1d` daemon load the same designs repeatedly;
/// identical content (same design under two names/paths/clients, or
/// repeated loads) parses once. The cache stores the parsed [`Design`] by
/// `(`[`content_hash`]`, length)`, not by path, and holds at most
/// `capacity` entries: when full, the **oldest inserted** entry is evicted
/// first (deterministic FIFO — a long-running daemon must not grow without
/// bound, and eviction order must not depend on hash iteration order).
///
/// A key-equal load whose bytes differ from the cached content is a
/// **verified collision**: it is recorded ([`CacheStats::collisions`]),
/// counted as a miss, parsed fresh, and the new design replaces the
/// colliding entry — so the caller always gets the design its bytes
/// describe, never a hash twin's.
#[derive(Debug)]
pub struct DesignCache {
    parsed: HashMap<CacheKey, CacheEntry>,
    /// Insertion order of the keys in `parsed`; front = oldest.
    order: VecDeque<CacheKey>,
    capacity: usize,
    hits: usize,
    misses: usize,
    evictions: usize,
    collisions: usize,
}

impl Default for DesignCache {
    fn default() -> Self {
        Self::new()
    }
}

impl DesignCache {
    /// Default capacity bound — generous for any corpus directory while
    /// keeping a long-lived process's memory finite.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// Creates an empty cache with [`DesignCache::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates an empty cache holding at most `capacity` designs (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        DesignCache {
            parsed: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
            evictions: 0,
            collisions: 0,
        }
    }

    /// Number of loads served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Hit/miss/eviction/collision/occupancy counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            collisions: self.collisions,
            len: self.parsed.len(),
            capacity: self.capacity,
        }
    }

    /// Number of distinct designs currently cached.
    pub fn len(&self) -> usize {
        self.parsed.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.parsed.is_empty()
    }

    /// Reads `path`, returning the cached parse when a file with identical
    /// content has been loaded before. A miss that fills the cache beyond
    /// its capacity first evicts the oldest entry.
    ///
    /// # Errors
    /// [`DesignError`] on I/O failures, unknown formats, or parse errors.
    pub fn load(&mut self, path: &Path) -> Result<&Design, DesignError> {
        let content = std::fs::read_to_string(path).map_err(|source| DesignError::Io {
            path: path.display().to_string(),
            source,
        })?;
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("design")
            .to_string();
        self.load_keyed(Self::key_of(&content), &content, Some(path), &stem)
    }

    /// Parses in-memory `content` through the cache — the daemon's inline
    /// submission path. `name_hint` (e.g. the client-supplied file name)
    /// drives extension-based format detection and the fallback design
    /// name; content sniffing covers hint-less submissions.
    ///
    /// Identical bytes parse once regardless of how they arrive (inline or
    /// via [`DesignCache::load`]); key-equal but byte-different content is
    /// a verified collision and parses fresh (see the type docs).
    ///
    /// # Errors
    /// [`DesignError`] on unknown formats or parse errors.
    pub fn parse_cached(
        &mut self,
        content: &str,
        name_hint: Option<&str>,
    ) -> Result<&Design, DesignError> {
        let path = name_hint.map(Path::new);
        let stem = path
            .and_then(|p| p.file_stem())
            .and_then(|s| s.to_str())
            .unwrap_or("design")
            .to_string();
        self.load_keyed(Self::key_of(content), content, path, &stem)
    }

    /// The cache key of `content`.
    fn key_of(content: &str) -> CacheKey {
        (content_hash(content.as_bytes()), content.len())
    }

    /// The shared load path: byte-verified lookup under an explicit `key`.
    /// Private so production keys are always [`DesignCache::key_of`]; the
    /// collision unit test calls it with two synthetic equal keys to force
    /// the case a 64-bit fingerprint makes astronomically rare.
    fn load_keyed(
        &mut self,
        key: CacheKey,
        content: &str,
        path: Option<&Path>,
        fallback_name: &str,
    ) -> Result<&Design, DesignError> {
        let verified_hit = match self.parsed.get(&key) {
            Some(entry) if &*entry.content == content => true,
            Some(_) => {
                // Key-equal, byte-different: a real collision. Record it
                // and fall through to the miss path, which replaces the
                // colliding entry with the design these bytes describe.
                self.collisions += 1;
                false
            }
            None => false,
        };
        if verified_hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            let format = DesignFormat::detect(path, content)?;
            let design = Design::parse(content, format, fallback_name)?;
            if !self.parsed.contains_key(&key) {
                // Evict before inserting so the borrow returned below stays
                // untouched and occupancy never exceeds `capacity`.
                while self.parsed.len() >= self.capacity {
                    let oldest = self
                        .order
                        .pop_front()
                        .expect("occupancy > 0 implies a tracked insertion order");
                    self.parsed.remove(&oldest);
                    self.evictions += 1;
                }
                self.order.push_back(key);
            }
            self.parsed.insert(
                key,
                CacheEntry {
                    content: content.into(),
                    design,
                },
            );
        }
        Ok(&self.parsed[&key].design)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_prefers_extension_then_sniffs_content() {
        let aag = "aag 0 0 0 0 0\n";
        let blif = ".model m\n.inputs\n.outputs\n.end\n";
        assert_eq!(
            DesignFormat::detect(Some(Path::new("x.aag")), blif).unwrap(),
            DesignFormat::Aag,
            "extension wins over content"
        );
        assert_eq!(
            DesignFormat::detect(Some(Path::new("x.txt")), aag).unwrap(),
            DesignFormat::Aag
        );
        assert_eq!(
            DesignFormat::detect(None, "# comment\n.model m\n").unwrap(),
            DesignFormat::Blif
        );
        assert!(DesignFormat::detect(None, "hello world\n").is_err());
    }

    #[test]
    fn parse_routes_to_the_right_frontend() {
        let d = Design::parse("aag 1 1 0 1 0\n2\n2\n", DesignFormat::Aag, "wire").unwrap();
        assert_eq!(d.format, DesignFormat::Aag);
        assert_eq!(d.aig.num_inputs(), 1);
        let d = Design::parse(
            ".model inv\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n",
            DesignFormat::Blif,
            "x",
        )
        .unwrap();
        assert_eq!(d.format, DesignFormat::Blif);
        assert_eq!(d.aig.name(), "inv", "model name wins over fallback");
    }

    #[test]
    fn write_native_reaches_a_byte_fixpoint() {
        for (src, format) in [
            (
                ".model m\n.inputs a b c\n.outputs y z\n.names a b t\n11 1\n.names t c y\n10 1\n01 1\n.names t z\n0 1\n.end\n",
                DesignFormat::Blif,
            ),
            (
                "aag 5 2 0 1 3\n2\n4\n10\n6 2 4\n8 3 5\n10 7 9\ni0 a\ni1 b\no0 y\n",
                DesignFormat::Aag,
            ),
        ] {
            let d = Design::parse(src, format, "m").unwrap();
            let w1 = d.write_native();
            let d2 = Design::parse(&w1, format, "m").unwrap();
            let w2 = d2.write_native();
            assert_eq!(w1, w2, "{format} fixpoint");
        }
    }

    #[test]
    fn detect_matches_extensions_case_insensitively() {
        let blif = ".model m\n.inputs\n.outputs\n.end\n";
        for name in ["x.AAG", "x.Aag", "x.aAg"] {
            assert_eq!(
                DesignFormat::detect(Some(Path::new(name)), blif).unwrap(),
                DesignFormat::Aag,
                "{name} is AIGER by extension"
            );
        }
        for name in ["y.BLIF", "y.Blif"] {
            assert_eq!(
                DesignFormat::detect(Some(Path::new(name)), "aag 0 0 0 0 0\n").unwrap(),
                DesignFormat::Blif,
                "{name} is BLIF by extension"
            );
        }
        assert_eq!(
            DesignFormat::from_extension(Path::new("z.AagX")),
            None,
            "only exact (case-folded) extensions match"
        );
    }

    #[test]
    fn load_dir_ingests_uppercase_extensions() {
        let dir = std::env::temp_dir().join(format!("sfq-design-upper-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let blif = ".model um\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
        let aag = "aag 1 1 0 1 0\n2\n2\n";
        std::fs::write(dir.join("a_wire.AAG"), aag).unwrap();
        std::fs::write(dir.join("b_buf.BLIF"), blif).unwrap();
        std::fs::write(dir.join("c_buf.blif"), blif).unwrap();
        std::fs::write(dir.join("noise.txt"), "not a design").unwrap();

        let listed = list_dir(&dir).unwrap();
        assert_eq!(listed.len(), 3, "uppercase twins are listed: {listed:?}");

        let (entries, hits) = load_dir_results(&dir).unwrap();
        let names: Vec<&str> = entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_wire.AAG", "b_buf.BLIF", "c_buf.blif"]);
        for (name, entry) in &entries {
            let design = entry.as_ref().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(
                design.format,
                if name.to_ascii_lowercase().ends_with(".aag") {
                    DesignFormat::Aag
                } else {
                    DesignFormat::Blif
                }
            );
        }
        assert_eq!(
            hits, 1,
            "identical upper/lowercase BLIF content parses once"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_collision_degrades_to_a_verified_miss() {
        // Two distinct, parseable designs forced onto the same synthetic
        // key — exactly what a 64-bit fingerprint collision would produce.
        let one = ".model one\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
        let two = ".model two\n.inputs a\n.outputs y\n.names a y\n0 1\n.end\n";
        let key = (42u64, 0usize);
        let mut cache = DesignCache::new();

        let d = cache.load_keyed(key, one, None, "one").unwrap();
        assert_eq!(d.aig.name(), "one");
        let d = cache.load_keyed(key, two, None, "two").unwrap();
        assert_eq!(d.aig.name(), "two", "collision must serve the new bytes");
        let d = cache.load_keyed(key, one, None, "one").unwrap();
        assert_eq!(d.aig.name(), "one", "and back again");
        let d = cache.load_keyed(key, one, None, "one").unwrap();
        assert_eq!(d.aig.name(), "one", "byte-equal reload is a true hit");

        let stats = cache.stats();
        assert_eq!(stats.collisions, 2, "both key-equal swaps were verified");
        assert_eq!(stats.misses, 3, "each collision re-parsed");
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.len, 1, "colliding entries replace, not accumulate");
    }

    #[test]
    fn parse_cached_dedupes_inline_and_file_content() {
        let dir = std::env::temp_dir().join(format!("sfq-design-inline-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = ".model im\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
        let p = dir.join("im.blif");
        std::fs::write(&p, src).unwrap();

        let mut cache = DesignCache::new();
        assert_eq!(cache.load(&p).unwrap().aig.name(), "im");
        assert_eq!(
            cache.parse_cached(src, Some("im.blif")).unwrap().aig.name(),
            "im"
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "inline submission of the same bytes hits the file's entry"
        );
        // Hint-less inline content still parses (content sniffing).
        assert!(cache.parse_cached(src, None).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    use proptest::prelude::*;

    proptest! {
        /// Eviction/stats model check at tiny capacities: the cache
        /// behaves exactly like a FIFO queue of content keys with
        /// byte-verified hits.
        #[test]
        fn cache_eviction_matches_fifo_model_at_capacities_1_to_3(
            capacity in 1usize..=3,
            loads in prop::collection::vec(0usize..5, 1..40),
        ) {
            // A pool of five distinct parseable designs.
            let pool: Vec<String> = (0..5)
                .map(|i| {
                    format!(
                        ".model p{i}\n.inputs a b\n.outputs y\n.names a b y\n1{} 1\n.end\n",
                        i % 2
                    )
                })
                .collect();
            let mut cache = DesignCache::with_capacity(capacity);
            // Model: FIFO of pool indices currently cached.
            let mut model: std::collections::VecDeque<usize> = Default::default();
            let (mut hits, mut misses, mut evictions) = (0usize, 0usize, 0usize);
            for &i in &loads {
                let name = cache
                    .parse_cached(&pool[i], None)
                    .expect("parses")
                    .aig
                    .name()
                    .to_string();
                prop_assert_eq!(name, format!("p{i}"), "correct design served");
                if model.contains(&i) {
                    hits += 1;
                } else {
                    misses += 1;
                    if model.len() >= capacity {
                        model.pop_front();
                        evictions += 1;
                    }
                    model.push_back(i);
                }
                let stats = cache.stats();
                prop_assert_eq!(stats.len, model.len());
                prop_assert_eq!(stats.hits, hits);
                prop_assert_eq!(stats.misses, misses);
                prop_assert_eq!(stats.evictions, evictions);
                prop_assert_eq!(stats.collisions, 0, "distinct designs never collide");
                prop_assert!(stats.len <= capacity, "capacity bound holds");
            }
            // The most recently inserted design is always resident.
            let before = cache.stats().hits;
            if let Some(&resident) = model.back() {
                cache.parse_cached(&pool[resident], None).expect("parses");
                prop_assert_eq!(cache.stats().hits, before + 1, "resident design hits");
            }
        }
    }

    #[test]
    fn cache_dedupes_identical_content() {
        let dir = std::env::temp_dir().join(format!("sfq-design-cache-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let src = ".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n";
        let p1 = dir.join("one.blif");
        let p2 = dir.join("two.blif");
        std::fs::write(&p1, src).unwrap();
        std::fs::write(&p2, src).unwrap();
        let mut cache = DesignCache::new();
        assert_eq!(cache.load(&p1).unwrap().aig.num_inputs(), 1);
        assert_eq!(cache.load(&p2).unwrap().aig.num_inputs(), 1);
        assert_eq!(cache.load(&p1).unwrap().aig.num_inputs(), 1);
        assert_eq!(cache.len(), 1, "identical content parses once");
        assert_eq!(cache.hits(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}
