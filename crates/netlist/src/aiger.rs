//! ASCII AIGER (`aag`) reading and writing.
//!
//! The benchmark generators build [`Aig`]s programmatically, but a real
//! release must interoperate with the standard interchange format the
//! EPFL/ISCAS suites ship in. Only the combinational subset is supported
//! (no latches), matching the paper's benchmarks.

use crate::aig::{Aig, AigLit, AigNodeId};
use std::collections::HashMap;
use std::fmt;
use std::io::{BufRead, Write};

/// Errors produced while parsing an ASCII AIGER file.
#[derive(Debug)]
pub enum AigerError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line is missing or malformed.
    BadHeader(String),
    /// A body line is malformed or inconsistent with the header.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The file declares latches, which this reader does not support.
    LatchesUnsupported,
}

impl fmt::Display for AigerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AigerError::Io(e) => write!(f, "i/o error: {e}"),
            AigerError::BadHeader(h) => write!(f, "malformed aag header: `{h}`"),
            AigerError::BadLine { line, message } => {
                write!(f, "line {line}: {message}")
            }
            AigerError::LatchesUnsupported => {
                write!(f, "sequential aiger files (latches) are not supported")
            }
        }
    }
}

impl std::error::Error for AigerError {}

impl From<std::io::Error> for AigerError {
    fn from(e: std::io::Error) -> Self {
        AigerError::Io(e)
    }
}

/// Writes `aig` in ASCII AIGER format.
///
/// Node numbering follows AIGER conventions: inputs occupy variables
/// `1..=I`, AND gates follow in topological order. Symbol tables for input
/// and output names are emitted.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_aag<W: Write>(aig: &Aig, mut w: W) -> std::io::Result<()> {
    // Renumber: inputs first, then ANDs in creation (topological) order.
    let mut var_of: HashMap<AigNodeId, u32> = HashMap::new();
    var_of.insert(AigNodeId(0), 0);
    for (k, &i) in aig.inputs().iter().enumerate() {
        var_of.insert(i, k as u32 + 1);
    }
    let mut next = aig.num_inputs() as u32 + 1;
    let mut and_rows: Vec<(u32, u32, u32)> = Vec::new();
    for id in aig.and_ids() {
        var_of.insert(id, next);
        let (a, b) = aig.and_fanins(id);
        let la = 2 * var_of[&a.node()] + u32::from(a.is_complemented());
        let lb = 2 * var_of[&b.node()] + u32::from(b.is_complemented());
        and_rows.push((2 * next, la, lb));
        next += 1;
    }
    let m = next - 1;
    writeln!(
        w,
        "aag {} {} 0 {} {}",
        m,
        aig.num_inputs(),
        aig.num_outputs(),
        and_rows.len()
    )?;
    for k in 0..aig.num_inputs() {
        writeln!(w, "{}", 2 * (k as u32 + 1))?;
    }
    for o in aig.outputs() {
        writeln!(
            w,
            "{}",
            2 * var_of[&o.node()] + u32::from(o.is_complemented())
        )?;
    }
    for (lhs, a, b) in and_rows {
        writeln!(w, "{lhs} {a} {b}")?;
    }
    for k in 0..aig.num_inputs() {
        writeln!(w, "i{k} {}", aig.input_name(k))?;
    }
    for k in 0..aig.num_outputs() {
        writeln!(w, "o{k} {}", aig.output_name(k))?;
    }
    writeln!(w, "c")?;
    writeln!(w, "{}", aig.name())?;
    Ok(())
}

/// Reads an ASCII AIGER file into an [`Aig`].
///
/// The reconstructed AIG goes through the usual strashing constructors, so
/// structurally redundant files come back smaller; output functions are
/// preserved. The trailing symbol table (`i<k> name` / `o<k> name` lines) is
/// parsed and restores the input/output names; symbols that are absent fall
/// back to positional `i<k>` / `o<k>` names. When a comment section is
/// present its first line, if non-empty, becomes the design name (this is
/// what [`write_aag`] emits), otherwise `name` is used — so
/// `write_aag → read_aag → write_aag` is byte-identical.
///
/// Input validation follows the AIGER rules: the header counts must be
/// consistent (`m ≥ i + a`), input and AND left-hand-side literals must be
/// even, fresh and within the declared `m` bound, and symbol lines must be
/// well formed — malformed trailing lines are errors, never silently
/// ignored.
///
/// # Errors
/// Returns [`AigerError`] on malformed input, latches, or I/O failures.
pub fn read_aag<R: BufRead>(r: R, name: &str) -> Result<Aig, AigerError> {
    let all_lines: Vec<String> = r.lines().collect::<Result<_, _>>()?;
    let mut cursor = 0usize;
    let header = all_lines
        .first()
        .ok_or_else(|| AigerError::BadHeader("<empty file>".into()))?
        .clone();
    cursor += 1;
    let parts: Vec<&str> = header.split_whitespace().collect();
    if parts.len() != 6 || parts[0] != "aag" {
        return Err(AigerError::BadHeader(header.clone()));
    }
    let parse = |s: &str| -> Result<u32, AigerError> {
        s.parse().map_err(|_| AigerError::BadHeader(header.clone()))
    };
    let m = parse(parts[1])?;
    let i = parse(parts[2])?;
    let l = parse(parts[3])?;
    let o = parse(parts[4])?;
    let a = parse(parts[5])?;
    if l != 0 {
        return Err(AigerError::LatchesUnsupported);
    }
    if u64::from(m) < u64::from(i) + u64::from(a) {
        // The maximum variable index cannot be smaller than the number of
        // variables the file goes on to define.
        return Err(AigerError::BadHeader(header.clone()));
    }

    let mut aig = Aig::new(name);
    // file literal → AigLit
    let mut lit_of: HashMap<u32, AigLit> = HashMap::new();
    lit_of.insert(0, AigLit::FALSE);
    lit_of.insert(1, AigLit::TRUE);

    let next_line = |cursor: &mut usize| -> Result<(String, usize), AigerError> {
        let line = all_lines.get(*cursor).ok_or(AigerError::BadLine {
            line: *cursor + 1,
            message: "unexpected end of file".into(),
        })?;
        *cursor += 1;
        Ok((line.clone(), *cursor))
    };

    // A definition literal (input or AND output) must be a fresh, even,
    // in-bounds variable — odd literals would silently invert the node and
    // redefinitions would clobber earlier ones.
    let check_def = |v: u32, lineno: usize, what: &str, defined: bool| -> Result<(), AigerError> {
        let err = |message: String| AigerError::BadLine {
            line: lineno,
            message,
        };
        if v & 1 == 1 {
            return Err(err(format!(
                "{what} literal {v} is complemented (definitions must be even)"
            )));
        }
        if v < 2 || v / 2 > m {
            return Err(err(format!(
                "{what} literal {v} is outside the declared bound m = {m}"
            )));
        }
        if defined {
            return Err(err(format!("{what} literal {v} is already defined")));
        }
        Ok(())
    };

    for k in 0..i {
        let (line, lineno) = next_line(&mut cursor)?;
        let v: u32 = line.trim().parse().map_err(|_| AigerError::BadLine {
            line: lineno,
            message: format!("bad input literal `{line}`"),
        })?;
        check_def(v, lineno, "input", lit_of.contains_key(&v))?;
        let lit = aig.input(format!("i{k}"));
        lit_of.insert(v, lit);
        lit_of.insert(v ^ 1, !lit);
    }
    let mut output_lits = Vec::with_capacity(o as usize);
    for _ in 0..o {
        let (line, lineno) = next_line(&mut cursor)?;
        let v: u32 = line.trim().parse().map_err(|_| AigerError::BadLine {
            line: lineno,
            message: format!("bad output literal `{line}`"),
        })?;
        if v / 2 > m {
            return Err(AigerError::BadLine {
                line: lineno,
                message: format!("output literal {v} is outside the declared bound m = {m}"),
            });
        }
        output_lits.push(v);
    }
    for _ in 0..a {
        let (line, lineno) = next_line(&mut cursor)?;
        let nums: Vec<u32> = line
            .split_whitespace()
            .map(|s| {
                s.parse().map_err(|_| AigerError::BadLine {
                    line: lineno,
                    message: format!("bad and line `{line}`"),
                })
            })
            .collect::<Result<_, _>>()?;
        if nums.len() != 3 {
            return Err(AigerError::BadLine {
                line: lineno,
                message: format!("and line needs 3 literals, got `{line}`"),
            });
        }
        let (lhs, r0, r1) = (nums[0], nums[1], nums[2]);
        check_def(lhs, lineno, "and", lit_of.contains_key(&lhs))?;
        let f0 = *lit_of.get(&r0).ok_or(AigerError::BadLine {
            line: lineno,
            message: format!("undefined literal {r0}"),
        })?;
        let f1 = *lit_of.get(&r1).ok_or(AigerError::BadLine {
            line: lineno,
            message: format!("undefined literal {r1}"),
        })?;
        let lit = aig.and(f0, f1);
        lit_of.insert(lhs, lit);
        lit_of.insert(lhs ^ 1, !lit);
    }

    // Symbol table: `i<pos> name` / `o<pos> name` lines, then an optional
    // comment section opened by a lone `c`. Anything else here is malformed.
    let mut input_syms: Vec<Option<String>> = vec![None; i as usize];
    let mut output_syms: Vec<Option<String>> = vec![None; o as usize];
    while cursor < all_lines.len() {
        let (line, lineno) = next_line(&mut cursor)?;
        if line.trim().is_empty() {
            // Tolerate editor-appended blank lines between the body and the
            // symbol table or at end of file (write_aag never emits them,
            // so the byte fixpoint is unaffected).
            continue;
        }
        if line == "c" {
            // First comment line, when present and non-empty, names the
            // design (write_aag puts the design name there).
            if let Some(n) = all_lines.get(cursor) {
                if !n.is_empty() {
                    aig.set_name(n.clone());
                }
            }
            break; // the rest of the file is free-form comment
        }
        let err = |message: String| AigerError::BadLine {
            line: lineno,
            message,
        };
        let (tag, sym) = line
            .split_once(' ')
            .ok_or_else(|| err(format!("malformed symbol line `{line}`")))?;
        if sym.is_empty() {
            return Err(err(format!("symbol line `{line}` has an empty name")));
        }
        let (kind, pos) = tag.split_at(1.min(tag.len()));
        let slot = match kind {
            "i" => &mut input_syms,
            "o" => &mut output_syms,
            "l" => return Err(AigerError::LatchesUnsupported),
            _ => return Err(err(format!("malformed symbol line `{line}`"))),
        };
        let pos: usize = pos
            .parse()
            .map_err(|_| err(format!("bad symbol position in `{line}`")))?;
        let entry = slot
            .get_mut(pos)
            .ok_or_else(|| err(format!("symbol position {pos} out of range in `{line}`")))?;
        if entry.is_some() {
            return Err(err(format!("duplicate symbol `{tag}`")));
        }
        *entry = Some(sym.to_string());
    }
    for (k, sym) in input_syms.into_iter().enumerate() {
        if let Some(sym) = sym {
            aig.set_input_name(k, sym);
        }
    }

    for (k, &v) in output_lits.iter().enumerate() {
        let lit = *lit_of.get(&v).ok_or(AigerError::BadLine {
            line: cursor,
            message: format!("undefined output literal {v}"),
        })?;
        let name = output_syms[k].take().unwrap_or_else(|| format!("o{k}"));
        aig.output(name, lit);
    }
    Ok(aig)
}
