//! Switchable synchronization primitives — the crate's single gateway to
//! `std::sync`/`std::thread` concurrency.
//!
//! Production builds re-export the std primitives unchanged (this module
//! compiles to pure renames; the default build stays std-only). Under the
//! `chk` cargo feature the same names resolve to the model-checked shims
//! from the in-tree `chk` crate, so the synchronization skeletons of
//! [`par`](crate::par) and the cut frontier can be exhaustively
//! schedule-explored by `tests/chk_models.rs` without a separate copy of
//! the protocol code. The workspace `srclint` enforces the funnel: raw
//! `std::sync::Mutex`/`Condvar`/`std::thread::spawn` outside per-crate
//! `sync.rs` modules (and tests) fail the lint.
//!
//! [`Once`] is always the std type: it guards one-time *initialization*
//! (fault-point registries), not a schedule-sensitive protocol, and the
//! model checker does not model it.

#[cfg(feature = "chk")]
pub use chk::sync::{
    AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard, OnceLock,
};
#[cfg(feature = "chk")]
pub use chk::thread::{spawn_scoped, ScopedJoinHandle};

#[cfg(not(feature = "chk"))]
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
#[cfg(not(feature = "chk"))]
pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
#[cfg(not(feature = "chk"))]
pub use std::thread::ScopedJoinHandle;

pub use std::sync::atomic::Ordering;
pub use std::sync::Once;

/// Spawns a scoped thread; the `chk` build swaps in the model-checked
/// wrapper. Model rule (vacuous for std builds): join every handle before
/// its scope closes.
#[cfg(not(feature = "chk"))]
pub fn spawn_scoped<'scope, 'env, F, T>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    f: F,
) -> ScopedJoinHandle<'scope, T>
where
    F: FnOnce() -> T + Send + 'scope,
    T: Send + 'scope,
{
    scope.spawn(f)
}
