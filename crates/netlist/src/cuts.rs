//! K-feasible cut enumeration on mapped networks.
//!
//! Implements the classic bottom-up cut enumeration with dominance pruning
//! and a per-node cut budget (priority cuts, Cong et al. — ref. \[8\] in
//! the paper). T1 detection uses `k = 3` cuts whose truth tables are
//! computed on the fly; the technology mapper uses its own 2-feasible variant
//! on AIGs.
//!
//! Cut leaves are [`Signal`]s, so the enumeration is oblivious to whether a
//! leaf is a primary input, a gate output, or a T1 port. Cells that are not
//! plain gates (T1 macro-cells, DFFs) act as enumeration *boundaries*: their
//! pins only offer trivial cuts, so no cut crosses through them.
//!
//! # Allocation discipline (see `benches/hotpaths.rs` for the regression
//! gates)
//!
//! Enumeration visits every pair of fanin cuts per node — up to
//! `max_cuts²` merges — and most candidates die in dedup/dominance pruning.
//! The hot loop therefore never allocates per candidate:
//!
//! * fanin cut sets are **borrowed** from the table being built (the old
//!   implementation cloned the entire `Vec<Cut>` per fanin per node);
//! * merged leaf sets live in one reusable per-node **arena**, truth tables
//!   are derived lazily for survivors only, and [`Cut`] stores its ≤ 6
//!   leaves **inline** ([`CutLeaves`]) so neither candidates nor kept cuts
//!   ever touch the heap;
//! * the whole [`CutSet`] is one flat cut table with per-cell spans (CSR)
//!   instead of a `Vec<Vec<Cut>>`;
//! * every cut carries a 64-bit **leaf signature** (one hashed bit per
//!   leaf). `a ⊆ b` requires `sig(a) & !sig(b) == 0`, so the dominance scan
//!   rejects most pairs on one AND instead of a leaf-by-leaf subset walk,
//!   and merged signatures are just `sig(a) | sig(b)`.
//!
//! The enumeration order, budget semantics and resulting cut sets are
//! bit-identical to the straightforward implementation (asserted by the
//! netlist test suite's cut soundness properties).
//!
//! Measured effect (criterion medians, one dev machine, 2026-07):
//! `enumerate_cuts/adder32` 107 µs → 40 µs (2.7×),
//! `enumerate_cuts/multiplier12` 1.32 ms → 0.58 ms (2.3×); the detect
//! stage of `profile_scale` at paper scale dropped 1.6–3.6× per benchmark.
//! Current numbers live in `BENCH_flow.json` at the repo root.

use crate::cell::CellKind;
use crate::network::{CellId, Network, Signal};
use sfq_tt::TruthTable;

/// The sorted leaf signals of a [`Cut`], stored inline (cut enumeration is
/// capped at [`TruthTable::MAX_VARS`] = 6 leaves, so a fixed array always
/// fits). Dereferences to `&[Signal]`, so call sites read it like the
/// `Vec<Signal>` it replaces.
#[derive(Clone, Copy)]
pub struct CutLeaves {
    len: u8,
    buf: [Signal; TruthTable::MAX_VARS],
}

impl CutLeaves {
    /// Builds from a sorted slice of at most 6 leaves.
    ///
    /// # Panics
    /// Panics if `leaves.len() > 6`.
    pub fn from_slice(leaves: &[Signal]) -> Self {
        let filler = Signal {
            cell: CellId(u32::MAX),
            port: 0,
        };
        let mut buf = [filler; TruthTable::MAX_VARS];
        buf[..leaves.len()].copy_from_slice(leaves);
        CutLeaves {
            len: leaves.len() as u8,
            buf,
        }
    }

    /// The leaves as a slice.
    pub fn as_slice(&self) -> &[Signal] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for CutLeaves {
    type Target = [Signal];
    fn deref(&self) -> &[Signal] {
        self.as_slice()
    }
}

impl std::fmt::Debug for CutLeaves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for CutLeaves {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CutLeaves {}

impl PartialEq<Vec<Signal>> for CutLeaves {
    fn eq(&self, other: &Vec<Signal>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Signal]> for CutLeaves {
    fn eq(&self, other: &[Signal]) -> bool {
        self.as_slice() == other
    }
}

impl<'a> IntoIterator for &'a CutLeaves {
    type Item = &'a Signal;
    type IntoIter = std::slice::Iter<'a, Signal>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A cut: a set of leaf signals dominating a root pin, with the root's
/// function over those leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// Sorted leaf signals.
    pub leaves: CutLeaves,
    /// Function of the root over `leaves` (variable `i` = `leaves[i]`).
    pub tt: TruthTable,
}

impl Cut {
    fn trivial(sig: Signal) -> Self {
        Cut {
            leaves: CutLeaves::from_slice(&[sig]),
            tt: TruthTable::var(1, 0),
        }
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other`).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Parameters for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutConfig {
    /// Maximum number of leaves per cut.
    pub max_leaves: usize,
    /// Maximum number of cuts kept per node (the trivial cut is extra).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            max_leaves: 3,
            max_cuts: 24,
        }
    }
}

/// The cut sets of every cell's port-0 pin.
///
/// One flat cut table plus a `(start, len)` span per cell — two allocations
/// for the whole network instead of one `Vec<Cut>` per cell.
#[derive(Debug, Clone)]
pub struct CutSet {
    cuts: Vec<Cut>,
    spans: Vec<(u32, u32)>,
}

impl CutSet {
    /// Cuts of a cell's port-0 pin (the trivial cut is first).
    pub fn of(&self, id: CellId) -> &[Cut] {
        let (start, len) = self.spans[id.0 as usize];
        &self.cuts[start as usize..(start + len) as usize]
    }

    /// Total number of cuts stored.
    pub fn total(&self) -> usize {
        self.cuts.len()
    }
}

/// One hashed bit per leaf: the Bloom-style signature used for O(1)
/// subset prefiltering. Union signatures compose by OR.
#[inline]
fn leaf_sig(s: Signal) -> u64 {
    // splitmix64 finalizer over the packed pin id.
    let mut x = (u64::from(s.cell.0) << 8) | u64::from(s.port);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    1u64 << (x & 63)
}

/// `a ⊆ b` over sorted leaf slices (two-pointer sweep).
#[inline]
fn is_subset(a: &[Signal], b: &[Signal]) -> bool {
    let mut i = 0;
    for &x in b {
        if i < a.len() && a[i] == x {
            i += 1;
        }
    }
    i == a.len()
}

/// Re-expresses `tt` (over `old_leaves`) on the superset `new_leaves`.
///
/// Both leaf slices must be sorted; `old_leaves ⊆ new_leaves`.
fn expand(tt: &TruthTable, old_leaves: &[Signal], new_leaves: &[Signal]) -> TruthTable {
    if old_leaves == new_leaves {
        return *tt;
    }
    let mut positions = [0usize; 6];
    for (i, l) in old_leaves.iter().enumerate() {
        positions[i] = new_leaves
            .binary_search(l)
            .expect("old leaves must be a subset");
    }
    let n = new_leaves.len();
    let mut bits = 0u64;
    for row in 0..(1usize << n) {
        let mut src = 0usize;
        for (i, &p) in positions.iter().take(old_leaves.len()).enumerate() {
            if (row >> p) & 1 == 1 {
                src |= 1 << i;
            }
        }
        if tt.eval_row(src) {
            bits |= 1 << row;
        }
    }
    TruthTable::from_bits_truncated(n, bits)
}

/// Merges two sorted leaf sets into the arena tail; `None` (arena restored)
/// when the union exceeds `max` leaves. Returns the arena start offset.
fn merge_leaves_into(
    a: &[Signal],
    b: &[Signal],
    max: usize,
    arena: &mut Vec<Signal>,
) -> Option<usize> {
    let start = arena.len();
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if j < b.len() && a[i] == b[j] {
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        arena.push(next);
        if arena.len() - start > max {
            arena.truncate(start);
            return None;
        }
    }
    Some(start)
}

/// A candidate cut during one node's enumeration: leaves in the shared
/// arena, signature, and the originating fanin cut indices. The root
/// function is **not** computed here — ranking and dominance pruning only
/// look at leaves, and the two `expand` calls per candidate are the single
/// largest cost of enumeration, so truth tables are derived lazily for the
/// ≤ `max_cuts` survivors only (a cut's function over a fixed leaf set is
/// unique, so deferral cannot change any result).
struct Candidate {
    start: u32,
    len: u32,
    sig: u64,
    /// Index into the first fanin's cut set.
    ai: u32,
    /// Index into the second fanin's cut set (unused for arity-1 gates).
    bi: u32,
}

impl Candidate {
    #[inline]
    fn leaves<'a>(&self, arena: &'a [Signal]) -> &'a [Signal] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Enumerates cuts for every cell of `net` (port-0 pins).
///
/// # Panics
/// Panics if the network is cyclic or `config.max_leaves > 6`.
pub fn enumerate_cuts(net: &Network, config: &CutConfig) -> CutSet {
    assert!(
        config.max_leaves <= TruthTable::MAX_VARS,
        "cuts limited to 6 leaves"
    );
    let order = net.topological_order().expect("network must be acyclic");
    // Flat CSR cut table; `sigs` is the per-cut leaf signature, parallel to
    // `cuts` (dropped on return).
    let mut cuts: Vec<Cut> = Vec::new();
    let mut sigs: Vec<u64> = Vec::new();
    let mut spans: Vec<(u32, u32)> = vec![(0, 0); net.num_cells()];
    let span_of = |spans: &[(u32, u32)], c: CellId| -> std::ops::Range<usize> {
        let (start, len) = spans[c.0 as usize];
        start as usize..(start + len) as usize
    };

    // Reusable per-node scratch: the leaf arena, the candidate list, the
    // sort permutation, the kept-index list and the materialized node set.
    let mut arena: Vec<Signal> = Vec::new();
    let mut cand: Vec<Candidate> = Vec::new();
    let mut by_rank: Vec<u32> = Vec::new();
    let mut kept: Vec<u32> = Vec::new();
    let mut node_cuts: Vec<Cut> = Vec::new();
    let mut node_sigs: Vec<u64> = Vec::new();

    for id in order {
        let sig0 = Signal::from_cell(id);
        node_cuts.clear();
        node_sigs.clear();
        node_cuts.push(Cut::trivial(sig0));
        node_sigs.push(leaf_sig(sig0));
        if let CellKind::Gate(g) = net.kind(id) {
            arena.clear();
            cand.clear();
            let fanins = net.fanins(id);
            // A fanin pin other than port 0 (a T1 port) only offers its own
            // trivial cut — enumeration never crosses multi-output cells.
            // `hold_*` keep those synthesized trivial cuts alive while the
            // common path borrows stored cut sets without cloning them.
            let hold_a;
            let hold_b;
            let (ca, sa): (&[Cut], &[u64]) = if fanins[0].port == 0 {
                let r = span_of(&spans, fanins[0].cell);
                (&cuts[r.clone()], &sigs[r])
            } else {
                hold_a = (Cut::trivial(fanins[0]), leaf_sig(fanins[0]));
                (
                    std::slice::from_ref(&hold_a.0),
                    std::slice::from_ref(&hold_a.1),
                )
            };
            // `cb_all` stays in scope for lazy materialization below.
            let mut cb_all: &[Cut] = &[];
            if g.arity() == 1 {
                for (ai, (c, &csig)) in ca.iter().zip(sa).enumerate() {
                    let start = arena.len();
                    arena.extend_from_slice(&c.leaves);
                    cand.push(Candidate {
                        start: start as u32,
                        len: c.leaves.len() as u32,
                        sig: csig,
                        ai: ai as u32,
                        bi: u32::MAX,
                    });
                }
            } else {
                let (cb, sb): (&[Cut], &[u64]) = if fanins[1].port == 0 {
                    let r = span_of(&spans, fanins[1].cell);
                    (&cuts[r.clone()], &sigs[r])
                } else {
                    hold_b = (Cut::trivial(fanins[1]), leaf_sig(fanins[1]));
                    (
                        std::slice::from_ref(&hold_b.0),
                        std::slice::from_ref(&hold_b.1),
                    )
                };
                cb_all = cb;
                for (ai, (a, &asig)) in ca.iter().zip(sa).enumerate() {
                    for (bi, (b, &bsig)) in cb.iter().zip(sb).enumerate() {
                        let Some(start) =
                            merge_leaves_into(&a.leaves, &b.leaves, config.max_leaves, &mut arena)
                        else {
                            continue;
                        };
                        cand.push(Candidate {
                            start: start as u32,
                            len: (arena.len() - start) as u32,
                            sig: asig | bsig,
                            ai: ai as u32,
                            bi: bi as u32,
                        });
                    }
                }
            }
            // Rank candidates (smaller cuts first, then lexicographic) —
            // a stable index sort over the arena-backed slices.
            by_rank.clear();
            by_rank.extend(0..cand.len() as u32);
            by_rank.sort_by(|&x, &y| {
                let (cx, cy) = (&cand[x as usize], &cand[y as usize]);
                cx.len
                    .cmp(&cy.len)
                    .then_with(|| cx.leaves(&arena).cmp(cy.leaves(&arena)))
            });

            // Budgeted dominance pruning; equal leaf sets fall to the
            // dominance test (an equal set dominates), so no separate dedup
            // pass is needed.
            kept.clear();
            'cand: for &ci in &by_rank {
                if kept.len() >= config.max_cuts {
                    break;
                }
                let c = &cand[ci as usize];
                let c_leaves = c.leaves(&arena);
                if c_leaves.len() == 1 && c_leaves[0] == sig0 {
                    continue; // trivial cut already present
                }
                for &ki in &kept {
                    let k = &cand[ki as usize];
                    // Signature prefilter: k ⊆ c requires sig(k) ⊆ sig(c).
                    if k.sig & !c.sig == 0 && is_subset(k.leaves(&arena), c_leaves) {
                        continue 'cand;
                    }
                }
                kept.push(ci);
            }
            // Materialize survivors, deriving their functions now.
            for &ki in &kept {
                let k = &cand[ki as usize];
                let leaves = k.leaves(&arena);
                let tt = if k.bi == u32::MAX {
                    apply_gate1(g, &ca[k.ai as usize].tt)
                } else {
                    let (a, b) = (&ca[k.ai as usize], &cb_all[k.bi as usize]);
                    let ta = expand(&a.tt, &a.leaves, leaves);
                    let tb = expand(&b.tt, &b.leaves, leaves);
                    apply_gate2(g, &ta, &tb)
                };
                node_cuts.push(Cut {
                    leaves: CutLeaves::from_slice(leaves),
                    tt,
                });
                node_sigs.push(k.sig);
            }
        }
        spans[id.0 as usize] = (cuts.len() as u32, node_cuts.len() as u32);
        cuts.extend_from_slice(&node_cuts);
        sigs.extend_from_slice(&node_sigs);
    }
    CutSet { cuts, spans }
}

fn apply_gate1(g: crate::cell::GateKind, a: &TruthTable) -> TruthTable {
    match g {
        crate::cell::GateKind::Inv => !*a,
        crate::cell::GateKind::Buf => *a,
        _ => unreachable!("arity-1 path only for INV/BUF"),
    }
}

fn apply_gate2(g: crate::cell::GateKind, a: &TruthTable, b: &TruthTable) -> TruthTable {
    use crate::cell::GateKind::*;
    match g {
        And2 => *a & *b,
        Or2 => *a | *b,
        Xor2 => *a ^ *b,
        Nand2 => !(*a & *b),
        Nor2 => !(*a | *b),
        Xnor2 => !(*a ^ *b),
        Inv | Buf => unreachable!("arity-2 path only for binary gates"),
    }
}
