//! K-feasible cut enumeration on mapped networks.
//!
//! Implements the classic bottom-up cut enumeration with dominance pruning
//! and a per-node cut budget (priority cuts, Cong et al. — ref. \[8\] in
//! the paper). T1 detection uses `k = 3` cuts whose truth tables are
//! computed on the fly; the technology mapper uses its own 2-feasible variant
//! on AIGs.
//!
//! Cut leaves are [`Signal`]s, so the enumeration is oblivious to whether a
//! leaf is a primary input, a gate output, or a T1 port. Cells that are not
//! plain gates (T1 macro-cells, DFFs) act as enumeration *boundaries*: their
//! pins only offer trivial cuts, so no cut crosses through them.
//!
//! # Allocation discipline (see `benches/hotpaths.rs` for the regression
//! gates)
//!
//! Enumeration visits every pair of fanin cuts per node — up to
//! `max_cuts²` merges — and most candidates die before they cost anything.
//! The hot loop never allocates per candidate:
//!
//! * fanin cut sets are **borrowed** from the table being built (the old
//!   implementation cloned the entire `Vec<Cut>` per fanin per node);
//! * merged leaf sets live in one reusable per-node **arena**, truth tables
//!   are derived lazily for survivors only, and [`Cut`] stores its ≤ 6
//!   leaves **inline** ([`CutLeaves`]) so neither candidates nor kept cuts
//!   ever touch the heap;
//! * the whole [`CutSet`] is one flat cut table with per-cell spans (CSR)
//!   instead of a `Vec<Vec<Cut>>`, reserved up front;
//! * every cut carries a 256-bit **leaf signature** ([`sfq_tt::Sig256`] —
//!   four `u64` lanes, one hashed bit per leaf, all ops autovectorizable
//!   lane-wise code). Signatures drive three rejections: the
//!   **reconvergence-aware prefilter** (`popcount(sig(a) | sig(b)) >
//!   max_leaves` proves the union cannot fit the budget, killing the large
//!   majority of merge attempts on one wide popcount — only reconvergent
//!   pairs, whose shared leaves share bits, survive to a real merge), the
//!   dominance scan's subset prefilter (`k ⊆ c` requires
//!   `sig(k) ⊆ sig(c)` as bit sets), and the cheap half of candidate
//!   dedup. The 256-bit index refines the retired 64-bit one
//!   (`index mod 64` is unchanged), so the wide prefilter provably rejects
//!   a superset of what the one-word version rejected while staying sound
//!   (see the `sig256` proptests in `src/tests.rs`);
//! * candidates carry their leaves **packed into two `u128` words**, so
//!   push-time dedup is word equality and the `(size, lexicographic)`
//!   ranking is an unstable integer-key sort (valid because dedup leaves no
//!   ties);
//! * `merge_leaves_into` records which union positions came from which
//!   fanin, so survivor functions are derived by mask-driven block
//!   duplication (`insert_var`) with no leaf comparisons or per-row bit
//!   gathering.
//!
//! The enumeration order, budget semantics and resulting cut sets are
//! bit-identical to the straightforward implementation (asserted by the
//! netlist test suite's cut soundness properties and by
//! `tests/differential_mapping.rs`, which also A/Bs the feature-gated
//! work-stealing frontier driver ([`enumerate_cuts_frontier`]) against
//! [`enumerate_cuts_sequential`]).
//!
//! Measured effect (criterion medians, one dev machine; trajectory in
//! `BENCH_flow.json` at the repo root): PR 1 took `enumerate_cuts/adder32`
//! 107 µs → 40 µs and `enumerate_cuts/multiplier12` 1.32 ms → 0.58 ms; the
//! ISSUE 3 prefilter/dedup/packed-key pass took `multiplier12` on to
//! 297 µs (1.9×) and paper-scale `enumerate_cuts/log2` 30.3 ms → 16.9 ms
//! (1.8×).

use crate::cell::CellKind;
use crate::network::{CellId, Network, Signal};
use sfq_tt::{Sig256, TruthTable};

/// The sorted leaf signals of a [`Cut`], stored inline (cut enumeration is
/// capped at [`TruthTable::MAX_VARS`] = 6 leaves, so a fixed array always
/// fits). Dereferences to `&[Signal]`, so call sites read it like the
/// `Vec<Signal>` it replaces.
#[derive(Clone, Copy)]
pub struct CutLeaves {
    len: u8,
    buf: [Signal; TruthTable::MAX_VARS],
}

impl CutLeaves {
    /// Builds from a sorted slice of at most 6 leaves.
    ///
    /// # Panics
    /// Panics if `leaves.len() > 6`.
    pub fn from_slice(leaves: &[Signal]) -> Self {
        let filler = Signal {
            cell: CellId(u32::MAX),
            port: 0,
        };
        let mut buf = [filler; TruthTable::MAX_VARS];
        buf[..leaves.len()].copy_from_slice(leaves);
        CutLeaves {
            len: leaves.len() as u8,
            buf,
        }
    }

    /// The leaves as a slice.
    pub fn as_slice(&self) -> &[Signal] {
        &self.buf[..self.len as usize]
    }
}

impl std::ops::Deref for CutLeaves {
    type Target = [Signal];
    fn deref(&self) -> &[Signal] {
        self.as_slice()
    }
}

impl std::fmt::Debug for CutLeaves {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl PartialEq for CutLeaves {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for CutLeaves {}

impl PartialEq<Vec<Signal>> for CutLeaves {
    fn eq(&self, other: &Vec<Signal>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Signal]> for CutLeaves {
    fn eq(&self, other: &[Signal]) -> bool {
        self.as_slice() == other
    }
}

impl<'a> IntoIterator for &'a CutLeaves {
    type Item = &'a Signal;
    type IntoIter = std::slice::Iter<'a, Signal>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// A cut: a set of leaf signals dominating a root pin, with the root's
/// function over those leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cut {
    /// Sorted leaf signals.
    pub leaves: CutLeaves,
    /// Function of the root over `leaves` (variable `i` = `leaves[i]`).
    pub tt: TruthTable,
}

impl Cut {
    fn trivial(sig: Signal) -> Self {
        Cut {
            leaves: CutLeaves::from_slice(&[sig]),
            tt: TruthTable::var(1, 0),
        }
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other`).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self
                .leaves
                .iter()
                .all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Parameters for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutConfig {
    /// Maximum number of leaves per cut.
    pub max_leaves: usize,
    /// Maximum number of cuts kept per node (the trivial cut is extra).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            max_leaves: 3,
            max_cuts: 24,
        }
    }
}

/// The cut sets of every cell's port-0 pin.
///
/// One flat cut table plus a `(start, len)` span per cell — two allocations
/// for the whole network instead of one `Vec<Cut>` per cell.
#[derive(Debug, Clone)]
pub struct CutSet {
    cuts: Vec<Cut>,
    spans: Vec<(u32, u32)>,
}

impl CutSet {
    /// Cuts of a cell's port-0 pin (the trivial cut is first).
    pub fn of(&self, id: CellId) -> &[Cut] {
        let (start, len) = self.spans[id.0 as usize];
        &self.cuts[start as usize..(start + len) as usize]
    }

    /// Total number of cuts stored.
    pub fn total(&self) -> usize {
        self.cuts.len()
    }
}

/// Hash of a leaf pin feeding the signature bit index — the splitmix64
/// finalizer over the packed pin id. [`leaf_sig`] keeps the low 8 bits;
/// the retired one-word signature kept the low 6, so the 256-bit bit index
/// refines the 64-bit one (`index mod 64` is unchanged) — the property
/// that makes the wide prefilter reject a per-instance superset of what
/// the narrow one rejected (pinned by the `sig256` proptests).
#[inline]
pub(crate) fn leaf_hash(s: Signal) -> u64 {
    let mut x = (u64::from(s.cell.0) << 8) | u64::from(s.port);
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// One hashed bit per leaf: the Bloom-style 256-bit signature used for
/// O(1) subset prefiltering. Union signatures compose by OR; four `u64`
/// lanes are probed per signature operation ([`Sig256`]).
#[inline]
fn leaf_sig(s: Signal) -> Sig256 {
    Sig256::bit(leaf_hash(s))
}

/// `a ⊆ b` over sorted leaf slices (two-pointer sweep).
#[inline]
fn is_subset(a: &[Signal], b: &[Signal]) -> bool {
    let mut i = 0;
    for &x in b {
        if i < a.len() && a[i] == x {
            i += 1;
        }
    }
    i == a.len()
}

/// Inserts a fresh don't-care variable at position `j` of an `m`-variable
/// output column: every aligned block of `2^j` rows is duplicated, shifting
/// the upper variables one position up. `O(2^(m-j))` word operations instead
/// of a row-by-row rebuild.
#[inline]
fn insert_var(bits: u64, m: usize, j: usize) -> u64 {
    let blk = 1usize << j;
    if blk >= 64 {
        unreachable!("inserting into a 6-variable table would need 128 rows");
    }
    let mask = (1u64 << blk) - 1;
    let mut out = 0u64;
    let mut src = 0usize;
    let mut dst = 0usize;
    while src < (1usize << m) {
        let chunk = (bits >> src) & mask;
        out |= (chunk | (chunk << blk)) << dst;
        src += blk;
        dst += 2 * blk;
    }
    out
}

/// Re-expresses `tt` (over the leaves selected by `mask` out of an `n`-leaf
/// union) on the full union: inserts a don't-care variable at every union
/// position whose `mask` bit is clear. The mask comes from
/// [`merge_leaves_into`], so no leaf comparisons happen here at all.
fn expand_masked(tt: &TruthTable, mask: u8, n: usize) -> TruthTable {
    if mask == (1u8 << n) - 1 {
        return *tt; // every union position is an own leaf — identity
    }
    let mut bits = tt.bits();
    let mut m = tt.num_vars();
    for j in 0..n {
        if mask >> j & 1 == 0 {
            bits = insert_var(bits, m, j);
            m += 1;
        }
    }
    debug_assert_eq!(m, n, "mask popcount must match tt arity");
    TruthTable::from_bits_truncated(n, bits)
}

/// Merges two sorted leaf sets into the arena tail; `None` (arena restored)
/// when the union exceeds `max` leaves. Returns the arena start offset plus
/// two position masks: bit `p` of `amask` (`bmask`) is set when union
/// position `p` holds a leaf of `a` (`b`). The masks let [`expand_masked`]
/// re-express the fanin functions over the union without ever comparing
/// leaf signals again.
fn merge_leaves_into(
    a: &[Signal],
    b: &[Signal],
    max: usize,
    arena: &mut Vec<Signal>,
) -> Option<(usize, u8, u8)> {
    let start = arena.len();
    let (mut i, mut j) = (0, 0);
    let (mut amask, mut bmask) = (0u8, 0u8);
    while i < a.len() || j < b.len() {
        let p = arena.len() - start;
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if j < b.len() && a[i] == b[j] {
                j += 1;
                bmask |= 1 << p;
            }
            amask |= 1 << p;
            let v = a[i];
            i += 1;
            v
        } else {
            bmask |= 1 << p;
            let v = b[j];
            j += 1;
            v
        };
        arena.push(next);
        if arena.len() - start > max {
            arena.truncate(start);
            return None;
        }
    }
    Some((start, amask, bmask))
}

/// A candidate cut during one node's enumeration: leaves in the shared
/// arena, signature, and the originating fanin cut indices. The root
/// function is **not** computed here — ranking and dominance pruning only
/// look at leaves, and the two `expand` calls per candidate are the single
/// largest cost of enumeration, so truth tables are derived lazily for the
/// ≤ `max_cuts` survivors only (a cut's function over a fixed leaf set is
/// unique, so deferral cannot change any result).
struct Candidate {
    start: u32,
    len: u32,
    sig: Sig256,
    /// Packed leaf words (see [`pack_leaves`]): `(len, key)` is the ranking
    /// order and `key` equality is leaf-set equality.
    key: (u128, u128),
    /// Index into the first fanin's cut set.
    ai: u32,
    /// Index into the second fanin's cut set (unused for arity-1 gates).
    bi: u32,
    /// Union positions holding a leaf of cut `ai` (see [`merge_leaves_into`]).
    amask: u8,
    /// Union positions holding a leaf of cut `bi`.
    bmask: u8,
}

/// Packs a sorted leaf slice into two `u128` words (up to three 40-bit
/// packed pin ids per word) whose numeric order equals lexicographic order
/// on the slice *within one length class*. Together with the leaf count this
/// is a total order over candidate cuts, so ranking needs no slice
/// comparisons and dedup is exact word equality.
#[inline]
fn pack_leaves(leaves: &[Signal]) -> (u128, u128) {
    #[inline]
    fn pack3(leaves: &[Signal]) -> u128 {
        let mut key = 0u128;
        for l in leaves {
            key = (key << 40) | u128::from((u64::from(l.cell.0) << 8) | u64::from(l.port));
        }
        key
    }
    let (head, tail) = leaves.split_at(leaves.len().min(3));
    (pack3(head), pack3(tail))
}

impl Candidate {
    #[inline]
    fn leaves<'a>(&self, arena: &'a [Signal]) -> &'a [Signal] {
        &arena[self.start as usize..(self.start + self.len) as usize]
    }
}

/// Enumerates cuts for every cell of `net` (port-0 pins).
///
/// # Panics
/// Panics if the network is cyclic or `config.max_leaves > 6`.
pub fn enumerate_cuts(net: &Network, config: &CutConfig) -> CutSet {
    #[cfg(feature = "parallel")]
    {
        let workers = crate::par::workers();
        // A fan-out must amortize its thread spawns and scheduler state;
        // small networks run the plain loop.
        if workers > 1 && net.num_cells() >= 1024 {
            return enumerate_cuts_frontier(net, config, workers);
        }
    }
    enumerate_cuts_sequential(net, config)
}

/// The sequential cut enumeration — the executable specification of the
/// feature-gated parallel driver. [`enumerate_cuts`] dispatches here unless
/// the `parallel` feature is on *and* the host has more than one core; the
/// differential tests assert per-node equality of both paths' cut sets.
///
/// # Panics
/// Panics if the network is cyclic or `config.max_leaves > 6`.
pub fn enumerate_cuts_sequential(net: &Network, config: &CutConfig) -> CutSet {
    assert!(
        config.max_leaves <= TruthTable::MAX_VARS,
        "cuts limited to 6 leaves"
    );
    let order = net.topological_order().expect("network must be acyclic");
    // Flat CSR cut table; `sigs` is the per-cut leaf signature, parallel to
    // `cuts` (dropped on return).
    // Reserve for the trivial cut plus a few survivors per node (the
    // all-benchmark average is ~4.6 cuts/node at the default budget), so the
    // 17 MB-scale table of a paper-size run grows without repeated copies.
    let mut cuts: Vec<Cut> = Vec::with_capacity(net.num_cells() * 6);
    let mut sigs: Vec<Sig256> = Vec::with_capacity(net.num_cells() * 6);
    let mut spans: Vec<(u32, u32)> = vec![(0, 0); net.num_cells()];
    let mut scratch = NodeScratch::default();
    for id in order {
        // Cooperative deadline/ceiling check for supervised flows; a no-op
        // (one thread-local read) when no budget is installed.
        crate::budget::tick(1);
        compute_node_cuts(
            net,
            id,
            config,
            |c| {
                let (start, len) = spans[c.0 as usize];
                let r = start as usize..(start + len) as usize;
                (&cuts[r.clone()], &sigs[r])
            },
            &mut scratch,
        );
        spans[id.0 as usize] = (cuts.len() as u32, (scratch.kept.len() + 1) as u32);
        emit_node_cuts(id, &scratch, &mut cuts, &mut sigs);
    }
    CutSet { cuts, spans }
}

/// One finished node's cut set, published for successors to read. `sigs` is
/// parallel to `cuts` (needed by successors' prefilters, dropped at final
/// assembly).
#[cfg(feature = "parallel")]
struct NodeOut {
    cuts: Vec<Cut>,
    sigs: Vec<Sig256>,
}

/// Sets the abort flag and wakes every blocked worker when dropped while
/// armed — the unwind path of a panicking frontier worker. Without this a
/// panic (injected fault, budget abort) would leave peers parked on the
/// condvar forever.
#[cfg(feature = "parallel")]
struct FrontierAbort<'a> {
    abort: &'a crate::sync::AtomicBool,
    ready: &'a crate::sync::Mutex<Vec<u32>>,
    cv: &'a crate::sync::Condvar,
    armed: bool,
}

#[cfg(feature = "parallel")]
impl Drop for FrontierAbort<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.abort.store(true, crate::sync::Ordering::Release);
            // Taking the queue lock before notifying closes the race with a
            // worker that just checked the flag and is about to wait. A
            // poisoned lock is fine — we only need the mutual exclusion.
            let _q = self.ready.lock();
            self.cv.notify_all();
        }
    }
}

/// Work-stealing parallel enumeration (the `parallel` feature): every node
/// carries an atomic countdown of its unfinished fanins; workers claim
/// ready nodes from a shared queue (plus a thread-local depth-first stack
/// for the cache-friendly common case of one successor becoming ready),
/// compute the node against its fanins' **published** cut sets, and
/// decrement their successors. Unlike the retired level-synchronous driver
/// there is no barrier: a narrow level no longer idles workers, because
/// readiness is per-node, not per-level.
///
/// Determinism: a node's cuts depend only on its fanins' stored cut sets
/// and [`compute_node_cuts`] is shared with the sequential path, so every
/// node's cut set is **bit-identical** to [`enumerate_cuts_sequential`]'s
/// for any worker count or schedule. The final assembly writes the flat
/// table in ascending cell-index order, so even the CSR bytes are
/// schedule-independent.
///
/// # Panics
/// Panics if the network is cyclic or `config.max_leaves > 6`; worker
/// panics (injected faults, budget aborts on the coordinator) are resumed
/// on the calling thread with their original payload.
#[cfg(feature = "parallel")]
pub fn enumerate_cuts_frontier(net: &Network, config: &CutConfig, workers: usize) -> CutSet {
    use crate::sync::{AtomicBool, AtomicU32, AtomicUsize, Condvar, Mutex, OnceLock, Ordering};

    assert!(
        config.max_leaves <= TruthTable::MAX_VARS,
        "cuts limited to 6 leaves"
    );
    // Validate acyclicity up front, mirroring the sequential path's panic;
    // the countdown scheduler itself would otherwise just deadlock on a
    // cycle, which is a much worse failure mode.
    net.topological_order().expect("network must be acyclic");
    let n = net.num_cells();

    // Dependency counts and the fanout CSR. One dependency per *gate fanin
    // edge* read through port 0 — non-port-0 pins (T1 ports) only offer
    // synthesized trivial cuts, and non-gate cells read nothing. A cell
    // feeding both inputs of one gate contributes two edges; counts and
    // decrements agree because both derive from the same loop.
    let mut pending_init = vec![0u32; n];
    let mut succ_starts = vec![0u32; n + 1];
    for (i, pending) in pending_init.iter_mut().enumerate() {
        if let CellKind::Gate(_) = net.kind(CellId(i as u32)) {
            for f in net.fanins(CellId(i as u32)) {
                if f.port == 0 {
                    *pending += 1;
                    succ_starts[f.cell.0 as usize + 1] += 1;
                }
            }
        }
    }
    for i in 0..n {
        succ_starts[i + 1] += succ_starts[i];
    }
    let mut cursor: Vec<u32> = succ_starts[..n].to_vec();
    let mut successors = vec![0u32; succ_starts[n] as usize];
    for i in 0..n {
        if let CellKind::Gate(_) = net.kind(CellId(i as u32)) {
            for f in net.fanins(CellId(i as u32)) {
                if f.port == 0 {
                    let p = f.cell.0 as usize;
                    successors[cursor[p] as usize] = i as u32;
                    cursor[p] += 1;
                }
            }
        }
    }

    // Budgets are thread-local (worker ticks would be no-ops), so the
    // coordinator charges the whole network up front — the same unit total
    // the sequential path accumulates, keeping node-ceiling aborts
    // deterministic across builds and worker counts.
    crate::budget::tick(n as u64);

    let initial: Vec<u32> = (0..n as u32)
        .filter(|&i| pending_init[i as usize] == 0)
        .collect();
    let pending: Vec<AtomicU32> = pending_init.into_iter().map(AtomicU32::new).collect();
    let slots: Vec<OnceLock<NodeOut>> = (0..n).map(|_| OnceLock::new()).collect();
    let remaining = AtomicUsize::new(n);
    let abort = AtomicBool::new(false);
    let ready = Mutex::new(initial);
    let cv = Condvar::new();

    // The worker body; the coordinator runs it too (as the only thread with
    // a budget installed, it checkpoints per claimed node so deadlines fire
    // promptly even while peers keep the queue drained).
    let run = |on_coordinator: bool| {
        #[cfg(feature = "fault-injection")]
        crate::faultpt::hit("par.cuts", net.name());
        let mut guard = FrontierAbort {
            abort: &abort,
            ready: &ready,
            cv: &cv,
            armed: true,
        };
        let mut scratch = NodeScratch::default();
        // Local depth-first stack: the first successor a node readies stays
        // on this worker (its fanin's cuts are hot in cache); the rest go to
        // the shared queue.
        let mut local: Vec<u32> = Vec::new();
        loop {
            let node = match local.pop() {
                Some(x) => x,
                None => {
                    let mut q = ready.lock().unwrap_or_else(|e| e.into_inner());
                    loop {
                        if abort.load(Ordering::Acquire) || remaining.load(Ordering::Acquire) == 0 {
                            guard.armed = false;
                            return;
                        }
                        if let Some(x) = q.pop() {
                            break x;
                        }
                        q = cv.wait(q).unwrap_or_else(|e| e.into_inner());
                    }
                }
            };
            if abort.load(Ordering::Acquire) {
                guard.armed = false;
                return;
            }
            if on_coordinator {
                crate::budget::checkpoint();
            }
            let id = CellId(node);
            compute_node_cuts(
                net,
                id,
                config,
                |c| {
                    // Acquire ordering via OnceLock: the publishing store in
                    // `set` happens-before this read, and the scheduler only
                    // readies a node after all its fanins published.
                    let out = slots[c.0 as usize]
                        .get()
                        .expect("fanin cut set must be published before its reader runs");
                    (out.cuts.as_slice(), out.sigs.as_slice())
                },
                &mut scratch,
            );
            let mut out = NodeOut {
                cuts: Vec::with_capacity(scratch.kept.len() + 1),
                sigs: Vec::with_capacity(scratch.kept.len() + 1),
            };
            emit_node_cuts(id, &scratch, &mut out.cuts, &mut out.sigs);
            assert!(
                slots[node as usize].set(out).is_ok(),
                "each node is claimed exactly once"
            );
            // Countdown the successors; whoever decrements a count to zero
            // owns waking that node.
            let succs = &successors
                [succ_starts[node as usize] as usize..succ_starts[node as usize + 1] as usize];
            let mut keep: Option<u32> = None;
            let mut share: Vec<u32> = Vec::new();
            for &s in succs {
                if pending[s as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                    if keep.is_none() && local.is_empty() {
                        keep = Some(s);
                    } else {
                        share.push(s);
                    }
                }
            }
            if let Some(s) = keep {
                local.push(s);
            }
            if !share.is_empty() {
                let mut q = ready.lock().unwrap_or_else(|e| e.into_inner());
                q.extend_from_slice(&share);
                drop(q);
                cv.notify_all();
            }
            if remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last node: release every parked worker. Lock-then-notify
                // for the same race-closing reason as in `FrontierAbort`.
                let _q = ready.lock().unwrap_or_else(|e| e.into_inner());
                cv.notify_all();
            }
        }
    };

    std::thread::scope(|scope| {
        let handles: Vec<_> = (1..workers.min(n))
            .map(|_| crate::sync::spawn_scoped(scope, || run(false)))
            .collect();
        run(true);
        for h in handles {
            // Preserve a worker's panic payload (e.g. an injected fault)
            // for the supervision layer instead of masking it with a join
            // message.
            h.join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        }
    });

    // Assemble the flat CSR in ascending cell-index order — byte-identical
    // for every schedule and worker count.
    let mut cuts: Vec<Cut> = Vec::with_capacity(n * 6);
    let mut spans: Vec<(u32, u32)> = vec![(0, 0); n];
    for (i, slot) in slots.into_iter().enumerate() {
        let out = slot
            .into_inner()
            .expect("every node completes before the scope joins");
        spans[i] = (cuts.len() as u32, out.cuts.len() as u32);
        cuts.extend_from_slice(&out.cuts);
    }
    CutSet { cuts, spans }
}

/// Reusable per-node scratch of [`compute_node_cuts`]: the leaf arena, the
/// candidate list, the sort permutation, the surviving-candidate list and
/// the survivors' derived functions. One scratch serves any number of nodes
/// (and, under the `parallel` feature, one scratch serves each worker).
#[derive(Default)]
struct NodeScratch {
    arena: Vec<Signal>,
    cand: Vec<Candidate>,
    by_rank: Vec<u32>,
    kept: Vec<u32>,
    tts: Vec<TruthTable>,
}

/// Enumerates, prunes and derives the non-trivial cuts of one node into
/// `scratch`, reading stored fanin cut sets through `lookup` (cell id →
/// that cell's published `(cuts, sigs)` slices). The sequential driver's
/// lookup indexes its in-progress CSR table; the frontier driver's reads a
/// fanin's `OnceLock` slot. Holds **no** borrows on return, so the caller
/// can append the results to the very table the lookup reads from. Results
/// depend only on the fanins' stored cut sets, never on where this node's
/// output lands.
fn compute_node_cuts<'a>(
    net: &Network,
    id: CellId,
    config: &CutConfig,
    lookup: impl Fn(CellId) -> (&'a [Cut], &'a [Sig256]),
    scratch: &mut NodeScratch,
) {
    let NodeScratch {
        arena,
        cand,
        by_rank,
        kept,
        tts,
    } = scratch;
    arena.clear();
    cand.clear();
    kept.clear();
    tts.clear();
    let CellKind::Gate(g) = net.kind(id) else {
        return; // non-gate pins only offer the trivial cut
    };
    let sig0 = Signal::from_cell(id);
    let fanins = net.fanins(id);
    // A fanin pin other than port 0 (a T1 port) only offers its own
    // trivial cut — enumeration never crosses multi-output cells.
    // `hold_*` keep those synthesized trivial cuts alive while the
    // common path borrows stored cut sets without cloning them.
    let hold_a;
    let hold_b;
    let (ca, sa): (&[Cut], &[Sig256]) = if fanins[0].port == 0 {
        lookup(fanins[0].cell)
    } else {
        hold_a = (Cut::trivial(fanins[0]), leaf_sig(fanins[0]));
        (
            std::slice::from_ref(&hold_a.0),
            std::slice::from_ref(&hold_a.1),
        )
    };
    // `cb_all` stays in scope for lazy materialization below.
    let mut cb_all: &[Cut] = &[];
    if g.arity() == 1 {
        for (ai, (c, &csig)) in ca.iter().zip(sa).enumerate() {
            let start = arena.len();
            arena.extend_from_slice(&c.leaves);
            cand.push(Candidate {
                start: start as u32,
                len: c.leaves.len() as u32,
                sig: csig,
                key: pack_leaves(&c.leaves),
                ai: ai as u32,
                bi: u32::MAX,
                amask: 0,
                bmask: 0,
            });
        }
    } else {
        let (cb, sb): (&[Cut], &[Sig256]) = if fanins[1].port == 0 {
            lookup(fanins[1].cell)
        } else {
            hold_b = (Cut::trivial(fanins[1]), leaf_sig(fanins[1]));
            (
                std::slice::from_ref(&hold_b.0),
                std::slice::from_ref(&hold_b.1),
            )
        };
        cb_all = cb;
        for ai in 0..ca.len() {
            let asig = sa[ai];
            for bi in 0..cb.len() {
                // Reconvergence-aware prefilter: every leaf sets one
                // signature bit, so the union's popcount is a lower
                // bound on the union's size. Merges that cannot fit
                // the leaf budget die on one popcount over the
                // signature arrays — no cut data is touched at all;
                // reconvergent merges (shared leaves → shared bits)
                // pass and are enumerated for real.
                let usig = asig | sb[bi];
                if usig.count_ones() as usize > config.max_leaves {
                    continue;
                }
                let Some((start, amask, bmask)) =
                    merge_leaves_into(&ca[ai].leaves, &cb[bi].leaves, config.max_leaves, arena)
                else {
                    continue;
                };
                let len = (arena.len() - start) as u32;
                let key = pack_leaves(&arena[start..]);
                // Exact dedup at push time: reconvergent fanin pairs
                // can produce the same union several times; keeping
                // only the first occurrence (the one the old stable
                // sort + dominance scan would have kept) keeps the
                // ranking sort and the dominance scan on distinct
                // leaf sets.
                if cand.iter().any(|c| c.len == len && c.key == key) {
                    arena.truncate(start);
                    continue;
                }
                cand.push(Candidate {
                    start: start as u32,
                    len,
                    sig: usig,
                    key,
                    ai: ai as u32,
                    bi: bi as u32,
                    amask,
                    bmask,
                });
            }
        }
    }
    // Rank candidates: smaller cuts first, then lexicographic. After
    // dedup all leaf sets are distinct, so `(len, key)` is a strict
    // total order and an unstable index sort is deterministic.
    by_rank.clear();
    by_rank.extend(0..cand.len() as u32);
    by_rank.sort_unstable_by_key(|&x| {
        let c = &cand[x as usize];
        (c.len, c.key)
    });

    // Budgeted dominance pruning (the per-node cut budget `max_cuts`).
    'cand: for &ci in by_rank.iter() {
        if kept.len() >= config.max_cuts {
            break;
        }
        let c = &cand[ci as usize];
        let c_leaves = c.leaves(arena);
        if c_leaves.len() == 1 && c_leaves[0] == sig0 {
            continue; // trivial cut already present
        }
        for &ki in kept.iter() {
            let k = &cand[ki as usize];
            // Signature prefilter: k ⊆ c requires sig(k) ⊆ sig(c).
            if k.sig.is_subset_of(c.sig) && is_subset(k.leaves(arena), c_leaves) {
                continue 'cand;
            }
        }
        kept.push(ci);
    }
    // Derive the survivors’ functions while the fanin cut sets are still
    // borrowed; after this loop the scratch is self-contained.
    for &ki in kept.iter() {
        let k = &cand[ki as usize];
        let tt = if k.bi == u32::MAX {
            apply_gate1(g, &ca[k.ai as usize].tt)
        } else {
            let n = k.len as usize;
            let ta = expand_masked(&ca[k.ai as usize].tt, k.amask, n);
            let tb = expand_masked(&cb_all[k.bi as usize].tt, k.bmask, n);
            apply_gate2(g, &ta, &tb)
        };
        tts.push(tt);
    }
}

/// Appends one node’s cuts (trivial first, then the survivors computed by
/// [`compute_node_cuts`]) to a cut/signature table.
fn emit_node_cuts(id: CellId, scratch: &NodeScratch, cuts: &mut Vec<Cut>, sigs: &mut Vec<Sig256>) {
    let sig0 = Signal::from_cell(id);
    cuts.push(Cut::trivial(sig0));
    sigs.push(leaf_sig(sig0));
    for (&ki, &tt) in scratch.kept.iter().zip(&scratch.tts) {
        let k = &scratch.cand[ki as usize];
        cuts.push(Cut {
            leaves: CutLeaves::from_slice(k.leaves(&scratch.arena)),
            tt,
        });
        sigs.push(k.sig);
    }
}

fn apply_gate1(g: crate::cell::GateKind, a: &TruthTable) -> TruthTable {
    match g {
        crate::cell::GateKind::Inv => !*a,
        crate::cell::GateKind::Buf => *a,
        _ => unreachable!("arity-1 path only for INV/BUF"),
    }
}

fn apply_gate2(g: crate::cell::GateKind, a: &TruthTable, b: &TruthTable) -> TruthTable {
    use crate::cell::GateKind::*;
    match g {
        And2 => *a & *b,
        Or2 => *a | *b,
        Xor2 => *a ^ *b,
        Nand2 => !(*a & *b),
        Nor2 => !(*a | *b),
        Xnor2 => !(*a ^ *b),
        Inv | Buf => unreachable!("arity-2 path only for binary gates"),
    }
}
