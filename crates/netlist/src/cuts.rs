//! K-feasible cut enumeration on mapped networks.
//!
//! Implements the classic bottom-up cut enumeration with dominance pruning
//! and a per-node cut budget (priority cuts, Cong et al. — ref. \[8\] in
//! the paper). T1 detection uses `k = 3` cuts whose truth tables are
//! computed on the fly; the technology mapper uses its own 2-feasible variant
//! on AIGs.
//!
//! Cut leaves are [`Signal`]s, so the enumeration is oblivious to whether a
//! leaf is a primary input, a gate output, or a T1 port. Cells that are not
//! plain gates (T1 macro-cells, DFFs) act as enumeration *boundaries*: their
//! pins only offer trivial cuts, so no cut crosses through them.

use crate::cell::CellKind;
use crate::network::{CellId, Network, Signal};
use sfq_tt::TruthTable;

/// A cut: a set of leaf signals dominating a root pin, with the root's
/// function over those leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted leaf signals.
    pub leaves: Vec<Signal>,
    /// Function of the root over `leaves` (variable `i` = `leaves[i]`).
    pub tt: TruthTable,
}

impl Cut {
    fn trivial(sig: Signal) -> Self {
        Cut { leaves: vec![sig], tt: TruthTable::var(1, 0) }
    }

    /// True if `self`'s leaves are a subset of `other`'s (i.e. `self`
    /// dominates `other`).
    pub fn dominates(&self, other: &Cut) -> bool {
        self.leaves.len() <= other.leaves.len()
            && self.leaves.iter().all(|l| other.leaves.binary_search(l).is_ok())
    }
}

/// Parameters for cut enumeration.
#[derive(Debug, Clone, Copy)]
pub struct CutConfig {
    /// Maximum number of leaves per cut.
    pub max_leaves: usize,
    /// Maximum number of cuts kept per node (the trivial cut is extra).
    pub max_cuts: usize,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig { max_leaves: 3, max_cuts: 24 }
    }
}

/// The cut sets of every cell's port-0 pin.
#[derive(Debug, Clone)]
pub struct CutSet {
    cuts: Vec<Vec<Cut>>,
}

impl CutSet {
    /// Cuts of a cell's port-0 pin (the trivial cut is first).
    pub fn of(&self, id: CellId) -> &[Cut] {
        &self.cuts[id.0 as usize]
    }

    /// Total number of cuts stored.
    pub fn total(&self) -> usize {
        self.cuts.iter().map(Vec::len).sum()
    }
}

/// Re-expresses `tt` (over `old_leaves`) on the superset `new_leaves`.
///
/// Both leaf slices must be sorted; `old_leaves ⊆ new_leaves`.
fn expand(tt: &TruthTable, old_leaves: &[Signal], new_leaves: &[Signal]) -> TruthTable {
    if old_leaves == new_leaves {
        return *tt;
    }
    let mut positions = [0usize; 6];
    for (i, l) in old_leaves.iter().enumerate() {
        positions[i] = new_leaves.binary_search(l).expect("old leaves must be a subset");
    }
    let n = new_leaves.len();
    let mut bits = 0u64;
    for row in 0..(1usize << n) {
        let mut src = 0usize;
        for (i, &p) in positions.iter().take(old_leaves.len()).enumerate() {
            if (row >> p) & 1 == 1 {
                src |= 1 << i;
            }
        }
        if tt.eval_row(src) {
            bits |= 1 << row;
        }
    }
    TruthTable::from_bits_truncated(n, bits)
}

fn merge_leaves(a: &[Signal], b: &[Signal], max: usize) -> Option<Vec<Signal>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let next = if j >= b.len() || (i < a.len() && a[i] <= b[j]) {
            if j < b.len() && a[i] == b[j] {
                j += 1;
            }
            let v = a[i];
            i += 1;
            v
        } else {
            let v = b[j];
            j += 1;
            v
        };
        out.push(next);
        if out.len() > max {
            return None;
        }
    }
    Some(out)
}

/// Enumerates cuts for every cell of `net` (port-0 pins).
///
/// # Panics
/// Panics if the network is cyclic or `config.max_leaves > 6`.
pub fn enumerate_cuts(net: &Network, config: &CutConfig) -> CutSet {
    assert!(config.max_leaves <= TruthTable::MAX_VARS, "cuts limited to 6 leaves");
    let order = net.topological_order().expect("network must be acyclic");
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); net.num_cells()];
    for id in order {
        let sig = Signal::from_cell(id);
        let mut set: Vec<Cut> = vec![Cut::trivial(sig)];
        if let CellKind::Gate(g) = net.kind(id) {
            let fanins = net.fanins(id);
            // A fanin pin other than port 0 (a T1 port) only offers its own
            // trivial cut — enumeration never crosses multi-output cells.
            let cuts_for_fanin = |f: Signal| -> Vec<Cut> {
                if f.port == 0 {
                    cuts[f.cell.0 as usize].clone()
                } else {
                    vec![Cut::trivial(f)]
                }
            };
            let mut candidates: Vec<Cut> = Vec::new();
            if g.arity() == 1 {
                for c in cuts_for_fanin(fanins[0]) {
                    let tt = apply_gate1(g, &c.tt);
                    candidates.push(Cut { leaves: c.leaves, tt });
                }
            } else {
                let ca = cuts_for_fanin(fanins[0]);
                let cb = cuts_for_fanin(fanins[1]);
                for a in &ca {
                    for b in &cb {
                        let Some(leaves) = merge_leaves(&a.leaves, &b.leaves, config.max_leaves)
                        else {
                            continue;
                        };
                        let ta = expand(&a.tt, &a.leaves, &leaves);
                        let tb = expand(&b.tt, &b.leaves, &leaves);
                        let tt = apply_gate2(g, &ta, &tb);
                        candidates.push(Cut { leaves, tt });
                    }
                }
            }
            // Dedupe + dominance pruning, smaller cuts first.
            candidates.sort_by(|x, y| {
                x.leaves.len().cmp(&y.leaves.len()).then_with(|| x.leaves.cmp(&y.leaves))
            });
            candidates.dedup_by(|x, y| x.leaves == y.leaves);
            let mut kept: Vec<Cut> = Vec::new();
            for c in candidates {
                if kept.len() >= config.max_cuts {
                    break;
                }
                if c.leaves.len() == 1 && c.leaves[0] == sig {
                    continue; // trivial cut already present
                }
                if kept.iter().any(|k| k.dominates(&c)) {
                    continue;
                }
                kept.push(c);
            }
            set.extend(kept);
        }
        cuts[id.0 as usize] = set;
    }
    CutSet { cuts }
}

fn apply_gate1(g: crate::cell::GateKind, a: &TruthTable) -> TruthTable {
    match g {
        crate::cell::GateKind::Inv => !*a,
        crate::cell::GateKind::Buf => *a,
        _ => unreachable!("arity-1 path only for INV/BUF"),
    }
}

fn apply_gate2(g: crate::cell::GateKind, a: &TruthTable, b: &TruthTable) -> TruthTable {
    use crate::cell::GateKind::*;
    match g {
        And2 => *a & *b,
        Or2 => *a | *b,
        Xor2 => *a ^ *b,
        Nand2 => !(*a & *b),
        Nor2 => !(*a | *b),
        Xnor2 => !(*a ^ *b),
        Inv | Buf => unreachable!("arity-2 path only for binary gates"),
    }
}
