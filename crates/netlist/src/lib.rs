//! Logic-network data structures for SFQ synthesis.
//!
//! This crate is the workspace's stand-in for the mockturtle logic-synthesis
//! library the paper builds on. It provides:
//!
//! * [`Aig`] — an and-inverter graph with structural hashing, used by the
//!   benchmark generators and as the entry point of the flow;
//! * [`Network`] — a multi-output mapped netlist over the SFQ cell library
//!   (clocked gates, T1 cells, DFFs), the subject of T1 detection, phase
//!   assignment and DFF insertion;
//! * [`Library`] — the JJ-count area model;
//! * cut enumeration ([`cuts`] — level-parallel under the `parallel`
//!   feature, see [`par`]), maximum-fanout-free cones ([`mffc`]), and a
//!   cut-based technology mapper ([`map_aig`]) from AIGs to SFQ cells;
//! * ASCII AIGER I/O ([`aiger`]), BLIF I/O ([`blif`]), BLIF/Verilog/DOT
//!   export of mapped networks ([`export`]), and a unified external-design
//!   ingestion layer ([`design`]: format auto-detection, canonical
//!   re-emission, content-hash parse cache);
//! * the containment primitives of the supervised flow runner in
//!   `sfq_core`: cooperative work budgets ([`budget`]), per-item panic
//!   isolation in the fan-out primitive ([`par::map_ordered_caught`]), and
//!   feature-gated deterministic fault injection ([`faultpt`]).
//!
//! # Example
//!
//! ```
//! use sfq_netlist::{Aig, Library, map_aig};
//!
//! let mut aig = Aig::new("toy");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let s = aig.xor(a, b);
//! let c = aig.and(a, b);
//! aig.output("sum", s);
//! aig.output("carry", c);
//!
//! let net = map_aig(&aig, &Library::default());
//! assert!(net.num_gates() >= 2);
//! ```

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod aig;
pub mod aiger;
pub mod blif;
pub mod budget;
pub mod cell;
pub mod cuts;
pub mod design;
pub mod export;
pub mod faultpt;
pub mod mapper;
pub mod mapper_reference;
pub mod mffc;
pub mod network;
pub mod par;
pub mod sync;

pub use aig::{Aig, AigLit, AigNodeId};
pub use blif::{parse_blif, write_blif, BlifError};
pub use budget::BudgetExceeded;
pub use cell::{CellKind, GateKind, Library, T1Port, T1_NUM_PORTS};
#[cfg(feature = "parallel")]
pub use cuts::enumerate_cuts_frontier;
pub use cuts::{enumerate_cuts, enumerate_cuts_sequential, Cut, CutConfig, CutSet};
pub use design::{CacheStats, Design, DesignCache, DesignError, DesignFormat};
pub use mapper::map_aig;
pub use mapper_reference::map_aig_reference;
pub use mffc::{mffc_area, mffc_nodes};
pub use network::{AreaBreakdown, CellId, Network, NetworkError, RebuildScratch, Signal};

#[cfg(test)]
mod tests;
