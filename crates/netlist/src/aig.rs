//! And-inverter graphs with structural hashing.
//!
//! The AIG is the technology-independent representation produced by the
//! benchmark generators and consumed by the technology mapper. Nodes are
//! two-input ANDs; inversion lives on edges ([`AigLit`] carries a complement
//! bit). Construction performs constant folding, trivial-case simplification
//! and structural hashing, so functionally obvious redundancies never enter
//! the graph.

use std::collections::HashMap;
use std::fmt;

/// Index of an AIG node (constant-false node is index 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigNodeId(pub u32);

/// A literal: an AIG node with an optional complement.
///
/// Encoded mockturtle/ABC-style as `node << 1 | complement`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AigLit(u32);

impl AigLit {
    /// The constant-false literal.
    pub const FALSE: AigLit = AigLit(0);
    /// The constant-true literal.
    pub const TRUE: AigLit = AigLit(1);

    /// Builds a literal from a node and complement flag.
    pub fn new(node: AigNodeId, complement: bool) -> Self {
        AigLit(node.0 << 1 | u32::from(complement))
    }

    /// The node this literal refers to.
    pub fn node(self) -> AigNodeId {
        AigNodeId(self.0 >> 1)
    }

    /// Whether the literal is complemented.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Raw AIGER-style encoding (`2·node + complement`).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Builds a literal from its raw AIGER encoding.
    pub fn from_raw(raw: u32) -> Self {
        AigLit(raw)
    }

    /// True if this is one of the two constant literals.
    pub fn is_constant(self) -> bool {
        self.node().0 == 0
    }
}

impl std::ops::Not for AigLit {
    type Output = AigLit;
    fn not(self) -> AigLit {
        AigLit(self.0 ^ 1)
    }
}

impl fmt::Debug for AigLit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_complemented() {
            write!(f, "!n{}", self.node().0)
        } else {
            write!(f, "n{}", self.node().0)
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AigNode {
    /// The constant-false node (always index 0).
    Const,
    /// Primary input (index into the input list).
    Input(u32),
    /// Two-input AND of two literals.
    And(AigLit, AigLit),
}

/// An and-inverter graph with named inputs and outputs.
///
/// # Example
///
/// ```
/// use sfq_netlist::Aig;
/// let mut aig = Aig::new("maj");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let c = aig.input("c");
/// let m = aig.maj(a, b, c);
/// aig.output("m", m);
/// assert_eq!(aig.num_inputs(), 3);
/// assert_eq!(aig.simulate(&[0b1100, 0b1010, 0b0110])[0] & 0xF, 0b1110);
/// ```
#[derive(Debug, Clone)]
pub struct Aig {
    name: String,
    nodes: Vec<AigNode>,
    inputs: Vec<AigNodeId>,
    input_names: Vec<String>,
    outputs: Vec<AigLit>,
    output_names: Vec<String>,
    strash: HashMap<(AigLit, AigLit), AigNodeId>,
}

impl Aig {
    /// Creates an empty AIG with the given design name.
    pub fn new(name: impl Into<String>) -> Self {
        Aig {
            name: name.into(),
            nodes: vec![AigNode::Const],
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
            strash: HashMap::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Replaces the design name (used by frontends that discover the real
    /// name mid-parse, e.g. the AIGER comment section).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Adds a primary input and returns its (positive) literal.
    pub fn input(&mut self, name: impl Into<String>) -> AigLit {
        let id = AigNodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::Input(self.inputs.len() as u32));
        self.inputs.push(id);
        self.input_names.push(name.into());
        AigLit::new(id, false)
    }

    /// Adds `n` primary inputs named `prefix[0..n]`, LSB first.
    pub fn input_word(&mut self, prefix: &str, n: usize) -> Vec<AigLit> {
        (0..n)
            .map(|i| self.input(format!("{prefix}[{i}]")))
            .collect()
    }

    /// Registers a primary output.
    pub fn output(&mut self, name: impl Into<String>, lit: AigLit) {
        self.outputs.push(lit);
        self.output_names.push(name.into());
    }

    /// Registers outputs `prefix[0..n]` for a word of literals, LSB first.
    ///
    /// # Panics
    /// Panics if `lits` is empty.
    pub fn output_word(&mut self, prefix: &str, lits: &[AigLit]) {
        assert!(!lits.is_empty(), "output word must be non-empty");
        for (i, &l) in lits.iter().enumerate() {
            self.output(format!("{prefix}[{i}]"), l);
        }
    }

    /// The constant-false literal.
    pub fn const_false(&self) -> AigLit {
        AigLit::FALSE
    }

    /// The constant-true literal.
    pub fn const_true(&self) -> AigLit {
        AigLit::TRUE
    }

    /// AND of two literals, with folding and structural hashing.
    pub fn and(&mut self, a: AigLit, b: AigLit) -> AigLit {
        // Constant / trivial folding.
        if a == AigLit::FALSE || b == AigLit::FALSE || a == !b {
            return AigLit::FALSE;
        }
        if a == AigLit::TRUE {
            return b;
        }
        if b == AigLit::TRUE || a == b {
            return a;
        }
        // Canonical operand order for hashing.
        let (a, b) = if a.raw() <= b.raw() { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(a, b)) {
            return AigLit::new(id, false);
        }
        let id = AigNodeId(self.nodes.len() as u32);
        self.nodes.push(AigNode::And(a, b));
        self.strash.insert((a, b), id);
        AigLit::new(id, false)
    }

    /// OR of two literals.
    pub fn or(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.and(!a, !b)
    }

    /// XOR of two literals.
    pub fn xor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        let n1 = self.and(a, !b);
        let n2 = self.and(!a, b);
        self.or(n1, n2)
    }

    /// XNOR of two literals.
    pub fn xnor(&mut self, a: AigLit, b: AigLit) -> AigLit {
        !self.xor(a, b)
    }

    /// Three-input AND.
    pub fn and3(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let t = self.and(a, b);
        self.and(t, c)
    }

    /// Three-input OR.
    pub fn or3(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let t = self.or(a, b);
        self.or(t, c)
    }

    /// Three-input XOR (parity).
    pub fn xor3(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let t = self.xor(a, b);
        self.xor(t, c)
    }

    /// Three-input majority, built as `ab ∨ (a⊕b)c` to share the adder XOR.
    pub fn maj(&mut self, a: AigLit, b: AigLit, c: AigLit) -> AigLit {
        let ab = self.and(a, b);
        let axb = self.xor(a, b);
        let t = self.and(axb, c);
        self.or(ab, t)
    }

    /// If-then-else: `s ? t : e`.
    pub fn mux(&mut self, s: AigLit, t: AigLit, e: AigLit) -> AigLit {
        let pt = self.and(s, t);
        let pe = self.and(!s, e);
        self.or(pt, pe)
    }

    /// Full adder; returns `(sum, carry)`.
    pub fn full_adder(&mut self, a: AigLit, b: AigLit, cin: AigLit) -> (AigLit, AigLit) {
        (self.xor3(a, b, cin), self.maj(a, b, cin))
    }

    /// Half adder; returns `(sum, carry)`.
    pub fn half_adder(&mut self, a: AigLit, b: AigLit) -> (AigLit, AigLit) {
        (self.xor(a, b), self.and(a, b))
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of AND nodes.
    pub fn num_ands(&self) -> usize {
        self.nodes.len() - 1 - self.inputs.len()
    }

    /// Total node count (constant + inputs + ANDs).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Primary-input node ids in declaration order.
    pub fn inputs(&self) -> &[AigNodeId] {
        &self.inputs
    }

    /// Primary-output literals in declaration order.
    pub fn outputs(&self) -> &[AigLit] {
        &self.outputs
    }

    /// Name of input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Name of output `i`.
    pub fn output_name(&self, i: usize) -> &str {
        &self.output_names[i]
    }

    /// Renames input `i` (frontends restore symbol-table names with this).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_input_name(&mut self, i: usize, name: impl Into<String>) {
        self.input_names[i] = name.into();
    }

    /// Renames output `i` (frontends restore symbol-table names with this).
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    pub fn set_output_name(&mut self, i: usize, name: impl Into<String>) {
        self.output_names[i] = name.into();
    }

    /// True if the node is an AND gate.
    pub fn is_and(&self, id: AigNodeId) -> bool {
        matches!(self.nodes[id.0 as usize], AigNode::And(..))
    }

    /// True if the node is a primary input.
    pub fn is_input(&self, id: AigNodeId) -> bool {
        matches!(self.nodes[id.0 as usize], AigNode::Input(_))
    }

    /// Fanins of an AND node.
    ///
    /// # Panics
    /// Panics if `id` is not an AND node.
    pub fn and_fanins(&self, id: AigNodeId) -> (AigLit, AigLit) {
        match self.nodes[id.0 as usize] {
            AigNode::And(a, b) => (a, b),
            _ => panic!("node {id:?} is not an AND"),
        }
    }

    /// Iterates over all AND node ids in topological (creation) order.
    pub fn and_ids(&self) -> impl Iterator<Item = AigNodeId> + '_ {
        (1..self.nodes.len() as u32)
            .map(AigNodeId)
            .filter(move |&id| self.is_and(id))
    }

    /// Bit-parallel simulation: `patterns[i]` carries 64 test vectors for
    /// input `i`; returns one word per output.
    ///
    /// # Panics
    /// Panics if `patterns.len() != num_inputs()`.
    pub fn simulate(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(
            patterns.len(),
            self.num_inputs(),
            "one pattern word per input"
        );
        let mut values = vec![0u64; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            values[i] = match *node {
                AigNode::Const => 0,
                AigNode::Input(k) => patterns[k as usize],
                AigNode::And(a, b) => {
                    let va = values[a.node().0 as usize]
                        ^ if a.is_complemented() { u64::MAX } else { 0 };
                    let vb = values[b.node().0 as usize]
                        ^ if b.is_complemented() { u64::MAX } else { 0 };
                    va & vb
                }
            };
        }
        self.outputs
            .iter()
            .map(|o| values[o.node().0 as usize] ^ if o.is_complemented() { u64::MAX } else { 0 })
            .collect()
    }

    /// Logic level of every node (inputs and constant at level 0).
    pub fn levels(&self) -> Vec<u32> {
        let mut lv = vec![0u32; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            if let AigNode::And(a, b) = *node {
                lv[i] = 1 + lv[a.node().0 as usize].max(lv[b.node().0 as usize]);
            }
        }
        lv
    }

    /// Depth: maximum level over the primary outputs.
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|o| lv[o.node().0 as usize])
            .max()
            .unwrap_or(0)
    }

    /// Number of AND nodes reachable from the outputs (live nodes).
    pub fn num_live_ands(&self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|o| o.node().0).collect();
        while let Some(i) = stack.pop() {
            if live[i as usize] {
                continue;
            }
            live[i as usize] = true;
            if let AigNode::And(a, b) = self.nodes[i as usize] {
                stack.push(a.node().0);
                stack.push(b.node().0);
            }
        }
        (1..self.nodes.len())
            .filter(|&i| live[i] && matches!(self.nodes[i], AigNode::And(..)))
            .count()
    }
}
