//! Cut-based technology mapping from AIGs to the SFQ gate library.
//!
//! This reproduces the "conventional" mockturtle mapping step that precedes
//! T1 detection in the paper's flow: every benchmark enters as an AIG and is
//! covered with clocked SFQ cells (`INV`, `AND2`, `OR2`, `XOR2`, `NAND2`,
//! `NOR2`, `XNOR2`). The mapper runs a dynamic program over 2-feasible cuts
//! with area-flow costs (leaf cost divided by fanout), then extracts a cover
//! with memoized materialization so shared logic is built once.
//!
//! Two disciplines matter for the downstream T1 detection:
//!
//! * **One cell per node** — like mockturtle, every AIG node materializes at
//!   most one logic cell. A node demanded only in complemented form gets the
//!   complement gate directly (`NAND2` for `¬AND2`, `XOR2` for `¬XNOR2` —
//!   the library is closed under complement at equal cost); a node demanded
//!   in both polarities gets its positive cell plus one shared `INV`.
//!   Duplicating a node as *two* gate cells (an `AND2` and a `NAND2` over
//!   the same fanins) looks cheap locally but erases the shared cut
//!   boundaries that make a full adder's XOR3/MAJ3 pair detectable as one
//!   T1 group.
//! * **XOR/XNOR recognition** — the three-AND strashed XOR pattern is
//!   matched through cut truth tables, which keeps mapped adders XOR-rich.
//!
//! Constant outputs (a squarer's bit 1 is always 0, for instance) have no
//! SFQ generator cell; they are materialized as real logic over input 0
//! (`AND(x, ¬x)` / `OR(x, ¬x)`), exactly like path-balanced constants in an
//! SFQ netlist would be.
//!
//! # Data layout (see `benches/hotpaths.rs` for the regression gates)
//!
//! The hot paths got the same treatment as [`crate::cuts`] (ISSUE 2); the
//! original implementation survives verbatim as
//! [`crate::mapper_reference::map_aig_reference`], and the differential
//! harness asserts the two produce bit-identical networks:
//!
//! * **2-feasible cuts live in one flat CSR table** (`Cut2`: two inline
//!   leaf ids + a 2-variable truth table per cut) with a `(start, len)` span
//!   per AIG node — no `Vec<(Vec<AigNodeId>, TruthTable)>` per node, no
//!   cloned fanin cut lists. Complemented fanin edges complement the borrowed
//!   cut function on the fly instead of materializing a complemented copy of
//!   the whole fanin cut set (the old `leaf_cuts` allocated a fresh
//!   `(Vec, TruthTable)` pair per leaf cut per node).
//! * **Candidate dedup is one `u64` compare**: a cut's sorted leaf pair packs
//!   into a single integer key, and a cut's function over a fixed leaf set is
//!   unique, so duplicate candidates are rejected *before* their truth tables
//!   are derived.
//! * **Boolean matching is a 16-entry lookup**: all 24 `(gate, input-flip
//!   mask)` pairs are bucketed by the 2-variable function they realize once
//!   per mapping, replacing the 24 `flip_vars` truth-table comparisons the DP
//!   inner loop used to do per cut.
//! * **Cover memoization is dense**: the three `HashMap<AigNodeId, Signal>`
//!   polarity tables (positive / shared-INV / complement-gate) are
//!   `Vec<Option<Signal>>` indexed by node id, and matches store their ≤ 2
//!   leaves inline, so cover extraction never hashes or heap-allocates per
//!   node.
//!
//! Measured effect (criterion medians, one dev machine, 2026-07, see
//! `BENCH_flow.json`): `map_aig/adder32` 187 µs → 29 µs (6.3×),
//! `map_aig/adder64` 359 µs → 54 µs (6.6×), `map_aig/multiplier12`
//! 846 µs → 117 µs (7.2×); the map stage of `profile_scale` at paper scale
//! dropped 3.5–7.7× per benchmark (`log2` 76 ms → 18 ms).

use crate::aig::{Aig, AigLit, AigNodeId};
use crate::cell::{GateKind, Library};
use crate::network::{Network, Signal};
use sfq_tt::TruthTable;

/// Filler for the unused second leaf slot of a 1-leaf cut. Real node ids are
/// always smaller (an AIG with `u32::MAX` nodes cannot be built), so packed
/// dedup keys of 1- and 2-leaf cuts never collide.
const NO_NODE: AigNodeId = AigNodeId(u32::MAX);

/// One 2-feasible cut: sorted leaf nodes stored inline and the node's
/// positive function over them (1 or 2 variables).
#[derive(Clone, Copy)]
struct Cut2 {
    leaves: [AigNodeId; 2],
    len: u8,
    tt: TruthTable,
}

/// Packs a sorted ≤ 2-leaf set (second slot [`NO_NODE`] when unused) into
/// the single integer compared during candidate dedup.
#[inline]
fn leaf_key(leaves: &[AigNodeId; 2]) -> u64 {
    (u64::from(leaves[0].0) << 32) | u64::from(leaves[1].0)
}

impl Cut2 {
    #[inline]
    fn key(&self) -> u64 {
        leaf_key(&self.leaves)
    }
}

/// The chosen realization of one AIG node: a library gate over ≤ 2 leaves.
#[derive(Debug, Clone, Copy)]
struct Match {
    gate: GateKind,
    /// Positive leaf nodes the gate reads (first `len` entries).
    leaves: [AigNodeId; 2],
    len: u8,
    /// Bit `i` set ⇒ leaf `i` enters through the shared inverter cell.
    neg_mask: u8,
    cost: f64,
}

impl Match {
    #[inline]
    fn leaves(&self) -> &[AigNodeId] {
        &self.leaves[..self.len as usize]
    }
}

/// All single-output gates considered during covering, with their functions.
pub(crate) fn gate_patterns() -> Vec<(GateKind, TruthTable)> {
    [
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xnor2,
    ]
    .into_iter()
    .map(|g| (g, g.truth_table()))
    .collect()
}

/// Maps an AIG to a [`Network`] over the SFQ gate library.
///
/// # Panics
/// Panics if the AIG has no primary inputs but does have outputs (a
/// constant-only netlist cannot be realized in SFQ cells).
///
/// # Example
///
/// ```
/// use sfq_netlist::{Aig, Library, map_aig};
/// let mut aig = Aig::new("xor");
/// let a = aig.input("a");
/// let b = aig.input("b");
/// let x = aig.xor(a, b);
/// aig.output("x", x);
/// let net = map_aig(&aig, &Library::default());
/// // The 3-AND XOR pattern collapses into a single XOR/XNOR cell pair at
/// // most (one cell plus a possible output inverter).
/// assert!(net.num_gates() <= 2);
/// ```
pub fn map_aig(aig: &Aig, lib: &Library) -> Network {
    let n = aig.num_nodes();

    // ---- fanout refs for area flow -------------------------------------
    let mut refs = vec![0u32; n];
    for id in aig.and_ids() {
        let (a, b) = aig.and_fanins(id);
        refs[a.node().0 as usize] += 1;
        refs[b.node().0 as usize] += 1;
    }
    for o in aig.outputs() {
        refs[o.node().0 as usize] += 1;
    }

    // ---- 2-feasible cuts: flat CSR table ---------------------------------
    // cuts[spans[node]] = the node's cut set (trivial cut first), leaves
    // sorted, function over *positive* leaf variables.
    let mut cuts: Vec<Cut2> = Vec::new();
    let mut spans: Vec<(u32, u32)> = vec![(0, 0); n];
    let mut node_cuts: Vec<Cut2> = Vec::new();
    for raw in 0..n as u32 {
        let id = AigNodeId(raw);
        node_cuts.clear();
        if aig.is_input(id) {
            node_cuts.push(Cut2 {
                leaves: [id, NO_NODE],
                len: 1,
                tt: TruthTable::var(1, 0),
            });
        } else if aig.is_and(id) {
            node_cuts.push(Cut2 {
                leaves: [id, NO_NODE],
                len: 1,
                tt: TruthTable::var(1, 0),
            });
            let (fa, fb) = aig.and_fanins(id);
            let (a_start, a_len) = spans[fa.node().0 as usize];
            let (b_start, b_len) = spans[fb.node().0 as usize];
            for ai in a_start..a_start + a_len {
                let a = cuts[ai as usize];
                // Entering through a complemented edge complements the
                // borrowed cut function — no cloned fanin cut set.
                let ta = if fa.is_complemented() { !a.tt } else { a.tt };
                for bi in b_start..b_start + b_len {
                    let b = cuts[bi as usize];
                    let Some((leaves, len)) = merge_leaves2(&a, &b) else {
                        continue;
                    };
                    let key = leaf_key(&leaves);
                    if node_cuts.iter().any(|c| c.key() == key) {
                        continue; // same leaf set ⇒ same function; first wins
                    }
                    let tb = if fb.is_complemented() { !b.tt } else { b.tt };
                    let tt = expand2(ta, a.leaves[0], a.len, &leaves, len)
                        & expand2(tb, b.leaves[0], b.len, &leaves, len);
                    node_cuts.push(Cut2 { leaves, len, tt });
                }
            }
        }
        spans[raw as usize] = (cuts.len() as u32, node_cuts.len() as u32);
        cuts.extend_from_slice(&node_cuts);
    }

    // ---- Boolean match table ---------------------------------------------
    // For each of the 16 two-variable functions, the (gate, input-flip mask)
    // pairs realizing it, in the reference's (pattern, mask) scan order so
    // cost ties break identically.
    let patterns = gate_patterns();
    let mut match_tbl: [Vec<(GateKind, u8)>; 16] = Default::default();
    for (g, gtt) in &patterns {
        for mask in 0u8..4 {
            match_tbl[gtt.flip_vars(mask).bits() as usize].push((*g, mask));
        }
    }

    // ---- single-polarity DP ------------------------------------------------
    // best[node]: cheapest realization of the node's positive function.
    let mut best: Vec<Option<Match>> = vec![None; n];
    let node_cost = |best: &[Option<Match>], node: AigNodeId| -> f64 {
        if aig.is_input(node) {
            0.0
        } else {
            best[node.0 as usize]
                .as_ref()
                .map_or(f64::INFINITY, |m| m.cost)
        }
    };
    for id in aig.and_ids() {
        let mut found: Option<Match> = None;
        let (start, len) = spans[id.0 as usize];
        for cut in &cuts[start as usize..(start + len) as usize] {
            if cut.len == 1 {
                continue; // the trivial cut cannot implement its own root
            }
            for &(g, mask) in &match_tbl[cut.tt.bits() as usize] {
                let mut cost = lib.gate_area(g) as f64;
                for (i, &leaf) in cut.leaves.iter().enumerate() {
                    let fanout = f64::from(refs[leaf.0 as usize].max(1));
                    cost += node_cost(&best, leaf) / fanout;
                    if mask >> i & 1 == 1 {
                        // Shared inverter, amortized like the leaf.
                        cost += lib.inv as f64 / fanout;
                    }
                }
                if found.is_none_or(|b| cost < b.cost) {
                    found = Some(Match {
                        gate: g,
                        leaves: cut.leaves,
                        len: cut.len,
                        neg_mask: mask,
                        cost,
                    });
                }
            }
        }
        best[id.0 as usize] = Some(found.expect("every AND node matches AND2 on its fanin cut"));
    }

    // ---- polarity demand over the chosen cover ------------------------------
    // demand[node] bits: 1 = positive use, 2 = complemented use.
    let mut demand = vec![0u8; n];
    {
        let mut stack: Vec<(AigNodeId, bool)> = aig
            .outputs()
            .iter()
            .filter(|l| !l.is_constant())
            .map(|l| (l.node(), l.is_complemented()))
            .collect();
        while let Some((node, neg)) = stack.pop() {
            let bit = if neg { 2u8 } else { 1 };
            if demand[node.0 as usize] & bit != 0 {
                continue;
            }
            demand[node.0 as usize] |= bit;
            if aig.is_input(node) {
                continue;
            }
            // The cover is polarity-oblivious below this node: its cell (of
            // either polarity) reads the same leaf polarities.
            if demand[node.0 as usize] & (bit ^ 3) != 0 {
                continue; // leaves already visited through the other polarity
            }
            let m = best[node.0 as usize].as_ref().expect("covered node");
            for (i, &leaf) in m.leaves().iter().enumerate() {
                stack.push((leaf, m.neg_mask >> i & 1 == 1));
            }
        }
    }

    // ---- cover extraction ---------------------------------------------------
    let mut builder = Cover {
        aig,
        best: &best,
        demand: &demand,
        net: Network::new(aig.name()),
        positive: vec![None; n],
        inverted: vec![None; n],
        complement: vec![None; n],
    };
    for (k, i) in aig.inputs().iter().enumerate() {
        let s = builder.net.add_input(aig.input_name(k).to_string());
        builder.positive[i.0 as usize] = Some(s);
    }
    let outputs: Vec<(String, AigLit)> = (0..aig.num_outputs())
        .map(|k| (aig.output_name(k).to_string(), aig.outputs()[k]))
        .collect();
    let mut const_cache: [Option<Signal>; 2] = [None, None];
    for (name, lit) in outputs {
        let s = if lit.is_constant() {
            builder.constant(lit == AigLit::TRUE, &mut const_cache)
        } else {
            builder.literal(lit)
        };
        builder.net.add_output(name, s);
    }
    builder.net
}

/// Union of two sorted ≤ 2-leaf sets; `None` when it exceeds 2 leaves.
#[inline]
fn merge_leaves2(a: &Cut2, b: &Cut2) -> Option<([AigNodeId; 2], u8)> {
    let (alen, blen) = (a.len as usize, b.len as usize);
    let mut out = [NO_NODE; 2];
    let mut len = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < alen || j < blen {
        let v = if j >= blen {
            let v = a.leaves[i];
            i += 1;
            v
        } else if i >= alen {
            let v = b.leaves[j];
            j += 1;
            v
        } else {
            let (x, y) = (a.leaves[i], b.leaves[j]);
            if x <= y {
                i += 1;
                if x == y {
                    j += 1;
                }
                x
            } else {
                j += 1;
                y
            }
        };
        if len == 2 {
            return None;
        }
        out[len] = v;
        len += 1;
    }
    Some((out, len as u8))
}

/// Re-expresses `tt` (over a sorted ≤ 2-leaf set) on the sorted superset
/// `new`. Equal lengths mean equal sets (both sorted subsets), so only the
/// 1 → 2 variable case does any work.
#[inline]
fn expand2(
    tt: TruthTable,
    old0: AigNodeId,
    old_len: u8,
    new: &[AigNodeId; 2],
    new_len: u8,
) -> TruthTable {
    if old_len == new_len {
        return tt;
    }
    debug_assert!(old_len == 1 && new_len == 2);
    let bits = tt.bits();
    let (b0, b1) = (bits & 1, bits >> 1 & 1);
    let expanded = if new[0] == old0 {
        // old variable is var 0 of the pair: rows select on bit 0.
        (b0 * 0b0101) | (b1 * 0b1010)
    } else {
        // old variable is var 1: rows select on bit 1.
        (b0 * 0b0011) | (b1 * 0b1100)
    };
    TruthTable::from_bits_truncated(2, expanded)
}

/// The library gate computing the complement function (same fanins).
pub(crate) fn complement_gate(g: GateKind) -> GateKind {
    match g {
        GateKind::And2 => GateKind::Nand2,
        GateKind::Nand2 => GateKind::And2,
        GateKind::Or2 => GateKind::Nor2,
        GateKind::Nor2 => GateKind::Or2,
        GateKind::Xor2 => GateKind::Xnor2,
        GateKind::Xnor2 => GateKind::Xor2,
        GateKind::Inv => GateKind::Buf,
        GateKind::Buf => GateKind::Inv,
    }
}

/// Memoized cover materialization: one logic cell per AIG node (positive or
/// complement form), plus at most one shared INV when both polarities are
/// demanded. Memo tables are dense per-node vectors, not hash maps.
struct Cover<'a> {
    aig: &'a Aig,
    best: &'a [Option<Match>],
    demand: &'a [u8],
    net: Network,
    positive: Vec<Option<Signal>>,
    inverted: Vec<Option<Signal>>,
    complement: Vec<Option<Signal>>,
}

impl Cover<'_> {
    fn fanins(&mut self, m: &Match) -> ([Signal; 2], usize) {
        let mut out = [Signal::from_cell(crate::network::CellId(0)); 2];
        for (i, slot) in out.iter_mut().take(m.len as usize).enumerate() {
            let leaf = m.leaves[i];
            *slot = if m.neg_mask >> i & 1 == 1 {
                self.negated(leaf)
            } else {
                self.node(leaf)
            };
        }
        (out, m.len as usize)
    }

    fn node(&mut self, node: AigNodeId) -> Signal {
        if let Some(s) = self.positive[node.0 as usize] {
            return s;
        }
        let m = self.best[node.0 as usize].unwrap_or_else(|| panic!("no match for node {node:?}"));
        let (fanins, len) = self.fanins(&m);
        let s = self.net.add_gate(m.gate, &fanins[..len]);
        self.positive[node.0 as usize] = Some(s);
        s
    }

    fn negated(&mut self, node: AigNodeId) -> Signal {
        if let Some(s) = self.inverted[node.0 as usize] {
            return s;
        }
        if let Some(s) = self.complement[node.0 as usize] {
            return s;
        }
        // Complement-only demand on a logic node → the complement gate,
        // one cell, no inverter. Otherwise (inputs, dual demand) → shared INV.
        if !self.aig.is_input(node) && self.demand[node.0 as usize] == 2 {
            let m =
                self.best[node.0 as usize].unwrap_or_else(|| panic!("no match for node {node:?}"));
            let (fanins, len) = self.fanins(&m);
            let s = self.net.add_gate(complement_gate(m.gate), &fanins[..len]);
            self.complement[node.0 as usize] = Some(s);
            return s;
        }
        let pos = self.node(node);
        let s = self.net.add_gate(GateKind::Inv, &[pos]);
        self.inverted[node.0 as usize] = Some(s);
        s
    }

    fn literal(&mut self, lit: AigLit) -> Signal {
        if lit.is_complemented() {
            self.negated(lit.node())
        } else {
            self.node(lit.node())
        }
    }

    /// Materializes a constant output as live logic over input 0:
    /// `AND(x, ¬x)` for 0, `OR(x, ¬x)` for 1.
    ///
    /// # Panics
    /// Panics if the AIG has no primary inputs.
    fn constant(&mut self, value: bool, cache: &mut [Option<Signal>; 2]) -> Signal {
        if let Some(s) = cache[usize::from(value)] {
            return s;
        }
        let first = *self
            .aig
            .inputs()
            .first()
            .expect("constant outputs need at least one input to derive from");
        let x = self.node(first);
        let nx = self.negated(first);
        let s = if value {
            self.net.add_gate(GateKind::Or2, &[x, nx])
        } else {
            self.net.add_gate(GateKind::And2, &[x, nx])
        };
        cache[usize::from(value)] = Some(s);
        s
    }
}
