//! Worker-count policy for the feature-gated in-netlist parallelism.
//!
//! The `parallel` cargo feature fans cut enumeration (and, one crate up,
//! T1 detection's collection/scoring passes) over `std::thread::scope`
//! workers. This module owns the one policy decision those fan-outs share:
//! how many workers to use. Everything else — level scheduling, chunking,
//! deterministic merges — lives next to the loops it parallelizes.
//!
//! Without the feature, [`workers`] is constantly `1`, and every fan-out
//! site falls through to its sequential body; with the feature on a
//! single-core host the same happens at runtime, so the parallel build is
//! never slower than the sequential one.

use crate::sync;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override installed by [`force_workers`] (0 = none).
///
/// Deliberately a plain std atomic even under the `chk` feature: it is
/// process-wide *configuration* read before a fan-out starts, not part of
/// any protocol a model explores (model tests pin it with
/// [`force_workers`] before checking).
static FORCED: AtomicUsize = AtomicUsize::new(0);

/// Sanity cap on *explicit* worker overrides ([`force_workers`],
/// `SFQ_WORKERS`). The default worker count is the host's available
/// parallelism, so this bound only matters for deliberate oversubscription
/// (the determinism tests run 8 workers on 1-core CI hosts) — it exists so
/// a typo like `SFQ_WORKERS=10000` cannot spawn an absurd thread count,
/// not as a tuning knob.
pub const MAX_WORKERS: usize = 64;

/// Forces [`workers`] to return `n` for the rest of the process (`0`
/// clears the override). Without the `parallel` feature the override is
/// recorded but [`workers`] still returns `1`.
///
/// This is the in-process testing hook: the differential tests use it to
/// exercise the parallel merges even on single-core hosts. It exists so
/// tests never have to call `std::env::set_var` at runtime (a data race
/// against concurrent `getenv` on POSIX); the `SFQ_WORKERS` environment
/// variable serves the same purpose from *outside* the process, where it
/// is inherited before any thread starts and read exactly once.
pub fn force_workers(n: usize) {
    FORCED.store(n, Ordering::SeqCst);
}

/// The current [`force_workers`] override (`0` when none is installed).
/// Lets callers that need a temporary override (e.g. the batch driver's
/// sequential retry of a panicked design) save and restore the previous
/// value instead of clobbering it.
pub fn forced_workers() -> usize {
    FORCED.load(Ordering::SeqCst)
}

/// Validates an `SFQ_WORKERS` value: a positive integer, capped at
/// [`MAX_WORKERS`]. `0` and non-numeric values are rejected with a reason —
/// silently falling back would let a typo like `SFQ_WORKERS=all` change
/// behavior with no signal, which a long-running daemon cannot afford.
///
/// # Errors
/// A human-readable rejection reason.
pub fn parse_workers(value: &str) -> Result<usize, String> {
    match value.trim().parse::<usize>() {
        Ok(0) => Err("worker count must be at least 1".to_string()),
        Ok(n) => Ok(n.min(MAX_WORKERS)),
        Err(_) => Err(format!("`{value}` is not a number")),
    }
}

/// Number of scoped worker threads the in-netlist fan-outs may use.
///
/// With the `parallel` feature: the host's available parallelism
/// (`std::thread::available_parallelism()`, which respects container CPU
/// quotas and affinity masks), overridable by [`force_workers`] or the
/// `SFQ_WORKERS` environment variable (read once, at first use; explicit
/// overrides may exceed the host's core count up to [`MAX_WORKERS`], which
/// is how single-core CI exercises the parallel merges). Without the
/// feature: `1`.
pub fn workers() -> usize {
    #[cfg(feature = "parallel")]
    {
        let forced = FORCED.load(Ordering::SeqCst);
        if forced != 0 {
            return forced.clamp(1, MAX_WORKERS);
        }
        static FROM_ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        if let Some(w) = *FROM_ENV.get_or_init(|| match std::env::var("SFQ_WORKERS") {
            Err(_) => None,
            Ok(v) => match parse_workers(&v) {
                Ok(w) => Some(w),
                Err(reason) => {
                    // One-time by construction: the OnceLock initializer
                    // runs exactly once per process.
                    eprintln!(
                        "warning: ignoring SFQ_WORKERS={v:?}: {reason}; \
                         using the host's available parallelism"
                    );
                    None
                }
            },
        }) {
            return w;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Sorts `items` by `key` across up to [`workers`] scoped threads: the
/// vector is split into one contiguous chunk per worker, each chunk is
/// `sort_unstable_by_key`ed in place, and the sorted chunks are k-way
/// merged (smallest key first, ties broken by chunk order, i.e. input
/// order). Small inputs and single-worker configurations fall through to
/// plain `sort_unstable_by_key` with no threads spawned.
///
/// **Determinism:** when no two elements have equal keys (a strict total
/// order — e.g. a compound key ending in a unique index), the result is
/// byte-identical to `slice::sort_unstable_by_key` for *every* worker
/// count. With duplicate keys the order within a run of equals is as
/// unspecified as `sort_unstable` itself — callers that need worker-count
/// independence must provide deduplicating keys.
pub fn sort_unstable_by_key<T, K, F>(items: &mut Vec<T>, key: F)
where
    T: Copy + Send,
    K: Ord,
    F: Fn(&T) -> K + Sync,
{
    // A chunk must amortize its thread spawn; tiny sorts run inline.
    const MIN_ITEMS: usize = 4096;
    let n = items.len();
    let w = workers().min(n / (MIN_ITEMS / 4));
    if w < 2 || n < MIN_ITEMS {
        items.sort_unstable_by_key(|t| key(t));
        return;
    }
    let chunk = n.div_ceil(w);
    std::thread::scope(|scope| {
        let mut rest: &mut [T] = items.as_mut_slice();
        let mut handles = Vec::new();
        while rest.len() > chunk {
            let (head, tail) = rest.split_at_mut(chunk);
            rest = tail;
            let key = &key;
            handles.push(sync::spawn_scoped(scope, move || {
                head.sort_unstable_by_key(|t| key(t))
            }));
        }
        // The coordinator sorts the final chunk instead of idling.
        rest.sort_unstable_by_key(|t| key(t));
        for h in handles {
            h.join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        }
    });
    // Sequential k-way merge (k = worker count, so a linear scan over the
    // chunk heads beats a heap). `T: Copy` keeps the element moves trivial.
    let mut cursors: Vec<(usize, usize)> = (0..w)
        .map(|c| (c * chunk, ((c + 1) * chunk).min(n)))
        .collect();
    let mut out: Vec<T> = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (c, &(lo, hi)) in cursors.iter().enumerate() {
            if lo < hi && best.is_none_or(|b| key(&items[lo]) < key(&items[cursors[b].0])) {
                best = Some(c);
            }
        }
        let Some(b) = best else { break };
        out.push(items[cursors[b].0]);
        cursors[b].0 += 1;
    }
    *items = out;
}

/// A panic captured from one item of [`map_ordered_caught`]: the original
/// unwind payload, so nothing is lost between the worker and the caller.
pub struct ItemPanic {
    payload: Box<dyn std::any::Any + Send + 'static>,
}

impl ItemPanic {
    /// Best-effort human-readable panic message (the `&str` / `String`
    /// payload of an ordinary `panic!`, or a placeholder for exotic
    /// payloads).
    pub fn message(&self) -> String {
        panic_message(self.payload.as_ref())
    }

    /// Borrows the raw unwind payload (for `downcast_ref` classification —
    /// e.g. the supervision layer recognizing [`crate::BudgetExceeded`]).
    pub fn payload(&self) -> &(dyn std::any::Any + Send + 'static) {
        self.payload.as_ref()
    }

    /// Re-raises the captured panic on the current thread with its original
    /// payload.
    pub fn resume(self) -> ! {
        std::panic::resume_unwind(self.payload)
    }
}

impl std::fmt::Debug for ItemPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ItemPanic({:?})", self.message())
    }
}

/// Renders a panic payload as text: the `&str` / `String` carried by an
/// ordinary `panic!`, or a placeholder for any other `panic_any` payload.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs `f` on one claimed item with per-item panic isolation, so one
/// poisoned item cannot take down the whole fan-out.
fn run_item<T, U>(k: usize, item: T, f: &(impl Fn(T) -> U + Sync)) -> Result<U, ItemPanic> {
    #[cfg(not(feature = "fault-injection"))]
    let _ = k;
    // AssertUnwindSafe: `f` is shared immutably across items, and a panicked
    // item's partial state is dropped with the closure scope — the caller
    // only ever observes completed results or the captured payload.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        #[cfg(feature = "fault-injection")]
        crate::faultpt::hit("par.item", &k.to_string());
        f(item)
    }))
    .map_err(|payload| ItemPanic { payload })
}

/// Maps `f` over `items` on up to [`workers`] scoped threads, returning the
/// results **in input order** regardless of scheduling.
///
/// This is the shared fan-out primitive of the batch drivers (`sfqt1 flow
/// --batch`, the corpus table): items are claimed from an atomic cursor, so
/// uneven per-item cost balances automatically, and the order-preserving
/// merge keeps the observable output bit-identical between sequential and
/// parallel builds. With one worker (no `parallel` feature, single-core
/// host, or `SFQ_WORKERS=1`) it degenerates to a plain in-order map with no
/// thread spawns.
///
/// A panicking item no longer aborts its worker: every item runs to a
/// result either way (see [`map_ordered_caught`]), and the panic of the
/// **lowest input index** is then re-raised on the calling thread — so the
/// failure surface is deterministic and independent of worker count.
/// Callers that want to survive poisoned items use [`map_ordered_caught`]
/// directly.
pub fn map_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let mut first_panic: Option<ItemPanic> = None;
    let results: Vec<U> = map_ordered_caught(items, f)
        .into_iter()
        .filter_map(|r| match r {
            Ok(u) => Some(u),
            Err(p) => {
                first_panic.get_or_insert(p);
                None
            }
        })
        .collect();
    match first_panic {
        None => results,
        Some(p) => p.resume(),
    }
}

/// [`map_ordered`] with per-item panic containment: each item yields either
/// its result or the captured panic ([`ItemPanic`]), **in input order**.
///
/// A panicking worker closure poisons only its own item — the worker thread
/// survives and keeps claiming items, so the surviving results are
/// byte-identical to a run where the poisoned item was simply absent, for
/// any worker count. This is what lets `sfqt1 flow --batch` degrade
/// gracefully instead of dying with the first broken design.
pub fn map_ordered_caught<T, U, F>(items: Vec<T>, f: F) -> Vec<Result<U, ItemPanic>>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let mut results = Vec::with_capacity(items.len());
    // Emission is in input order, so collecting into a Vec preserves it.
    map_ordered_streamed(items, f, |_k, r| results.push(r));
    results
}

/// In-order state of one [`map_ordered_streamed`] run: completed results
/// that are still waiting for an earlier item to finish.
struct EmitState<U> {
    next: usize,
    pending: std::collections::BTreeMap<usize, Result<U, ItemPanic>>,
}

/// [`map_ordered_caught`] that **streams**: `emit(k, result)` is called for
/// every item, in input order, as soon as all items `0..=k` have finished —
/// instead of buffering the whole result vector until the slowest item is
/// done. The first item's result is observable while later items are still
/// running, which is what lets batch drivers and the `sfqt1d` daemon print
/// or transmit result rows before a batch completes.
///
/// `emit` runs under an internal lock (on whichever worker finished the
/// unblocking item), so it may be `FnMut`; long work inside `emit` delays
/// other workers' emissions but not their computations. Panic containment
/// and ordering semantics are exactly those of [`map_ordered_caught`].
pub fn map_ordered_streamed<T, U, F, E>(items: Vec<T>, f: F, emit: E)
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
    E: FnMut(usize, Result<U, ItemPanic>) + Send,
{
    let n = items.len();
    let threads = workers().min(n);
    let mut emit = emit;
    if threads <= 1 {
        for (k, item) in items.into_iter().enumerate() {
            emit(k, run_item(k, item, &f));
        }
        return;
    }
    let work: Vec<sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| sync::Mutex::new(Some(item)))
        .collect();
    let cursor = sync::AtomicUsize::new(0);
    let sink = sync::Mutex::new((
        EmitState {
            next: 0,
            pending: std::collections::BTreeMap::new(),
        },
        emit,
    ));
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                sync::spawn_scoped(scope, || loop {
                    let k = cursor.fetch_add(1, Ordering::Relaxed);
                    if k >= n {
                        break;
                    }
                    let item = work[k]
                        .lock()
                        .expect("work slot lock")
                        .take()
                        .expect("each work item is claimed once");
                    let result = run_item(k, item, &f);
                    let (state, emit) = &mut *sink.lock().expect("emit sink lock");
                    state.pending.insert(k, result);
                    // Drain the contiguous prefix: emit everything that is
                    // now unblocked, in input order.
                    while let Some(r) = state.pending.remove(&state.next) {
                        emit(state.next, r);
                        state.next += 1;
                    }
                })
            })
            .collect();
        for handle in handles {
            // Worker bodies catch per item, so a worker can only die on a
            // panic outside `f` (a poisoned slot lock); preserve that
            // payload instead of replacing it with a join message.
            handle
                .join()
                .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        }
    });
}
