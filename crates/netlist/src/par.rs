//! Worker-count policy for the feature-gated in-netlist parallelism.
//!
//! The `parallel` cargo feature fans cut enumeration (and, one crate up,
//! T1 detection's collection/scoring passes) over `std::thread::scope`
//! workers. This module owns the one policy decision those fan-outs share:
//! how many workers to use. Everything else — level scheduling, chunking,
//! deterministic merges — lives next to the loops it parallelizes.
//!
//! Without the feature, [`workers`] is constantly `1`, and every fan-out
//! site falls through to its sequential body; with the feature on a
//! single-core host the same happens at runtime, so the parallel build is
//! never slower than the sequential one.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override installed by [`force_workers`] (0 = none).
static FORCED: AtomicUsize = AtomicUsize::new(0);

/// Forces [`workers`] to return `n` for the rest of the process (`0`
/// clears the override). Without the `parallel` feature the override is
/// recorded but [`workers`] still returns `1`.
///
/// This is the in-process testing hook: the differential tests use it to
/// exercise the parallel merges even on single-core hosts. It exists so
/// tests never have to call `std::env::set_var` at runtime (a data race
/// against concurrent `getenv` on POSIX); the `SFQ_WORKERS` environment
/// variable serves the same purpose from *outside* the process, where it
/// is inherited before any thread starts and read exactly once.
pub fn force_workers(n: usize) {
    FORCED.store(n, Ordering::SeqCst);
}

/// Number of scoped worker threads the in-netlist fan-outs may use.
///
/// With the `parallel` feature: the host's available parallelism (capped at
/// 8 — the fan-outs are memory-bound well before that), overridable by
/// [`force_workers`] or the `SFQ_WORKERS` environment variable (read once,
/// at first use). Without the feature: `1`.
pub fn workers() -> usize {
    #[cfg(feature = "parallel")]
    {
        let forced = FORCED.load(Ordering::SeqCst);
        if forced != 0 {
            return forced.clamp(1, 8);
        }
        static FROM_ENV: std::sync::OnceLock<Option<usize>> = std::sync::OnceLock::new();
        if let Some(w) = *FROM_ENV.get_or_init(|| {
            std::env::var("SFQ_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        }) {
            return w.clamp(1, 8);
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
}

/// Maps `f` over `items` on up to [`workers`] scoped threads, returning the
/// results **in input order** regardless of scheduling.
///
/// This is the shared fan-out primitive of the batch drivers (`sfqt1 flow
/// --batch`, the corpus table): items are claimed from an atomic cursor, so
/// uneven per-item cost balances automatically, and the order-preserving
/// merge keeps the observable output bit-identical between sequential and
/// parallel builds. With one worker (no `parallel` feature, single-core
/// host, or `SFQ_WORKERS=1`) it degenerates to a plain in-order map with no
/// thread spawns.
pub fn map_ordered<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = workers().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let work: Vec<std::sync::Mutex<Option<T>>> = items
        .into_iter()
        .map(|item| std::sync::Mutex::new(Some(item)))
        .collect();
    let cursor = AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, U)>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut mine: Vec<(usize, U)> = Vec::new();
                    loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break mine;
                        }
                        let item = work[k]
                            .lock()
                            .expect("work slot lock")
                            .take()
                            .expect("each work item is claimed once");
                        mine.push((k, f(item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            per_worker.push(handle.join().expect("worker thread panicked"));
        }
    });
    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for (k, result) in per_worker.into_iter().flatten() {
        slots[k] = Some(result);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item produced a result"))
        .collect()
}
