//! Netlist exporters: BLIF for interchange with logic-synthesis tools,
//! structural Verilog for downstream place-and-route hand-off, and
//! Graphviz DOT for visual inspection.
//!
//! BLIF is the lingua franca of academic synthesis (ABC, mockturtle, SIS all
//! read it): plain gates become `.names` covers, path-balancing DFFs become
//! `.latch` entries, and T1 macro-cells become `.subckt t1_cell` instances
//! with one net per used output port (a companion model `t1_cell` is emitted
//! once at the end of the file).
//!
//! # Example
//!
//! ```
//! use sfq_netlist::{export, map_aig, Aig, Library};
//!
//! let mut aig = Aig::new("toy");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let s = aig.xor(a, b);
//! aig.output("s", s);
//! let net = map_aig(&aig, &Library::default());
//!
//! let blif = export::render_blif(&net);
//! assert!(blif.contains(".model toy"));
//! let dot = export::render_dot(&net, None);
//! assert!(dot.starts_with("digraph"));
//! ```

use crate::cell::{CellKind, GateKind, T1Port};
use crate::network::{CellId, Network, Signal};
use std::fmt::Write as _;

/// Sanitized, collision-free exported names of a network's ports.
///
/// Distinct port names must stay distinct after [`sanitize`] (e.g. `a.0`
/// and `a_0` both sanitize to `a_0`), and no port may shadow an internal
/// `n<cell>`-style net — either would silently alias two nets in the
/// exported file. Built once per export by [`unique_port_names`].
struct PortNames {
    inputs: Vec<String>,
    outputs: Vec<String>,
}

/// Sanitizes and uniquifies port names: first-come keeps the sanitized
/// base, later collisions get `_2`, `_3`, … suffixes; names that collide
/// with the internal net grammar (`n<digits>[_port]`, see
/// [`parse_net_name`]) are suffixed the same way. Inputs are assigned
/// before outputs, so input names win ties.
pub(crate) fn unique_port_names(inputs: &[&str], outputs: &[&str]) -> (Vec<String>, Vec<String>) {
    let mut used: std::collections::HashSet<String> = std::collections::HashSet::new();
    let mut assign = |raw: &str| -> String {
        let mut base = sanitize(raw);
        if base.is_empty() {
            base = "net".to_string();
        }
        let mut candidate = base.clone();
        let mut k = 1usize;
        while parse_net_name(&candidate).is_some() || used.contains(&candidate) {
            k += 1;
            candidate = format!("{base}_{k}");
        }
        used.insert(candidate.clone());
        candidate
    };
    let ins: Vec<String> = inputs.iter().map(|n| assign(n)).collect();
    let outs: Vec<String> = outputs.iter().map(|n| assign(n)).collect();
    (ins, outs)
}

fn port_names(net: &Network) -> PortNames {
    let inputs: Vec<&str> = (0..net.num_inputs()).map(|k| net.input_name(k)).collect();
    let outputs: Vec<&str> = (0..net.num_outputs()).map(|k| net.output_name(k)).collect();
    let (inputs, outputs) = unique_port_names(&inputs, &outputs);
    PortNames { inputs, outputs }
}

/// Net name of a pin inside exported files.
fn net_name(net: &Network, names: &PortNames, pin: Signal) -> String {
    match net.kind(pin.cell) {
        CellKind::Input => {
            let k = net
                .inputs()
                .iter()
                .position(|&i| i == pin.cell)
                .expect("input cell is listed");
            names.inputs[k].clone()
        }
        CellKind::T1 { .. } => {
            format!(
                "n{}_{}",
                pin.cell.0,
                t1_port_suffix(T1Port::from_index(pin.port))
            )
        }
        _ => format!("n{}", pin.cell.0),
    }
}

fn t1_port_suffix(port: T1Port) -> &'static str {
    match port {
        T1Port::S => "s",
        T1Port::C => "c",
        T1Port::Q => "q",
        T1Port::NotC => "cn",
        T1Port::NotQ => "qn",
    }
}

/// BLIF identifiers must not contain whitespace or `#`; map anything
/// questionable to `_`.
pub(crate) fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// `.names` cover rows for a gate kind (inputs in fanin order, one output).
fn gate_cover(g: GateKind) -> &'static str {
    match g {
        GateKind::Inv => "0 1\n",
        GateKind::Buf => "1 1\n",
        GateKind::And2 => "11 1\n",
        GateKind::Or2 => "1- 1\n-1 1\n",
        GateKind::Xor2 => "10 1\n01 1\n",
        GateKind::Nand2 => "0- 1\n-0 1\n",
        GateKind::Nor2 => "00 1\n",
        GateKind::Xnor2 => "11 1\n00 1\n",
    }
}

/// Renders a mapped network (gates, DFFs, T1 macro-cells) as BLIF.
pub fn render_blif(net: &Network) -> String {
    let names = port_names(net);
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", sanitize(net.name()));

    let _ = write!(out, ".inputs");
    for name in &names.inputs {
        let _ = write!(out, " {name}");
    }
    out.push('\n');

    let _ = write!(out, ".outputs");
    for name in &names.outputs {
        let _ = write!(out, " {name}");
    }
    out.push('\n');

    let mut used_t1 = false;
    for id in net.cell_ids() {
        match net.kind(id) {
            CellKind::Input => {}
            CellKind::Gate(g) => {
                let _ = write!(out, ".names");
                for &f in net.fanins(id) {
                    let _ = write!(out, " {}", net_name(net, &names, f));
                }
                let _ = writeln!(out, " n{}", id.0);
                out.push_str(gate_cover(g));
            }
            CellKind::Dff => {
                let f = net.fanins(id)[0];
                let _ = writeln!(
                    out,
                    ".latch {} n{} re clk 0",
                    net_name(net, &names, f),
                    id.0
                );
            }
            CellKind::T1 { used_ports } => {
                used_t1 = true;
                let _ = write!(out, ".subckt t1_cell");
                for (k, &f) in net.fanins(id).iter().enumerate() {
                    let _ = write!(out, " i{}={}", k, net_name(net, &names, f));
                }
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        let _ = write!(
                            out,
                            " {}=n{}_{}",
                            t1_port_suffix(port),
                            id.0,
                            t1_port_suffix(port)
                        );
                    }
                }
                out.push('\n');
            }
        }
    }

    // Output drivers: alias each output net to its driving pin.
    for (k, &o) in net.outputs().iter().enumerate() {
        let name = names.outputs[k].clone();
        let driver = net_name(net, &names, o);
        if name != driver {
            let _ = writeln!(out, ".names {driver} {name}");
            out.push_str("1 1\n");
        }
    }
    out.push_str(".end\n");

    if used_t1 {
        // Companion behavioural model so downstream BLIF readers can link
        // the subcircuit. The synchronous functions of the five ports.
        out.push_str("\n.model t1_cell\n.inputs i0 i1 i2\n.outputs s c q cn qn\n");
        out.push_str(".names i0 i1 i2 s\n100 1\n010 1\n001 1\n111 1\n");
        out.push_str(".names i0 i1 i2 c\n11- 1\n1-1 1\n-11 1\n");
        out.push_str(".names i0 i1 i2 q\n1-- 1\n-1- 1\n--1 1\n");
        out.push_str(".names c cn\n0 1\n");
        out.push_str(".names q qn\n0 1\n");
        out.push_str(".end\n");
    }
    out
}

/// Renders the network as a Graphviz digraph. When `stages` is given (one
/// stage per cell, as in a retimed network), nodes are annotated with
/// `σ=stage` and ranked by stage.
pub fn render_dot(net: &Network, stages: Option<&[u32]>) -> String {
    let names = port_names(net);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sanitize(net.name()));
    out.push_str("  rankdir=LR;\n  node [fontname=\"monospace\"];\n");
    for id in net.cell_ids() {
        let (label, shape, style) = match net.kind(id) {
            CellKind::Input => {
                let k = net.inputs().iter().position(|&i| i == id).expect("listed");
                (
                    names.inputs[k].clone(),
                    "circle",
                    "filled,fillcolor=lightblue",
                )
            }
            CellKind::Gate(g) => (format!("{g}\\nc{}", id.0), "box", "solid"),
            CellKind::Dff => (format!("DFF\\nc{}", id.0), "box", "filled,fillcolor=gray90"),
            CellKind::T1 { .. } => (format!("T1\\nc{}", id.0), "box3d", "filled,fillcolor=gold"),
        };
        let stage_note = stages
            .map(|s| format!("\\nσ={}", s[id.0 as usize]))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  c{} [label=\"{}{}\", shape={}, style=\"{}\"];",
            id.0, label, stage_note, shape, style
        );
    }
    for id in net.cell_ids() {
        for &f in net.fanins(id) {
            let port_note = if net.kind(f.cell).is_t1() {
                format!(
                    " [taillabel=\"{}\"]",
                    t1_port_suffix(T1Port::from_index(f.port))
                )
            } else {
                String::new()
            };
            let _ = writeln!(out, "  c{} -> c{}{};", f.cell.0, id.0, port_note);
        }
    }
    for (k, &o) in net.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  o{k} [label=\"{}\", shape=doublecircle, style=filled, fillcolor=lightgreen];",
            names.outputs[k]
        );
        let _ = writeln!(out, "  c{} -> o{k};", o.cell.0);
    }
    out.push_str("}\n");
    out
}

/// Renders a mapped network as structural Verilog.
///
/// Each cell becomes one instance of a library module (`SFQ_AND2`,
/// `SFQ_DFF`, `SFQ_T1`, …); behavioural definitions of those modules are
/// appended so the file is self-contained for simulation and LEC. The
/// behavioural bodies model the *synchronous* cell functions (clocking is
/// the stage discipline's job, carried separately by the DOT/report
/// artifacts), which is the standard hand-off shape for SFQ place-and-route
/// flows.
pub fn render_verilog(net: &Network) -> String {
    let names = port_names(net);
    let mut out = String::new();
    let _ = writeln!(out, "// generated by sfq-netlist::export::render_verilog");
    let _ = write!(out, "module {} (", sanitize(net.name()));
    let mut first = true;
    for name in names.inputs.iter().chain(&names.outputs) {
        let sep = if first { "" } else { ", " };
        let _ = write!(out, "{sep}{name}");
        first = false;
    }
    let _ = writeln!(out, ");");
    for name in &names.inputs {
        let _ = writeln!(out, "  input  {name};");
    }
    for name in &names.outputs {
        let _ = writeln!(out, "  output {name};");
    }

    let mut used: [bool; 12] = [false; 12]; // which library modules to emit
    for id in net.cell_ids() {
        match net.kind(id) {
            CellKind::Input => {}
            CellKind::Gate(g) => {
                let _ = writeln!(out, "  wire n{};", id.0);
                let (module, slot) = gate_module(g);
                used[slot] = true;
                let fanins = net.fanins(id);
                let _ = write!(out, "  {module} g{} (", id.0);
                for (k, &f) in fanins.iter().enumerate() {
                    let pin = [b'a' + k as u8];
                    let _ = write!(
                        out,
                        ".{}({}), ",
                        std::str::from_utf8(&pin).expect("ascii"),
                        net_name(net, &names, f)
                    );
                }
                let _ = writeln!(out, ".y(n{}));", id.0);
            }
            CellKind::Dff => {
                let _ = writeln!(out, "  wire n{};", id.0);
                used[9] = true;
                let f = net.fanins(id)[0];
                let _ = writeln!(
                    out,
                    "  SFQ_DFF d{} (.d({}), .q(n{}));",
                    id.0,
                    net_name(net, &names, f),
                    id.0
                );
            }
            CellKind::T1 { used_ports } => {
                used[10] = true;
                let mut pins: Vec<String> = net
                    .fanins(id)
                    .iter()
                    .enumerate()
                    .map(|(k, &f)| format!(".i{k}({})", net_name(net, &names, f)))
                    .collect();
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        let suffix = t1_port_suffix(port);
                        let _ = writeln!(out, "  wire n{}_{suffix};", id.0);
                        pins.push(format!(".{suffix}(n{}_{suffix})", id.0));
                    }
                }
                let _ = writeln!(out, "  SFQ_T1 t{} ({});", id.0, pins.join(", "));
            }
        }
    }
    for (k, &o) in net.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  assign {} = {};",
            names.outputs[k],
            net_name(net, &names, o)
        );
    }
    let _ = writeln!(out, "endmodule");

    // Library modules (behavioural synchronous functions).
    const ONE_IN: &[(usize, &str, &str)] = &[(0, "SFQ_INV", "~a"), (1, "SFQ_BUF", "a")];
    for &(slot, name, expr) in ONE_IN {
        if used[slot] {
            let _ = writeln!(
                out,
                "\nmodule {name} (input a, output y);\n  assign y = {expr};\nendmodule"
            );
        }
    }
    const TWO_IN: &[(usize, &str, &str)] = &[
        (2, "SFQ_AND2", "a & b"),
        (3, "SFQ_OR2", "a | b"),
        (4, "SFQ_XOR2", "a ^ b"),
        (5, "SFQ_NAND2", "~(a & b)"),
        (6, "SFQ_NOR2", "~(a | b)"),
        (7, "SFQ_XNOR2", "~(a ^ b)"),
    ];
    for &(slot, name, expr) in TWO_IN {
        if used[slot] {
            let _ = writeln!(
                out,
                "\nmodule {name} (input a, input b, output y);\n  assign y = {expr};\nendmodule"
            );
        }
    }
    if used[9] {
        let _ = writeln!(
            out,
            "\nmodule SFQ_DFF (input d, output q);\n  assign q = d; // one-stage delay carried by the stage schedule\nendmodule"
        );
    }
    if used[10] {
        let _ = writeln!(
            out,
            "\nmodule SFQ_T1 (input i0, input i1, input i2,\n               output s, output c, output q, output cn, output qn);\n  assign s  = i0 ^ i1 ^ i2;\n  assign c  = (i0 & i1) | (i0 & i2) | (i1 & i2);\n  assign q  = i0 | i1 | i2;\n  assign cn = ~c;\n  assign qn = ~q;\nendmodule"
        );
    }
    out
}

/// Renders a *timed* network (a retimed mapping plus its stage schedule) as
/// structural Verilog with behavioural **clocked** cell models.
///
/// Where [`render_verilog`] hands off the synchronous functions only, this
/// emitter carries the multiphase clock discipline itself: the top module
/// takes a master `clk`, derives one interleaved phase clock
/// `clk_phi<p>` per phase (`p = tick mod n`), and connects every clocked
/// cell to the phase clock of its stage. Each instance is parameterized and
/// annotated with its stage (`σ`) and phase (`φ`), and every library module
/// is an `always @(posedge clk)` behavioural model, so the file simulates
/// stand-alone in any event-driven Verilog simulator — the external leg of
/// the pulse-level equivalence story (see `sfq_sim::equiv`).
///
/// `stages` must hold one stage per cell (as in
/// `sfq_core::TimedNetwork::stages`); `output_stage` is the common
/// primary-output sampling stage. Output is byte-deterministic: cells are
/// walked in id order and library modules appended in a fixed order, so the
/// artifact can be golden-diffed.
///
/// # Panics
/// Panics if `stages` is shorter than the cell count or `num_phases` is 0.
pub fn render_verilog_timed(
    net: &Network,
    stages: &[u32],
    num_phases: u8,
    output_stage: u32,
) -> String {
    assert!(num_phases > 0, "at least one clock phase");
    assert!(
        stages.len() >= net.num_cells(),
        "one stage per cell required"
    );
    let n = num_phases as u32;
    let mut names = port_names(net);
    reserve_clock_names(&mut names);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "// generated by sfq-netlist::export::render_verilog_timed"
    );
    let _ = writeln!(
        out,
        "// clock discipline: n={num_phases} interleaved phases; a cell at stage σ fires"
    );
    let _ = writeln!(
        out,
        "// on clk_phi(σ mod n); primary outputs are sampled at stage {output_stage}."
    );
    let _ = write!(out, "module {} (clk", sanitize(net.name()));
    for name in names.inputs.iter().chain(&names.outputs) {
        let _ = write!(out, ", {name}");
    }
    let _ = writeln!(out, ");");
    out.push_str("  input  clk;\n");
    for name in &names.inputs {
        let _ = writeln!(out, "  input  {name};");
    }
    for name in &names.outputs {
        let _ = writeln!(out, "  output {name};");
    }
    out.push_str("\n  // Interleaved phase clocks derived from the master clock.\n");
    out.push_str("  reg [31:0] sfq_tick;\n");
    out.push_str("  initial sfq_tick = 32'd0;\n");
    out.push_str("  always @(posedge clk) sfq_tick <= sfq_tick + 32'd1;\n");
    for p in 0..n {
        let _ = writeln!(
            out,
            "  wire clk_phi{p} = clk & (sfq_tick % 32'd{n} == 32'd{p});"
        );
    }
    out.push('\n');

    let mut used: [bool; 12] = [false; 12]; // which library modules to emit
    for id in net.cell_ids() {
        let stage = stages[id.0 as usize];
        let phase = stage % n;
        match net.kind(id) {
            CellKind::Input => {}
            CellKind::Gate(g) => {
                let _ = writeln!(out, "  wire n{};", id.0);
                let (module, slot) = gate_module(g);
                used[slot] = true;
                let _ = write!(
                    out,
                    "  {module}_T #(.STAGE({stage}), .PHASE({phase})) g{} (.clk(clk_phi{phase}), ",
                    id.0
                );
                for (k, &f) in net.fanins(id).iter().enumerate() {
                    let pin = [b'a' + k as u8];
                    let _ = write!(
                        out,
                        ".{}({}), ",
                        std::str::from_utf8(&pin).expect("ascii"),
                        net_name(net, &names, f)
                    );
                }
                let _ = writeln!(out, ".y(n{})); // σ={stage} φ={phase}", id.0);
            }
            CellKind::Dff => {
                let _ = writeln!(out, "  wire n{};", id.0);
                used[9] = true;
                let f = net.fanins(id)[0];
                let _ = writeln!(
                    out,
                    "  SFQ_DFF_T #(.STAGE({stage}), .PHASE({phase})) d{} (.clk(clk_phi{phase}), .d({}), .q(n{})); // σ={stage} φ={phase}",
                    id.0,
                    net_name(net, &names, f),
                    id.0
                );
            }
            CellKind::T1 { used_ports } => {
                used[10] = true;
                let mut pins: Vec<String> = vec![format!(".clk(clk_phi{phase})")];
                for (k, &f) in net.fanins(id).iter().enumerate() {
                    pins.push(format!(".i{k}({})", net_name(net, &names, f)));
                }
                for port in T1Port::ALL {
                    if used_ports >> port.index() & 1 == 1 {
                        let suffix = t1_port_suffix(port);
                        let _ = writeln!(out, "  wire n{}_{suffix};", id.0);
                        pins.push(format!(".{suffix}(n{}_{suffix})", id.0));
                    }
                }
                let _ = writeln!(
                    out,
                    "  SFQ_T1_T #(.STAGE({stage}), .PHASE({phase})) t{} ({}); // σ={stage} φ={phase}",
                    id.0,
                    pins.join(", ")
                );
            }
        }
    }
    for (k, &o) in net.outputs().iter().enumerate() {
        let _ = writeln!(
            out,
            "  assign {} = {}; // sampled at σ={output_stage}",
            names.outputs[k],
            net_name(net, &names, o)
        );
    }
    let _ = writeln!(out, "endmodule");

    // Behavioural clocked library modules, in fixed slot order.
    const ONE_IN: &[(usize, &str, &str)] = &[(0, "SFQ_INV_T", "~a"), (1, "SFQ_BUF_T", "a")];
    for &(slot, name, expr) in ONE_IN {
        if used[slot] {
            let _ = writeln!(
                out,
                "\nmodule {name} #(parameter STAGE = 0, parameter PHASE = 0) (\n  input clk, input a, output reg y\n);\n  initial y = 1'b0;\n  always @(posedge clk) y <= {expr};\nendmodule"
            );
        }
    }
    const TWO_IN: &[(usize, &str, &str)] = &[
        (2, "SFQ_AND2_T", "a & b"),
        (3, "SFQ_OR2_T", "a | b"),
        (4, "SFQ_XOR2_T", "a ^ b"),
        (5, "SFQ_NAND2_T", "~(a & b)"),
        (6, "SFQ_NOR2_T", "~(a | b)"),
        (7, "SFQ_XNOR2_T", "~(a ^ b)"),
    ];
    for &(slot, name, expr) in TWO_IN {
        if used[slot] {
            let _ = writeln!(
                out,
                "\nmodule {name} #(parameter STAGE = 0, parameter PHASE = 0) (\n  input clk, input a, input b, output reg y\n);\n  initial y = 1'b0;\n  always @(posedge clk) y <= {expr};\nendmodule"
            );
        }
    }
    if used[9] {
        let _ = writeln!(
            out,
            "\nmodule SFQ_DFF_T #(parameter STAGE = 0, parameter PHASE = 0) (\n  input clk, input d, output reg q\n);\n  // Destructive readout: the pulse parked on `d` is released at this\n  // cell's own phase of the interleaved clock.\n  initial q = 1'b0;\n  always @(posedge clk) q <= d;\nendmodule"
        );
    }
    if used[10] {
        let _ = writeln!(
            out,
            "\nmodule SFQ_T1_T #(parameter STAGE = 0, parameter PHASE = 0) (\n  input clk, input i0, input i1, input i2,\n  output reg s, output reg c, output reg q, output reg cn, output reg qn\n);\n  // Pulse-counting loop folded to its synchronous function: at the\n  // cell's own clock phase the loop reads out S = XOR3 and resets;\n  // C*/Q* (MAJ3/OR3) and their complements release on the same edge.\n  initial begin s = 1'b0; c = 1'b0; q = 1'b0; cn = 1'b1; qn = 1'b1; end\n  always @(posedge clk) begin\n    s  <= i0 ^ i1 ^ i2;\n    c  <= (i0 & i1) | (i0 & i2) | (i1 & i2);\n    q  <= i0 | i1 | i2;\n    cn <= ~((i0 & i1) | (i0 & i2) | (i1 & i2));\n    qn <= ~(i0 | i1 | i2);\n  end\nendmodule"
        );
    }
    out
}

/// The timed emitter owns the `clk`/`sfq_tick`/`clk_phi<p>` identifiers;
/// ports that collide are uniquified with the usual `_2`-style suffixes.
fn reserve_clock_names(names: &mut PortNames) {
    let reserved = |name: &str| {
        name == "clk"
            || name == "sfq_tick"
            || name
                .strip_prefix("clk_phi")
                .is_some_and(|rest| !rest.is_empty() && rest.bytes().all(|b| b.is_ascii_digit()))
    };
    let mut used: std::collections::HashSet<String> =
        names.inputs.iter().chain(&names.outputs).cloned().collect();
    for name in names.inputs.iter_mut().chain(names.outputs.iter_mut()) {
        if !reserved(name) {
            continue;
        }
        let base = name.clone();
        let mut k = 1usize;
        let renamed = loop {
            k += 1;
            let candidate = format!("{base}_{k}");
            if !reserved(&candidate)
                && !used.contains(&candidate)
                && parse_net_name(&candidate).is_none()
            {
                break candidate;
            }
        };
        used.remove(name);
        used.insert(renamed.clone());
        *name = renamed;
    }
}

fn gate_module(g: GateKind) -> (&'static str, usize) {
    match g {
        GateKind::Inv => ("SFQ_INV", 0),
        GateKind::Buf => ("SFQ_BUF", 1),
        GateKind::And2 => ("SFQ_AND2", 2),
        GateKind::Or2 => ("SFQ_OR2", 3),
        GateKind::Xor2 => ("SFQ_XOR2", 4),
        GateKind::Nand2 => ("SFQ_NAND2", 5),
        GateKind::Nor2 => ("SFQ_NOR2", 6),
        GateKind::Xnor2 => ("SFQ_XNOR2", 7),
    }
}

/// Parses the net-name back out of exported identifiers (round-trip helper
/// for tests and tooling): `n17` → cell 17, port 0; `n17_cn` → cell 17,
/// `C*+INV` port.
pub fn parse_net_name(name: &str) -> Option<(CellId, u8)> {
    let rest = name.strip_prefix('n')?;
    if let Some((cell, port)) = rest.split_once('_') {
        let cell: u32 = cell.parse().ok()?;
        let port = match port {
            "s" => T1Port::S,
            "c" => T1Port::C,
            "q" => T1Port::Q,
            "cn" => T1Port::NotC,
            "qn" => T1Port::NotQ,
            _ => return None,
        };
        Some((CellId(cell), port.index()))
    } else {
        let cell: u32 = rest.parse().ok()?;
        Some((CellId(cell), 0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aig::Aig;
    use crate::cell::Library;
    use crate::mapper::map_aig;

    fn mapped_fa() -> Network {
        let mut aig = Aig::new("fa");
        let a = aig.input("a");
        let b = aig.input("b");
        let c = aig.input("cin");
        let (s, co) = aig.full_adder(a, b, c);
        aig.output("sum", s);
        aig.output("carry", co);
        map_aig(&aig, &Library::default())
    }

    #[test]
    fn blif_has_model_io_and_names() {
        let net = mapped_fa();
        let blif = render_blif(&net);
        assert!(blif.contains(".model fa"));
        assert!(blif.contains(".inputs a b cin"));
        assert!(blif.contains(".outputs sum carry"));
        assert!(blif.contains(".names"));
        assert!(blif.ends_with(".end\n"));
        assert!(!blif.contains("t1_cell"), "no T1 cells in a plain mapping");
    }

    #[test]
    fn blif_emits_t1_subckt_and_model() {
        let mut net = Network::new("t1net");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let t1 = net.add_t1(0b00011, &[a, b, c]);
        net.add_output("s", Signal::t1(t1, T1Port::S));
        net.add_output("c", Signal::t1(t1, T1Port::C));
        let blif = render_blif(&net);
        assert!(blif.contains(".subckt t1_cell i0=a i1=b i2=c s="));
        assert!(blif.contains(".model t1_cell"), "companion model present");
    }

    #[test]
    fn dot_marks_cell_kinds_and_stages() {
        let net = mapped_fa();
        let stages: Vec<u32> = (0..net.num_cells() as u32).collect();
        let dot = render_dot(&net, Some(&stages));
        assert!(dot.starts_with("digraph \"fa\""));
        assert!(dot.contains("shape=circle"), "inputs drawn");
        assert!(dot.contains("σ="), "stage annotations present");
        assert!(dot.contains("doublecircle"), "outputs drawn");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn net_names_round_trip() {
        assert_eq!(parse_net_name("n17"), Some((CellId(17), 0)));
        assert_eq!(
            parse_net_name("n17_cn"),
            Some((CellId(17), T1Port::NotC.index()))
        );
        assert_eq!(parse_net_name("a"), None);
        assert_eq!(parse_net_name("n17_zz"), None);
    }

    #[test]
    fn verilog_instantiates_cells_and_library_modules() {
        let net = mapped_fa();
        let v = render_verilog(&net);
        assert!(v.contains("module fa ("), "top module present:\n{v}");
        assert!(v.contains("input  a;"), "inputs declared");
        assert!(v.contains("output sum;"), "outputs declared");
        // The mapper realizes the sum path as XNOR2(cin, XNOR2(a, b)).
        assert!(
            v.contains("SFQ_XNOR2 g"),
            "XNOR instances for the sum path:\n{v}"
        );
        assert!(
            v.contains("module SFQ_XNOR2"),
            "used library modules emitted"
        );
        assert!(
            !v.contains("module SFQ_T1") && !v.contains("module SFQ_XOR2"),
            "unused library modules omitted:\n{v}"
        );
        assert!(v.contains("assign sum = "), "output aliases assigned");
        // Balanced module/endmodule.
        assert_eq!(
            v.lines().filter(|l| l.starts_with("module ")).count(),
            v.matches("endmodule").count(),
            "every module is closed:\n{v}"
        );
    }

    #[test]
    fn verilog_emits_t1_instances_with_used_ports_only() {
        let mut net = Network::new("t1v");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let t1 = net.add_t1(0b00011, &[a, b, c]);
        net.add_output("s", Signal::t1(t1, T1Port::S));
        net.add_output("c", Signal::t1(t1, T1Port::C));
        let v = render_verilog(&net);
        assert!(
            v.contains("SFQ_T1 t3 (.i0(a), .i1(b), .i2(c), .s(n3_s), .c(n3_c));"),
            "{v}"
        );
        assert!(!v.contains(".qn("), "unused ports are not wired");
        assert!(v.contains("module SFQ_T1"), "T1 library module present");
        assert!(v.contains("assign s = n3_s;"), "{v}");
    }

    #[test]
    fn verilog_declares_every_referenced_wire() {
        // Every `nX`-style identifier that appears in an instance pin must
        // also appear in a `wire` declaration (outputs/inputs use names).
        let net = mapped_fa();
        let v = render_verilog(&net);
        let declared: std::collections::HashSet<&str> = v
            .lines()
            .filter_map(|l| l.trim().strip_prefix("wire "))
            .map(|rest| rest.trim_end_matches(';'))
            .collect();
        for line in v.lines() {
            let Some(open) = line.find('(') else { continue };
            if !line.trim_start().starts_with("SFQ_") {
                continue;
            }
            for piece in line[open..].split(['(', ')', ',', ' ']) {
                if piece.starts_with('n')
                    && piece[1..]
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_digit())
                {
                    assert!(
                        declared.contains(piece),
                        "undeclared wire `{piece}` in line `{line}`"
                    );
                }
            }
        }
    }

    #[test]
    fn sanitize_collisions_are_uniquified() {
        // `a.0` and `a_0` both sanitize to `a_0`; before the fix the BLIF
        // export aliased them into one net, silently merging two inputs.
        let mut net = Network::new("collide");
        let x = net.add_input("a.0");
        let y = net.add_input("a_0");
        let g = net.add_gate(GateKind::And2, &[x, y]);
        net.add_output("y", g);
        let blif = render_blif(&net);
        assert!(blif.contains(".inputs a_0 a_0_2"), "{blif}");
        assert!(blif.contains(".names a_0 a_0_2 n"), "{blif}");
        let back = crate::blif::parse_blif(&blif).expect("collision-free blif parses");
        assert_eq!(back.num_inputs(), 2, "both inputs survive the export");
        let v = render_verilog(&net);
        assert!(v.contains("input  a_0;"), "{v}");
        assert!(v.contains("input  a_0_2;"), "{v}");
    }

    #[test]
    fn ports_never_shadow_internal_nets() {
        // A port literally named like an internal net (`n3`, `n3_s`) must be
        // renamed, or it would alias whatever cell 3 drives.
        let mut net = Network::new("shadow");
        let a = net.add_input("n3");
        let b = net.add_input("b");
        let g = net.add_gate(GateKind::Or2, &[a, b]);
        net.add_output("n2_s", g);
        let blif = render_blif(&net);
        assert!(blif.contains(".inputs n3_2 b"), "{blif}");
        assert!(blif.contains(".outputs n2_s_2"), "{blif}");
        let back = crate::blif::parse_blif(&blif).expect("shadow-free blif parses");
        assert_eq!(back.num_inputs(), 2);
        assert_eq!(back.num_outputs(), 1);
    }

    #[test]
    fn timed_verilog_is_deterministic_and_phase_annotated() {
        let mut net = Network::new("timedv");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let g = net.add_gate(GateKind::Xor2, &[a, b]);
        let d = net.add_dff(g);
        let t1 = net.add_t1(0b00001, &[d, g, c]);
        net.add_output("s", Signal::t1(t1, T1Port::S));
        let stages = vec![0, 0, 0, 1, 2, 5];
        let v1 = render_verilog_timed(&net, &stages, 4, 5);
        let v2 = render_verilog_timed(&net, &stages, 4, 5);
        assert_eq!(v1, v2, "timed emission must be byte-deterministic");
        assert!(v1.contains("module timedv (clk, a, b, c, s);"), "{v1}");
        assert!(v1.contains("wire clk_phi3 = clk & (sfq_tick % 32'd4 == 32'd3);"));
        assert!(
            v1.contains("SFQ_XOR2_T #(.STAGE(1), .PHASE(1)) g3 (.clk(clk_phi1), .a(a), .b(b), .y(n3)); // σ=1 φ=1"),
            "{v1}"
        );
        assert!(
            v1.contains(
                "SFQ_DFF_T #(.STAGE(2), .PHASE(2)) d4 (.clk(clk_phi2), .d(n3), .q(n4)); // σ=2 φ=2"
            ),
            "{v1}"
        );
        assert!(
            v1.contains("SFQ_T1_T #(.STAGE(5), .PHASE(1)) t5 (.clk(clk_phi1), .i0(n4), .i1(n3), .i2(c), .s(n5_s)); // σ=5 φ=1"),
            "{v1}"
        );
        assert!(v1.contains("assign s = n5_s; // sampled at σ=5"), "{v1}");
        assert!(v1.contains("module SFQ_T1_T"), "T1 model emitted");
        assert!(
            !v1.contains("module SFQ_AND2_T"),
            "unused library modules omitted"
        );
        assert_eq!(
            v1.lines().filter(|l| l.starts_with("module ")).count(),
            v1.matches("endmodule").count(),
            "every module is closed:\n{v1}"
        );
    }

    #[test]
    fn timed_verilog_reserves_clock_identifiers() {
        // Ports that collide with the emitter-owned clocking nets must be
        // renamed, or the file would short the master clock into user logic.
        let mut net = Network::new("clash");
        let a = net.add_input("clk");
        let b = net.add_input("clk_phi0");
        let g = net.add_gate(GateKind::And2, &[a, b]);
        net.add_output("sfq_tick", g);
        let v = render_verilog_timed(&net, &[0, 0, 1], 2, 1);
        assert!(v.contains("  input  clk_2;"), "{v}");
        assert!(v.contains("  input  clk_phi0_2;"), "{v}");
        assert!(v.contains("  output sfq_tick_2;"), "{v}");
        assert!(
            v.contains(".a(clk_2), .b(clk_phi0_2)"),
            "instances use the renamed ports:\n{v}"
        );
    }

    #[test]
    fn blif_t1_model_truth_tables_match_cell_functions() {
        // The cover rows in the companion model must agree with T1Port
        // semantics: S=XOR3, C=MAJ3, Q=OR3 (+complements).
        for row in 0..8u8 {
            let (a, b, c) = (row & 1 == 1, row >> 1 & 1 == 1, row >> 2 & 1 == 1);
            let s_rows = ["100", "010", "001", "111"];
            let c_rows = ["11-", "1-1", "-11"];
            let q_rows = ["1--", "-1-", "--1"];
            let matches = |pat: &str| {
                pat.bytes().zip([a, b, c]).all(|(p, v)| match p {
                    b'1' => v,
                    b'0' => !v,
                    _ => true,
                })
            };
            assert_eq!(s_rows.iter().any(|p| matches(p)), a ^ b ^ c, "S row {row}");
            assert_eq!(
                c_rows.iter().any(|p| matches(p)),
                (a & b) | (a & c) | (b & c),
                "C row {row}"
            );
            assert_eq!(q_rows.iter().any(|p| matches(p)), a | b | c, "Q row {row}");
        }
    }
}
