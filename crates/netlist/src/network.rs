//! Mapped multi-output SFQ netlists.
//!
//! A [`Network`] is the subject of the whole T1 flow: after technology
//! mapping it contains primary inputs and clocked gates; T1 detection
//! introduces multi-output [`CellKind::T1`] macro-cells; DFF insertion adds
//! [`CellKind::Dff`] cells. Splitters and the T1 input mergers are *not*
//! explicit cells — fanout trees are implied by the connectivity and priced
//! by [`Library::splitter_area`], matching how the paper reports JJ counts.
//!
//! # Data layout of the rebuild / evaluation passes
//!
//! Cell ids are dense (`CellId(i)` indexes the cell vector directly), and
//! every traversal here exploits that instead of hashing (ISSUE 2):
//!
//! * [`Network::cleaned`] runs over a reusable [`RebuildScratch`] — dense
//!   liveness marks, a dense old-cell → new-cell translation table and one
//!   staged fanin buffer; [`Network::cleaned_with`] lets callers amortize
//!   the scratch across many rebuilds. The original allocate-per-cell pass
//!   survives as [`Network::cleaned_reference`], the executable
//!   specification checked by `tests/differential_mapping.rs` (criterion
//!   gate `cleaned/multiplier12`: 61 µs → 50 µs).
//! * [`Network::simulate`] resolves input cells through a dense
//!   per-cell pattern-index table, and [`Network::cone_function`] memoizes
//!   pin values in a flat `(cell × port)` byte table reset through a touch
//!   list — no per-row `HashMap` churn.
//! * [`Network::topological_order`] is a flat-CSR Kahn sweep (PR 1).

use crate::cell::{CellKind, GateKind, Library, T1Port, T1_NUM_PORTS};
use sfq_tt::TruthTable;
use std::fmt;

/// Index of a cell within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub u32);

/// A reference to one output pin of a cell.
///
/// Single-output cells drive port 0; T1 cells drive ports indexed by
/// [`T1Port::index`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal {
    /// Driving cell.
    pub cell: CellId,
    /// Output port of the driving cell.
    pub port: u8,
}

impl Signal {
    /// Port-0 signal of a cell.
    pub fn from_cell(cell: CellId) -> Self {
        Signal { cell, port: 0 }
    }

    /// Signal of a specific T1 port.
    pub fn t1(cell: CellId, port: T1Port) -> Self {
        Signal {
            cell,
            port: port.index(),
        }
    }
}

impl fmt::Debug for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.port == 0 {
            write!(f, "c{}", self.cell.0)
        } else {
            write!(f, "c{}.{}", self.cell.0, self.port)
        }
    }
}

/// Structural problems detected by [`Network::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A cell has the wrong number of fanins for its kind.
    BadArity {
        /// The offending cell.
        cell: CellId,
        /// Fanin count its kind requires.
        expected: usize,
        /// Fanin count it actually has.
        got: usize,
    },
    /// A fanin references a cell id that does not exist.
    DanglingFanin {
        /// The referencing cell.
        cell: CellId,
        /// The dangling fanin signal.
        fanin: Signal,
    },
    /// A fanin references an output port the driver does not expose or use.
    BadPort {
        /// The referencing cell.
        cell: CellId,
        /// The fanin signal with the unavailable port.
        fanin: Signal,
    },
    /// The network contains a combinational cycle.
    Cyclic,
    /// An output references a cell id that does not exist or a bad port.
    BadOutput {
        /// Index into the output list.
        index: usize,
        /// The invalid signal.
        signal: Signal,
    },
    /// An input list entry is not an [`CellKind::Input`] cell.
    NotAnInput {
        /// The offending entry.
        cell: CellId,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::BadArity {
                cell,
                expected,
                got,
            } => {
                write!(
                    f,
                    "cell c{} expects {} fanins, has {}",
                    cell.0, expected, got
                )
            }
            NetworkError::DanglingFanin { cell, fanin } => {
                write!(f, "cell c{} references missing driver {:?}", cell.0, fanin)
            }
            NetworkError::BadPort { cell, fanin } => {
                write!(f, "cell c{} reads unavailable port {:?}", cell.0, fanin)
            }
            NetworkError::Cyclic => write!(f, "network contains a combinational cycle"),
            NetworkError::BadOutput { index, signal } => {
                write!(f, "output {} references invalid signal {:?}", index, signal)
            }
            NetworkError::NotAnInput { cell } => {
                write!(f, "input list entry c{} is not an Input cell", cell.0)
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// Maximum fanin count of any cell kind (T1 macro-cells, at three).
const MAX_FANINS: usize = 3;

/// One cell, with its fanins stored inline. No cell kind has more than
/// [`MAX_FANINS`] inputs, so a fixed array replaces the former
/// `Vec<Signal>` — building a network performs zero per-cell heap
/// allocations, which is what makes the rebuild passes (`cleaned`, T1
/// replacement, DFF insertion) allocation-bounded by the cell vector alone.
#[derive(Debug, Clone)]
struct Cell {
    kind: CellKind,
    num_fanins: u8,
    fanins: [Signal; MAX_FANINS],
}

impl Cell {
    fn new(kind: CellKind, fanins: &[Signal]) -> Self {
        assert!(fanins.len() <= MAX_FANINS, "at most {MAX_FANINS} fanins");
        let filler = Signal {
            cell: CellId(u32::MAX),
            port: 0,
        };
        let mut buf = [filler; MAX_FANINS];
        buf[..fanins.len()].copy_from_slice(fanins);
        Cell {
            kind,
            num_fanins: fanins.len() as u8,
            fanins: buf,
        }
    }

    #[inline]
    fn fanins(&self) -> &[Signal] {
        &self.fanins[..self.num_fanins as usize]
    }
}

/// Reusable scratch for [`Network::cleaned_with`] and friends: liveness
/// marks, the DFS worklist, the dense old-cell → new-cell translation table
/// and the fanin staging buffer. One scratch serves any number of rebuild
/// passes over networks of any size (buffers grow to the largest network
/// seen and stay allocated).
#[derive(Debug, Default)]
pub struct RebuildScratch {
    live: Vec<bool>,
    stack: Vec<u32>,
    remap: Vec<Option<CellId>>,
    fanin_buf: Vec<Signal>,
}

impl RebuildScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A mapped multi-output SFQ netlist.
///
/// # Example
///
/// ```
/// use sfq_netlist::{GateKind, Library, Network};
///
/// let mut net = Network::new("half_adder");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let s = net.add_gate(GateKind::Xor2, &[a, b]);
/// let c = net.add_gate(GateKind::And2, &[a, b]);
/// net.add_output("s", s);
/// net.add_output("c", c);
/// net.validate().unwrap();
/// assert_eq!(net.num_gates(), 2);
/// // a and b each fan out to two gates → two splitters.
/// assert_eq!(net.area(&Library::default()), 11 + 11 + 2 * 3);
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    name: String,
    cells: Vec<Cell>,
    inputs: Vec<CellId>,
    input_names: Vec<String>,
    outputs: Vec<Signal>,
    output_names: Vec<String>,
}

/// JJ area decomposed by cell class (see [`Network::area_breakdown`]).
///
/// # Example
///
/// ```
/// use sfq_netlist::{GateKind, Library, Network};
/// let mut net = Network::new("t");
/// let a = net.add_input("a");
/// let g = net.add_gate(GateKind::Inv, &[a]);
/// let d = net.add_dff(g);
/// net.add_output("o", d);
/// let b = net.area_breakdown(&Library::default());
/// assert_eq!(b.gates, 9);
/// assert_eq!(b.dffs, 6);
/// assert_eq!(b.total(), net.area(&Library::default()));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AreaBreakdown {
    /// Clocked logic gates.
    pub gates: u64,
    /// T1 macro-cells (including their internal latches/inverters).
    pub t1_cells: u64,
    /// Path-balancing DFFs.
    pub dffs: u64,
    /// Implied splitter trees on multi-fanout pins.
    pub splitters: u64,
}

impl AreaBreakdown {
    /// Sum of all classes.
    pub fn total(&self) -> u64 {
        self.gates + self.t1_cells + self.dffs + self.splitters
    }
}

impl Network {
    /// Creates an empty network.
    pub fn new(name: impl Into<String>) -> Self {
        Network {
            name: name.into(),
            cells: Vec::new(),
            inputs: Vec::new(),
            input_names: Vec::new(),
            outputs: Vec::new(),
            output_names: Vec::new(),
        }
    }

    /// Design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input; returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> Signal {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell::new(CellKind::Input, &[]));
        self.inputs.push(id);
        self.input_names.push(name.into());
        Signal::from_cell(id)
    }

    /// Adds a clocked gate; returns its output signal.
    ///
    /// # Panics
    /// Panics if `fanins.len()` does not match the gate arity.
    pub fn add_gate(&mut self, kind: GateKind, fanins: &[Signal]) -> Signal {
        assert_eq!(fanins.len(), kind.arity(), "gate arity mismatch for {kind}");
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell::new(CellKind::Gate(kind), fanins));
        Signal::from_cell(id)
    }

    /// Adds a T1 macro-cell with the given used-port mask; returns its id.
    ///
    /// Use [`Signal::t1`] to reference individual ports.
    ///
    /// # Panics
    /// Panics if `fanins.len() != 3`, the mask is empty, or the mask has bits
    /// above the five ports.
    pub fn add_t1(&mut self, used_ports: u8, fanins: &[Signal]) -> CellId {
        assert_eq!(fanins.len(), 3, "T1 cells have exactly three fanins");
        assert!(used_ports != 0, "T1 cell must use at least one port");
        assert!(used_ports < 1 << T1_NUM_PORTS, "invalid T1 port mask");
        let id = CellId(self.cells.len() as u32);
        self.cells
            .push(Cell::new(CellKind::T1 { used_ports }, fanins));
        id
    }

    /// Enables an additional output port on an existing T1 macro-cell and
    /// returns its signal (used when a consumer wants a complement the cell
    /// can produce internally — e.g. `C*`+INV instead of an external
    /// inverter on `C`).
    ///
    /// # Panics
    /// Panics if `id` is not a T1 cell.
    pub fn enable_t1_port(&mut self, id: CellId, port: T1Port) -> Signal {
        match &mut self.cells[id.0 as usize].kind {
            CellKind::T1 { used_ports } => {
                *used_ports |= 1 << port.index();
                Signal::t1(id, port)
            }
            other => panic!("cell c{} is {other:?}, not a T1 macro-cell", id.0),
        }
    }

    /// Adds a path-balancing DFF; returns its output signal.
    pub fn add_dff(&mut self, fanin: Signal) -> Signal {
        let id = CellId(self.cells.len() as u32);
        self.cells.push(Cell::new(CellKind::Dff, &[fanin]));
        Signal::from_cell(id)
    }

    /// Registers a primary output.
    pub fn add_output(&mut self, name: impl Into<String>, signal: Signal) {
        self.outputs.push(signal);
        self.output_names.push(name.into());
    }

    /// Number of cells (inputs included).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of logic cells (gates + T1 cells, excluding inputs and DFFs).
    pub fn num_gates(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Gate(_) | CellKind::T1 { .. }))
            .count()
    }

    /// Number of DFF cells.
    pub fn num_dffs(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::Dff))
            .count()
    }

    /// Number of T1 macro-cells.
    pub fn num_t1(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.kind, CellKind::T1 { .. }))
            .count()
    }

    /// Kind of a cell.
    pub fn kind(&self, id: CellId) -> CellKind {
        self.cells[id.0 as usize].kind
    }

    /// Fanins of a cell.
    pub fn fanins(&self, id: CellId) -> &[Signal] {
        self.cells[id.0 as usize].fanins()
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[CellId] {
        &self.inputs
    }

    /// Primary outputs in declaration order.
    pub fn outputs(&self) -> &[Signal] {
        &self.outputs
    }

    /// Name of input `i`.
    pub fn input_name(&self, i: usize) -> &str {
        &self.input_names[i]
    }

    /// Name of output `i`.
    pub fn output_name(&self, i: usize) -> &str {
        &self.output_names[i]
    }

    /// All cell ids in index order.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> {
        (0..self.cells.len() as u32).map(CellId)
    }

    /// Per-cell list of `(consumer, fanin_index)` pairs, covering all ports.
    pub fn fanouts(&self) -> Vec<Vec<(CellId, usize)>> {
        let mut fo = vec![Vec::new(); self.cells.len()];
        for (i, cell) in self.cells.iter().enumerate() {
            for (k, f) in cell.fanins().iter().enumerate() {
                fo[f.cell.0 as usize].push((CellId(i as u32), k));
            }
        }
        fo
    }

    /// Fanout count of each individual output *pin* `(cell, port)`,
    /// including primary-output connections.
    pub fn pin_fanout_counts(&self) -> Vec<[u32; T1_NUM_PORTS]> {
        let mut counts = vec![[0u32; T1_NUM_PORTS]; self.cells.len()];
        for cell in &self.cells {
            for f in cell.fanins() {
                counts[f.cell.0 as usize][f.port as usize] += 1;
            }
        }
        for o in &self.outputs {
            counts[o.cell.0 as usize][o.port as usize] += 1;
        }
        counts
    }

    /// Topological order over cells (inputs first). Cells are stored in
    /// creation order which is already topological for append-only
    /// construction, but rebuilt networks may interleave — this recomputes a
    /// valid order.
    ///
    /// # Errors
    /// Returns [`NetworkError::Cyclic`] if the connectivity has a cycle.
    pub fn topological_order(&self) -> Result<Vec<CellId>, NetworkError> {
        let n = self.cells.len();
        let mut indegree = vec![0u32; n];
        for (i, cell) in self.cells.iter().enumerate() {
            indegree[i] = u32::from(cell.num_fanins);
        }
        // Flat CSR fanout adjacency (filled in the same cell-major order the
        // nested `fanouts()` lists use, so the Kahn output is unchanged),
        // avoiding one Vec allocation per cell on this very hot helper.
        let mut counts = vec![0u32; n];
        for cell in &self.cells {
            for f in cell.fanins() {
                counts[f.cell.0 as usize] += 1;
            }
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + counts[i];
        }
        let mut cursor = offsets.clone();
        let mut consumers = vec![0u32; offsets[n] as usize];
        for (i, cell) in self.cells.iter().enumerate() {
            for f in cell.fanins() {
                let c = &mut cursor[f.cell.0 as usize];
                consumers[*c as usize] = i as u32;
                *c += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32)
            .filter(|&i| indegree[i as usize] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            order.push(CellId(i));
            for &consumer in
                &consumers[offsets[i as usize] as usize..offsets[i as usize + 1] as usize]
            {
                let d = &mut indegree[consumer as usize];
                *d -= 1;
                if *d == 0 {
                    queue.push(consumer);
                }
            }
        }
        if order.len() == n {
            Ok(order)
        } else {
            Err(NetworkError::Cyclic)
        }
    }

    /// Checks structural sanity (arity, ports, acyclicity, outputs).
    ///
    /// # Errors
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), NetworkError> {
        for (i, cell) in self.cells.iter().enumerate() {
            let id = CellId(i as u32);
            let expected = cell.kind.arity();
            if cell.fanins().len() != expected {
                return Err(NetworkError::BadArity {
                    cell: id,
                    expected,
                    got: cell.fanins().len(),
                });
            }
            for &f in cell.fanins() {
                if f.cell.0 as usize >= self.cells.len() {
                    return Err(NetworkError::DanglingFanin { cell: id, fanin: f });
                }
                if !self.port_is_available(f) {
                    return Err(NetworkError::BadPort { cell: id, fanin: f });
                }
            }
        }
        for &i in &self.inputs {
            if !matches!(self.cells[i.0 as usize].kind, CellKind::Input) {
                return Err(NetworkError::NotAnInput { cell: i });
            }
        }
        for (idx, &o) in self.outputs.iter().enumerate() {
            if o.cell.0 as usize >= self.cells.len() || !self.port_is_available(o) {
                return Err(NetworkError::BadOutput {
                    index: idx,
                    signal: o,
                });
            }
        }
        self.topological_order()?;
        Ok(())
    }

    fn port_is_available(&self, s: Signal) -> bool {
        match self.cells[s.cell.0 as usize].kind {
            CellKind::T1 { used_ports } => {
                (s.port as usize) < T1_NUM_PORTS && used_ports >> s.port & 1 == 1
            }
            _ => s.port == 0,
        }
    }

    /// Bit-parallel functional simulation ignoring timing: `patterns[i]`
    /// carries 64 vectors for input `i`; returns one word per output.
    ///
    /// DFFs are treated as transparent (pure retiming elements), so the
    /// result is the steady-state combinational function — the reference
    /// against which pulse-level simulation is checked.
    ///
    /// # Panics
    /// Panics if `patterns.len() != num_inputs()` or the network is cyclic.
    pub fn simulate(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(
            patterns.len(),
            self.inputs.len(),
            "one pattern word per input"
        );
        let order = self.topological_order().expect("network must be acyclic");
        let mut values = vec![[0u64; T1_NUM_PORTS]; self.cells.len()];
        // Dense input-cell → pattern-index table (no hash probe per input).
        let mut input_index = vec![usize::MAX; self.cells.len()];
        for (k, &id) in self.inputs.iter().enumerate() {
            input_index[id.0 as usize] = k;
        }
        for id in order {
            let cell = &self.cells[id.0 as usize];
            let read = |s: Signal, values: &Vec<[u64; T1_NUM_PORTS]>| -> u64 {
                values[s.cell.0 as usize][s.port as usize]
            };
            match cell.kind {
                CellKind::Input => {
                    values[id.0 as usize][0] = patterns[input_index[id.0 as usize]];
                }
                CellKind::Gate(g) => {
                    let a = read(cell.fanins[0], &values);
                    let b = if g.arity() == 2 {
                        read(cell.fanins[1], &values)
                    } else {
                        0
                    };
                    values[id.0 as usize][0] = match g {
                        GateKind::Inv => !a,
                        GateKind::Buf => a,
                        GateKind::And2 => a & b,
                        GateKind::Or2 => a | b,
                        GateKind::Xor2 => a ^ b,
                        GateKind::Nand2 => !(a & b),
                        GateKind::Nor2 => !(a | b),
                        GateKind::Xnor2 => !(a ^ b),
                    };
                }
                CellKind::T1 { .. } => {
                    let a = read(cell.fanins[0], &values);
                    let b = read(cell.fanins[1], &values);
                    let c = read(cell.fanins[2], &values);
                    let xor3 = a ^ b ^ c;
                    let maj3 = (a & b) | (a & c) | (b & c);
                    let or3 = a | b | c;
                    let v = &mut values[id.0 as usize];
                    v[T1Port::S.index() as usize] = xor3;
                    v[T1Port::C.index() as usize] = maj3;
                    v[T1Port::Q.index() as usize] = or3;
                    v[T1Port::NotC.index() as usize] = !maj3;
                    v[T1Port::NotQ.index() as usize] = !or3;
                }
                CellKind::Dff => {
                    values[id.0 as usize][0] = read(cell.fanins[0], &values);
                }
            }
        }
        self.outputs
            .iter()
            .map(|o| values[o.cell.0 as usize][o.port as usize])
            .collect()
    }

    /// Logic level of every cell: inputs at 0, every clocked cell one above
    /// its deepest fanin. DFFs count as levels (they are clocked).
    ///
    /// # Panics
    /// Panics if the network is cyclic.
    pub fn levels(&self) -> Vec<u32> {
        let order = self.topological_order().expect("network must be acyclic");
        let mut lv = vec![0u32; self.cells.len()];
        for id in order {
            let cell = &self.cells[id.0 as usize];
            if cell.kind.is_clocked() && cell.num_fanins != 0 {
                lv[id.0 as usize] = 1 + cell
                    .fanins()
                    .iter()
                    .map(|f| lv[f.cell.0 as usize])
                    .max()
                    .unwrap();
            }
        }
        lv
    }

    /// Maximum output level (logic depth in clocked levels).
    pub fn depth(&self) -> u32 {
        let lv = self.levels();
        self.outputs
            .iter()
            .map(|o| lv[o.cell.0 as usize])
            .max()
            .unwrap_or(0)
    }

    /// Total area in JJs: every cell plus implied splitter trees on
    /// multi-fanout pins.
    pub fn area(&self, lib: &Library) -> u64 {
        self.area_breakdown(lib).total()
    }

    /// Area decomposed by cell class — the view behind the paper's claim
    /// that path-balancing DFFs dominate SFQ layouts.
    pub fn area_breakdown(&self, lib: &Library) -> AreaBreakdown {
        let counts = self.pin_fanout_counts();
        let mut b = AreaBreakdown::default();
        for (i, cell) in self.cells.iter().enumerate() {
            match cell.kind {
                CellKind::Input => {}
                CellKind::Gate(_) => b.gates += lib.cell_area(cell.kind),
                CellKind::T1 { .. } => b.t1_cells += lib.cell_area(cell.kind),
                CellKind::Dff => b.dffs += lib.cell_area(cell.kind),
            }
            for &fanout in counts[i].iter().take(cell.kind.num_ports()) {
                b.splitters += lib.splitter_area(fanout as usize);
            }
        }
        b
    }

    /// Removes cells unreachable from the primary outputs; inputs are always
    /// kept. Returns the cleaned network and, for bookkeeping, the number of
    /// removed cells.
    ///
    /// Allocates a fresh [`RebuildScratch`]; callers cleaning many networks
    /// (a flow harness, the differential tests) should hold one scratch and
    /// call [`Network::cleaned_with`] instead.
    pub fn cleaned(&self) -> (Network, usize) {
        self.cleaned_with(&mut RebuildScratch::new())
    }

    /// [`Network::cleaned`] over caller-provided scratch: the liveness marks,
    /// worklist, translation table and fanin buffer are reused across calls,
    /// so repeated rebuilds allocate nothing but the output network itself.
    pub fn cleaned_with(&self, scratch: &mut RebuildScratch) -> (Network, usize) {
        let n = self.cells.len();
        let RebuildScratch {
            live,
            stack,
            remap,
            fanin_buf,
        } = scratch;
        live.clear();
        live.resize(n, false);
        remap.clear();
        remap.resize(n, None);
        stack.clear();
        stack.extend(self.outputs.iter().map(|o| o.cell.0));
        while let Some(i) = stack.pop() {
            if live[i as usize] {
                continue;
            }
            live[i as usize] = true;
            for f in self.cells[i as usize].fanins() {
                stack.push(f.cell.0);
            }
        }
        for &i in &self.inputs {
            live[i.0 as usize] = true;
        }
        let order = self.topological_order().expect("network must be acyclic");
        let mut out = Network::new(self.name.clone());
        // Inputs first, preserving declaration order and names.
        for (k, &i) in self.inputs.iter().enumerate() {
            let s = out.add_input(self.input_names[k].clone());
            remap[i.0 as usize] = Some(s.cell);
        }
        let mut removed = 0usize;
        for id in order {
            let i = id.0 as usize;
            if remap[i].is_some() {
                continue;
            }
            if !live[i] {
                removed += 1;
                continue;
            }
            let cell = &self.cells[i];
            fanin_buf.clear();
            fanin_buf.extend(cell.fanins().iter().map(|f| Signal {
                cell: remap[f.cell.0 as usize].expect("fanin live"),
                port: f.port,
            }));
            let new_id = match cell.kind {
                CellKind::Input => unreachable!("inputs already mapped"),
                CellKind::Gate(g) => out.add_gate(g, fanin_buf).cell,
                CellKind::T1 { used_ports } => out.add_t1(used_ports, fanin_buf),
                CellKind::Dff => out.add_dff(fanin_buf[0]).cell,
            };
            remap[i] = Some(new_id);
        }
        for (k, &o) in self.outputs.iter().enumerate() {
            let s = Signal {
                cell: remap[o.cell.0 as usize].expect("output live"),
                port: o.port,
            };
            out.add_output(self.output_names[k].clone(), s);
        }
        (out, removed)
    }

    /// Reference implementation of [`Network::cleaned`]: the original
    /// allocate-per-cell rebuild, kept verbatim as the executable
    /// specification for the differential harness
    /// (`tests/differential_mapping.rs`). Bit-identical to `cleaned` by
    /// construction and by test.
    pub fn cleaned_reference(&self) -> (Network, usize) {
        let mut live = vec![false; self.cells.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|o| o.cell.0).collect();
        while let Some(i) = stack.pop() {
            if live[i as usize] {
                continue;
            }
            live[i as usize] = true;
            for f in self.cells[i as usize].fanins() {
                stack.push(f.cell.0);
            }
        }
        for &i in &self.inputs {
            live[i.0 as usize] = true;
        }
        let order = self.topological_order().expect("network must be acyclic");
        let mut remap: Vec<Option<CellId>> = vec![None; self.cells.len()];
        let mut out = Network::new(self.name.clone());
        // Inputs first, preserving declaration order and names.
        for (k, &i) in self.inputs.iter().enumerate() {
            let s = out.add_input(self.input_names[k].clone());
            remap[i.0 as usize] = Some(s.cell);
        }
        let mut removed = 0usize;
        for id in order {
            let i = id.0 as usize;
            if remap[i].is_some() {
                continue;
            }
            if !live[i] {
                removed += 1;
                continue;
            }
            let cell = &self.cells[i];
            let fanins: Vec<Signal> = cell
                .fanins()
                .iter()
                .map(|f| Signal {
                    cell: remap[f.cell.0 as usize].expect("fanin live"),
                    port: f.port,
                })
                .collect();
            let new_id = match cell.kind {
                CellKind::Input => unreachable!("inputs already mapped"),
                CellKind::Gate(g) => out.add_gate(g, &fanins).cell,
                CellKind::T1 { used_ports } => out.add_t1(used_ports, &fanins),
                CellKind::Dff => out.add_dff(fanins[0]).cell,
            };
            remap[i] = Some(new_id);
        }
        for (k, &o) in self.outputs.iter().enumerate() {
            let s = Signal {
                cell: remap[o.cell.0 as usize].expect("output live"),
                port: o.port,
            };
            out.add_output(self.output_names[k].clone(), s);
        }
        (out, removed)
    }

    /// Truth table of a small cone: evaluates the function of `root`'s pin
    /// over the given `leaves` (at most 6), treating leaves as free variables.
    /// Cells outside the cone must not be reached — callers pass a cut whose
    /// leaves dominate the cone.
    ///
    /// # Panics
    /// Panics if more than 6 leaves are given or the cone escapes the leaves
    /// (reaches a primary input not in `leaves`).
    pub fn cone_function(&self, root: Signal, leaves: &[Signal]) -> TruthTable {
        assert!(leaves.len() <= TruthTable::MAX_VARS, "at most 6 leaves");
        let n = leaves.len();
        // Dense per-pin memo (0 = unset, 1 = false, 2 = true) reset between
        // rows through the touch list — no hash map churn per row.
        let mut memo = vec![0u8; self.cells.len() * T1_NUM_PORTS];
        let mut touched: Vec<u32> = Vec::new();
        let slot = |s: Signal| s.cell.0 as usize * T1_NUM_PORTS + s.port as usize;
        let mut bits = 0u64;
        for row in 0..(1usize << n) {
            for &t in &touched {
                memo[t as usize] = 0;
            }
            touched.clear();
            for (i, &l) in leaves.iter().enumerate() {
                let v = (row >> i) & 1 == 1;
                memo[slot(l)] = 1 + u8::from(v);
                touched.push(slot(l) as u32);
            }
            if self.eval_cone(root, &mut memo, &mut touched) {
                bits |= 1 << row;
            }
        }
        TruthTable::from_bits_truncated(n, bits)
    }

    fn eval_cone(&self, s: Signal, memo: &mut [u8], touched: &mut Vec<u32>) -> bool {
        let slot = s.cell.0 as usize * T1_NUM_PORTS + s.port as usize;
        match memo[slot] {
            1 => return false,
            2 => return true,
            _ => {}
        }
        let cell = &self.cells[s.cell.0 as usize];
        let v = match cell.kind {
            CellKind::Input => panic!("cone evaluation escaped the cut leaves"),
            CellKind::Gate(g) => {
                let a = self.eval_cone(cell.fanins[0], memo, touched);
                let b = if g.arity() == 2 {
                    self.eval_cone(cell.fanins[1], memo, touched)
                } else {
                    false
                };
                g.eval(a, b)
            }
            CellKind::T1 { .. } => {
                let a = self.eval_cone(cell.fanins[0], memo, touched);
                let b = self.eval_cone(cell.fanins[1], memo, touched);
                let c = self.eval_cone(cell.fanins[2], memo, touched);
                match T1Port::from_index(s.port) {
                    T1Port::S => a ^ b ^ c,
                    T1Port::C => (a & b) | (a & c) | (b & c),
                    T1Port::Q => a | b | c,
                    T1Port::NotC => !((a & b) | (a & c) | (b & c)),
                    T1Port::NotQ => !(a | b | c),
                }
            }
            CellKind::Dff => self.eval_cone(cell.fanins[0], memo, touched),
        };
        memo[slot] = 1 + u8::from(v);
        touched.push(slot as u32);
        v
    }
}
