//! The SFQ cell library: cell kinds, T1 output ports, and the JJ area model.
//!
//! Area is measured in Josephson-junction (JJ) counts, as in the paper's
//! Table I. Per-cell JJ numbers are representative values from published RSFQ
//! cell libraries, calibrated so that the paper's two stated anchors hold:
//! a T1-based full adder costs 29 JJ and a conventional full adder ≈ 2.5×
//! more (see DESIGN.md §4).

use sfq_tt::{T1Base, TruthTable};
use std::fmt;

/// Number of synchronous output ports a T1 macro-cell exposes.
pub const T1_NUM_PORTS: usize = 5;

/// The synchronous output ports of a T1 macro-cell (paper Fig. 1a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum T1Port {
    /// `S` — fires on the reset/clock pulse when the loop holds 1: XOR3.
    S,
    /// `C` — `C*` latched by a DFF: MAJ3.
    C,
    /// `Q` — `Q*` latched by a DFF (which absorbs double pulses): OR3.
    Q,
    /// `C*` through a clocked inverter: ¬MAJ3.
    NotC,
    /// `Q*` through a clocked inverter: ¬OR3.
    NotQ,
}

impl T1Port {
    /// All ports, in port-index order.
    pub const ALL: [T1Port; T1_NUM_PORTS] =
        [T1Port::S, T1Port::C, T1Port::Q, T1Port::NotC, T1Port::NotQ];

    /// Port index used in [`Signal::port`](crate::Signal).
    pub fn index(self) -> u8 {
        match self {
            T1Port::S => 0,
            T1Port::C => 1,
            T1Port::Q => 2,
            T1Port::NotC => 3,
            T1Port::NotQ => 4,
        }
    }

    /// Inverse of [`index`](Self::index).
    ///
    /// # Panics
    /// Panics if `idx >= 5`.
    pub fn from_index(idx: u8) -> Self {
        Self::ALL[idx as usize]
    }

    /// The port computing this port's complement, when the cell offers one
    /// (`C ↔ C*+INV`, `Q ↔ Q*+INV`). `S` has no complement port: the `S`
    /// pulse fires at the cell's own clock stage, too late for a same-stage
    /// inverter.
    pub fn complement(self) -> Option<Self> {
        match self {
            T1Port::S => None,
            T1Port::C => Some(T1Port::NotC),
            T1Port::NotC => Some(T1Port::C),
            T1Port::Q => Some(T1Port::NotQ),
            T1Port::NotQ => Some(T1Port::Q),
        }
    }

    /// The Boolean function of the port over the cell's (post-inverter)
    /// inputs.
    pub fn function(self) -> TruthTable {
        match self {
            T1Port::S => TruthTable::xor3(),
            T1Port::C => TruthTable::maj3(),
            T1Port::Q => TruthTable::or3(),
            T1Port::NotC => !TruthTable::maj3(),
            T1Port::NotQ => !TruthTable::or3(),
        }
    }

    /// The port realizing `base` with the given output polarity, if any.
    ///
    /// `(Xor3, negated)` returns `None`: the five synchronous outputs do not
    /// include an inverted `S` (the `S` pulse fires at the cell's own clock
    /// stage, leaving no room for a same-stage inverter).
    pub fn for_match(base: T1Base, output_negated: bool) -> Option<Self> {
        match (base, output_negated) {
            (T1Base::Xor3, false) => Some(T1Port::S),
            (T1Base::Xor3, true) => None,
            (T1Base::Maj3, false) => Some(T1Port::C),
            (T1Base::Maj3, true) => Some(T1Port::NotC),
            (T1Base::Or3, false) => Some(T1Port::Q),
            (T1Base::Or3, true) => Some(T1Port::NotQ),
        }
    }
}

impl fmt::Display for T1Port {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            T1Port::S => "S",
            T1Port::C => "C",
            T1Port::Q => "Q",
            T1Port::NotC => "C*+INV",
            T1Port::NotQ => "Q*+INV",
        };
        f.write_str(s)
    }
}

/// Clocked single-output SFQ logic gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// Clocked inverter (one input).
    Inv,
    /// Clocked buffer (one input). Used only in tests; never produced by the
    /// mapper.
    Buf,
    /// Two-input AND.
    And2,
    /// Two-input OR.
    Or2,
    /// Two-input XOR.
    Xor2,
    /// Two-input NAND.
    Nand2,
    /// Two-input NOR.
    Nor2,
    /// Two-input XNOR.
    Xnor2,
}

impl GateKind {
    /// All gate kinds.
    pub const ALL: [GateKind; 8] = [
        GateKind::Inv,
        GateKind::Buf,
        GateKind::And2,
        GateKind::Or2,
        GateKind::Xor2,
        GateKind::Nand2,
        GateKind::Nor2,
        GateKind::Xnor2,
    ];

    /// Number of data inputs.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Inv | GateKind::Buf => 1,
            _ => 2,
        }
    }

    /// Truth table over the gate's inputs.
    pub fn truth_table(self) -> TruthTable {
        let a1 = TruthTable::var(1, 0);
        let a = TruthTable::var(2, 0);
        let b = TruthTable::var(2, 1);
        match self {
            GateKind::Inv => !a1,
            GateKind::Buf => a1,
            GateKind::And2 => a & b,
            GateKind::Or2 => a | b,
            GateKind::Xor2 => a ^ b,
            GateKind::Nand2 => !(a & b),
            GateKind::Nor2 => !(a | b),
            GateKind::Xnor2 => !(a ^ b),
        }
    }

    /// Evaluates the gate on concrete input bits.
    pub fn eval(self, a: bool, b: bool) -> bool {
        match self {
            GateKind::Inv => !a,
            GateKind::Buf => a,
            GateKind::And2 => a & b,
            GateKind::Or2 => a | b,
            GateKind::Xor2 => a ^ b,
            GateKind::Nand2 => !(a & b),
            GateKind::Nor2 => !(a | b),
            GateKind::Xnor2 => !(a ^ b),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Inv => "INV",
            GateKind::Buf => "BUF",
            GateKind::And2 => "AND2",
            GateKind::Or2 => "OR2",
            GateKind::Xor2 => "XOR2",
            GateKind::Nand2 => "NAND2",
            GateKind::Nor2 => "NOR2",
            GateKind::Xnor2 => "XNOR2",
        };
        f.write_str(s)
    }
}

/// The kind of a cell in a mapped [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellKind {
    /// Primary input.
    Input,
    /// A clocked logic gate.
    Gate(GateKind),
    /// A T1 macro-cell; `used_ports` is a bitmask over [`T1Port::index`].
    T1 {
        /// Enabled output ports, as a bitmask over [`T1Port::index`].
        used_ports: u8,
    },
    /// Path-balancing D flip-flop (inserted by retiming).
    Dff,
}

impl CellKind {
    /// Number of data inputs the cell consumes.
    pub fn arity(self) -> usize {
        match self {
            CellKind::Input => 0,
            CellKind::Gate(g) => g.arity(),
            CellKind::T1 { .. } => 3,
            CellKind::Dff => 1,
        }
    }

    /// Number of output ports.
    pub fn num_ports(self) -> usize {
        match self {
            CellKind::T1 { .. } => T1_NUM_PORTS,
            _ => 1,
        }
    }

    /// True for clocked elements (everything except primary inputs — in
    /// RSFQ even "combinational" gates latch and need a clock pulse).
    pub fn is_clocked(self) -> bool {
        !matches!(self, CellKind::Input)
    }

    /// True for T1 macro-cells.
    pub fn is_t1(self) -> bool {
        matches!(self, CellKind::T1 { .. })
    }
}

/// JJ-count area model for the SFQ cell library (DESIGN.md §4).
///
/// # Example
///
/// ```
/// use sfq_netlist::Library;
/// let lib = Library::default();
/// // The paper's anchor: a T1-cell full adder (XOR3 on S + MAJ3 on C)
/// // costs 29 JJ.
/// assert_eq!(lib.t1_area(0b011), 29);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    /// D flip-flop.
    pub dff: u64,
    /// Splitter (1→2 fanout element).
    pub splitter: u64,
    /// Confluence buffer / merger (2→1).
    pub merger: u64,
    /// Clocked inverter.
    pub inv: u64,
    /// Clocked buffer.
    pub buf: u64,
    /// AND2 / NAND2.
    pub and2: u64,
    /// OR2 / NOR2.
    pub or2: u64,
    /// XOR2 / XNOR2.
    pub xor2: u64,
    /// Bare T1 flip-flop (loop + JQ, JC, JS, JR).
    pub t1_core: u64,
}

impl Default for Library {
    fn default() -> Self {
        Library {
            dff: 6,
            splitter: 3,
            merger: 5,
            inv: 9,
            buf: 2,
            and2: 11,
            or2: 9,
            xor2: 11,
            t1_core: 13,
        }
    }
}

impl Library {
    /// Area of a clocked gate.
    pub fn gate_area(&self, g: GateKind) -> u64 {
        match g {
            GateKind::Inv => self.inv,
            GateKind::Buf => self.buf,
            GateKind::And2 | GateKind::Nand2 => self.and2,
            GateKind::Or2 | GateKind::Nor2 => self.or2,
            GateKind::Xor2 | GateKind::Xnor2 => self.xor2,
        }
    }

    /// Area of a T1 macro-cell with the given used-port bitmask.
    ///
    /// Counts the bare cell, the two input mergers (three pulses into `T`),
    /// a latching DFF for each used `C`/`Q` port and a clocked inverter for
    /// each used `C*`/`Q*` port.
    pub fn t1_area(&self, used_ports: u8) -> u64 {
        let mut area = self.t1_core + 2 * self.merger;
        for port in T1Port::ALL {
            if used_ports >> port.index() & 1 == 1 {
                area += match port {
                    T1Port::S => 0,
                    T1Port::C | T1Port::Q => self.dff,
                    T1Port::NotC | T1Port::NotQ => self.inv,
                };
            }
        }
        area
    }

    /// Area of a cell.
    pub fn cell_area(&self, kind: CellKind) -> u64 {
        match kind {
            CellKind::Input => 0,
            CellKind::Gate(g) => self.gate_area(g),
            CellKind::T1 { used_ports } => self.t1_area(used_ports),
            CellKind::Dff => self.dff,
        }
    }

    /// Area of the splitter tree needed to drive `fanout` sinks from one pin.
    pub fn splitter_area(&self, fanout: usize) -> u64 {
        self.splitter * fanout.saturating_sub(1) as u64
    }
}
