//! Lost-wakeup / termination stress for the work-stealing cut frontier:
//! tiny force-engaged inputs at a forced worker count of 8 — far more
//! workers than the ready frontier can ever feed, so almost every worker
//! spends the run parked on the condvar and the drain/termination wakeups
//! are exercised hundreds of times.
//!
//! A lost wakeup here is a **hang**, not a wrong answer, so each iteration
//! doubles as a liveness probe (the test binary's timeout is the watchdog);
//! the cut tables are additionally held bit-identical to the sequential
//! enumeration, the same golden the `chk` schedule exploration in
//! `tests/chk_models.rs` uses — this stress run covers the wall-clock
//! schedules the bounded model search cannot.
#![cfg(feature = "parallel")]

use sfq_netlist::cuts::{enumerate_cuts_frontier, enumerate_cuts_sequential, CutConfig};
use sfq_netlist::{map_aig, par, Aig, Library};

/// A ripple adder of `bits` — multi-level with shared fanins, still tiny.
fn adder_net(bits: usize) -> sfq_netlist::Network {
    let mut aig = Aig::new(format!("stress_add{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let mut carry = aig.const_false();
    let mut sums = Vec::new();
    for i in 0..bits {
        let (s, c) = aig.full_adder(a[i], b[i], carry);
        sums.push(s);
        carry = c;
    }
    sums.push(carry);
    aig.output_word("s", &sums);
    map_aig(&aig, &Library::default())
}

/// A half adder — the smallest interesting frontier (two independent
/// cones, then nothing: workers park almost immediately).
fn half_adder_net() -> sfq_netlist::Network {
    let mut aig = Aig::new("stress_ha");
    let a = aig.input("a");
    let b = aig.input("b");
    let s = aig.xor(a, b);
    let c = aig.and(a, b);
    aig.output("sum", s);
    aig.output("carry", c);
    map_aig(&aig, &Library::default())
}

/// One test fn: the worker override is process-global, and a single owner
/// needs no locking against parallel test threads (this is the binary's
/// only test).
#[test]
fn oversubscribed_frontier_never_strands_a_worker() {
    // Mirror a `--workers 8` deployment for anything consulting the
    // global policy; the frontier itself is force-engaged below the
    // dispatcher's size threshold by calling it directly with 8 workers.
    par::force_workers(8);
    let config = CutConfig::default();
    let nets = [half_adder_net(), adder_net(2), adder_net(3), adder_net(4)];
    for net in &nets {
        let golden = enumerate_cuts_sequential(net, &config);
        for round in 0..25 {
            let got = enumerate_cuts_frontier(net, &config, 8);
            assert_eq!(
                got.total(),
                golden.total(),
                "total cut count ({}, round {round})",
                net.name()
            );
            for id in net.cell_ids() {
                assert_eq!(
                    got.of(id),
                    golden.of(id),
                    "cut set of c{} ({}, round {round})",
                    id.0,
                    net.name()
                );
            }
        }
    }
    par::force_workers(0);
}
