//! Exhaustive schedule exploration of the crate's parallel protocols,
//! running the **production** code (not a copy) against the `chk` model
//! checker's shims via `crate::sync`.
//!
//! Compiled only under the `chk` cargo feature:
//!
//! ```text
//! cargo test --release -p sfq-netlist --features chk --test chk_models
//! ```
//!
//! The models are deliberately tiny (a handful of cells / items, 2-3
//! workers) so the DFS over schedules with the default preemption bound
//! completes in seconds; the protocols themselves are the real
//! [`sfq_netlist::cuts::enumerate_cuts_frontier`] and
//! [`sfq_netlist::par::map_ordered_streamed`] bodies.
#![cfg(feature = "chk")]

use sfq_netlist::cuts::{enumerate_cuts_frontier, enumerate_cuts_sequential, CutConfig};
use sfq_netlist::par;
use sfq_netlist::{map_aig, Aig, Library};

/// A half adder: two inputs, an XOR and an AND cone — enough structure for
/// a multi-level fanin countdown with shared fanins, small enough to
/// explore exhaustively.
fn half_adder_net() -> sfq_netlist::Network {
    let mut aig = Aig::new("chk_half_adder");
    let a = aig.input("a");
    let b = aig.input("b");
    let s = aig.xor(a, b);
    let c = aig.and(a, b);
    aig.output("sum", s);
    aig.output("carry", c);
    map_aig(&aig, &Library::default())
}

/// A single AND gate — the smallest net with a nonempty frontier, used
/// where a third worker multiplies the schedule space.
fn and_net() -> sfq_netlist::Network {
    let mut aig = Aig::new("chk_and");
    let a = aig.input("a");
    let b = aig.input("b");
    let c = aig.and(a, b);
    aig.output("c", c);
    map_aig(&aig, &Library::default())
}

/// The frontier scheduler (fanin countdown → claim → `OnceLock` publish →
/// condvar notify) produces the sequential cut table under **every**
/// schedule with up to two preemptions, and never deadlocks or double
/// publishes.
#[test]
fn frontier_matches_sequential_under_all_schedules() {
    let net = half_adder_net();
    let config = CutConfig::default();
    let golden = enumerate_cuts_sequential(&net, &config);
    let report = chk::Model::new().preemptions(2).check(|| {
        let got = enumerate_cuts_frontier(&net, &config, 2);
        assert_eq!(got.total(), golden.total(), "total cut count");
        for id in net.cell_ids() {
            assert_eq!(got.of(id), golden.of(id), "cut set of c{}", id.0);
        }
    });
    report.assert_ok("frontier vs sequential (2 workers)");
    assert!(
        report.executions > 10,
        "exploration actually branched: {} executions",
        report.executions
    );
}

/// Drain/termination with more workers than the ready frontier can feed:
/// surplus workers must park on the condvar and the last finished node must
/// wake all of them — under every schedule, no worker is stranded and the
/// scope joins.
#[test]
fn frontier_drains_and_terminates_with_three_workers() {
    let net = and_net();
    let config = CutConfig::default();
    let golden = enumerate_cuts_sequential(&net, &config);
    let report = chk::Model::new().preemptions(2).check(|| {
        let got = enumerate_cuts_frontier(&net, &config, 3);
        assert_eq!(got.total(), golden.total(), "total cut count");
    });
    report.assert_ok("frontier drain/termination (3 workers)");
    assert!(
        report.executions > 10,
        "exploration actually branched: {} executions",
        report.executions
    );
}

/// `map_ordered_streamed` emits the contiguous prefix in input order under
/// every out-of-order completion schedule: whichever worker finishes the
/// unblocking item drains the pending map, and emissions never reorder,
/// duplicate or drop an index.
#[test]
fn streamed_emits_contiguous_prefix_in_order() {
    par::force_workers(2);
    let report = chk::Model::new().preemptions(2).check(|| {
        let mut emitted: Vec<(usize, u32)> = Vec::new();
        par::map_ordered_streamed(
            vec![10u32, 20, 30],
            |x| x * 2,
            |k, r| emitted.push((k, r.expect("no panics in this model"))),
        );
        assert_eq!(
            emitted,
            vec![(0, 20), (1, 40), (2, 60)],
            "in-order contiguous emission"
        );
    });
    report.assert_ok("streamed in-order emission (2 workers)");
    assert!(
        report.executions > 10,
        "exploration actually branched: {} executions",
        report.executions
    );
}

/// A panicking item is contained under every schedule: its index emits
/// `Err`, every other item emits `Ok`, and emission order is unaffected —
/// the worker survives and keeps claiming.
#[test]
fn streamed_contains_panicking_item_under_all_schedules() {
    par::force_workers(2);
    let report = chk::Model::new().preemptions(2).check(|| {
        let mut emitted: Vec<(usize, Result<u32, String>)> = Vec::new();
        par::map_ordered_streamed(
            vec![0u32, 1, 2],
            |x| {
                assert!(x != 1, "injected item failure");
                x + 100
            },
            |k, r| emitted.push((k, r.map_err(|p| p.message()))),
        );
        assert_eq!(emitted.len(), 3, "every item emits exactly once");
        for (pos, (k, r)) in emitted.iter().enumerate() {
            assert_eq!(pos, *k, "emission stays in input order");
            match k {
                1 => assert!(
                    r.as_ref()
                        .is_err_and(|m| m.contains("injected item failure")),
                    "poisoned item surfaces its payload: {r:?}"
                ),
                _ => assert_eq!(*r, Ok(*k as u32 + 100), "healthy items unaffected"),
            }
        }
    });
    report.assert_ok("streamed panic containment (2 workers)");
    assert!(
        report.executions > 10,
        "exploration actually branched: {} executions",
        report.executions
    );
}
