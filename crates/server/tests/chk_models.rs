//! Exhaustive schedule exploration of the daemon's stop/drain handshake,
//! running the **production** [`sfq_server::queue::WorkQueue`] and
//! [`sfq_server::state::ServerState`] against the `chk` model checker's
//! shims via `crate::sync`.
//!
//! Compiled only under the `chk` cargo feature:
//!
//! ```text
//! cargo test --release -p sfq-server --features chk --test chk_models
//! ```
//!
//! The model mirrors `daemon::serve`'s shape with the I/O stripped out:
//! an acceptor pushes tokens (connections) and closes the queue once
//! shutdown is observed, a stopper races `request_shutdown` against the
//! in-flight pushes, and a pool of handlers drains. The invariant under
//! **every** schedule: each accepted token is processed exactly once —
//! shutdown never drops the backlog and never strands a parked handler.
#![cfg(feature = "chk")]

use sfq_server::sync::{AtomicUsize, Ordering};
use sfq_server::{ServerState, WorkQueue};

/// The daemon stop/drain handshake: a `STOP` racing in-flight accepts must
/// neither lose an accepted connection nor deadlock the pool.
#[test]
fn stop_drains_backlog_without_losing_accepted_work() {
    let report = chk::Model::new().preemptions(2).check(|| {
        let state = ServerState::new(1);
        let queue: WorkQueue<usize> = WorkQueue::new();
        let accepted = AtomicUsize::new(0);
        let processed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let handlers: Vec<_> = (0..2)
                .map(|_| {
                    chk::thread::spawn_scoped(scope, || {
                        while queue.pop().is_some() {
                            processed.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            let stopper = chk::thread::spawn_scoped(scope, || {
                state.request_shutdown();
            });
            // The acceptor: accept until shutdown is observed, then close.
            // Mirrors `serve`'s loop — only this thread closes the queue,
            // so its own pushes cannot be refused.
            for token in 0..2usize {
                if state.shutdown_requested() {
                    break;
                }
                assert!(queue.push(token).is_ok(), "acceptor races no closer");
                accepted.fetch_add(1, Ordering::SeqCst);
            }
            queue.close();
            stopper.join().expect("stopper finishes");
            for h in handlers {
                h.join().expect("handler retires");
            }
        });
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            processed.load(Ordering::SeqCst),
            "every accepted connection is handled, none lost to shutdown"
        );
    });
    report.assert_ok("daemon stop/drain handshake");
    assert!(
        report.executions > 10,
        "exploration actually branched: {} executions",
        report.executions
    );
}

/// Push-after-close hands the connection back under every schedule: a
/// racing producer that loses to `close` gets its item refused, and the
/// totals still balance (refused items are disposed, not half-served).
#[test]
fn late_push_is_refused_never_leaked() {
    let report = chk::Model::new().preemptions(2).check(|| {
        let queue: WorkQueue<usize> = WorkQueue::new();
        let delivered = AtomicUsize::new(0);
        let refused = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let producer = chk::thread::spawn_scoped(scope, || match queue.push(7) {
                Ok(()) => delivered.fetch_add(1, Ordering::SeqCst),
                Err(item) => {
                    assert_eq!(item, 7, "the refused item comes back intact");
                    refused.fetch_add(1, Ordering::SeqCst)
                }
            });
            queue.close();
            producer.join().expect("producer finishes");
        });
        let drained = std::iter::from_fn(|| queue.pop()).count();
        assert_eq!(
            drained,
            delivered.load(Ordering::SeqCst),
            "exactly the delivered items drain"
        );
        assert_eq!(
            delivered.load(Ordering::SeqCst) + refused.load(Ordering::SeqCst),
            1,
            "the push either delivers or refuses, never both or neither"
        );
    });
    report.assert_ok("push/close race");
    assert!(
        report.executions > 1,
        "exploration actually branched: {} executions",
        report.executions
    );
}
