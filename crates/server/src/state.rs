//! Shared daemon state: the design cache and the lifetime counters.
//!
//! One [`ServerState`] lives as long as the daemon. Every connection handler
//! ingests through the same bounded [`DesignCache`] (so two clients
//! submitting the same design — inline or by path — pay for one parse) and
//! bumps the same outcome counters (served back by `STATS`). All of it is
//! interior-mutable, so handlers share `&ServerState` across the acceptor's
//! thread pool.

use crate::protocol::{DesignSource, StatsReply};
use crate::sync::{AtomicBool, AtomicU64, Mutex, Ordering};
use sfq_netlist::{Design, DesignCache};

/// Daemon-lifetime shared state.
pub struct ServerState {
    /// The shared, bounded parse cache. One coarse lock: ingest is
    /// milliseconds against flows that are seconds, so contention here is
    /// noise — and a coarse lock keeps the hit/miss/eviction accounting
    /// atomic with the lookups it describes.
    cache: Mutex<DesignCache>,
    /// Flows that finished and verified.
    ok: AtomicU64,
    /// Flows that failed (ingest error, flow error, or over node budget).
    failed: AtomicU64,
    /// Flows that panicked and were contained.
    panicked: AtomicU64,
    /// Flows aborted at their wall-clock deadline.
    timed_out: AtomicU64,
    /// Set once by `STOP`, a signal, or the idle timeout; never cleared.
    shutdown: AtomicBool,
}

/// Outcome class of one finished job, for the daemon counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Finished and verified.
    Ok,
    /// Failed with a deterministic reason (ingest, flow error, node
    /// budget).
    Failed,
    /// Panicked and was contained.
    Panicked,
    /// Aborted at its wall-clock deadline.
    TimedOut,
}

impl ServerState {
    /// Fresh state with a design cache of `cache_capacity` entries.
    pub fn new(cache_capacity: usize) -> Self {
        ServerState {
            cache: Mutex::new(DesignCache::with_capacity(cache_capacity)),
            ok: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            panicked: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Ingests one design submission through the shared cache, cloning the
    /// parsed design out so the lock is held only for lookup/parse.
    ///
    /// # Errors
    /// The rendered ingest failure — callers turn it into a `FAILED(...)`
    /// row rather than aborting the request.
    pub fn ingest(&self, source: &DesignSource) -> Result<Design, String> {
        // A poisoned cache only means another handler died mid-parse; the
        // cache itself is valid after any parse step, so keep serving.
        let mut cache = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        match source {
            DesignSource::Path { path, .. } => cache.load(path),
            DesignSource::Inline { name, content } => {
                let stem = std::path::Path::new(name)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(name)
                    .to_string();
                cache.parse_cached(content, Some(&stem))
            }
        }
        .cloned()
        .map_err(|e| e.to_string())
    }

    /// Records one finished job in the lifetime counters.
    pub fn record(&self, kind: OutcomeKind) {
        let counter = match kind {
            OutcomeKind::Ok => &self.ok,
            OutcomeKind::Failed => &self.failed,
            OutcomeKind::Panicked => &self.panicked,
            OutcomeKind::TimedOut => &self.timed_out,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Counter snapshot for a `STATS` reply.
    pub fn stats(&self) -> StatsReply {
        StatsReply {
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            panicked: self.panicked.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            cache: self.cache.lock().unwrap_or_else(|e| e.into_inner()).stats(),
            // Resolved at reply time, so a `STATS` probe always reports what
            // the *next* flow request would actually use.
            workers: sfq_netlist::par::workers() as u64,
        }
    }

    /// Requests a graceful shutdown: the acceptor stops taking connections
    /// and the daemon exits once in-flight requests drain.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY_BLIF: &str = ".model tiny\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n";

    #[test]
    fn inline_and_path_ingest_share_one_cache_slot() {
        let dir = std::env::temp_dir().join(format!("sfq-state-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("tiny.blif");
        std::fs::write(&path, TINY_BLIF).expect("write design");

        let state = ServerState::new(8);
        let by_path = state
            .ingest(&DesignSource::Path {
                name: "tiny.blif".into(),
                path: path.clone(),
            })
            .expect("path ingest");
        let inline = state
            .ingest(&DesignSource::Inline {
                name: "tiny.blif".into(),
                content: TINY_BLIF.into(),
            })
            .expect("inline ingest");
        assert_eq!(by_path.aig.num_inputs(), inline.aig.num_inputs());
        let stats = state.stats();
        assert_eq!((stats.cache.misses, stats.cache.hits), (1, 1));

        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let state = ServerState::new(1);
        for kind in [
            OutcomeKind::Ok,
            OutcomeKind::Ok,
            OutcomeKind::Failed,
            OutcomeKind::Panicked,
            OutcomeKind::TimedOut,
        ] {
            state.record(kind);
        }
        let s = state.stats();
        assert_eq!((s.ok, s.failed, s.panicked, s.timed_out), (2, 1, 1, 1));
        assert!(!state.shutdown_requested());
        state.request_shutdown();
        assert!(state.shutdown_requested());
    }
}
