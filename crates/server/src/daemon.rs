//! The `sfqt1d` daemon proper: Unix-socket acceptor, connection thread
//! pool, graceful shutdown.
//!
//! # Job lifecycle
//!
//! The acceptor polls a nonblocking [`UnixListener`] and feeds accepted
//! connections to a fixed pool of handler threads over a closable
//! [`WorkQueue`] (handlers serialize only the dequeue, never the
//! handling). Each connection carries one request: the handler parses
//! it, ingests designs through the shared [`ServerState`] cache, runs the
//! flows via [`run_jobs_streamed`] — which fans designs over
//! [`par::workers`](sfq_netlist::par::workers) threads *within* the
//! request — and streams `ROW` lines back, flushing each one, so clients
//! see results while later designs still run.
//!
//! # Shutdown semantics
//!
//! Three triggers set one flag: a `STOP` request, `SIGTERM`/`SIGINT` (when
//! [`ServerConfig::handle_signals`] is on), and the idle timeout (no
//! connection accepted or finishing for [`ServerConfig::idle_timeout`]
//! while none is active). Once set, the acceptor stops accepting and
//! [`close`](WorkQueue::close)s the queue; handlers drain the
//! already-accepted backlog, finish their in-flight streams (every started
//! `FLOW` response runs to its `END` line — shutdown never corrupts a
//! stream), and exit. The socket file is removed on the way out. The
//! handshake is exhaustively schedule-explored by `tests/chk_models.rs`
//! (see [`crate::sync`]).

use crate::jobs::{run_jobs_streamed, run_verify_jobs_streamed, JobEntry, VerifyOptions};
use crate::protocol::{read_request, FlowRequest, ProtocolError, Request};
use crate::queue::WorkQueue;
use crate::state::ServerState;
use crate::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};
use std::fmt;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// How long the acceptor sleeps between polls of the nonblocking listener.
/// Small enough that shutdown and new connections feel immediate, large
/// enough that an idle daemon costs nothing measurable.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// Configuration of one [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// Connection-handler threads — the number of requests served
    /// concurrently (each request additionally fans its designs over
    /// [`par::workers`](sfq_netlist::par::workers)).
    pub conn_threads: usize,
    /// Shut down after this long with no connection activity (`None`:
    /// serve until `STOP` or a signal).
    pub idle_timeout: Option<Duration>,
    /// Capacity of the shared design cache (entries).
    pub cache_capacity: usize,
    /// Force the flow fan-outs' worker-thread count for the daemon's
    /// lifetime (`sfqt1d --workers N`). `None` keeps the default policy:
    /// `SFQ_WORKERS` if set, else the host's available parallelism.
    pub workers: Option<usize>,
    /// Install `SIGTERM`/`SIGINT` handlers that trigger graceful shutdown.
    /// Off for in-process tests, on for the `sfqt1d` binary.
    pub handle_signals: bool,
}

impl ServerConfig {
    /// Defaults for `socket`: 4 handler threads, no idle timeout, a
    /// 256-entry cache, signals handled.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        ServerConfig {
            socket: socket.into(),
            conn_threads: 4,
            idle_timeout: None,
            cache_capacity: 256,
            workers: None,
            handle_signals: true,
        }
    }
}

/// Errors that keep the daemon from serving.
#[derive(Debug)]
pub enum ServerError {
    /// A socket operation failed.
    Io {
        /// What the daemon was doing.
        context: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// Another live daemon already owns the socket.
    AlreadyRunning(PathBuf),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io { context, source } => write!(f, "{context}: {source}"),
            ServerError::AlreadyRunning(p) => {
                write!(f, "a daemon is already serving `{}`", p.display())
            }
        }
    }
}

impl std::error::Error for ServerError {}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> ServerError {
    let context = context.into();
    move |source| ServerError::Io { context, source }
}

/// Set by the signal handler; polled by every acceptor loop. Process-wide
/// because POSIX signal dispositions are.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Installs `SIGTERM`/`SIGINT` handlers that set [`SIGNALLED`]. Raw
/// `signal(2)` FFI — the workspace links nothing beyond std, and storing
/// one atomic flag is async-signal-safe.
fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    // SAFETY: `signal(2)` with a valid signum and an `extern "C" fn(i32)`
    // handler is sound; the handler body only stores to a static atomic
    // (async-signal-safe), and nothing else installs signal dispositions.
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Binds the listener, recovering the socket path from a **stale** previous
/// daemon (file exists, nobody accepts) but refusing to displace a live
/// one (a connect probe succeeds).
fn bind(socket: &PathBuf) -> Result<UnixListener, ServerError> {
    match UnixListener::bind(socket) {
        Ok(listener) => Ok(listener),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(ServerError::AlreadyRunning(socket.clone()));
            }
            std::fs::remove_file(socket).map_err(io_err(format!(
                "removing stale socket `{}`",
                socket.display()
            )))?;
            UnixListener::bind(socket).map_err(io_err(format!("binding `{}`", socket.display())))
        }
        Err(e) => Err(io_err(format!("binding `{}`", socket.display()))(e)),
    }
}

/// Runs the daemon until `STOP`, a handled signal, or the idle timeout.
///
/// Blocks the calling thread for the daemon's whole lifetime; tests run it
/// on a background thread with [`ServerConfig::handle_signals`] off.
///
/// # Errors
/// Socket setup failures and [`ServerError::AlreadyRunning`]. Per-client
/// I/O errors (malformed requests, disappearing clients) are contained in
/// the handlers and never abort the daemon.
pub fn serve(config: &ServerConfig) -> Result<(), ServerError> {
    if config.handle_signals {
        install_signal_handlers();
    }
    if let Some(w) = config.workers {
        sfq_netlist::par::force_workers(w);
    }
    let listener = bind(&config.socket)?;
    listener
        .set_nonblocking(true)
        .map_err(io_err("setting the listener nonblocking"))?;
    let state = ServerState::new(config.cache_capacity);
    let queue: WorkQueue<UnixStream> = WorkQueue::new();
    // Accepted-but-unfinished connections; > 0 blocks the idle timeout.
    let active = AtomicUsize::new(0);
    let last_activity = Mutex::new(Instant::now());
    let touch = || {
        *last_activity.lock().unwrap_or_else(|e| e.into_inner()) = Instant::now();
    };

    std::thread::scope(|scope| {
        let handlers: Vec<_> = (0..config.conn_threads.max(1))
            .map(|_| {
                crate::sync::spawn_scoped(scope, || {
                    // `pop` blocks while the queue is open and returns None
                    // only once it is closed **and** drained — so handlers
                    // always finish the accepted backlog before retiring.
                    while let Some(stream) = queue.pop() {
                        handle_connection(stream, &state);
                        active.fetch_sub(1, Ordering::SeqCst);
                        touch();
                    }
                })
            })
            .collect();
        loop {
            if state.shutdown_requested() || SIGNALLED.load(Ordering::SeqCst) {
                break;
            }
            if let Some(idle) = config.idle_timeout {
                let quiet = last_activity
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .elapsed();
                if active.load(Ordering::SeqCst) == 0 && quiet >= idle {
                    break;
                }
            }
            match listener.accept() {
                Ok((stream, _addr)) => {
                    active.fetch_add(1, Ordering::SeqCst);
                    touch();
                    if let Err(refused) = queue.push(stream) {
                        // Only this loop closes the queue, so a refusal is
                        // unreachable; dropping the connection (client sees
                        // a hangup) still beats serving past shutdown.
                        drop(refused);
                        active.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                // Transient per-connection accept failures (e.g. the peer
                // vanished between connect and accept) must not kill the
                // daemon.
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
        // Stop accepting; handlers drain the backlog and finish in-flight
        // streams before retiring. Joining keeps a handler panic visible
        // (and is what the model checker requires of scoped spawns).
        queue.close();
        for h in handlers {
            // A handler can only die outside its containment (already a
            // bug); keep shutting down — the remaining handlers and the
            // socket cleanup matter more than re-raising here.
            let _ = h.join();
        }
    });
    std::fs::remove_file(&config.socket).map_err(io_err(format!(
        "removing socket `{}`",
        config.socket.display()
    )))?;
    Ok(())
}

/// Serves one connection: read the single request, answer it. All failures
/// are contained here — a broken client costs the daemon nothing but this
/// handler's time.
fn handle_connection(stream: UnixStream, state: &ServerState) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    match read_request(&mut reader) {
        // Transport died mid-request: nobody is left to answer.
        Err(ProtocolError::Io(_)) => {}
        Err(ProtocolError::Malformed(m)) => {
            let _ = writeln!(writer, "ERR {m}");
        }
        Ok(Request::Ping) => {
            let _ = writeln!(writer, "PONG");
        }
        Ok(Request::Stats) => {
            let _ = writeln!(writer, "{}", state.stats());
        }
        Ok(Request::Stop) => {
            state.request_shutdown();
            let _ = writeln!(writer, "BYE");
        }
        Ok(Request::Flow(request)) => handle_flow(&request, state, &mut writer),
    }
    let _ = writer.flush();
}

/// Runs one `FLOW` request and streams its rows.
fn handle_flow(request: &FlowRequest, state: &ServerState, writer: &mut (impl Write + Send)) {
    let entries: Vec<JobEntry> = request
        .designs
        .iter()
        .map(|source| JobEntry {
            name: source.name().to_string(),
            design: state.ingest(source),
        })
        .collect();
    let config = request.options.flow_config();
    let limits = request.options.limits();
    // A client that disappears mid-stream turns writes into errors; the
    // remaining jobs still run (their outcomes count in the daemon stats),
    // we just stop transmitting.
    let mut client_alive = true;
    let mut emit = |row: crate::jobs::JobRow| {
        state.record(row.kind);
        if client_alive {
            let sent =
                writeln!(writer, "ROW {} {}", row.index, row.line).and_then(|()| writer.flush());
            client_alive = sent.is_ok();
        }
    };
    // `verify=1` swaps in the verification engine: same streaming, same
    // ordering, rows in the verify table layout (the daemon always runs
    // the default sweep/margin settings — the wire carries only the flag).
    let (ok, failed) = if request.options.verify {
        run_verify_jobs_streamed(
            &entries,
            &config,
            &limits,
            &VerifyOptions::default(),
            &mut emit,
        )
    } else {
        run_jobs_streamed(&entries, &config, &limits, &mut emit)
    };
    if client_alive {
        let _ = writeln!(writer, "END ok={ok} failed={failed}");
    }
}
