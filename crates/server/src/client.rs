//! Client side of the `sfqt1d` protocol: one function per request kind.
//!
//! Each call opens one connection (the protocol is one request per
//! connection), writes the request, and consumes the response. [`flow`]
//! hands result rows to a callback **as they arrive**, so a CLI client
//! prints streamed rows with the same latency the daemon emits them.

use crate::protocol::{
    parse_reply, write_request, FlowRequest, ProtocolError, Reply, Request, StatsReply,
};
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Errors a daemon client can see.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting to or talking over the socket failed.
    Io {
        /// What the client was doing.
        context: String,
        /// The underlying failure.
        source: std::io::Error,
    },
    /// The daemon's response violated the protocol.
    Protocol(ProtocolError),
    /// The daemon answered `ERR <message>`.
    Server(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io { context, source } => write!(f, "{context}: {source}"),
            ClientError::Protocol(e) => write!(f, "daemon protocol error: {e}"),
            ClientError::Server(m) => write!(f, "daemon error: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        match e {
            ProtocolError::Io(source) => ClientError::Io {
                context: "reading daemon response".into(),
                source,
            },
            other => ClientError::Protocol(other),
        }
    }
}

fn io_err(context: impl Into<String>) -> impl FnOnce(std::io::Error) -> ClientError {
    let context = context.into();
    move |source| ClientError::Io { context, source }
}

/// One connected request/response exchange, response left to the caller.
fn send(socket: &Path, request: &Request) -> Result<BufReader<UnixStream>, ClientError> {
    let stream = UnixStream::connect(socket)
        .map_err(io_err(format!("connecting to `{}`", socket.display())))?;
    let read_half = stream
        .try_clone()
        .map_err(io_err("cloning the daemon stream"))?;
    let mut writer = BufWriter::new(stream);
    write_request(&mut writer, request).map_err(io_err("sending the request"))?;
    // Dropping the flushed writer here closes only its duplicated fd; the
    // reader's clone keeps the connection open until the response is read.
    Ok(BufReader::new(read_half))
}

/// Reads one reply line (EOF and `ERR` become errors).
fn read_reply(reader: &mut BufReader<UnixStream>) -> Result<Reply, ClientError> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(io_err("reading daemon response"))?;
    if n == 0 {
        return Err(ClientError::Io {
            context: "reading daemon response".into(),
            source: std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ),
        });
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    match parse_reply(&line)? {
        Reply::Err(m) => Err(ClientError::Server(m)),
        reply => Ok(reply),
    }
}

/// Runs a `FLOW` request, handing each `(index, row)` to `on_row` as it
/// streams in. Returns the daemon's `(ok, failed)` totals.
///
/// # Errors
/// Connection failures, protocol violations, and daemon-reported errors.
pub fn flow(
    socket: &Path,
    request: &FlowRequest,
    mut on_row: impl FnMut(usize, &str),
) -> Result<(usize, usize), ClientError> {
    let mut reader = send(socket, &Request::Flow(request.clone()))?;
    let mut expected = 0usize;
    loop {
        match read_reply(&mut reader)? {
            Reply::Row { index, line } => {
                // The daemon emits rows in input order; hold it to that.
                if index != expected {
                    return Err(ClientError::Protocol(ProtocolError::Malformed(format!(
                        "row {index} arrived, expected row {expected}"
                    ))));
                }
                expected += 1;
                on_row(index, &line);
            }
            Reply::End { ok, failed } => {
                if ok + failed != expected {
                    return Err(ClientError::Protocol(ProtocolError::Malformed(format!(
                        "END counts {ok}+{failed} after {expected} rows"
                    ))));
                }
                return Ok((ok, failed));
            }
            other => {
                return Err(ClientError::Protocol(ProtocolError::Malformed(format!(
                    "unexpected reply {other:?} in a FLOW stream"
                ))))
            }
        }
    }
}

/// Fetches the daemon's counter snapshot.
///
/// # Errors
/// Connection failures, protocol violations, and daemon-reported errors.
pub fn stats(socket: &Path) -> Result<StatsReply, ClientError> {
    let mut reader = send(socket, &Request::Stats)?;
    match read_reply(&mut reader)? {
        Reply::Stats(s) => Ok(*s),
        other => Err(ClientError::Protocol(ProtocolError::Malformed(format!(
            "unexpected reply {other:?} to STATS"
        )))),
    }
}

/// Asks the daemon to shut down gracefully (acknowledged with `BYE` before
/// the drain).
///
/// # Errors
/// Connection failures, protocol violations, and daemon-reported errors.
pub fn stop(socket: &Path) -> Result<(), ClientError> {
    let mut reader = send(socket, &Request::Stop)?;
    match read_reply(&mut reader)? {
        Reply::Bye => Ok(()),
        other => Err(ClientError::Protocol(ProtocolError::Malformed(format!(
            "unexpected reply {other:?} to STOP"
        )))),
    }
}

/// Liveness probe.
///
/// # Errors
/// Connection failures, protocol violations, and daemon-reported errors.
pub fn ping(socket: &Path) -> Result<(), ClientError> {
    let mut reader = send(socket, &Request::Ping)?;
    match read_reply(&mut reader)? {
        Reply::Pong => Ok(()),
        other => Err(ClientError::Protocol(ProtocolError::Malformed(format!(
            "unexpected reply {other:?} to PING"
        )))),
    }
}
