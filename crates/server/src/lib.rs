//! `sfqt1d` — the long-running SFQ flow daemon, as a library.
//!
//! This crate turns the workspace's batch flow machinery into a service:
//! many clients connect to one daemon over a Unix-domain socket, submit
//! designs (inline bytes or paths), and get per-design result rows
//! **streamed back in input order as each flow finishes**. All clients
//! share one bounded, content-hash-keyed design cache, so repeated
//! submissions of the same design — from any client, by path or inline —
//! pay for one parse.
//!
//! The crate is library-first: the `sfqt1d` binary in `sfq-cli` is a thin
//! argument-parsing wrapper around [`serve`], and the integration tests run
//! the daemon in-process on a background thread. Layers:
//!
//! * [`protocol`] — the line-oriented wire protocol (requests, replies,
//!   framing of inline design bytes);
//! * [`state`] — daemon-lifetime shared state: the design cache and the
//!   ok/failed/panicked/timed-out counters behind `STATS`;
//! * [`jobs`] — the streaming job engine shared with `sfqt1 flow --batch`:
//!   supervised flows fanned over workers, rows emitted in input order as
//!   they unblock, panicked jobs retried once sequentially;
//! * [`queue`] — the closable connection work queue whose stop/drain
//!   semantics carry the shutdown contract (model-checked under the `chk`
//!   feature, see [`sync`]);
//! * [`daemon`] — acceptor loop, connection thread pool, graceful shutdown
//!   on `STOP` / `SIGTERM` / idle timeout;
//! * [`client`] — the client calls the CLI's `--daemon` mode is built on.
//!
//! Rows use the exact `sfqt1 flow --batch` rendering, so a batch served
//! through the daemon is byte-identical to one run locally — the
//! acceptance bar the integration tests and the `daemon` CI job hold.

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod client;
pub mod daemon;
pub mod jobs;
pub mod protocol;
pub mod queue;
pub mod state;
pub mod sync;

pub use client::ClientError;
pub use daemon::{serve, ServerConfig, ServerError};
pub use jobs::{
    run_jobs_streamed, run_verify_jobs_streamed, table_header, verify_table_header, JobEntry,
    JobRow, VerifyOptions,
};
pub use protocol::{DesignSource, FlowOptions, FlowRequest, Request, StatsReply};
pub use queue::WorkQueue;
pub use state::{OutcomeKind, ServerState};
