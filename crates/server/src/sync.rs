//! Switchable synchronization primitives — the crate's single gateway to
//! `std::sync`/`std::thread` concurrency.
//!
//! Production builds re-export the std primitives unchanged (this module
//! compiles to pure renames; the default build stays std-only). Under the
//! `chk` cargo feature the same names resolve to the model-checked shims
//! from the in-tree `chk` crate, so the daemon's stop/drain handshake
//! ([`crate::queue::WorkQueue`] + [`crate::state::ServerState`]) can be
//! exhaustively schedule-explored by `tests/chk_models.rs` against the
//! production code. The workspace `srclint` enforces the funnel: raw
//! `std::sync::Mutex`/`Condvar`/`std::thread::spawn` outside per-crate
//! `sync.rs` modules (and tests) fail the lint.

#[cfg(feature = "chk")]
pub use chk::sync::{AtomicBool, AtomicU64, AtomicUsize, Condvar, Mutex, MutexGuard};
#[cfg(feature = "chk")]
pub use chk::thread::{spawn_scoped, ScopedJoinHandle};

#[cfg(not(feature = "chk"))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize};
#[cfg(not(feature = "chk"))]
pub use std::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(feature = "chk"))]
pub use std::thread::ScopedJoinHandle;

pub use std::sync::atomic::Ordering;

/// Spawns a scoped thread; the `chk` build swaps in the model-checked
/// wrapper. Model rule (vacuous for std builds): join every handle before
/// its scope closes.
#[cfg(not(feature = "chk"))]
pub fn spawn_scoped<'scope, 'env, F, T>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    f: F,
) -> ScopedJoinHandle<'scope, T>
where
    F: FnOnce() -> T + Send + 'scope,
    T: Send + 'scope,
{
    scope.spawn(f)
}
