//! The `sfqt1d` wire protocol: line-oriented, UTF-8, hand-parsed.
//!
//! One connection carries exactly **one request** and its response — the
//! simplest framing that still supports many concurrent clients (each just
//! opens its own connection), and the one that makes graceful shutdown
//! trivial to reason about: draining in-flight connections drains in-flight
//! requests.
//!
//! # Requests
//!
//! ```text
//! PING
//! STATS
//! STOP
//! FLOW phases=4 t1=1 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-
//! DESIGN <name> PATH <path>
//! DESIGN <name> INLINE <len>
//! <len raw bytes>
//! RUN
//! ```
//!
//! A `FLOW` header line is followed by any number of `DESIGN` lines and a
//! terminating `RUN`. `PATH` designs are read by the daemon (same-host
//! clients hand over a path instead of shipping bytes); `INLINE` designs
//! carry their content directly — exactly `<len>` bytes follow the header
//! line, then one newline. `deadline_ms`/`max_nodes` take `-` for
//! "unlimited". `verify=1` follows every flow with pulse-level verification
//! (equivalence sweep + margin analysis); rows then use the verify table
//! layout.
//!
//! # Responses
//!
//! ```text
//! PONG
//! BYE
//! STATS ok=.. failed=.. panicked=.. timed_out=.. cache_hits=.. cache_misses=..
//!       cache_collisions=.. cache_evictions=.. cache_len=.. cache_capacity=..
//!       workers=..
//! ROW <index> <table row>
//! END ok=<n> failed=<n>
//! ERR <message>
//! ```
//!
//! A `FLOW` response is a stream: one `ROW` line per design, **in request
//! order, flushed as each design finishes** (row `k` is sent as soon as
//! designs `0..=k` are all done), terminated by `END`. Every other request
//! answers with a single line. `ERR` can replace any response.

use sfq_core::{FlowConfig, Limits, PhaseEngine};
use sfq_netlist::CacheStats;
use std::fmt;
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::time::Duration;

/// Upper bound on one inline design submission (bytes) — a daemon serving
/// arbitrary clients must bound what one request can make it allocate.
pub const MAX_INLINE_BYTES: usize = 64 << 20;

/// Upper bound on designs in one `FLOW` request.
pub const MAX_DESIGNS_PER_REQUEST: usize = 4096;

/// A protocol failure: transport I/O or a malformed message.
#[derive(Debug)]
pub enum ProtocolError {
    /// The underlying stream failed.
    Io(std::io::Error),
    /// The peer sent something the grammar does not admit.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "protocol i/o: {e}"),
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> ProtocolError {
    ProtocolError::Malformed(msg.into())
}

/// Flow options carried by a `FLOW` request — the daemon-side mirror of the
/// `sfqt1 flow` CLI options that make sense per request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowOptions {
    /// Number of clock phases.
    pub phases: u8,
    /// Whether T1 detection runs.
    pub use_t1: bool,
    /// Phase-assignment engine.
    pub engine: PhaseEngine,
    /// T1 commit gain threshold (JJs).
    pub gain_threshold: i64,
    /// Whether each flow is followed by pulse-level verification
    /// (equivalence sweep + Monte-Carlo margin analysis) with the default
    /// sweep settings — rows then use the verify table layout.
    pub verify: bool,
    /// Per-design wall-clock deadline, if any.
    pub deadline_ms: Option<u64>,
    /// Per-design node-budget ceiling, if any.
    pub max_nodes: Option<u64>,
}

impl Default for FlowOptions {
    fn default() -> Self {
        FlowOptions {
            phases: 4,
            use_t1: false,
            engine: PhaseEngine::Auto,
            gain_threshold: 0,
            verify: false,
            deadline_ms: None,
            max_nodes: None,
        }
    }
}

impl FlowOptions {
    /// The [`FlowConfig`] these options describe.
    pub fn flow_config(&self) -> FlowConfig {
        let mut config = if self.use_t1 {
            FlowConfig::t1(self.phases)
        } else {
            FlowConfig::multiphase(self.phases)
        };
        config.engine = self.engine;
        config.gain_threshold = self.gain_threshold;
        config
    }

    /// The per-design supervision [`Limits`] these options describe.
    pub fn limits(&self) -> Limits {
        Limits {
            deadline: self.deadline_ms.map(Duration::from_millis),
            max_nodes: self.max_nodes,
        }
    }
}

/// One design of a `FLOW` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesignSource {
    /// The daemon reads (and caches) the file itself.
    Path {
        /// Display name of the design (one `ROW` per name).
        name: String,
        /// Path the daemon reads.
        path: PathBuf,
    },
    /// The client ships the design bytes inline.
    Inline {
        /// Display name of the design; its extension drives format
        /// detection, content sniffing covers the rest.
        name: String,
        /// The design source text.
        content: String,
    },
}

impl DesignSource {
    /// The display name of the design.
    pub fn name(&self) -> &str {
        match self {
            DesignSource::Path { name, .. } | DesignSource::Inline { name, .. } => name,
        }
    }
}

/// A parsed `FLOW` request: options plus the designs to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRequest {
    /// Flow configuration and per-design limits.
    pub options: FlowOptions,
    /// The designs, in the order their rows will stream back.
    pub designs: Vec<DesignSource>,
}

/// One parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Counter snapshot.
    Stats,
    /// Graceful shutdown (drain, then exit).
    Stop,
    /// Run flows and stream rows back.
    Flow(FlowRequest),
}

/// Validates a design name token: non-empty, no whitespace, bounded.
fn check_name(name: &str) -> Result<(), ProtocolError> {
    if name.is_empty() || name.len() > 256 || name.chars().any(char::is_whitespace) {
        return Err(malformed(format!("bad design name `{name}`")));
    }
    Ok(())
}

fn parse_kv<'a>(token: &'a str, key: &str) -> Result<&'a str, ProtocolError> {
    token
        .strip_prefix(key)
        .and_then(|r| r.strip_prefix('='))
        .ok_or_else(|| malformed(format!("expected `{key}=...`, got `{token}`")))
}

fn parse_opt_u64(v: &str, what: &str) -> Result<Option<u64>, ProtocolError> {
    if v == "-" {
        return Ok(None);
    }
    v.parse()
        .map(Some)
        .map_err(|_| malformed(format!("bad {what} `{v}`")))
}

/// Parses the `FLOW ...` header line (after the verb).
fn parse_flow_header(rest: &str) -> Result<FlowOptions, ProtocolError> {
    let mut toks = rest.split_whitespace();
    let mut need = |key: &str| {
        toks.next()
            .ok_or_else(|| malformed(format!("missing `{key}=`")))
    };
    let phases: u8 = parse_kv(need("phases")?, "phases")?
        .parse()
        .map_err(|_| malformed("bad phases"))?;
    if phases == 0 {
        return Err(malformed("phases must be at least 1"));
    }
    let t1 = match parse_kv(need("t1")?, "t1")? {
        "0" => false,
        "1" => true,
        other => return Err(malformed(format!("bad t1 flag `{other}`"))),
    };
    let engine = match parse_kv(need("engine")?, "engine")? {
        "auto" => PhaseEngine::Auto,
        "exact" => PhaseEngine::Exact,
        "heuristic" => PhaseEngine::Heuristic,
        other => return Err(malformed(format!("bad engine `{other}`"))),
    };
    let gain: i64 = parse_kv(need("gain")?, "gain")?
        .parse()
        .map_err(|_| malformed("bad gain"))?;
    let verify = match parse_kv(need("verify")?, "verify")? {
        "0" => false,
        "1" => true,
        other => return Err(malformed(format!("bad verify flag `{other}`"))),
    };
    let deadline_ms = parse_opt_u64(
        parse_kv(need("deadline_ms")?, "deadline_ms")?,
        "deadline_ms",
    )?;
    let max_nodes = parse_opt_u64(parse_kv(need("max_nodes")?, "max_nodes")?, "max_nodes")?;
    if toks.next().is_some() {
        return Err(malformed("trailing tokens after FLOW header"));
    }
    Ok(FlowOptions {
        phases,
        use_t1: t1,
        engine,
        gain_threshold: gain,
        verify,
        deadline_ms,
        max_nodes,
    })
}

fn read_line(r: &mut impl BufRead) -> Result<Option<String>, ProtocolError> {
    let mut line = String::new();
    if r.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    while line.ends_with('\n') || line.ends_with('\r') {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads one request from the stream.
///
/// # Errors
/// [`ProtocolError::Io`] on transport failure, [`ProtocolError::Malformed`]
/// when the peer violates the grammar (including oversized inline designs).
pub fn read_request(r: &mut impl BufRead) -> Result<Request, ProtocolError> {
    let Some(line) = read_line(r)? else {
        return Err(malformed("empty request"));
    };
    let (verb, rest) = match line.split_once(' ') {
        Some((v, rest)) => (v, rest),
        None => (line.as_str(), ""),
    };
    match verb {
        "PING" => Ok(Request::Ping),
        "STATS" => Ok(Request::Stats),
        "STOP" => Ok(Request::Stop),
        "FLOW" => {
            let options = parse_flow_header(rest)?;
            let mut designs = Vec::new();
            loop {
                let Some(line) = read_line(r)? else {
                    return Err(malformed("FLOW request ended before RUN"));
                };
                if line == "RUN" {
                    break;
                }
                let rest = line
                    .strip_prefix("DESIGN ")
                    .ok_or_else(|| malformed(format!("expected DESIGN or RUN, got `{line}`")))?;
                let (name, src) = rest
                    .split_once(' ')
                    .ok_or_else(|| malformed("DESIGN needs a name and a source"))?;
                check_name(name)?;
                if let Some(path) = src.strip_prefix("PATH ") {
                    designs.push(DesignSource::Path {
                        name: name.to_string(),
                        path: PathBuf::from(path),
                    });
                } else if let Some(len) = src.strip_prefix("INLINE ") {
                    let len: usize = len
                        .parse()
                        .map_err(|_| malformed(format!("bad INLINE length `{len}`")))?;
                    if len > MAX_INLINE_BYTES {
                        return Err(malformed(format!(
                            "inline design `{name}` exceeds {MAX_INLINE_BYTES} bytes"
                        )));
                    }
                    let mut bytes = vec![0u8; len];
                    r.read_exact(&mut bytes)?;
                    let mut nl = [0u8; 1];
                    r.read_exact(&mut nl)?;
                    if nl[0] != b'\n' {
                        return Err(malformed("inline design not newline-terminated"));
                    }
                    let content = String::from_utf8(bytes)
                        .map_err(|_| malformed(format!("inline design `{name}` is not UTF-8")))?;
                    designs.push(DesignSource::Inline {
                        name: name.to_string(),
                        content,
                    });
                } else {
                    return Err(malformed(format!("bad DESIGN source `{src}`")));
                }
                if designs.len() > MAX_DESIGNS_PER_REQUEST {
                    return Err(malformed(format!(
                        "more than {MAX_DESIGNS_PER_REQUEST} designs in one request"
                    )));
                }
            }
            Ok(Request::Flow(FlowRequest { options, designs }))
        }
        other => Err(malformed(format!("unknown verb `{other}`"))),
    }
}

/// Writes one request to the stream (the client side of [`read_request`]).
///
/// # Errors
/// Transport I/O errors.
pub fn write_request(w: &mut impl Write, req: &Request) -> std::io::Result<()> {
    match req {
        Request::Ping => writeln!(w, "PING")?,
        Request::Stats => writeln!(w, "STATS")?,
        Request::Stop => writeln!(w, "STOP")?,
        Request::Flow(f) => {
            let o = &f.options;
            let fmt_opt = |v: Option<u64>| v.map_or("-".to_string(), |v| v.to_string());
            let engine = match o.engine {
                PhaseEngine::Auto => "auto",
                PhaseEngine::Exact => "exact",
                PhaseEngine::Heuristic => "heuristic",
            };
            writeln!(
                w,
                "FLOW phases={} t1={} engine={} gain={} verify={} deadline_ms={} max_nodes={}",
                o.phases,
                u8::from(o.use_t1),
                engine,
                o.gain_threshold,
                u8::from(o.verify),
                fmt_opt(o.deadline_ms),
                fmt_opt(o.max_nodes),
            )?;
            for d in &f.designs {
                match d {
                    DesignSource::Path { name, path } => {
                        writeln!(w, "DESIGN {name} PATH {}", path.display())?;
                    }
                    DesignSource::Inline { name, content } => {
                        writeln!(w, "DESIGN {name} INLINE {}", content.len())?;
                        w.write_all(content.as_bytes())?;
                        w.write_all(b"\n")?;
                    }
                }
            }
            writeln!(w, "RUN")?;
        }
    }
    w.flush()
}

/// The counter snapshot a `STATS` request answers with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsReply {
    /// Flows that finished and verified.
    pub ok: u64,
    /// Flows that failed (ingest error, flow error, or over node budget).
    pub failed: u64,
    /// Flows that panicked and were contained.
    pub panicked: u64,
    /// Flows aborted at their wall-clock deadline.
    pub timed_out: u64,
    /// Shared design-cache counters.
    pub cache: CacheStats,
    /// Effective worker-thread count of the daemon's flow fan-outs
    /// (`sfq_netlist::par::workers()` as the serving process resolves it —
    /// `sfqt1d --workers` / `SFQ_WORKERS` override, else the host's
    /// available parallelism).
    pub workers: u64,
}

impl fmt::Display for StatsReply {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "STATS ok={} failed={} panicked={} timed_out={} cache_hits={} cache_misses={} \
             cache_collisions={} cache_evictions={} cache_len={} cache_capacity={} workers={}",
            self.ok,
            self.failed,
            self.panicked,
            self.timed_out,
            self.cache.hits,
            self.cache.misses,
            self.cache.collisions,
            self.cache.evictions,
            self.cache.len,
            self.cache.capacity,
            self.workers,
        )
    }
}

/// One response line, as the client sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `PING` answer.
    Pong,
    /// `STOP` acknowledgment.
    Bye,
    /// Counter snapshot.
    Stats(Box<StatsReply>),
    /// One streamed result row of a `FLOW` request.
    Row {
        /// Zero-based index of the design within the request.
        index: usize,
        /// The rendered table row.
        line: String,
    },
    /// End of a `FLOW` stream with the request's outcome counts.
    End {
        /// Designs that finished and verified.
        ok: usize,
        /// Designs that failed.
        failed: usize,
    },
    /// Server-side failure report.
    Err(String),
}

/// Parses one response line (the client side of the daemon's writes).
///
/// # Errors
/// [`ProtocolError::Malformed`] when the line fits no response form.
pub fn parse_reply(line: &str) -> Result<Reply, ProtocolError> {
    let (verb, rest) = match line.split_once(' ') {
        Some((v, rest)) => (v, rest),
        None => (line, ""),
    };
    match verb {
        "PONG" => Ok(Reply::Pong),
        "BYE" => Ok(Reply::Bye),
        "ERR" => Ok(Reply::Err(rest.to_string())),
        "ROW" => {
            let (index, line) = rest
                .split_once(' ')
                .ok_or_else(|| malformed("ROW needs an index and a row"))?;
            let index = index
                .parse()
                .map_err(|_| malformed(format!("bad ROW index `{index}`")))?;
            Ok(Reply::Row {
                index,
                line: line.to_string(),
            })
        }
        "END" => {
            let mut toks = rest.split_whitespace();
            let ok = parse_kv(toks.next().ok_or_else(|| malformed("END needs ok="))?, "ok")?
                .parse()
                .map_err(|_| malformed("bad END ok count"))?;
            let failed = parse_kv(
                toks.next().ok_or_else(|| malformed("END needs failed="))?,
                "failed",
            )?
            .parse()
            .map_err(|_| malformed("bad END failed count"))?;
            Ok(Reply::End { ok, failed })
        }
        "STATS" => {
            let mut stats = StatsReply::default();
            for tok in rest.split_whitespace() {
                let (key, value) = tok
                    .split_once('=')
                    .ok_or_else(|| malformed(format!("bad STATS token `{tok}`")))?;
                let v: u64 = value
                    .parse()
                    .map_err(|_| malformed(format!("bad STATS value `{tok}`")))?;
                let vu = v as usize;
                match key {
                    "ok" => stats.ok = v,
                    "failed" => stats.failed = v,
                    "panicked" => stats.panicked = v,
                    "timed_out" => stats.timed_out = v,
                    "cache_hits" => stats.cache.hits = vu,
                    "cache_misses" => stats.cache.misses = vu,
                    "cache_collisions" => stats.cache.collisions = vu,
                    "cache_evictions" => stats.cache.evictions = vu,
                    "cache_len" => stats.cache.len = vu,
                    "cache_capacity" => stats.cache.capacity = vu,
                    "workers" => stats.workers = v,
                    other => return Err(malformed(format!("unknown STATS key `{other}`"))),
                }
            }
            Ok(Reply::Stats(Box::new(stats)))
        }
        other => Err(malformed(format!("unknown reply `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn round_trip(req: Request) -> Request {
        let mut buf = Vec::new();
        write_request(&mut buf, &req).expect("write");
        read_request(&mut BufReader::new(buf.as_slice())).expect("read back")
    }

    #[test]
    fn simple_requests_round_trip() {
        for req in [Request::Ping, Request::Stats, Request::Stop] {
            assert_eq!(round_trip(req.clone()), req);
        }
    }

    #[test]
    fn flow_requests_round_trip_with_mixed_sources() {
        let req = Request::Flow(FlowRequest {
            options: FlowOptions {
                phases: 6,
                use_t1: true,
                engine: PhaseEngine::Heuristic,
                gain_threshold: -3,
                verify: true,
                deadline_ms: Some(2500),
                max_nodes: None,
            },
            designs: vec![
                DesignSource::Path {
                    name: "a.aag".into(),
                    path: PathBuf::from("/tmp/designs/a with space.aag"),
                },
                DesignSource::Inline {
                    name: "b.blif".into(),
                    content: ".model b\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n".into(),
                },
                DesignSource::Inline {
                    name: "empty.blif".into(),
                    content: String::new(),
                },
            ],
        });
        assert_eq!(round_trip(req.clone()), req);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "FROB\n",
            "FLOW phases=4\nRUN\n",
            "FLOW phases=0 t1=0 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-\nRUN\n",
            "FLOW phases=4 t1=2 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-\nRUN\n",
            "FLOW phases=4 t1=0 engine=warp gain=0 verify=0 deadline_ms=- max_nodes=-\nRUN\n",
            "FLOW phases=4 t1=0 engine=auto gain=0 verify=yes deadline_ms=- max_nodes=-\nRUN\n",
            "FLOW phases=4 t1=0 engine=auto gain=0 deadline_ms=- max_nodes=-\nRUN\n",
            "FLOW phases=4 t1=0 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-\nDESIGN bad name PATH /x\nRUN\n",
            "FLOW phases=4 t1=0 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-\nDESIGN a.aag INLINE 4\nab\n",
            "FLOW phases=4 t1=0 engine=auto gain=0 verify=0 deadline_ms=- max_nodes=-\nDESIGN a.aag FTP /x\nRUN\n",
        ] {
            let res = read_request(&mut BufReader::new(bad.as_bytes()));
            assert!(res.is_err(), "`{}` should be rejected", bad.escape_debug());
        }
    }

    #[test]
    fn replies_parse_and_stats_round_trips() {
        assert_eq!(parse_reply("PONG").unwrap(), Reply::Pong);
        assert_eq!(parse_reply("BYE").unwrap(), Reply::Bye);
        assert_eq!(
            parse_reply("ROW 3 adder8.aag FAILED(x)").unwrap(),
            Reply::Row {
                index: 3,
                line: "adder8.aag FAILED(x)".into()
            }
        );
        assert_eq!(
            parse_reply("END ok=5 failed=2").unwrap(),
            Reply::End { ok: 5, failed: 2 }
        );
        let stats = StatsReply {
            ok: 9,
            failed: 2,
            panicked: 1,
            timed_out: 3,
            cache: CacheStats {
                hits: 21,
                misses: 11,
                evictions: 4,
                collisions: 1,
                len: 7,
                capacity: 256,
            },
            workers: 8,
        };
        match parse_reply(&stats.to_string()).unwrap() {
            Reply::Stats(parsed) => assert_eq!(*parsed, stats),
            other => panic!("expected stats, got {other:?}"),
        }
        assert!(parse_reply("WAT 1 2").is_err());
    }

    #[test]
    fn flow_options_map_onto_config_and_limits() {
        let o = FlowOptions {
            phases: 5,
            use_t1: true,
            engine: PhaseEngine::Exact,
            gain_threshold: 7,
            verify: true,
            deadline_ms: Some(100),
            max_nodes: Some(9),
        };
        let c = o.flow_config();
        assert_eq!(c.phases, 5);
        assert!(c.use_t1);
        assert_eq!(c.gain_threshold, 7);
        let l = o.limits();
        assert_eq!(l.deadline, Some(Duration::from_millis(100)));
        assert_eq!(l.max_nodes, Some(9));
    }
}
