//! Shared job execution: supervised flows fanned over workers, result rows
//! **streamed back in input order**.
//!
//! This is the one engine behind both `sfqt1 flow --batch` (local) and the
//! `sfqt1d` daemon's `FLOW` requests: the same row rendering, the same
//! containment policy, the same ordering guarantee — so daemon responses are
//! byte-identical to local batch rows by construction, not by convention.
//!
//! Rows are emitted through [`sfq_netlist::par::map_ordered_streamed`]: row
//! `k` is handed to the sink as soon as designs `0..=k` have finished, while
//! later designs are still running. That replaces the old batch driver's
//! buffer-everything-then-print shape — a terminal user (or a daemon
//! client) sees the first rows of a long batch immediately.

use crate::state::OutcomeKind;
use sfq_core::{
    run_flow_on_design, run_flow_supervised, FlowConfig, FlowError, FlowOutcome, FlowReport,
    Limits, TaskOutcome,
};
use sfq_netlist::{par, Design};
use sfq_sim::margin::{analyze_margins, MarginConfig, MarginReport};
use sfq_sim::{check_against_aig, EquivConfig, EquivError, EquivReport};
use std::fmt;

/// One job: a display name plus its ingested design (ingest failures carry
/// their rendered reason and become `FAILED(...)` rows).
pub struct JobEntry {
    /// Display name — first column of the row.
    pub name: String,
    /// The parsed design, or the ingest failure reason.
    pub design: Result<Design, String>,
}

/// One finished job's rendered row plus its outcome class.
pub struct JobRow {
    /// Zero-based input index of the job.
    pub index: usize,
    /// The rendered table row.
    pub line: String,
    /// Outcome class, for summaries and daemon counters.
    pub kind: OutcomeKind,
}

impl JobRow {
    /// True when the job finished and verified.
    pub fn is_ok(&self) -> bool {
        self.kind == OutcomeKind::Ok
    }
}

/// The batch table header row (shared by the local batch driver and the
/// daemon client, so their tables stay identical below the preamble).
pub fn table_header() -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>6} {:>5} | {:>6} {:>6} {:>8} {:>6}",
        "design", "fmt", "in", "out", "found", "used", "cells", "dffs", "area JJ", "depth"
    )
}

/// Formats one successful row's columns.
fn report_row(name: &str, design: &Design, r: &FlowReport) -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>6} {:>5} | {:>6} {:>6} {:>8} {:>6}",
        name,
        design.format.extension(),
        design.aig.num_inputs(),
        design.aig.num_outputs(),
        r.t1_found,
        r.t1_used,
        r.num_gates,
        r.num_dffs,
        r.area,
        r.depth_cycles
    )
}

/// Serializes sequential retries of panicked jobs: the retry temporarily
/// forces one worker process-wide, so two concurrent retries (or a retry
/// racing a test's own [`par::force_workers`] save/restore) must not
/// interleave their save/restore pairs.
static RETRY_LOCK: crate::sync::Mutex<()> = crate::sync::Mutex::new(());

/// Runs one job supervised and renders its row.
///
/// Containment policy (identical to the historical batch driver, now
/// applied *before* the row is emitted, since streamed rows cannot be
/// amended): every failure renders as `FAILED(<reason>)` with a
/// deterministic reason, and a job that **panicked** while the parallel
/// fan-outs were active is retried once sequentially — under a process-wide
/// one-worker override, serialized by [`RETRY_LOCK`] — before being
/// declared dead. Deterministic faults fail again identically, keeping
/// output byte-identical across worker counts.
fn run_job(index: usize, entry: &JobEntry, config: &FlowConfig, limits: &Limits) -> JobRow {
    let name = &entry.name;
    let failed = |reason: String, kind: OutcomeKind| JobRow {
        index,
        line: format!("{name:<16} FAILED({reason})"),
        kind,
    };
    let design = match &entry.design {
        Err(reason) => return failed(reason.clone(), OutcomeKind::Failed),
        Ok(design) => design,
    };
    let mut outcome = run_flow_supervised(design, config, limits);
    if matches!(outcome, FlowOutcome::Panicked { .. }) && par::workers() > 1 {
        // A poisoned retry lock only means another retry panicked while
        // holding it; the guarded save/restore is still well-formed.
        let _retry = RETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = par::forced_workers();
        par::force_workers(1);
        outcome = run_flow_supervised(design, config, limits);
        par::force_workers(previous);
    }
    match outcome {
        FlowOutcome::Ok(res) => JobRow {
            index,
            line: report_row(name, design, &res.report),
            kind: OutcomeKind::Ok,
        },
        // `failure()` is Some for every non-Ok outcome; the fallback reason
        // keeps the daemon's request path panic-free if that ever drifts.
        FlowOutcome::Panicked { .. } => failed(
            outcome
                .failure()
                .unwrap_or_else(|| "unclassified panic".to_string()),
            OutcomeKind::Panicked,
        ),
        FlowOutcome::TimedOut => failed(
            outcome
                .failure()
                .unwrap_or_else(|| "unclassified timeout".to_string()),
            OutcomeKind::TimedOut,
        ),
        outcome => failed(
            outcome
                .failure()
                .unwrap_or_else(|| "unclassified failure".to_string()),
            OutcomeKind::Failed,
        ),
    }
}

/// Runs every job supervised, fanned over [`par::workers`] scoped threads,
/// and hands each rendered row to `emit` **in input order, as soon as it is
/// unblocked** — row `k` arrives while jobs `> k` may still be running.
/// Returns the `(ok, failed)` totals.
///
/// `emit` runs under the streaming lock: keep it to a write+flush.
pub fn run_jobs_streamed(
    entries: &[JobEntry],
    config: &FlowConfig,
    limits: &Limits,
    mut emit: impl FnMut(JobRow) + Send,
) -> (usize, usize) {
    let indices: Vec<usize> = (0..entries.len()).collect();
    let (mut ok, mut failed) = (0usize, 0usize);
    par::map_ordered_streamed(
        indices,
        |i| run_job(i, &entries[i], config, limits),
        |k, row| {
            // Worker bodies never panic (run_job contains everything), so
            // an Err here is unreachable; render it defensively anyway
            // rather than poisoning the daemon.
            let row = row.unwrap_or_else(|p| JobRow {
                index: k,
                line: format!("{:<16} FAILED(panicked: {})", entries[k].name, p.message()),
                kind: OutcomeKind::Panicked,
            });
            if row.is_ok() {
                ok += 1;
            } else {
                failed += 1;
            }
            emit(row);
        },
    );
    (ok, failed)
}

/// Sweep and margin knobs of one verification batch. The daemon always
/// runs the defaults (the wire protocol carries only `verify=0|1`); the
/// local `sfqt1 verify` driver may override them — with the defaults, both
/// entry points render byte-identical rows.
#[derive(Debug, Clone, Default)]
pub struct VerifyOptions {
    /// Equivalence-sweep parameters (exhaustive/sampled thresholds, seeds,
    /// shrink budget).
    pub equiv: EquivConfig,
    /// Monte-Carlo margin-analysis parameters (period, jitter, trials).
    pub margin: MarginConfig,
}

/// The verify table header row (shared by `sfqt1 verify --batch` and the
/// daemon's `verify=1` mode).
pub fn verify_table_header() -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>10} {:>6} | {:>4} {:>7} {:>9}",
        "design", "fmt", "in", "out", "sweep", "waves", "t1", "hazard", "worst ps"
    )
}

/// What one verification job produces when every gate passes.
struct VerifySuccess {
    equiv: EquivReport,
    margin: MarginReport,
}

/// Why one verification job failed — each variant renders the same
/// deterministic one-line reason the flow rows use, so `FAILED(...)` rows
/// stay byte-identical across runs and worker counts.
enum VerifyFailure {
    /// The mapping flow itself failed.
    Flow(FlowError),
    /// The flow finished but the pulse-level check did not pass (hazards,
    /// or a mismatch with its shrunk counterexample).
    Equiv(EquivError),
}

impl fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyFailure::Flow(e) => write!(f, "{e}"),
            VerifyFailure::Equiv(e) => write!(f, "{e}"),
        }
    }
}

/// Formats one successful verify row's columns. Floating-point columns use
/// fixed precision (and `worst ps` renders `inf` for T1-free designs), so
/// rows are byte-deterministic.
fn verify_row(name: &str, design: &Design, s: &VerifySuccess) -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>10} {:>6} | {:>4} {:>7.4} {:>9.3}",
        name,
        design.format.extension(),
        design.aig.num_inputs(),
        design.aig.num_outputs(),
        s.equiv.mode.to_string(),
        s.equiv.waves,
        s.margin.t1_cells,
        s.margin.hazard_rate(),
        s.margin.worst_separation_ps,
    )
}

/// The whole verification of one design as a single supervised task: map,
/// then co-simulate the timed artifact against the **original** AIG, then
/// Monte-Carlo the analog margins. One envelope contains all three, so a
/// panic or deadline in any stage yields one classified outcome.
fn verify_task(
    design: &Design,
    config: &FlowConfig,
    vopts: &VerifyOptions,
) -> impl FnOnce() -> Result<VerifySuccess, VerifyFailure> {
    let design = design.clone();
    let config = config.clone();
    let vopts = vopts.clone();
    move || {
        let flow = run_flow_on_design(&design, &config).map_err(VerifyFailure::Flow)?;
        let equiv = check_against_aig(&design.aig, &flow.timed, &vopts.equiv)
            .map_err(VerifyFailure::Equiv)?;
        let margin = analyze_margins(&flow.timed, &vopts.margin);
        Ok(VerifySuccess { equiv, margin })
    }
}

/// Runs one verification job supervised and renders its row — the verify
/// sibling of [`run_job`], with the same containment and retry policy.
fn run_verify_job(
    index: usize,
    entry: &JobEntry,
    config: &FlowConfig,
    limits: &Limits,
    vopts: &VerifyOptions,
) -> JobRow {
    let name = &entry.name;
    let failed = |reason: String, kind: OutcomeKind| JobRow {
        index,
        line: format!("{name:<16} FAILED({reason})"),
        kind,
    };
    let design = match &entry.design {
        Err(reason) => return failed(reason.clone(), OutcomeKind::Failed),
        Ok(design) => design,
    };
    let mut outcome = sfq_core::supervise_task(limits, verify_task(design, config, vopts));
    if matches!(outcome, TaskOutcome::Panicked { .. }) && par::workers() > 1 {
        let _retry = RETRY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let previous = par::forced_workers();
        par::force_workers(1);
        outcome = sfq_core::supervise_task(limits, verify_task(design, config, vopts));
        par::force_workers(previous);
    }
    match outcome {
        TaskOutcome::Ok(success) => JobRow {
            index,
            line: verify_row(name, design, &success),
            kind: OutcomeKind::Ok,
        },
        TaskOutcome::Failed(e) => failed(e.to_string(), OutcomeKind::Failed),
        TaskOutcome::Panicked { message } => {
            failed(format!("panicked: {message}"), OutcomeKind::Panicked)
        }
        TaskOutcome::TimedOut => failed(
            sfq_netlist::budget::BudgetExceeded::Deadline.to_string(),
            OutcomeKind::TimedOut,
        ),
        TaskOutcome::OverBudget => failed(
            sfq_netlist::budget::BudgetExceeded::Nodes.to_string(),
            OutcomeKind::Failed,
        ),
    }
}

/// [`run_jobs_streamed`] with pulse-level verification after every flow:
/// same fan-out, same input-order streaming, same `(ok, failed)` totals —
/// rows use the [`verify_table_header`] layout instead.
pub fn run_verify_jobs_streamed(
    entries: &[JobEntry],
    config: &FlowConfig,
    limits: &Limits,
    vopts: &VerifyOptions,
    mut emit: impl FnMut(JobRow) + Send,
) -> (usize, usize) {
    let indices: Vec<usize> = (0..entries.len()).collect();
    let (mut ok, mut failed) = (0usize, 0usize);
    par::map_ordered_streamed(
        indices,
        |i| run_verify_job(i, &entries[i], config, limits, vopts),
        |k, row| {
            let row = row.unwrap_or_else(|p| JobRow {
                index: k,
                line: format!("{:<16} FAILED(panicked: {})", entries[k].name, p.message()),
                kind: OutcomeKind::Panicked,
            });
            if row.is_ok() {
                ok += 1;
            } else {
                failed += 1;
            }
            emit(row);
        },
    );
    (ok, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_entry(name: &str) -> JobEntry {
        let content = format!(".model {name}\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
        let mut cache = sfq_netlist::DesignCache::with_capacity(4);
        let design = cache
            .parse_cached(&content, Some(name))
            .expect("toy design parses")
            .clone();
        JobEntry {
            name: format!("{name}.blif"),
            design: Ok(design),
        }
    }

    #[test]
    fn rows_stream_in_input_order_with_failures_contained() {
        let entries = vec![
            toy_entry("a"),
            JobEntry {
                name: "broken.aag".into(),
                design: Err("aag: truncated header".into()),
            },
            toy_entry("b"),
        ];
        let config = FlowConfig::t1(4);
        let mut rows = Vec::new();
        let (ok, failed) =
            run_jobs_streamed(&entries, &config, &Limits::NONE, |row| rows.push(row));
        assert_eq!((ok, failed), (2, 1));
        assert_eq!(
            rows.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(rows[1].line.contains("FAILED(aag: truncated header)"));
        assert_eq!(rows[1].kind, OutcomeKind::Failed);
        assert!(rows[0].is_ok() && rows[2].is_ok());
        assert!(rows[0].line.starts_with("a.blif"));
    }

    #[test]
    fn deadline_rows_classify_as_timed_out() {
        let entries = vec![toy_entry("t")];
        let config = FlowConfig::multiphase(4);
        let limits = Limits {
            deadline: Some(std::time::Duration::ZERO),
            max_nodes: None,
        };
        let mut rows = Vec::new();
        run_jobs_streamed(&entries, &config, &limits, |row| rows.push(row));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kind, OutcomeKind::TimedOut);
        assert!(rows[0].line.contains("FAILED("), "{}", rows[0].line);
    }

    #[test]
    fn verify_rows_stream_with_failures_contained() {
        let entries = vec![
            toy_entry("v"),
            JobEntry {
                name: "broken.aag".into(),
                design: Err("aag: truncated header".into()),
            },
        ];
        let config = FlowConfig::t1(4);
        let mut rows = Vec::new();
        let (ok, failed) = run_verify_jobs_streamed(
            &entries,
            &config,
            &Limits::NONE,
            &VerifyOptions::default(),
            |row| rows.push(row),
        );
        assert_eq!((ok, failed), (1, 1));
        // A 2-input design sweeps exhaustively: 2^2 waves.
        assert!(rows[0].is_ok());
        assert!(
            rows[0].line.contains("exhaustive") && rows[0].line.contains(" 4 "),
            "{}",
            rows[0].line
        );
        assert!(rows[1].line.contains("FAILED(aag: truncated header)"));
    }

    #[test]
    fn verify_header_and_rows_share_column_layout() {
        let header = verify_table_header();
        let entries = vec![toy_entry("w")];
        let config = FlowConfig::t1(4);
        let mut rows = Vec::new();
        run_verify_jobs_streamed(
            &entries,
            &config,
            &Limits::NONE,
            &VerifyOptions::default(),
            |row| rows.push(row),
        );
        let row = &rows[0].line;
        let bars = |s: &str| s.match_indices('|').map(|(i, _)| i).collect::<Vec<_>>();
        assert_eq!(bars(&header), bars(row), "{header}\n{row}");
    }

    #[test]
    fn verify_deadline_rows_classify_as_timed_out() {
        let entries = vec![toy_entry("t")];
        let config = FlowConfig::t1(4);
        let limits = Limits {
            deadline: Some(std::time::Duration::ZERO),
            max_nodes: None,
        };
        let mut rows = Vec::new();
        run_verify_jobs_streamed(
            &entries,
            &config,
            &limits,
            &VerifyOptions::default(),
            |row| rows.push(row),
        );
        assert_eq!(rows[0].kind, OutcomeKind::TimedOut);
    }

    #[test]
    fn header_and_rows_share_column_layout() {
        let header = table_header();
        let entries = vec![toy_entry("w")];
        let config = FlowConfig::multiphase(4);
        let mut rows = Vec::new();
        run_jobs_streamed(&entries, &config, &Limits::NONE, |row| rows.push(row));
        let row = &rows[0].line;
        // The `|` column separators line up between header and data rows.
        let bars = |s: &str| s.match_indices('|').map(|(i, _)| i).collect::<Vec<_>>();
        assert_eq!(bars(&header), bars(row), "{header}\n{row}");
    }
}
