//! Shared job execution: supervised flows fanned over workers, result rows
//! **streamed back in input order**.
//!
//! This is the one engine behind both `sfqt1 flow --batch` (local) and the
//! `sfqt1d` daemon's `FLOW` requests: the same row rendering, the same
//! containment policy, the same ordering guarantee — so daemon responses are
//! byte-identical to local batch rows by construction, not by convention.
//!
//! Rows are emitted through [`sfq_netlist::par::map_ordered_streamed`]: row
//! `k` is handed to the sink as soon as designs `0..=k` have finished, while
//! later designs are still running. That replaces the old batch driver's
//! buffer-everything-then-print shape — a terminal user (or a daemon
//! client) sees the first rows of a long batch immediately.

use crate::state::OutcomeKind;
use sfq_core::{run_flow_supervised, FlowConfig, FlowOutcome, FlowReport, Limits};
use sfq_netlist::{par, Design};
use std::sync::Mutex;

/// One job: a display name plus its ingested design (ingest failures carry
/// their rendered reason and become `FAILED(...)` rows).
pub struct JobEntry {
    /// Display name — first column of the row.
    pub name: String,
    /// The parsed design, or the ingest failure reason.
    pub design: Result<Design, String>,
}

/// One finished job's rendered row plus its outcome class.
pub struct JobRow {
    /// Zero-based input index of the job.
    pub index: usize,
    /// The rendered table row.
    pub line: String,
    /// Outcome class, for summaries and daemon counters.
    pub kind: OutcomeKind,
}

impl JobRow {
    /// True when the job finished and verified.
    pub fn is_ok(&self) -> bool {
        self.kind == OutcomeKind::Ok
    }
}

/// The batch table header row (shared by the local batch driver and the
/// daemon client, so their tables stay identical below the preamble).
pub fn table_header() -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>6} {:>5} | {:>6} {:>6} {:>8} {:>6}",
        "design", "fmt", "in", "out", "found", "used", "cells", "dffs", "area JJ", "depth"
    )
}

/// Formats one successful row's columns.
fn report_row(name: &str, design: &Design, r: &FlowReport) -> String {
    format!(
        "{:<16} {:>4} | {:>4} {:>4} | {:>6} {:>5} | {:>6} {:>6} {:>8} {:>6}",
        name,
        design.format.extension(),
        design.aig.num_inputs(),
        design.aig.num_outputs(),
        r.t1_found,
        r.t1_used,
        r.num_gates,
        r.num_dffs,
        r.area,
        r.depth_cycles
    )
}

/// Serializes sequential retries of panicked jobs: the retry temporarily
/// forces one worker process-wide, so two concurrent retries (or a retry
/// racing a test's own [`par::force_workers`] save/restore) must not
/// interleave their save/restore pairs.
static RETRY_LOCK: Mutex<()> = Mutex::new(());

/// Runs one job supervised and renders its row.
///
/// Containment policy (identical to the historical batch driver, now
/// applied *before* the row is emitted, since streamed rows cannot be
/// amended): every failure renders as `FAILED(<reason>)` with a
/// deterministic reason, and a job that **panicked** while the parallel
/// fan-outs were active is retried once sequentially — under a process-wide
/// one-worker override, serialized by [`RETRY_LOCK`] — before being
/// declared dead. Deterministic faults fail again identically, keeping
/// output byte-identical across worker counts.
fn run_job(index: usize, entry: &JobEntry, config: &FlowConfig, limits: &Limits) -> JobRow {
    let name = &entry.name;
    let failed = |reason: String, kind: OutcomeKind| JobRow {
        index,
        line: format!("{name:<16} FAILED({reason})"),
        kind,
    };
    let design = match &entry.design {
        Err(reason) => return failed(reason.clone(), OutcomeKind::Failed),
        Ok(design) => design,
    };
    let mut outcome = run_flow_supervised(design, config, limits);
    if matches!(outcome, FlowOutcome::Panicked { .. }) && par::workers() > 1 {
        let _retry = RETRY_LOCK.lock().expect("retry lock");
        let previous = par::forced_workers();
        par::force_workers(1);
        outcome = run_flow_supervised(design, config, limits);
        par::force_workers(previous);
    }
    match outcome {
        FlowOutcome::Ok(res) => JobRow {
            index,
            line: report_row(name, design, &res.report),
            kind: OutcomeKind::Ok,
        },
        FlowOutcome::Panicked { .. } => failed(
            outcome.failure().expect("panic outcome has a reason"),
            OutcomeKind::Panicked,
        ),
        FlowOutcome::TimedOut => failed(
            outcome.failure().expect("timeout outcome has a reason"),
            OutcomeKind::TimedOut,
        ),
        outcome => failed(
            outcome.failure().expect("failed outcome has a reason"),
            OutcomeKind::Failed,
        ),
    }
}

/// Runs every job supervised, fanned over [`par::workers`] scoped threads,
/// and hands each rendered row to `emit` **in input order, as soon as it is
/// unblocked** — row `k` arrives while jobs `> k` may still be running.
/// Returns the `(ok, failed)` totals.
///
/// `emit` runs under the streaming lock: keep it to a write+flush.
pub fn run_jobs_streamed(
    entries: &[JobEntry],
    config: &FlowConfig,
    limits: &Limits,
    mut emit: impl FnMut(JobRow) + Send,
) -> (usize, usize) {
    let indices: Vec<usize> = (0..entries.len()).collect();
    let (mut ok, mut failed) = (0usize, 0usize);
    par::map_ordered_streamed(
        indices,
        |i| run_job(i, &entries[i], config, limits),
        |k, row| {
            // Worker bodies never panic (run_job contains everything), so
            // an Err here is unreachable; render it defensively anyway
            // rather than poisoning the daemon.
            let row = row.unwrap_or_else(|p| JobRow {
                index: k,
                line: format!("{:<16} FAILED(panicked: {})", entries[k].name, p.message()),
                kind: OutcomeKind::Panicked,
            });
            if row.is_ok() {
                ok += 1;
            } else {
                failed += 1;
            }
            emit(row);
        },
    );
    (ok, failed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_entry(name: &str) -> JobEntry {
        let content = format!(".model {name}\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n");
        let mut cache = sfq_netlist::DesignCache::with_capacity(4);
        let design = cache
            .parse_cached(&content, Some(name))
            .expect("toy design parses")
            .clone();
        JobEntry {
            name: format!("{name}.blif"),
            design: Ok(design),
        }
    }

    #[test]
    fn rows_stream_in_input_order_with_failures_contained() {
        let entries = vec![
            toy_entry("a"),
            JobEntry {
                name: "broken.aag".into(),
                design: Err("aag: truncated header".into()),
            },
            toy_entry("b"),
        ];
        let config = FlowConfig::t1(4);
        let mut rows = Vec::new();
        let (ok, failed) =
            run_jobs_streamed(&entries, &config, &Limits::NONE, |row| rows.push(row));
        assert_eq!((ok, failed), (2, 1));
        assert_eq!(
            rows.iter().map(|r| r.index).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert!(rows[1].line.contains("FAILED(aag: truncated header)"));
        assert_eq!(rows[1].kind, OutcomeKind::Failed);
        assert!(rows[0].is_ok() && rows[2].is_ok());
        assert!(rows[0].line.starts_with("a.blif"));
    }

    #[test]
    fn deadline_rows_classify_as_timed_out() {
        let entries = vec![toy_entry("t")];
        let config = FlowConfig::multiphase(4);
        let limits = Limits {
            deadline: Some(std::time::Duration::ZERO),
            max_nodes: None,
        };
        let mut rows = Vec::new();
        run_jobs_streamed(&entries, &config, &limits, |row| rows.push(row));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].kind, OutcomeKind::TimedOut);
        assert!(rows[0].line.contains("FAILED("), "{}", rows[0].line);
    }

    #[test]
    fn header_and_rows_share_column_layout() {
        let header = table_header();
        let entries = vec![toy_entry("w")];
        let config = FlowConfig::multiphase(4);
        let mut rows = Vec::new();
        run_jobs_streamed(&entries, &config, &Limits::NONE, |row| rows.push(row));
        let row = &rows[0].line;
        // The `|` column separators line up between header and data rows.
        let bars = |s: &str| s.match_indices('|').map(|(i, _)| i).collect::<Vec<_>>();
        assert_eq!(bars(&header), bars(row), "{header}\n{row}");
    }
}
