//! The daemon's connection work queue: a closable Mutex+Condvar channel
//! with explicit drain semantics.
//!
//! This replaces the earlier `mpsc::channel` + `Mutex<Receiver>` pair in
//! the acceptor with one purpose-built primitive whose whole protocol is
//! three operations — [`push`](WorkQueue::push), [`pop`](WorkQueue::pop),
//! [`close`](WorkQueue::close) — expressed against [`crate::sync`], so the
//! stop/drain handshake is exhaustively schedule-explored by the `chk`
//! model tests (`tests/chk_models.rs`) *as the production code*.
//!
//! Semantics, which encode the daemon's shutdown contract:
//!
//! * `push` enqueues FIFO and wakes one blocked consumer; after `close` it
//!   refuses the item and hands it back — a late-accepted connection is
//!   dropped by the caller, never silently leaked into a retired pool;
//! * `pop` blocks while the queue is open and empty, and returns `None`
//!   only once the queue is **closed and drained** — handlers always finish
//!   the accepted backlog before retiring;
//! * `close` is idempotent and wakes every blocked consumer.

use crate::sync::{Condvar, Mutex};
use std::collections::VecDeque;

/// What the lock guards: the FIFO backlog plus the closed flag. One mutex
/// for both keeps "closed and drained" a single atomic observation.
struct QueueState<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A closable FIFO handing work to a pool of blocking consumers.
pub struct WorkQueue<T> {
    state: Mutex<QueueState<T>>,
    cv: Condvar,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        WorkQueue::new()
    }
}

impl<T> WorkQueue<T> {
    /// An open, empty queue.
    pub fn new() -> Self {
        WorkQueue {
            state: Mutex::new(QueueState {
                items: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueues `item` and wakes one blocked consumer.
    ///
    /// # Errors
    /// After [`close`](Self::close) the item is refused and returned, so
    /// the producer can dispose of it (the daemon drops the connection —
    /// the client sees a hangup, not a half-served request).
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.closed {
            return Err(item);
        }
        st.items.push_back(item);
        drop(st);
        self.cv.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` only once the queue is closed **and** the
    /// backlog is drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Closes the queue (idempotent) and wakes every blocked consumer so
    /// they can drain the backlog and retire.
    pub fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        st.closed = true;
        drop(st);
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_after_close_returns_the_item() {
        let q: WorkQueue<u32> = WorkQueue::new();
        assert_eq!(q.push(1), Ok(()));
        q.close();
        assert_eq!(q.push(2), Err(2));
        // The pre-close backlog still drains.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_is_idempotent_and_pop_stays_none() {
        let q: WorkQueue<u32> = WorkQueue::new();
        q.close();
        q.close();
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_order_across_threads() {
        let q: WorkQueue<usize> = WorkQueue::new();
        let got = std::thread::scope(|scope| {
            let consumer = scope.spawn(|| {
                let mut got = Vec::new();
                while let Some(x) = q.pop() {
                    got.push(x);
                }
                got
            });
            for i in 0..64 {
                q.push(i).expect("queue open");
            }
            q.close();
            consumer.join().expect("consumer finishes")
        });
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }
}
