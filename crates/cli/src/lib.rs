//! `sfqt1` — the command-line front end of the T1-aware SFQ mapping flow.
//!
//! The library crates expose the full API; this binary makes the flow usable
//! without writing Rust:
//!
//! ```text
//! sfqt1 bench adder --small --aag adder.aag      # generate a benchmark
//! sfqt1 flow adder.aag --t1 --phases 4 \
//!       --blif out.blif --dot out.dot --vcd out.vcd
//! sfqt1 flow --batch designs/ --t1               # every .aag/.blif in a dir
//! sfqt1 energy adder.aag --t1                    # first-order RSFQ energy
//! sfqt1 margin adder.aag --jitter 1.5            # Monte-Carlo timing margin
//! sfqt1 convert adder.aag --blif adder.blif      # format conversion
//! ```
//!
//! Inputs are combinational ASCII AIGER (`.aag`) or BLIF (`.blif`) files.
//! Exit codes are distinct: 0 when everything succeeded, 1 for usage
//! mistakes and fatal errors, 2 when a batch completed but some designs
//! failed (see [`exit_code`]). The dispatch logic lives in this library so
//! the test suite can drive it end to end without spawning processes.

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

use sfq_circuits::{Benchmark, ExtBenchmark};
use sfq_core::report::StageReport;
use sfq_core::{run_flow, FlowConfig, FlowResult, Limits, PhaseEngine};
use sfq_netlist::design::{Design, DesignError};
use sfq_netlist::{aiger, blif, export, map_aig, Aig, Library};
use sfq_server::{
    run_jobs_streamed, run_verify_jobs_streamed, table_header, verify_table_header, DesignSource,
    FlowOptions as DaemonFlowOptions, FlowRequest, JobEntry, JobRow, VerifyOptions,
};
use sfq_sim::energy::{measure_energy, EnergyModel};
use sfq_sim::margin::{analyze_margins, MarginConfig};
use sfq_sim::{check_against_aig, vcd, EquivConfig, PulseSim};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

mod args;

pub use args::{Args, ParseArgsError};

/// Top-level CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Wrong invocation; the caller should print usage and exit 2.
    Usage(String),
    /// Reading or writing a file failed.
    Io {
        /// The file involved.
        path: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// An input file failed to parse.
    Input(String),
    /// The synthesis flow itself failed.
    Flow(String),
    /// A batch run completed (graceful degradation) but some designs
    /// failed — reported after the per-design `FAILED(...)` rows and the
    /// summary line, and mapped to exit code 2 by [`exit_code`].
    Partial {
        /// Designs that finished and verified.
        ok: usize,
        /// Designs that failed (ingest, flow error, panic or budget abort).
        failed: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Input(m) => write!(f, "{m}"),
            CliError::Flow(m) => write!(f, "{m}"),
            CliError::Partial { ok, failed } => {
                write!(f, "batch: {failed} of {} designs failed", ok + failed)
            }
        }
    }
}

/// Maps a [`run`] result onto the process exit code: `0` when everything
/// succeeded, `1` for usage mistakes and fatal errors, `2` when a batch
/// completed but some designs failed ([`CliError::Partial`]).
pub fn exit_code(result: &Result<(), CliError>) -> u8 {
    match result {
        Ok(()) => 0,
        Err(CliError::Partial { .. }) => 2,
        Err(_) => 1,
    }
}

impl std::error::Error for CliError {}

impl From<ParseArgsError> for CliError {
    fn from(e: ParseArgsError) -> Self {
        CliError::Usage(e.0)
    }
}

/// The usage text printed by `sfqt1 help` and on usage errors.
pub const USAGE: &str = "\
sfqt1 — T1-aware multiphase technology mapping for SFQ circuits

USAGE:
  sfqt1 flow <input.{aag,blif}> [--phases N] [--t1] [--engine auto|exact|heuristic]
        [--gain-threshold K] [--waves K] [--stats] [--workers N]
        [--blif P] [--dot P] [--vcd P] [--verilog P]
  sfqt1 flow --batch <dir> [--phases N] [--t1] [--engine E] [--gain-threshold K]
        [--keep-going|--fail-fast] [--deadline-ms T] [--max-nodes N]
        [--workers N] [--daemon SOCKET]
  sfqt1 verify <input.{aag,blif}> [--phases N] [--t1] [--engine E] [--gain-threshold K]
        [--waves K] [--seed S] [--jitter PS] [--period PS] [--trials K] [--workers N]
  sfqt1 verify --batch <dir> [--phases N] [--t1] [--engine E] [--gain-threshold K]
        [--keep-going|--fail-fast] [--deadline-ms T] [--max-nodes N]
        [--workers N] [--daemon SOCKET]
  sfqt1 daemon <ping|stats|stop> <socket>
  sfqt1 table <input> [--phases N]
  sfqt1 bench <name> [--small] [--aag P] [--blif P]
  sfqt1 energy <input> [--phases N] [--t1] [--waves K]
  sfqt1 margin <input> [--phases N] [--t1] [--jitter PS] [--period PS] [--trials K]
  sfqt1 convert <input> [--aag P] [--blif P] [--dot P] [--verilog P]
  sfqt1 bench-list
  sfqt1 help

SUBCOMMANDS:
  flow      run a synthesis flow and print the Table I-style report;
            optional artifacts: mapped BLIF, stage-annotated Graphviz DOT,
            structural Verilog, VCD pulse waveform of random operand waves.
            --batch runs every .aag/.blif design in a directory (one table
            row per design, input order; identical content parses once;
            with the `parallel` build the flows fan over worker threads).
            Each batch design runs supervised: a design that fails to
            parse, panics, or exceeds --deadline-ms / --max-nodes renders
            as a FAILED(reason) row while the rest continue (--keep-going,
            the default) or the batch stops at the first failure
            (--fail-fast); any failure makes the exit code 2.
            --workers N caps the worker threads the flow's parallel
            fan-outs use (default: SFQ_WORKERS if set, else all host
            cores; results are byte-identical for every worker count).
            --daemon SOCKET serves the flow through a running sfqt1d
            instead of computing locally: batches submit designs by path,
            a single <input> is submitted inline, and result rows stream
            back in input order (start the daemon with `sfqt1d <socket>`;
            set its worker count with `sfqt1d --workers N`)
  verify    run the flow, then gate it with pulse-level verification: the
            timed netlist is co-simulated against the original AIG over a
            deterministic vector sweep (exhaustive for designs with at most
            10 inputs, corner + walking-one + seeded random vectors above),
            a mismatch is shrunk to a minimal counterexample, and the
            Monte-Carlo timing-margin analysis runs on the survivors.
            Defaults to the T1 flow on 4 phases when neither --t1 nor
            --phases is given. --batch verifies every design of a directory
            (one row per design, same containment/exit-code contract as
            flow --batch); --daemon serves the batch through sfqt1d with
            the default sweep settings. Any verification failure makes the
            exit code 2.
  daemon    control a running sfqt1d: ping, counter/cache stats, graceful
            stop (drains in-flight requests, then removes the socket)
  table     run the paper's three-flow comparison (1φ / nφ / nφ+T1) on a file
  bench     generate a built-in benchmark circuit (EPFL/ISCAS stand-ins)
  energy    pulse-simulate random waves and report static/dynamic power
  margin    Monte-Carlo analog jitter analysis of the T1 timing discipline
  convert   read AIGER or BLIF, write AIGER / mapped BLIF / DOT / Verilog
  bench-list  list available benchmark names
";

/// Dispatches one parsed command line, writing human-readable output to
/// `out`.
///
/// `argv` excludes the program name. Pass `&mut std::io::stdout()` (or any
/// `&mut` writer — see C-RW-VALUE) as `out`.
///
/// # Errors
/// [`CliError::Usage`] for invocation mistakes (exit code 2 in `main`),
/// other [`CliError`] variants for I/O, parse and flow failures.
pub fn run(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let Some(cmd) = argv.first() else {
        return Err(CliError::Usage(USAGE.to_string()));
    };
    let rest = &argv[1..];
    match cmd.as_str() {
        "flow" => cmd_flow(rest, out),
        "verify" => cmd_verify(rest, out),
        "table" => cmd_table(rest, out),
        "bench" => cmd_bench(rest, out),
        "energy" => cmd_energy(rest, out),
        "margin" => cmd_margin(rest, out),
        "convert" => cmd_convert(rest, out),
        "daemon" => cmd_daemon(rest, out),
        "bench-list" => cmd_bench_list(out),
        "help" | "--help" | "-h" => {
            writeln!(out, "{USAGE}").map_err(io_err("<stdout>"))?;
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown subcommand `{other}`\n\n{USAGE}"
        ))),
    }
}

fn io_err(path: &str) -> impl Fn(std::io::Error) -> CliError + '_ {
    move |source| CliError::Io {
        path: path.to_string(),
        source,
    }
}

/// Reads an `.aag` or `.blif` file into an [`Aig`].
///
/// # Errors
/// [`CliError`] when the file cannot be read, has an unknown extension, or
/// fails to parse.
pub fn read_input(path: &str) -> Result<Aig, CliError> {
    let ext = Path::new(path).extension().and_then(|e| e.to_str());
    if !matches!(ext, Some("aag") | Some("blif")) {
        return Err(CliError::Usage(format!(
            "{path}: unknown input format (expected .aag or .blif)"
        )));
    }
    let text = std::fs::read_to_string(path).map_err(io_err(path))?;
    let stem = Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("design");
    match ext {
        Some("aag") => aiger::read_aag(text.as_bytes(), stem)
            .map_err(|e| CliError::Input(format!("{path}: {e}"))),
        _ => blif::parse_blif(&text).map_err(|e| CliError::Input(format!("{path}: {e}"))),
    }
}

/// Shared flow options of the `flow`, `energy` and `margin` subcommands.
fn flow_config(a: &Args) -> Result<FlowConfig, CliError> {
    let phases: u8 = a.parsed_option("phases", 4)?;
    if phases == 0 {
        return Err(CliError::Usage("--phases must be at least 1".into()));
    }
    let mut config = if a.flag("t1") {
        FlowConfig::t1(phases)
    } else {
        FlowConfig::multiphase(phases)
    };
    config.gain_threshold = a.parsed_option("gain-threshold", 0)?;
    config.engine = match a.option("engine").unwrap_or("auto") {
        "auto" => PhaseEngine::Auto,
        "exact" => PhaseEngine::Exact,
        "heuristic" => PhaseEngine::Heuristic,
        other => {
            return Err(CliError::Usage(format!(
                "--engine must be auto, exact or heuristic (got `{other}`)"
            )));
        }
    };
    Ok(config)
}

/// Applies `--workers N`: a per-invocation override of the worker-thread
/// count the parallel fan-outs use, equivalent to `SFQ_WORKERS` without the
/// environment variable. Rejected together with `--daemon` — the flow then
/// runs in the daemon's process, whose count is fixed at `sfqt1d` startup
/// (`sfqt1d --workers N`).
fn apply_workers_override(a: &Args, cmd: &str) -> Result<(), CliError> {
    let Some(v) = a.option("workers") else {
        return Ok(());
    };
    if a.option("daemon").is_some() {
        return Err(CliError::Usage(format!(
            "{cmd}: --workers does not combine with --daemon \
             (set the daemon's count with `sfqt1d --workers N`)"
        )));
    }
    let n = sfq_netlist::par::parse_workers(v)
        .map_err(|reason| CliError::Usage(format!("{cmd}: --workers: {reason}")))?;
    sfq_netlist::par::force_workers(n);
    Ok(())
}

/// Maps the parsed flow options onto the daemon's wire-level options
/// (`--deadline-ms`/`--max-nodes` forward per request; `verify` selects
/// the daemon's verification mode).
fn daemon_options(
    a: &Args,
    config: &FlowConfig,
    verify: bool,
) -> Result<DaemonFlowOptions, CliError> {
    Ok(DaemonFlowOptions {
        phases: config.phases,
        use_t1: config.use_t1,
        engine: config.engine,
        gain_threshold: config.gain_threshold,
        verify,
        deadline_ms: match a.option("deadline-ms") {
            Some(_) => Some(a.parsed_option("deadline-ms", 0)?),
            None => None,
        },
        max_nodes: match a.option("max-nodes") {
            Some(_) => Some(a.parsed_option("max-nodes", 0)?),
            None => None,
        },
    })
}

fn run_configured_flow(aig: &Aig, config: &FlowConfig) -> Result<FlowResult, CliError> {
    run_flow(aig, config).map_err(|e| CliError::Flow(e.to_string()))
}

/// Deterministic pseudo-random operand waves (`xorshift*`).
fn random_waves(inputs: usize, count: usize) -> Vec<Vec<bool>> {
    let mut state = 0x0DDB_1A5E_5BAD_5EEDu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|_| (0..inputs).map(|_| next() & 1 == 1).collect())
        .collect()
}

fn write_report(out: &mut dyn Write, res: &FlowResult) -> Result<(), CliError> {
    let r = &res.report;
    writeln!(out, "design       {}", r.name).map_err(io_err("<stdout>"))?;
    writeln!(out, "phases       {}", r.phases).map_err(io_err("<stdout>"))?;
    writeln!(out, "t1 found     {}", r.t1_found).map_err(io_err("<stdout>"))?;
    writeln!(out, "t1 used      {}", r.t1_used).map_err(io_err("<stdout>"))?;
    writeln!(out, "logic cells  {}", r.num_gates).map_err(io_err("<stdout>"))?;
    writeln!(out, "dffs         {}", r.num_dffs).map_err(io_err("<stdout>"))?;
    writeln!(out, "area (JJ)    {}", r.area).map_err(io_err("<stdout>"))?;
    writeln!(out, "depth        {} cycles", r.depth_cycles).map_err(io_err("<stdout>"))?;
    Ok(())
}

fn cmd_flow(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(
        argv,
        &[
            "phases",
            "engine",
            "gain-threshold",
            "waves",
            "batch",
            "daemon",
            "deadline-ms",
            "max-nodes",
            "workers",
            "blif",
            "dot",
            "vcd",
            "verilog",
        ],
        &["t1", "stats", "keep-going", "fail-fast"],
    )?;
    apply_workers_override(&a, "flow")?;
    if let Some(dir) = a.option("batch") {
        if a.positional(0).is_some() {
            return Err(CliError::Usage(
                "flow: --batch <dir> takes no positional input".into(),
            ));
        }
        if ["blif", "dot", "vcd", "verilog", "waves"]
            .iter()
            .any(|t| a.option(t).is_some())
            || a.flag("stats")
        {
            return Err(CliError::Usage(
                "flow: per-design artifact/report options do not combine with --batch".into(),
            ));
        }
        if a.flag("keep-going") && a.flag("fail-fast") {
            return Err(CliError::Usage(
                "flow: --keep-going and --fail-fast are mutually exclusive".into(),
            ));
        }
        let config = flow_config(&a)?;
        if let Some(sock) = a.option("daemon") {
            if a.flag("fail-fast") {
                return Err(CliError::Usage(
                    "flow: --fail-fast does not combine with --daemon (the daemon keeps going)"
                        .into(),
                ));
            }
            return cmd_flow_batch_daemon(dir, sock, daemon_options(&a, &config, false)?, out);
        }
        let opts = BatchOptions {
            fail_fast: a.flag("fail-fast"),
            limits: Limits {
                deadline: match a.option("deadline-ms") {
                    Some(_) => Some(Duration::from_millis(a.parsed_option("deadline-ms", 0)?)),
                    None => None,
                },
                max_nodes: match a.option("max-nodes") {
                    Some(_) => Some(a.parsed_option("max-nodes", 0)?),
                    None => None,
                },
            },
        };
        return cmd_flow_batch(dir, &config, &opts, out);
    }
    if a.flag("keep-going") || a.flag("fail-fast") {
        return Err(CliError::Usage(
            "flow: --keep-going/--fail-fast only apply to --batch".into(),
        ));
    }
    if let Some(sock) = a.option("daemon") {
        if ["blif", "dot", "vcd", "verilog", "waves"]
            .iter()
            .any(|t| a.option(t).is_some())
            || a.flag("stats")
        {
            return Err(CliError::Usage(
                "flow: per-design artifact/report options do not combine with --daemon".into(),
            ));
        }
        let path = a
            .positional(0)
            .ok_or_else(|| CliError::Usage("flow: missing <input> file".into()))?;
        let config = flow_config(&a)?;
        return cmd_flow_single_daemon(path, sock, daemon_options(&a, &config, false)?, out);
    }
    if a.option("deadline-ms").is_some() || a.option("max-nodes").is_some() {
        return Err(CliError::Usage(
            "flow: --deadline-ms/--max-nodes only apply to --batch".into(),
        ));
    }
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("flow: missing <input> file".into()))?;
    let config = flow_config(&a)?; // validate options before touching files
    let aig = read_input(path)?;
    let res = run_configured_flow(&aig, &config)?;
    write_report(out, &res)?;
    if a.flag("stats") {
        writeln!(out, "\n{}", StageReport::summarize(&res.timed)).map_err(io_err("<stdout>"))?;
    }

    if let Some(p) = a.option("blif") {
        std::fs::write(p, export::render_blif(&res.timed.network)).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    if let Some(p) = a.option("dot") {
        let dot = export::render_dot(&res.timed.network, Some(&res.timed.stages));
        std::fs::write(p, dot).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    if let Some(p) = a.option("verilog") {
        std::fs::write(p, export::render_verilog(&res.timed.network)).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    if let Some(p) = a.option("vcd") {
        let waves = random_waves(aig.num_inputs(), a.parsed_option("waves", 8usize)?);
        let (_, trace) = PulseSim::new(&res.timed)
            .run_traced(&waves)
            .map_err(|e| CliError::Flow(e.to_string()))?;
        std::fs::write(p, vcd::render_vcd(&res.timed, &trace)).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    Ok(())
}

/// One ingested batch entry: file name plus the parse result (ingest
/// failures become `FAILED` rows instead of aborting the batch).
type BatchEntry = (String, Result<Design, DesignError>);

/// Batch-only options of `sfqt1 flow --batch`.
struct BatchOptions {
    /// Stop printing/processing at the first failed row (`--fail-fast`)
    /// instead of degrading gracefully (`--keep-going`, the default).
    fail_fast: bool,
    /// Per-design supervision limits (`--deadline-ms`, `--max-nodes`).
    limits: Limits,
}

/// Ingests a batch directory through the shared fault-tolerant
/// [`design::load_dir_results`](sfq_netlist::design::load_dir_results)
/// path: only a missing/unlistable directory (or one with no design files
/// at all) is an error here — unparseable files become per-design entries.
fn load_batch_designs(dir: &str) -> Result<(Vec<BatchEntry>, usize), CliError> {
    let (entries, cache_hits) =
        sfq_netlist::design::load_dir_results(Path::new(dir)).map_err(|e| match e {
            DesignError::Io { path, source } => CliError::Io { path, source },
            other => CliError::Input(other.to_string()),
        })?;
    if entries.is_empty() {
        return Err(CliError::Usage(format!(
            "flow: no .aag/.blif designs in `{dir}`"
        )));
    }
    Ok((entries, cache_hits))
}

/// `sfqt1 flow --batch <dir>`: the full flow on every design of a
/// directory, one report row per design, with graceful degradation.
///
/// The batch runs on the shared streaming job engine
/// ([`sfq_server::jobs`]): designs are ingested sequentially (through the
/// parse cache), the supervised flows fan over
/// [`par::workers`](sfq_netlist::par::workers) scoped threads, and each row
/// **prints as soon as it is unblocked, in input order** — the first rows of
/// a long batch appear while later designs still run, and the table stays
/// byte-identical between sequential and parallel builds for any worker
/// count (failure reasons are deterministic strings).
///
/// Containment policy (owned by the engine): a design that fails —
/// unparseable, flow error, panic, deadline or node-budget abort — renders
/// as a `FAILED(<reason>)` row, and a panicked design is retried once
/// sequentially before being declared dead. Under `--keep-going` (default)
/// every design runs; `--fail-fast` stops the output at the first failed
/// row. Either way the run ends with a `batch summary:` line, and any
/// failure surfaces as [`CliError::Partial`] (exit code 2).
fn cmd_flow_batch(
    dir: &str,
    config: &FlowConfig,
    opts: &BatchOptions,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (entries, cache_hits) = load_batch_designs(dir)?;
    writeln!(
        out,
        "batch: {} designs ({} parsed, {} cache hits)",
        entries.len(),
        entries.len() - cache_hits,
        cache_hits
    )
    .map_err(io_err("<stdout>"))?;
    writeln!(out, "{}", table_header()).map_err(io_err("<stdout>"))?;
    let jobs: Vec<JobEntry> = entries
        .into_iter()
        .map(|(name, design)| JobEntry {
            name,
            design: design.map_err(|e| e.to_string()),
        })
        .collect();
    // The engine emits rows from worker threads; `out` is not `Send`, so
    // rows cross back over a channel and print on this thread — still one
    // row at a time, as each finishes.
    let (tx, rx) = std::sync::mpsc::channel::<JobRow>();
    let (mut ok, mut failed) = (0usize, 0usize);
    let mut stopped = false;
    let mut write_err: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            run_jobs_streamed(&jobs, config, &opts.limits, |row| {
                // A dropped receiver (fail-fast caller gone) is harmless:
                // remaining rows are computed and discarded.
                let _ = tx.send(row);
            });
        });
        for row in rx {
            if stopped || write_err.is_some() {
                continue; // keep draining; the jobs ran either way
            }
            if let Err(e) = writeln!(out, "{}", row.line) {
                write_err = Some(e);
                continue;
            }
            if row.is_ok() {
                ok += 1;
            } else {
                failed += 1;
                if opts.fail_fast {
                    if let Err(e) = writeln!(out, "batch: stopping at first failure (--fail-fast)")
                    {
                        write_err = Some(e);
                    }
                    stopped = true;
                }
            }
        }
    });
    if let Some(source) = write_err {
        return Err(CliError::Io {
            path: "<stdout>".to_string(),
            source,
        });
    }
    writeln!(out, "batch summary: {ok} ok, {failed} failed").map_err(io_err("<stdout>"))?;
    if failed > 0 {
        return Err(CliError::Partial { ok, failed });
    }
    Ok(())
}

/// `sfqt1 flow --batch <dir> --daemon <socket>`: the same batch, served by
/// a running `sfqt1d`. Designs are submitted **by path** (daemon and client
/// share a filesystem), rows stream back in input order and print as they
/// arrive, and the summary/exit-code contract matches the local batch.
fn cmd_flow_batch_daemon(
    dir: &str,
    sock: &str,
    options: DaemonFlowOptions,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let paths = sfq_netlist::design::list_dir(Path::new(dir)).map_err(|e| match e {
        DesignError::Io { path, source } => CliError::Io { path, source },
        other => CliError::Input(other.to_string()),
    })?;
    if paths.is_empty() {
        return Err(CliError::Usage(format!(
            "flow: no .aag/.blif designs in `{dir}`"
        )));
    }
    let designs: Vec<DesignSource> = paths
        .iter()
        .map(|p| {
            let name = p
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or("design")
                .to_string();
            // The daemon may run in a different working directory: hand it
            // an absolute path.
            let path = p.canonicalize().unwrap_or_else(|_| p.clone());
            DesignSource::Path { name, path }
        })
        .collect();
    writeln!(out, "daemon batch: {} designs via {sock}", designs.len())
        .map_err(io_err("<stdout>"))?;
    let header = if options.verify {
        verify_table_header()
    } else {
        table_header()
    };
    writeln!(out, "{header}").map_err(io_err("<stdout>"))?;
    stream_daemon_flow(sock, FlowRequest { options, designs }, out)
}

/// `sfqt1 flow <input> --daemon <socket>`: submit one design **inline**
/// (the daemon never touches the client's file) and print its table row.
fn cmd_flow_single_daemon(
    path: &str,
    sock: &str,
    options: DaemonFlowOptions,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let ext = Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .map(|e| e.to_ascii_lowercase());
    if !matches!(ext.as_deref(), Some("aag") | Some("blif")) {
        return Err(CliError::Usage(format!(
            "{path}: unknown input format (expected .aag or .blif)"
        )));
    }
    let content = std::fs::read_to_string(path).map_err(io_err(path))?;
    let name = Path::new(path)
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("design")
        .to_string();
    let header = if options.verify {
        verify_table_header()
    } else {
        table_header()
    };
    writeln!(out, "{header}").map_err(io_err("<stdout>"))?;
    let request = FlowRequest {
        options,
        designs: vec![DesignSource::Inline { name, content }],
    };
    stream_daemon_flow(sock, request, out)
}

/// Runs one daemon `FLOW` request, printing rows as they stream in, then
/// applies the batch summary/exit-code contract to the daemon's totals.
fn stream_daemon_flow(
    sock: &str,
    request: FlowRequest,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let mut write_err: Option<std::io::Error> = None;
    let (ok, failed) = sfq_server::client::flow(Path::new(sock), &request, |_, row| {
        if write_err.is_none() {
            if let Err(e) = writeln!(out, "{row}") {
                write_err = Some(e);
            }
        }
    })
    .map_err(|e| CliError::Flow(e.to_string()))?;
    if let Some(source) = write_err {
        return Err(CliError::Io {
            path: "<stdout>".to_string(),
            source,
        });
    }
    writeln!(out, "batch summary: {ok} ok, {failed} failed").map_err(io_err("<stdout>"))?;
    if failed > 0 {
        return Err(CliError::Partial { ok, failed });
    }
    Ok(())
}

/// The verify flow configuration: like [`flow_config`], but defaulting to
/// the T1 flow on 4 phases when neither `--t1` nor `--phases` is given —
/// verification is most interesting on the netlists that commit T1 cells.
fn verify_flow_config(a: &Args) -> Result<FlowConfig, CliError> {
    let mut config = flow_config(a)?;
    if !a.flag("t1") && a.option("phases").is_none() {
        let mut t1 = FlowConfig::t1(4);
        t1.engine = config.engine;
        t1.gain_threshold = config.gain_threshold;
        config = t1;
    }
    Ok(config)
}

/// Sweep/margin knobs of `sfqt1 verify` (`--waves`/`--seed` steer the
/// equivalence sweep, `--jitter`/`--period`/`--trials` the margin run).
fn verify_options(a: &Args) -> Result<VerifyOptions, CliError> {
    let ed = EquivConfig::default();
    let md = MarginConfig::default();
    Ok(VerifyOptions {
        equiv: EquivConfig {
            random_waves: a.parsed_option("waves", ed.random_waves)?,
            seed: a.parsed_option("seed", ed.seed)?,
            ..ed
        },
        margin: MarginConfig {
            period_ps: a.parsed_option("period", md.period_ps)?,
            jitter_ps: a.parsed_option("jitter", md.jitter_ps)?,
            trials: a.parsed_option("trials", md.trials)?,
            ..md
        },
    })
}

/// `sfqt1 verify` — the flow plus its pulse-level verification gate:
/// equivalence sweep against the original AIG (mismatches shrunk to a
/// minimal stimulus) and Monte-Carlo margin analysis. Single-design,
/// `--batch` and `--daemon` forms mirror `sfqt1 flow`.
fn cmd_verify(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(
        argv,
        &[
            "phases",
            "engine",
            "gain-threshold",
            "waves",
            "seed",
            "jitter",
            "period",
            "trials",
            "batch",
            "daemon",
            "deadline-ms",
            "max-nodes",
            "workers",
        ],
        &["t1", "keep-going", "fail-fast"],
    )?;
    apply_workers_override(&a, "verify")?;
    let sweep_knobs = ["waves", "seed", "jitter", "period", "trials"];
    if let Some(dir) = a.option("batch") {
        if a.positional(0).is_some() {
            return Err(CliError::Usage(
                "verify: --batch <dir> takes no positional input".into(),
            ));
        }
        if a.flag("keep-going") && a.flag("fail-fast") {
            return Err(CliError::Usage(
                "verify: --keep-going and --fail-fast are mutually exclusive".into(),
            ));
        }
        let config = verify_flow_config(&a)?;
        if let Some(sock) = a.option("daemon") {
            if a.flag("fail-fast") {
                return Err(CliError::Usage(
                    "verify: --fail-fast does not combine with --daemon (the daemon keeps going)"
                        .into(),
                ));
            }
            if sweep_knobs.iter().any(|t| a.option(t).is_some()) {
                return Err(CliError::Usage(
                    "verify: the daemon runs the default sweep settings (drop --waves/--seed/\
                     --jitter/--period/--trials, or verify locally)"
                        .into(),
                ));
            }
            return cmd_flow_batch_daemon(dir, sock, daemon_options(&a, &config, true)?, out);
        }
        let vopts = verify_options(&a)?;
        let opts = BatchOptions {
            fail_fast: a.flag("fail-fast"),
            limits: Limits {
                deadline: match a.option("deadline-ms") {
                    Some(_) => Some(Duration::from_millis(a.parsed_option("deadline-ms", 0)?)),
                    None => None,
                },
                max_nodes: match a.option("max-nodes") {
                    Some(_) => Some(a.parsed_option("max-nodes", 0)?),
                    None => None,
                },
            },
        };
        return cmd_verify_batch(dir, &config, &vopts, &opts, out);
    }
    if a.flag("keep-going") || a.flag("fail-fast") {
        return Err(CliError::Usage(
            "verify: --keep-going/--fail-fast only apply to --batch".into(),
        ));
    }
    if let Some(sock) = a.option("daemon") {
        if sweep_knobs.iter().any(|t| a.option(t).is_some()) {
            return Err(CliError::Usage(
                "verify: the daemon runs the default sweep settings (drop --waves/--seed/\
                 --jitter/--period/--trials, or verify locally)"
                    .into(),
            ));
        }
        let path = a
            .positional(0)
            .ok_or_else(|| CliError::Usage("verify: missing <input> file".into()))?;
        let config = verify_flow_config(&a)?;
        return cmd_flow_single_daemon(path, sock, daemon_options(&a, &config, true)?, out);
    }
    if a.option("deadline-ms").is_some() || a.option("max-nodes").is_some() {
        return Err(CliError::Usage(
            "verify: --deadline-ms/--max-nodes only apply to --batch".into(),
        ));
    }
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("verify: missing <input> file".into()))?;
    let config = verify_flow_config(&a)?; // validate options before touching files
    let vopts = verify_options(&a)?;
    let aig = read_input(path)?;
    let res = run_configured_flow(&aig, &config)?;
    writeln!(out, "design            {}", res.report.name).map_err(io_err("<stdout>"))?;
    match check_against_aig(&aig, &res.timed, &vopts.equiv) {
        Err(e) => {
            writeln!(out, "verdict           FAILED({e})").map_err(io_err("<stdout>"))?;
            Err(CliError::Partial { ok: 0, failed: 1 })
        }
        Ok(report) => {
            let m = analyze_margins(&res.timed, &vopts.margin);
            writeln!(out, "sweep             {}", report.mode).map_err(io_err("<stdout>"))?;
            writeln!(out, "waves             {}", report.waves).map_err(io_err("<stdout>"))?;
            writeln!(out, "t1 cells          {}", m.t1_cells).map_err(io_err("<stdout>"))?;
            writeln!(out, "trials            {}", m.trials).map_err(io_err("<stdout>"))?;
            writeln!(out, "hazard rate       {:.4}", m.hazard_rate())
                .map_err(io_err("<stdout>"))?;
            writeln!(out, "worst separation  {:.3} ps", m.worst_separation_ps)
                .map_err(io_err("<stdout>"))?;
            writeln!(out, "verdict           PASS").map_err(io_err("<stdout>"))?;
            Ok(())
        }
    }
}

/// `sfqt1 verify --batch <dir>`: pulse-level verification of every design
/// of a directory on the shared streaming job engine — same ingest, same
/// containment, same summary/exit-code contract as [`cmd_flow_batch`],
/// with verification rows ([`verify_table_header`]) instead of flow rows.
fn cmd_verify_batch(
    dir: &str,
    config: &FlowConfig,
    vopts: &VerifyOptions,
    opts: &BatchOptions,
    out: &mut dyn Write,
) -> Result<(), CliError> {
    let (entries, cache_hits) = load_batch_designs(dir)?;
    writeln!(
        out,
        "batch: {} designs ({} parsed, {} cache hits)",
        entries.len(),
        entries.len() - cache_hits,
        cache_hits
    )
    .map_err(io_err("<stdout>"))?;
    writeln!(out, "{}", verify_table_header()).map_err(io_err("<stdout>"))?;
    let jobs: Vec<JobEntry> = entries
        .into_iter()
        .map(|(name, design)| JobEntry {
            name,
            design: design.map_err(|e| e.to_string()),
        })
        .collect();
    let (tx, rx) = std::sync::mpsc::channel::<JobRow>();
    let (mut ok, mut failed) = (0usize, 0usize);
    let mut stopped = false;
    let mut write_err: Option<std::io::Error> = None;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            run_verify_jobs_streamed(&jobs, config, &opts.limits, vopts, |row| {
                let _ = tx.send(row);
            });
        });
        for row in rx {
            if stopped || write_err.is_some() {
                continue; // keep draining; the jobs ran either way
            }
            if let Err(e) = writeln!(out, "{}", row.line) {
                write_err = Some(e);
                continue;
            }
            if row.is_ok() {
                ok += 1;
            } else {
                failed += 1;
                if opts.fail_fast {
                    if let Err(e) = writeln!(out, "batch: stopping at first failure (--fail-fast)")
                    {
                        write_err = Some(e);
                    }
                    stopped = true;
                }
            }
        }
    });
    if let Some(source) = write_err {
        return Err(CliError::Io {
            path: "<stdout>".to_string(),
            source,
        });
    }
    writeln!(out, "batch summary: {ok} ok, {failed} failed").map_err(io_err("<stdout>"))?;
    if failed > 0 {
        return Err(CliError::Partial { ok, failed });
    }
    Ok(())
}

/// `sfqt1 daemon <ping|stats|stop> <socket>`: control-plane requests
/// against a running `sfqt1d`.
fn cmd_daemon(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(argv, &[], &[])?;
    let action = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("daemon: missing <ping|stats|stop>".into()))?;
    let sock = a
        .positional(1)
        .ok_or_else(|| CliError::Usage("daemon: missing <socket> path".into()))?;
    let client_err = |e: sfq_server::ClientError| CliError::Flow(e.to_string());
    match action {
        "ping" => {
            sfq_server::client::ping(Path::new(sock)).map_err(client_err)?;
            writeln!(out, "daemon at {sock} is alive").map_err(io_err("<stdout>"))?;
        }
        "stats" => {
            let stats = sfq_server::client::stats(Path::new(sock)).map_err(client_err)?;
            writeln!(out, "{stats}").map_err(io_err("<stdout>"))?;
        }
        "stop" => {
            sfq_server::client::stop(Path::new(sock)).map_err(client_err)?;
            writeln!(out, "daemon at {sock} is stopping").map_err(io_err("<stdout>"))?;
        }
        other => {
            return Err(CliError::Usage(format!(
                "daemon: unknown action `{other}` (expected ping, stats or stop)"
            )));
        }
    }
    Ok(())
}

/// Builds a benchmark by name from the core or extended suite.
fn build_bench(name: &str, small: bool) -> Option<Aig> {
    for b in Benchmark::ALL {
        if b.name() == name {
            return Some(if small { b.build_small() } else { b.build() });
        }
    }
    for b in ExtBenchmark::ALL {
        if b.name() == name {
            return Some(if small { b.build_small() } else { b.build() });
        }
    }
    None
}

fn cmd_bench(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(argv, &["aag", "blif"], &["small"])?;
    let name = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("bench: missing <name> (see bench-list)".into()))?;
    let aig = build_bench(name, a.flag("small")).ok_or_else(|| {
        CliError::Usage(format!(
            "bench: unknown benchmark `{name}` (see bench-list)"
        ))
    })?;
    writeln!(
        out,
        "{}: {} inputs, {} outputs, {} AND nodes, depth {}",
        aig.name(),
        aig.num_inputs(),
        aig.num_outputs(),
        aig.num_ands(),
        aig.depth()
    )
    .map_err(io_err("<stdout>"))?;
    if let Some(p) = a.option("aag") {
        let mut buf = Vec::new();
        aiger::write_aag(&aig, &mut buf).map_err(io_err(p))?;
        std::fs::write(p, buf).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    if let Some(p) = a.option("blif") {
        let net = map_aig(&aig, &Library::default());
        std::fs::write(p, export::render_blif(&net)).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    Ok(())
}

fn cmd_bench_list(out: &mut dyn Write) -> Result<(), CliError> {
    writeln!(out, "Table I benchmarks:").map_err(io_err("<stdout>"))?;
    for b in Benchmark::ALL {
        writeln!(out, "  {}", b.name()).map_err(io_err("<stdout>"))?;
    }
    writeln!(out, "extended EPFL arithmetic controls:").map_err(io_err("<stdout>"))?;
    for b in ExtBenchmark::ALL {
        writeln!(out, "  {}", b.name()).map_err(io_err("<stdout>"))?;
    }
    Ok(())
}

fn cmd_energy(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(
        argv,
        &["phases", "engine", "gain-threshold", "waves"],
        &["t1"],
    )?;
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("energy: missing <input> file".into()))?;
    let config = flow_config(&a)?; // validate options before touching files
    let aig = read_input(path)?;
    let res = run_configured_flow(&aig, &config)?;

    let waves = random_waves(aig.num_inputs(), a.parsed_option("waves", 32usize)?);
    let (_, trace) = PulseSim::new(&res.timed)
        .run_traced(&waves)
        .map_err(|e| CliError::Flow(e.to_string()))?;
    let model = EnergyModel::default();
    let e = measure_energy(&res.timed, &trace, waves.len(), &config.library, &model);
    writeln!(out, "design          {}", res.report.name).map_err(io_err("<stdout>"))?;
    writeln!(out, "area            {} JJ", res.report.area).map_err(io_err("<stdout>"))?;
    writeln!(out, "waves           {}", e.waves).map_err(io_err("<stdout>"))?;
    writeln!(out, "static power    {:.2} µW", e.static_power_uw).map_err(io_err("<stdout>"))?;
    writeln!(
        out,
        "dynamic power   {:.3} µW @ {} GHz",
        e.dynamic_power_uw, model.clock_ghz
    )
    .map_err(io_err("<stdout>"))?;
    writeln!(out, "total power     {:.2} µW", e.total_power_uw).map_err(io_err("<stdout>"))?;
    writeln!(out, "energy per op   {:.1} aJ", e.energy_per_wave_aj).map_err(io_err("<stdout>"))?;
    Ok(())
}

fn cmd_margin(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(
        argv,
        &[
            "phases",
            "engine",
            "gain-threshold",
            "jitter",
            "period",
            "trials",
            "seed",
        ],
        &["t1"],
    )?;
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("margin: missing <input> file".into()))?;
    // Margin analysis is about T1 cells; default the flow to --t1.
    let mut config = flow_config(&a)?; // validate options before touching files
    if !a.flag("t1") && a.option("phases").is_none() {
        config = FlowConfig::t1(4);
    }
    let aig = read_input(path)?;
    let res = run_configured_flow(&aig, &config)?;

    let defaults = MarginConfig::default();
    let cfg = MarginConfig {
        period_ps: a.parsed_option("period", defaults.period_ps)?,
        jitter_ps: a.parsed_option("jitter", defaults.jitter_ps)?,
        trials: a.parsed_option("trials", defaults.trials)?,
        seed: a.parsed_option("seed", defaults.seed)?,
        ..defaults
    };
    let r = analyze_margins(&res.timed, &cfg);
    writeln!(out, "design            {}", res.report.name).map_err(io_err("<stdout>"))?;
    writeln!(out, "t1 cells          {}", r.t1_cells).map_err(io_err("<stdout>"))?;
    writeln!(out, "stage spacing     {:.2} ps", r.stage_spacing_ps).map_err(io_err("<stdout>"))?;
    writeln!(out, "jitter (1σ)       {:.2} ps", cfg.jitter_ps).map_err(io_err("<stdout>"))?;
    writeln!(out, "trials            {}", r.trials).map_err(io_err("<stdout>"))?;
    writeln!(out, "hazard rate       {:.4}", r.hazard_rate()).map_err(io_err("<stdout>"))?;
    writeln!(out, "worst separation  {:.2} ps", r.worst_separation_ps)
        .map_err(io_err("<stdout>"))?;
    writeln!(out, "mean separation   {:.2} ps", r.mean_min_separation_ps)
        .map_err(io_err("<stdout>"))?;
    Ok(())
}

fn cmd_convert(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(argv, &["aag", "blif", "dot", "verilog"], &[])?;
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("convert: missing <input> file".into()))?;
    let targets = ["aag", "blif", "dot", "verilog"];
    if targets.iter().all(|t| a.option(t).is_none()) {
        return Err(CliError::Usage(
            "convert: give at least one of --aag, --blif, --dot, --verilog".into(),
        ));
    }
    let aig = read_input(path)?;
    if let Some(p) = a.option("aag") {
        let mut buf = Vec::new();
        aiger::write_aag(&aig, &mut buf).map_err(io_err(p))?;
        std::fs::write(p, buf).map_err(io_err(p))?;
        writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
    }
    // BLIF / DOT / Verilog describe mapped netlists; convert via the
    // default library.
    if targets[1..].iter().any(|t| a.option(t).is_some()) {
        let net = map_aig(&aig, &Library::default());
        if let Some(p) = a.option("blif") {
            std::fs::write(p, export::render_blif(&net)).map_err(io_err(p))?;
            writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
        }
        if let Some(p) = a.option("dot") {
            std::fs::write(p, export::render_dot(&net, None)).map_err(io_err(p))?;
            writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
        }
        if let Some(p) = a.option("verilog") {
            std::fs::write(p, export::render_verilog(&net)).map_err(io_err(p))?;
            writeln!(out, "wrote {p}").map_err(io_err("<stdout>"))?;
        }
    }
    Ok(())
}

/// `sfqt1 table <input>` — the Table I protocol (1φ / 4φ / T1) on one file.
fn cmd_table(argv: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let a = Args::parse(argv, &["phases", "engine", "gain-threshold"], &[])?;
    let path = a
        .positional(0)
        .ok_or_else(|| CliError::Usage("table: missing <input> file".into()))?;
    let phases: u8 = a.parsed_option("phases", 4)?;
    if phases < 4 {
        return Err(CliError::Usage(
            "table: --phases must be ≥ 4 (T1 cells need four phases)".into(),
        ));
    }
    let aig = read_input(path)?;

    let mut base = flow_config(&a)?;
    base.phases = phases;
    let single = FlowConfig {
        phases: 1,
        use_t1: false,
        ..base.clone()
    };
    let multi = FlowConfig {
        use_t1: false,
        ..base.clone()
    };
    let t1 = FlowConfig {
        use_t1: true,
        ..base
    };

    let r1 = run_configured_flow(&aig, &single)?.report;
    let rn = run_configured_flow(&aig, &multi)?.report;
    let rt = run_configured_flow(&aig, &t1)?.report;

    writeln!(
        out,
        "{:<12} {:>8} {:>10} {:>7}   (T1 found {} / used {})",
        "flow", "DFFs", "area JJ", "depth", rt.t1_found, rt.t1_used
    )
    .map_err(io_err("<stdout>"))?;
    let multi_label = format!("{phases}φ");
    for (label, r) in [("1φ", &r1), (multi_label.as_str(), &rn), ("T1", &rt)] {
        writeln!(
            out,
            "{:<12} {:>8} {:>10} {:>7}",
            label, r.num_dffs, r.area, r.depth_cycles
        )
        .map_err(io_err("<stdout>"))?;
    }
    writeln!(
        out,
        "T1 vs {phases}φ: DFFs {:.2}, area {:.2}, depth {:.2}",
        rt.num_dffs as f64 / rn.num_dffs.max(1) as f64,
        rt.area as f64 / rn.area as f64,
        f64::from(rt.depth_cycles) / f64::from(rn.depth_cycles.max(1)),
    )
    .map_err(io_err("<stdout>"))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    #[cfg(feature = "parallel")]
    use sfq_netlist::par;
    use std::path::PathBuf;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    fn run_to_string(args: &[&str]) -> Result<String, CliError> {
        let mut out = Vec::new();
        run(&argv(args), &mut out)?;
        Ok(String::from_utf8(out).expect("utf8 output"))
    }

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sfqt1-cli-tests");
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(format!("{}-{name}", std::process::id()))
    }

    #[test]
    fn help_prints_usage() {
        let text = run_to_string(&["help"]).expect("help runs");
        assert!(text.contains("USAGE"));
        assert!(text.contains("sfqt1 flow"));
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error() {
        assert!(matches!(run_to_string(&["frob"]), Err(CliError::Usage(_))));
        assert!(matches!(run_to_string(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn bench_list_names_every_benchmark() {
        let text = run_to_string(&["bench-list"]).expect("runs");
        for b in Benchmark::ALL {
            assert!(text.contains(b.name()), "missing {}", b.name());
        }
        for b in ExtBenchmark::ALL {
            assert!(text.contains(b.name()), "missing {}", b.name());
        }
    }

    #[test]
    fn bench_writes_aag_and_flow_consumes_it() {
        let aag = scratch("adder.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        let text =
            run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench runs");
        assert!(text.contains("wrote"));

        let text = run_to_string(&["flow", aag_s, "--t1", "--phases", "4"]).expect("flow runs");
        assert!(text.contains("t1 used"), "{text}");
        assert!(text.contains("area (JJ)"), "{text}");
        let used: usize = text
            .lines()
            .find(|l| l.starts_with("t1 used"))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .expect("t1 used line");
        assert!(used > 0, "the small adder commits T1 cells:\n{text}");
        std::fs::remove_file(&aag).ok();
    }

    #[test]
    fn flow_writes_all_artifacts() {
        let aag = scratch("fa.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        let blif = scratch("fa.blif");
        let dot = scratch("fa.dot");
        let vcd = scratch("fa.vcd");
        run_to_string(&[
            "flow",
            aag_s,
            "--t1",
            "--blif",
            blif.to_str().expect("utf8"),
            "--dot",
            dot.to_str().expect("utf8"),
            "--vcd",
            vcd.to_str().expect("utf8"),
            "--waves",
            "4",
        ])
        .expect("flow with artifacts");
        let blif_text = std::fs::read_to_string(&blif).expect("blif written");
        assert!(blif_text.contains(".subckt t1_cell"), "T1 cells exported");
        assert!(std::fs::read_to_string(&dot)
            .expect("dot")
            .starts_with("digraph"));
        assert!(std::fs::read_to_string(&vcd)
            .expect("vcd")
            .contains("$enddefinitions"));
        for p in [aag, blif, dot, vcd] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn blif_input_round_trips_through_convert() {
        let src = scratch("mux.blif");
        std::fs::write(
            &src,
            ".model mux\n.inputs s a b\n.outputs y\n.names s a b y\n11- 1\n0-1 1\n.end\n",
        )
        .expect("write blif");
        let aag = scratch("mux.aag");
        run_to_string(&[
            "convert",
            src.to_str().expect("utf8"),
            "--aag",
            aag.to_str().expect("utf8"),
        ])
        .expect("convert");
        let text = std::fs::read_to_string(&aag).expect("aag written");
        assert!(text.starts_with("aag "));
        let report =
            run_to_string(&["flow", aag.to_str().expect("utf8")]).expect("flow on converted");
        assert!(report.contains("depth"));
        std::fs::remove_file(src).ok();
        std::fs::remove_file(aag).ok();
    }

    #[test]
    fn energy_and_margin_report_on_t1_flows() {
        let aag = scratch("en.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        let text = run_to_string(&["energy", aag_s, "--t1", "--waves", "8"]).expect("energy");
        assert!(text.contains("static power"), "{text}");
        assert!(text.contains("energy per op"), "{text}");

        let text = run_to_string(&["margin", aag_s, "--jitter", "0.5", "--trials", "200"])
            .expect("margin");
        assert!(text.contains("hazard rate"), "{text}");
        assert!(text.contains("t1 cells"), "{text}");
        std::fs::remove_file(aag).ok();
    }

    #[test]
    fn table_compares_three_flows() {
        let aag = scratch("tbl.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        let text = run_to_string(&["table", aag_s]).expect("table runs");
        assert!(text.contains("1φ"), "{text}");
        assert!(text.contains("4φ"), "{text}");
        assert!(text.contains("T1 vs 4φ"), "{text}");
        assert!(
            matches!(
                run_to_string(&["table", aag_s, "--phases", "2"]),
                Err(CliError::Usage(_))
            ),
            "table needs ≥ 4 phases"
        );
        std::fs::remove_file(aag).ok();
    }

    #[test]
    fn flow_and_convert_write_verilog() {
        let aag = scratch("vl.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        let v1 = scratch("vl_flow.v");
        run_to_string(&[
            "flow",
            aag_s,
            "--t1",
            "--verilog",
            v1.to_str().expect("utf8"),
        ])
        .expect("flow --verilog");
        let text = std::fs::read_to_string(&v1).expect("verilog written");
        assert!(text.contains("module SFQ_T1"), "T1 library module exported");
        let v2 = scratch("vl_conv.v");
        run_to_string(&["convert", aag_s, "--verilog", v2.to_str().expect("utf8")])
            .expect("convert --verilog");
        assert!(std::fs::read_to_string(&v2)
            .expect("written")
            .contains("endmodule"));
        for p in [aag, v1, v2] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn flow_batch_reports_every_design_in_order() {
        let dir = scratch("batch-dir");
        std::fs::create_dir_all(&dir).expect("batch dir");
        let mux = ".model mux\n.inputs s a b\n.outputs y\n.names s a b y\n11- 1\n0-1 1\n.end\n";
        std::fs::write(dir.join("b_mux.blif"), mux).expect("write blif");
        std::fs::write(dir.join("c_mux_twin.blif"), mux).expect("write twin");
        let aag = dir.join("a_adder.aag");
        run_to_string(&[
            "bench",
            "adder",
            "--small",
            "--aag",
            aag.to_str().expect("utf8"),
        ])
        .expect("bench");
        std::fs::write(dir.join("ignored.txt"), "not a design").expect("write noise");

        let text = run_to_string(&["flow", "--batch", dir.to_str().expect("utf8"), "--t1"])
            .expect("batch runs");
        assert!(
            text.contains("batch: 3 designs (2 parsed, 1 cache hits)"),
            "identical twins parse once:\n{text}"
        );
        let rows: Vec<&str> = text
            .lines()
            .filter(|l| l.contains(".aag") || l.contains(".blif"))
            .collect();
        assert_eq!(rows.len(), 3, "one row per design:\n{text}");
        assert!(
            rows[0].starts_with("a_adder.aag") && rows[1].starts_with("b_mux.blif"),
            "rows come in file-name order:\n{text}"
        );
        assert!(text.contains("area JJ"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_batch_misuse_is_rejected() {
        let dir = scratch("batch-misuse");
        std::fs::create_dir_all(&dir).expect("dir");
        for args in [
            vec!["flow", "--batch", dir.to_str().expect("utf8")], // empty dir
            vec!["flow", "x.aag", "--batch", dir.to_str().expect("utf8")],
            vec![
                "flow",
                "--batch",
                dir.to_str().expect("utf8"),
                "--blif",
                "x",
            ],
            vec!["flow", "--batch", dir.to_str().expect("utf8"), "--stats"],
            vec![
                "flow",
                "--batch",
                dir.to_str().expect("utf8"),
                "--waves",
                "4",
            ],
        ] {
            assert!(
                matches!(run_to_string(&args), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misuse_is_reported_as_usage() {
        for args in [
            vec!["flow"],
            vec!["flow", "x.txt"],
            vec!["flow", "x.aag", "--engine", "quantum"],
            vec!["bench", "nonexistent"],
            vec!["convert", "x.aag"],
            vec!["margin"],
        ] {
            assert!(
                matches!(run_to_string(&args), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let e = run_to_string(&["flow", "/nonexistent/x.aag"]).expect_err("io");
        assert!(matches!(e, CliError::Io { .. }), "{e}");
    }

    // --------------------------------------------- batch degradation ----

    /// Like [`run_to_string`], but also returns the captured output when
    /// `run` errs — batch runs print their rows and summary *before*
    /// reporting partial failure.
    fn run_capture(args: &[&str]) -> (Result<(), CliError>, String) {
        let mut out = Vec::new();
        let result = run(&argv(args), &mut out);
        (result, String::from_utf8(out).expect("utf8 output"))
    }

    fn mux_blif(model: &str) -> String {
        format!(".model {model}\n.inputs s a b\n.outputs y\n.names s a b y\n11- 1\n0-1 1\n.end\n")
    }

    #[test]
    fn exit_codes_distinguish_ok_partial_and_fatal() {
        assert_eq!(exit_code(&Ok(())), 0);
        assert_eq!(exit_code(&Err(CliError::Usage("x".into()))), 1);
        assert_eq!(exit_code(&Err(CliError::Partial { ok: 3, failed: 2 })), 2);
        let io = run_to_string(&["flow", "/nonexistent/x.aag"]).expect_err("io");
        assert_eq!(exit_code(&Err(io)), 1);
    }

    #[test]
    fn partial_failure_reports_its_counts() {
        let e = CliError::Partial { ok: 3, failed: 2 };
        assert_eq!(e.to_string(), "batch: 2 of 5 designs failed");
    }

    #[test]
    fn flow_batch_survives_an_unparseable_design() {
        let dir = scratch("batch-lenient");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a_good.blif"), mux_blif("lenient_a")).expect("write");
        std::fs::write(dir.join("b_broken.aag"), "aag 1 garbage\n").expect("write");
        std::fs::write(dir.join("c_good.blif"), mux_blif("lenient_c")).expect("write");

        let (result, text) = run_capture(&["flow", "--batch", dir.to_str().expect("utf8")]);
        assert!(
            matches!(result, Err(CliError::Partial { ok: 2, failed: 1 })),
            "{result:?}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("a_good.blif") && !l.contains("FAILED")),
            "good design before the broken one still runs:\n{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("b_broken.aag") && l.contains("FAILED(")),
            "broken design renders as a FAILED row:\n{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("c_good.blif") && !l.contains("FAILED")),
            "good design after the broken one still runs:\n{text}"
        );
        assert!(text.contains("batch summary: 2 ok, 1 failed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_batch_fail_fast_stops_at_the_first_failure() {
        let dir = scratch("batch-failfast");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a_broken.blif"), "not a netlist\n").expect("write");
        std::fs::write(dir.join("b_good.blif"), mux_blif("failfast_b")).expect("write");

        let (result, text) = run_capture(&[
            "flow",
            "--batch",
            dir.to_str().expect("utf8"),
            "--fail-fast",
        ]);
        assert!(
            matches!(result, Err(CliError::Partial { failed: 1, .. })),
            "{result:?}"
        );
        assert!(
            text.contains("batch: stopping at first failure (--fail-fast)"),
            "{text}"
        );
        assert!(
            !text.lines().any(|l| l.starts_with("b_good.blif")),
            "rows after the first failure are not printed:\n{text}"
        );
        assert!(text.contains("batch summary: 0 ok, 1 failed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_batch_deadline_zero_times_out_every_design() {
        let dir = scratch("batch-deadline");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a.blif"), mux_blif("deadline_a")).expect("write");
        std::fs::write(dir.join("b.blif"), mux_blif("deadline_b")).expect("write");

        let (result, text) = run_capture(&[
            "flow",
            "--batch",
            dir.to_str().expect("utf8"),
            "--deadline-ms",
            "0",
        ]);
        assert!(
            matches!(result, Err(CliError::Partial { ok: 0, failed: 2 })),
            "{result:?}"
        );
        let failed_rows = text
            .lines()
            .filter(|l| l.contains("FAILED(deadline exceeded)"))
            .count();
        assert_eq!(failed_rows, 2, "{text}");
        assert!(text.contains("batch summary: 0 ok, 2 failed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn flow_batch_node_ceiling_renders_over_budget_rows() {
        let dir = scratch("batch-nodes");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a.blif"), mux_blif("nodes_a")).expect("write");

        let (result, text) = run_capture(&[
            "flow",
            "--batch",
            dir.to_str().expect("utf8"),
            "--max-nodes",
            "1",
        ]);
        assert!(
            matches!(result, Err(CliError::Partial { ok: 0, failed: 1 })),
            "{result:?}"
        );
        assert!(text.contains("FAILED(node budget exceeded)"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_only_options_are_rejected_outside_batch() {
        let aag = scratch("nonbatch.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        let dir = scratch("nonbatch-dir");
        std::fs::create_dir_all(&dir).expect("dir");
        for args in [
            vec!["flow", aag_s, "--keep-going"],
            vec!["flow", aag_s, "--fail-fast"],
            vec!["flow", aag_s, "--deadline-ms", "5"],
            vec!["flow", aag_s, "--max-nodes", "100"],
            vec![
                "flow",
                "--batch",
                dir.to_str().expect("utf8"),
                "--keep-going",
                "--fail-fast",
            ],
        ] {
            assert!(
                matches!(run_to_string(&args), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        std::fs::remove_file(aag).ok();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Worker-forcing tests share the process-global override; serialize
    /// them so a concurrent test never observes a half-forced state.
    #[cfg(feature = "parallel")]
    static FORCE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[cfg(feature = "parallel")]
    #[test]
    fn batch_output_is_identical_sequential_and_parallel() {
        let dir = scratch("batch-seqpar");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a.blif"), mux_blif("seqpar_a")).expect("write");
        std::fs::write(dir.join("b_broken.blif"), "garbage\n").expect("write");
        std::fs::write(dir.join("c.blif"), mux_blif("seqpar_c")).expect("write");
        std::fs::write(dir.join("d.blif"), mux_blif("seqpar_d")).expect("write");
        let args = ["flow", "--batch", dir.to_str().expect("utf8"), "--t1"];

        let _guard = FORCE_LOCK.lock().expect("force lock");
        par::force_workers(1);
        let (seq_res, seq_text) = run_capture(&args);
        par::force_workers(4);
        let (par_res, par_text) = run_capture(&args);
        par::force_workers(0);

        assert_eq!(
            seq_text, par_text,
            "batch output (including FAILED rows) is worker-count independent"
        );
        assert!(matches!(
            seq_res,
            Err(CliError::Partial { ok: 3, failed: 1 })
        ));
        assert!(matches!(
            par_res,
            Err(CliError::Partial { ok: 3, failed: 1 })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn workers_flag_forces_the_count_and_rejects_bad_values() {
        let aag = scratch("workersflag.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");

        let _guard = FORCE_LOCK.lock().expect("force lock");
        let baseline = run_to_string(&["flow", aag_s, "--t1"]).expect("flow");
        let forced = run_to_string(&["flow", aag_s, "--t1", "--workers", "3"]).expect("flow");
        assert_eq!(par::workers(), 3, "--workers installs the override");
        par::force_workers(0);
        assert_eq!(baseline, forced, "report is worker-count independent");

        for args in [
            vec!["flow", aag_s, "--workers", "0"],
            vec!["flow", aag_s, "--workers", "three"],
            vec!["flow", aag_s, "--workers", "2", "--daemon", "unused.sock"],
            vec!["verify", aag_s, "--workers", "0"],
        ] {
            assert!(
                matches!(run_to_string(&args), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        assert_eq!(
            par::forced_workers(),
            0,
            "rejected --workers values must not install an override"
        );
        std::fs::remove_file(aag).ok();
    }

    /// The acceptance scenario: a poisoned batch (one parse failure, one
    /// injected panic, one deadline overrun) completes the remaining
    /// designs with rows byte-identical to the clean run, prints the
    /// summary, and maps to exit code 2.
    #[cfg(feature = "fault-injection")]
    #[test]
    fn poisoned_batch_degrades_gracefully_with_identical_surviving_rows() {
        use sfq_netlist::faultpt::{arm, disarm, FaultAction};

        let dir = scratch("batch-poison");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a_one.blif"), mux_blif("poison_a")).expect("write");
        std::fs::write(dir.join("b_two.blif"), mux_blif("poison_b")).expect("write");
        std::fs::write(dir.join("c_three.blif"), mux_blif("poison_c")).expect("write");
        std::fs::write(dir.join("d_four.blif"), mux_blif("poison_d")).expect("write");
        std::fs::write(dir.join("e_broken.blif"), "garbage\n").expect("write");
        let dir_s = dir.to_str().expect("utf8");

        let (clean_res, clean_text) = run_capture(&["flow", "--batch", dir_s, "--t1"]);
        assert!(
            matches!(clean_res, Err(CliError::Partial { ok: 4, failed: 1 })),
            "only the broken file fails the clean run: {clean_res:?}"
        );

        // Unlimited arming: the sequential retry of a panicked design must
        // hit the same fault again, keeping parallel output identical.
        arm("flow.detect", Some("poison_a"), FaultAction::Panic);
        arm("flow.phase", Some("poison_b"), FaultAction::Delay(60_000));
        let (poison_res, poison_text) =
            run_capture(&["flow", "--batch", dir_s, "--t1", "--deadline-ms", "2000"]);
        disarm("flow.detect", Some("poison_a"));
        disarm("flow.phase", Some("poison_b"));

        assert!(
            matches!(poison_res, Err(CliError::Partial { ok: 2, failed: 3 })),
            "{poison_res:?}"
        );
        assert_eq!(exit_code(&poison_res), 2);
        let row = |text: &str, file: &str| -> String {
            text.lines()
                .find(|l| l.starts_with(file))
                .unwrap_or_else(|| panic!("row for {file} in:\n{text}"))
                .to_string()
        };
        assert!(
            row(&poison_text, "a_one.blif")
                .contains("FAILED(panicked: injected panic at flow.detect)"),
            "{poison_text}"
        );
        assert!(
            row(&poison_text, "b_two.blif").contains("FAILED(deadline exceeded)"),
            "{poison_text}"
        );
        for survivor in ["c_three.blif", "d_four.blif", "e_broken.blif"] {
            assert_eq!(
                row(&clean_text, survivor),
                row(&poison_text, survivor),
                "surviving rows are byte-identical to the clean run"
            );
        }
        assert!(
            poison_text.contains("batch summary: 2 ok, 3 failed"),
            "{poison_text}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    // --------------------------------------------------------- verify ----

    #[test]
    fn verify_passes_and_reports_the_sweep() {
        let aag = scratch("verify.aag");
        let aag_s = aag.to_str().expect("utf8 path");
        run_to_string(&["bench", "adder", "--small", "--aag", aag_s]).expect("bench");
        // No --t1/--phases: verify defaults to the T1 flow on 4 phases.
        let text = run_to_string(&["verify", aag_s, "--trials", "200"]).expect("verify passes");
        // The small adder has 32 inputs — above the exhaustive threshold.
        assert!(text.contains("sweep             sampled"), "{text}");
        assert!(text.contains("verdict           PASS"), "{text}");
        assert!(text.contains("hazard rate"), "{text}");
        std::fs::remove_file(aag).ok();
    }

    #[test]
    fn verify_batch_renders_verify_rows() {
        let dir = scratch("verify-batch");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a.blif"), mux_blif("verify_a")).expect("write");
        std::fs::write(dir.join("b_broken.aag"), "aag 1 garbage\n").expect("write");
        std::fs::write(dir.join("c.blif"), mux_blif("verify_c")).expect("write");

        let (result, text) = run_capture(&["verify", "--batch", dir.to_str().expect("utf8")]);
        assert!(
            matches!(result, Err(CliError::Partial { ok: 2, failed: 1 })),
            "{result:?}"
        );
        assert!(text.contains("sweep"), "verify header present:\n{text}");
        assert!(
            text.lines()
                .any(|l| l.starts_with("a.blif") && l.contains("exhaustive")),
            "3-input mux sweeps exhaustively:\n{text}"
        );
        assert!(
            text.lines()
                .any(|l| l.starts_with("b_broken.aag") && l.contains("FAILED(")),
            "{text}"
        );
        assert!(text.contains("batch summary: 2 ok, 1 failed"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_misuse_is_rejected() {
        let dir = scratch("verify-misuse");
        std::fs::create_dir_all(&dir).expect("dir");
        let dir_s = dir.to_str().expect("utf8");
        for args in [
            vec!["verify"],
            vec!["verify", "x.aag", "--fail-fast"],
            vec!["verify", "x.aag", "--deadline-ms", "5"],
            vec!["verify", "x.aag", "--batch", dir_s],
            vec!["verify", "--batch", dir_s, "--keep-going", "--fail-fast"],
            // The daemon runs the default sweep settings only.
            vec![
                "verify",
                "x.aag",
                "--daemon",
                "/tmp/x.sock",
                "--trials",
                "7",
            ],
            vec![
                "verify",
                "--batch",
                dir_s,
                "--daemon",
                "/tmp/x.sock",
                "--waves",
                "9",
            ],
        ] {
            assert!(
                matches!(run_to_string(&args), Err(CliError::Usage(_))),
                "{args:?} should be a usage error"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The verification acceptance scenario: an injected pulse mismatch is
    /// caught, shrunk to a minimal counterexample rendered inside the
    /// `FAILED(...)` row, and mapped to exit code 2 — while every other
    /// design's row stays byte-identical to the clean run.
    #[cfg(feature = "fault-injection")]
    #[test]
    fn injected_mismatch_is_caught_and_shrunk() {
        use sfq_netlist::faultpt::{arm, disarm, FaultAction};

        let dir = scratch("verify-mismatch");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("a_one.blif"), mux_blif("vmx_a")).expect("write");
        std::fs::write(dir.join("b_two.blif"), mux_blif("vmx_b")).expect("write");
        let dir_s = dir.to_str().expect("utf8");

        let (clean_res, clean_text) = run_capture(&["verify", "--batch", dir_s]);
        assert!(clean_res.is_ok(), "clean batch verifies: {clean_res:?}");

        arm("verify.equiv", Some("vmx_a"), FaultAction::Err);
        let (res, text) = run_capture(&["verify", "--batch", dir_s]);
        disarm("verify.equiv", Some("vmx_a"));

        assert!(
            matches!(res, Err(CliError::Partial { ok: 1, failed: 1 })),
            "{res:?}"
        );
        assert_eq!(exit_code(&res), 2);
        let row = text
            .lines()
            .find(|l| l.starts_with("a_one.blif"))
            .expect("poisoned row");
        assert!(
            row.contains("FAILED(pulse mismatch:") && row.contains("minimal stimulus"),
            "shrunk counterexample in the row: {row}"
        );
        let clean_row = |t: &str| {
            t.lines()
                .find(|l| l.starts_with("b_two.blif"))
                .map(str::to_string)
        };
        assert_eq!(
            clean_row(&clean_text),
            clean_row(&text),
            "untouched design's row is byte-identical"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
