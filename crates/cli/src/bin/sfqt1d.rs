//! `sfqt1d` — the SFQ flow daemon.
//!
//! A thin argument-parsing wrapper around [`sfq_server::serve`]: all the
//! actual behavior (protocol, shared design cache, streamed job execution,
//! graceful shutdown) lives in the `sfq-server` library crate. Clients are
//! `sfqt1 flow ... --daemon <socket>` and `sfqt1 daemon <ping|stats|stop>
//! <socket>`.

use sfq_cli::Args;
use sfq_server::{serve, ServerConfig};
use std::time::Duration;

const USAGE: &str = "\
sfqt1d — long-running SFQ flow daemon

USAGE:
  sfqt1d <socket> [--conn-threads N] [--idle-ms T] [--cache-capacity N]
         [--workers N]

OPTIONS:
  --conn-threads N    connections served concurrently (default 4)
  --idle-ms T         exit after T ms with no connection activity
                      (default: serve until `sfqt1 daemon stop` or SIGTERM)
  --cache-capacity N  shared design-cache capacity in entries (default 256)
  --workers N         worker threads each flow request fans its designs over
                      (default: SFQ_WORKERS if set, else all host cores;
                      `sfqt1 daemon stats` reports the effective count)

The daemon listens on a fresh Unix socket at <socket>, removes it on exit,
and refuses to start if a live daemon already serves that path. SIGTERM and
SIGINT shut it down gracefully: in-flight requests finish streaming first.
";

fn parse_config(argv: &[String]) -> Result<ServerConfig, String> {
    let a = Args::parse(
        argv,
        &["conn-threads", "idle-ms", "cache-capacity", "workers"],
        &[],
    )
    .map_err(|e| e.to_string())?;
    let socket = a.positional(0).ok_or("missing <socket> path")?;
    if a.num_positional() > 1 {
        return Err("expected exactly one <socket> path".to_string());
    }
    let mut config = ServerConfig::new(socket);
    config.conn_threads = a
        .parsed_option("conn-threads", config.conn_threads)
        .map_err(|e| e.to_string())?;
    if config.conn_threads == 0 {
        return Err("--conn-threads must be at least 1".to_string());
    }
    if a.option("idle-ms").is_some() {
        let idle_ms: u64 = a.parsed_option("idle-ms", 0).map_err(|e| e.to_string())?;
        config.idle_timeout = Some(Duration::from_millis(idle_ms));
    }
    config.cache_capacity = a
        .parsed_option("cache-capacity", config.cache_capacity)
        .map_err(|e| e.to_string())?;
    if config.cache_capacity == 0 {
        return Err("--cache-capacity must be at least 1".to_string());
    }
    if let Some(v) = a.option("workers") {
        let w =
            sfq_netlist::par::parse_workers(v).map_err(|reason| format!("--workers: {reason}"))?;
        config.workers = Some(w);
    }
    Ok(config)
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv
        .iter()
        .any(|a| a == "--help" || a == "-h" || a == "help")
    {
        print!("{USAGE}");
        return;
    }
    let config = match parse_config(&argv) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("sfqt1d: {msg}\n\n{USAGE}");
            std::process::exit(1);
        }
    };
    eprintln!("sfqt1d: serving on {}", config.socket.display());
    if let Err(e) = serve(&config) {
        eprintln!("sfqt1d: {e}");
        std::process::exit(1);
    }
}
