//! Minimal declarative option parsing for the `sfqt1` subcommands.
//!
//! Hand-rolled on purpose: the workspace's dependency policy admits only the
//! pre-approved offline crates, and the CLI surface is small enough that a
//! positional-plus-`--flag[=value]` grammar covers it.

use std::collections::BTreeMap;
use std::fmt;

/// Error produced while parsing a command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Parsed command line: positionals in order plus `--key value` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Splits `argv` into positionals, boolean flags and valued options.
    ///
    /// `takes_value` lists option names that consume the next token (or an
    /// inline `=value`); every other `--name` is a boolean flag. Unknown
    /// options are rejected so typos fail loudly.
    ///
    /// # Errors
    /// [`ParseArgsError`] on unknown options or missing values.
    pub fn parse(
        argv: &[String],
        takes_value: &[&str],
        known_flags: &[&str],
    ) -> Result<Self, ParseArgsError> {
        let mut args = Args::default();
        let mut it = argv.iter().peekable();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let (name, inline) = match name.split_once('=') {
                    Some((n, v)) => (n, Some(v.to_string())),
                    None => (name, None),
                };
                if takes_value.contains(&name) {
                    let value = match inline {
                        Some(v) => v,
                        None => it
                            .next()
                            .ok_or_else(|| ParseArgsError(format!("--{name} needs a value")))?
                            .clone(),
                    };
                    args.options.insert(name.to_string(), value);
                } else if known_flags.contains(&name) {
                    if inline.is_some() {
                        return Err(ParseArgsError(format!("--{name} takes no value")));
                    }
                    args.flags.push(name.to_string());
                } else {
                    return Err(ParseArgsError(format!("unknown option --{name}")));
                }
            } else {
                args.positional.push(tok.clone());
            }
        }
        Ok(args)
    }

    /// The `k`-th positional argument.
    pub fn positional(&self, k: usize) -> Option<&str> {
        self.positional.get(k).map(String::as_str)
    }

    /// Number of positional arguments.
    pub fn num_positional(&self) -> usize {
        self.positional.len()
    }

    /// Whether the boolean flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of an option.
    pub fn option(&self, name: &str) -> Option<&str> {
        self.options.get(name).map(String::as_str)
    }

    /// Parses an option value, falling back to `default` when absent.
    ///
    /// # Errors
    /// [`ParseArgsError`] when the value does not parse as `T`.
    pub fn parsed_option<T: std::str::FromStr>(
        &self,
        name: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.option(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{name}: cannot parse `{v}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn splits_positionals_flags_and_options() {
        let a = Args::parse(
            &argv(&["in.blif", "--phases", "6", "--t1", "--out=x.vcd"]),
            &["phases", "out"],
            &["t1"],
        )
        .expect("valid");
        assert_eq!(a.positional(0), Some("in.blif"));
        assert_eq!(a.num_positional(), 1);
        assert!(a.flag("t1"));
        assert!(!a.flag("quiet"));
        assert_eq!(a.option("phases"), Some("6"));
        assert_eq!(a.option("out"), Some("x.vcd"));
        assert_eq!(a.parsed_option("phases", 4u8).expect("parses"), 6);
        assert_eq!(a.parsed_option("missing", 4u8).expect("default"), 4);
    }

    #[test]
    fn rejects_unknown_and_malformed() {
        assert!(Args::parse(&argv(&["--wat"]), &[], &[]).is_err());
        assert!(Args::parse(&argv(&["--phases"]), &["phases"], &[]).is_err());
        assert!(Args::parse(&argv(&["--t1=yes"]), &[], &["t1"]).is_err());
        let a = Args::parse(&argv(&["--phases", "x"]), &["phases"], &[]).expect("parse ok");
        assert!(a.parsed_option("phases", 4u8).is_err());
    }
}
