//! Thin process wrapper around [`sfq_cli::run`]: exit code 0 on success,
//! 1 for usage mistakes and fatal errors, 2 when a batch completed with
//! partial failure (see [`sfq_cli::exit_code`]).

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    let result = sfq_cli::run(&argv, &mut stdout);
    match &result {
        Ok(()) => {}
        Err(sfq_cli::CliError::Usage(m)) => eprintln!("{m}"),
        Err(e) => eprintln!("error: {e}"),
    }
    ExitCode::from(sfq_cli::exit_code(&result))
}
