//! Thin process wrapper around [`sfq_cli::run`]: exit code 2 for usage
//! errors, 1 for everything else, 0 on success.

use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    match sfq_cli::run(&argv, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(sfq_cli::CliError::Usage(m)) => {
            eprintln!("{m}");
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
