//! Determinism sweep over worker counts: the corpus batch and verify
//! tables must reproduce their committed goldens byte for byte at every
//! worker count 1, 2, 4 and 8 — the same contract the CI jobs check via
//! `SFQ_WORKERS` across release builds, here exercised in-process through
//! the `force_workers` hook (worker counts beyond the host's cores are
//! deliberate oversubscription, which is how single-core CI still drives
//! the parallel merges).
//!
//! Everything lives in one test fn: the worker override is process-global,
//! and a single owner needs no locking against parallel test threads.

use sfq_cli::run;
use sfq_netlist::par;

fn run_to_string(args: &[&str]) -> String {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    run(&argv, &mut out).expect("every corpus design passes");
    String::from_utf8(out).expect("utf-8 output")
}

/// Drops the preamble line (`batch: N designs ...`), matching the CI diff:
/// rows and the summary are the golden-checked content.
fn rows(text: &str) -> Vec<&str> {
    text.lines().skip(1).collect()
}

#[test]
fn corpus_goldens_are_worker_count_independent() {
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/../bench/corpus");
    let batch_golden = include_str!("../../../tests/golden/corpus_batch.txt");
    let verify_golden = include_str!("../../../tests/golden/corpus_verify.txt");

    for w in [1usize, 2, 4, 8] {
        par::force_workers(w);
        let batch = run_to_string(&["flow", "--batch", corpus, "--t1"]);
        let verify = run_to_string(&["verify", "--batch", corpus]);
        par::force_workers(0);
        assert_eq!(
            rows(&batch),
            rows(batch_golden),
            "corpus_batch.txt drifted at {w} workers"
        );
        assert_eq!(
            verify, verify_golden,
            "corpus_verify.txt drifted at {w} workers"
        );
    }
}
