//! End-to-end daemon tests: an in-process `sfqt1d` serving concurrent
//! clients, held byte-for-byte against the local batch driver.
//!
//! The daemon runs on a background thread (`handle_signals: false` — these
//! are in-process tests) with a unique temp socket per test, so the tests
//! parallelize and never touch a real daemon.

use sfq_cli::run;
use sfq_server::{client, serve, DesignSource, FlowOptions, FlowRequest, ServerConfig};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The seven-design external corpus committed under `crates/bench`.
fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../bench/corpus")
}

fn unique_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sfqt1d-test-{}-{tag}.sock", std::process::id()))
}

fn argv(args: &[&str]) -> Vec<String> {
    args.iter().map(|s| s.to_string()).collect()
}

/// The full local `sfqt1 flow --batch <corpus> --t1` output, computed once
/// per test process (a debug-build batch costs seconds; every test compares
/// against the same reference).
fn local_batch_output() -> &'static str {
    static LOCAL: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    LOCAL.get_or_init(|| {
        let mut out = Vec::new();
        run(
            &argv(&["flow", "--batch", corpus_dir().to_str().unwrap(), "--t1"]),
            &mut out,
        )
        .expect("local batch succeeds");
        String::from_utf8(out).expect("utf-8 output")
    })
}

/// Just the per-design rows of the local batch (preamble, header and
/// summary stripped).
fn local_batch_rows() -> Vec<String> {
    let text = local_batch_output();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 4, "{text}");
    lines[2..lines.len() - 1]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// The daemon-side mirror of the CLI's `--t1` defaults.
fn t1_options() -> FlowOptions {
    FlowOptions {
        phases: 4,
        use_t1: true,
        ..FlowOptions::default()
    }
}

fn wait_for_daemon(sock: &Path) {
    for _ in 0..500 {
        if client::ping(sock).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("daemon did not come up on {}", sock.display());
}

/// Deterministically unparseable AIGER: the header promises an input
/// literal, the next line is not a number.
const POISON: &str = "aag 1 1 0 1 0\nbroken\n";

#[test]
fn concurrent_clients_stream_byte_identical_rows_and_share_the_cache() {
    let expected = local_batch_rows();
    assert_eq!(expected.len(), 7, "corpus has seven designs");
    let sock = unique_socket("concurrent");
    let mut config = ServerConfig::new(&sock);
    config.handle_signals = false;
    config.conn_threads = 4;
    let server = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    wait_for_daemon(&sock);

    let paths = sfq_netlist::design::list_dir(&corpus_dir()).expect("corpus listing");
    assert_eq!(paths.len(), 7);
    std::thread::scope(|scope| {
        for c in 0..4usize {
            let (sock, paths, expected) = (&sock, &paths, &expected);
            scope.spawn(move || {
                // Even clients submit by path, odd clients inline — same
                // bytes either way, so every client shares one cache slot
                // per design.
                let mut designs: Vec<DesignSource> = paths
                    .iter()
                    .map(|p| {
                        let name = p.file_name().unwrap().to_str().unwrap().to_string();
                        if c % 2 == 0 {
                            DesignSource::Path {
                                name,
                                path: p.canonicalize().expect("canonical corpus path"),
                            }
                        } else {
                            DesignSource::Inline {
                                name,
                                content: std::fs::read_to_string(p).expect("corpus content"),
                            }
                        }
                    })
                    .collect();
                designs.push(DesignSource::Inline {
                    name: "broken.aag".into(),
                    content: POISON.into(),
                });
                let request = FlowRequest {
                    options: t1_options(),
                    designs,
                };
                let mut rows: Vec<(usize, String)> = Vec::new();
                let (ok, failed) = client::flow(sock, &request, |k, row| {
                    rows.push((k, row.to_string()));
                })
                .expect("flow request succeeds");
                assert_eq!((ok, failed), (7, 1));
                assert_eq!(rows.len(), 8);
                for (k, (index, row)) in rows.iter().enumerate() {
                    assert_eq!(*index, k, "rows arrive in input order");
                    if k < 7 {
                        assert_eq!(row, &expected[k], "daemon row {k} matches local batch");
                    }
                }
                let poisoned = &rows[7].1;
                assert!(
                    poisoned.starts_with("broken.aag") && poisoned.contains("FAILED("),
                    "{poisoned}"
                );
            });
        }
    });

    let stats = client::stats(&sock).expect("stats request");
    assert_eq!(
        (stats.ok, stats.failed, stats.panicked, stats.timed_out),
        (28, 4, 0, 0)
    );
    // 32 ingests across the four clients: 7 distinct parses, 21
    // cross-client cache hits, 4 failed parses (failed parses are misses
    // and never cached).
    assert_eq!(stats.cache.hits, 21, "cache hits accrue across clients");
    assert_eq!(stats.cache.misses, 11);
    assert_eq!(stats.cache.len, 7);

    client::stop(&sock).expect("stop request");
    server
        .join()
        .expect("server thread")
        .expect("daemon exits cleanly");
    assert!(!sock.exists(), "socket file removed on exit");
}

#[test]
fn stop_mid_stream_drains_the_in_flight_request() {
    let expected = local_batch_rows();
    let sock = unique_socket("drain");
    let mut config = ServerConfig::new(&sock);
    config.handle_signals = false;
    config.conn_threads = 2;
    let server = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    wait_for_daemon(&sock);

    // A 3-design subset keeps this test cheap; each row depends only on its
    // own design, so the byte-identity claim is unchanged.
    let designs: Vec<DesignSource> = sfq_netlist::design::list_dir(&corpus_dir())
        .expect("corpus listing")
        .into_iter()
        .take(3)
        .map(|p| DesignSource::Path {
            name: p.file_name().unwrap().to_str().unwrap().to_string(),
            path: p.canonicalize().expect("canonical corpus path"),
        })
        .collect();
    let request = FlowRequest {
        options: t1_options(),
        designs,
    };
    let mut rows: Vec<String> = Vec::new();
    let mut stop_sent = false;
    let (ok, failed) = client::flow(&sock, &request, |_k, row| {
        if !stop_sent {
            stop_sent = true;
            // Graceful shutdown requested while this stream is in flight
            // (served on the second handler thread): the daemon must finish
            // this stream — uncorrupted, through END — before exiting.
            client::stop(&sock).expect("stop during an in-flight stream");
        }
        rows.push(row.to_string());
    })
    .expect("in-flight stream survives shutdown");
    assert_eq!((ok, failed), (3, 0));
    assert_eq!(rows, expected[..3], "drained stream is byte-identical");
    server
        .join()
        .expect("server thread")
        .expect("daemon exits cleanly");
    assert!(!sock.exists(), "socket file removed on exit");
}

#[test]
fn idle_timeout_retires_an_unused_daemon() {
    let sock = unique_socket("idle");
    let mut config = ServerConfig::new(&sock);
    config.handle_signals = false;
    config.idle_timeout = Some(Duration::from_millis(150));
    let server = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    wait_for_daemon(&sock);
    // No further activity: the daemon must retire on its own.
    server
        .join()
        .expect("server thread")
        .expect("daemon exits cleanly");
    assert!(!sock.exists(), "socket file removed on exit");
}

#[test]
fn cli_daemon_mode_matches_local_batch_and_serves_control_requests() {
    // A small scratch corpus keeps the debug-build flow count down; it
    // deliberately includes an UPPERCASE extension, which must ingest
    // identically in the local batch and through the daemon.
    let dir = std::env::temp_dir().join(format!("sfqt1d-test-{}-cli-corpus", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for (src, dst) in [
        ("adder8.aag", "adder8.aag"),
        ("mux8.blif", "MUX8.BLIF"),
        ("voter7.blif", "voter7.blif"),
    ] {
        std::fs::copy(corpus_dir().join(src), dir.join(dst)).expect("copy corpus design");
    }
    let dir_str = dir.to_str().unwrap().to_string();

    let sock = unique_socket("cli");
    let sock_str = sock.to_str().unwrap().to_string();
    let mut config = ServerConfig::new(&sock);
    config.handle_signals = false;
    config.conn_threads = 2;
    let server = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    wait_for_daemon(&sock);

    // Batch through the daemon: everything below the first (preamble) line
    // is byte-identical to the same batch run locally.
    let mut local_buf = Vec::new();
    run(
        &argv(&["flow", "--batch", &dir_str, "--t1"]),
        &mut local_buf,
    )
    .expect("local batch succeeds");
    let local = String::from_utf8(local_buf).expect("utf-8 output");
    assert!(
        local.lines().any(|l| l.starts_with("MUX8.BLIF")),
        "uppercase extension ingests in the local batch: {local}"
    );
    let mut remote_buf = Vec::new();
    run(
        &argv(&["flow", "--batch", &dir_str, "--t1", "--daemon", &sock_str]),
        &mut remote_buf,
    )
    .expect("daemon batch succeeds");
    let remote = String::from_utf8(remote_buf).expect("utf-8 output");
    let below_preamble = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
    assert_eq!(below_preamble(&remote), below_preamble(&local));
    assert!(
        remote.starts_with("daemon batch: 3 designs via "),
        "{remote}"
    );

    // Single design through the daemon: submitted inline, one matching row.
    let adder = dir.join("adder8.aag");
    let mut single_buf = Vec::new();
    run(
        &argv(&[
            "flow",
            adder.to_str().unwrap(),
            "--t1",
            "--daemon",
            &sock_str,
        ]),
        &mut single_buf,
    )
    .expect("single daemon flow succeeds");
    let single = String::from_utf8(single_buf).expect("utf-8 output");
    let adder_row = local
        .lines()
        .find(|l| l.starts_with("adder8.aag"))
        .expect("adder8 row in local batch");
    assert!(single.lines().any(|l| l == adder_row), "{single}");

    // Control plane: stats reflect the 4 served designs; stop drains.
    let mut stats_buf = Vec::new();
    run(&argv(&["daemon", "stats", &sock_str]), &mut stats_buf).expect("stats");
    let stats = String::from_utf8(stats_buf).expect("utf-8 output");
    assert!(stats.starts_with("STATS ok=4 failed=0 "), "{stats}");
    // The single inline adder8 submission re-used the batch's cache entry.
    assert!(stats.contains("cache_hits=1 "), "{stats}");
    // The effective fan-out width is always reported (>= 1 by policy).
    let workers: u64 = stats
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("workers="))
        .expect("workers= in STATS")
        .parse()
        .expect("numeric workers=");
    assert!(workers >= 1, "{stats}");

    let mut stop_buf = Vec::new();
    run(&argv(&["daemon", "stop", &sock_str]), &mut stop_buf).expect("stop");
    server
        .join()
        .expect("server thread")
        .expect("daemon exits cleanly");
    assert!(!sock.exists(), "socket file removed on exit");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_verify_through_the_daemon_matches_the_local_verify_batch() {
    // Two small corpus designs keep the sweep volume down; both sides run
    // the default sweep/margin settings, so rows must agree byte for byte.
    let dir =
        std::env::temp_dir().join(format!("sfqt1d-test-{}-verify-corpus", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    for name in ["mux8.blif", "voter7.blif"] {
        std::fs::copy(corpus_dir().join(name), dir.join(name)).expect("copy corpus design");
    }
    let dir_str = dir.to_str().unwrap().to_string();

    let sock = unique_socket("verify");
    let sock_str = sock.to_str().unwrap().to_string();
    let mut config = ServerConfig::new(&sock);
    config.handle_signals = false;
    let server = std::thread::spawn({
        let config = config.clone();
        move || serve(&config)
    });
    wait_for_daemon(&sock);

    let mut local_buf = Vec::new();
    run(&argv(&["verify", "--batch", &dir_str]), &mut local_buf).expect("local verify succeeds");
    let local = String::from_utf8(local_buf).expect("utf-8 output");
    assert!(local.contains("sweep"), "verify header present: {local}");

    let mut remote_buf = Vec::new();
    run(
        &argv(&["verify", "--batch", &dir_str, "--daemon", &sock_str]),
        &mut remote_buf,
    )
    .expect("daemon verify succeeds");
    let remote = String::from_utf8(remote_buf).expect("utf-8 output");
    let below_preamble = |s: &str| s.lines().skip(1).map(String::from).collect::<Vec<_>>();
    assert_eq!(
        below_preamble(&remote),
        below_preamble(&local),
        "daemon verify rows are byte-identical to the local batch"
    );

    run(&argv(&["daemon", "stop", &sock_str]), &mut Vec::new()).expect("stop");
    server
        .join()
        .expect("server thread")
        .expect("daemon exits cleanly");
    std::fs::remove_dir_all(&dir).ok();
}

/// `STOP` fired at the daemon with `FLOW` requests in flight, repeatedly:
/// whatever the interleaving (stop before the flow's accept, between
/// accept and dequeue, or mid-stream), a flow either completes its whole
/// stream through `END` or is refused outright with **zero** rows — a
/// partially transmitted stream is the one outcome shutdown must never
/// produce. Ten rounds walk the race window; the `chk` model test in
/// `sfq-server` covers the same handshake exhaustively at small scale.
#[test]
fn stop_racing_in_flight_flows_never_corrupts_a_stream() {
    // Tiny inline designs keep each flow to milliseconds in debug builds;
    // the race being probed is in the acceptor/queue, not the flow.
    let designs: Vec<DesignSource> = (0..4)
        .map(|j| DesignSource::Inline {
            name: format!("t{j}.blif"),
            content: format!(".model t{j}\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"),
        })
        .collect();
    for round in 0..10 {
        let sock = unique_socket(&format!("stoprace{round}"));
        let mut config = ServerConfig::new(&sock);
        config.handle_signals = false;
        config.conn_threads = 2;
        let server = std::thread::spawn({
            let config = config.clone();
            move || serve(&config)
        });
        wait_for_daemon(&sock);

        let request = FlowRequest {
            options: t1_options(),
            designs: designs.clone(),
        };
        let (result, rows) = std::thread::scope(|scope| {
            let flow = scope.spawn(|| {
                let mut rows: Vec<(usize, String)> = Vec::new();
                let result = client::flow(&sock, &request, |k, row| {
                    rows.push((k, row.to_string()));
                });
                (result, rows)
            });
            // Race the shutdown against the in-flight flow; the STOP
            // connection itself is always served (only STOP retires this
            // daemon — no idle timeout, no signals).
            client::stop(&sock).expect("stop request");
            flow.join().expect("flow client thread")
        });
        match result {
            Ok((ok, failed)) => {
                assert_eq!((ok, failed), (4, 0), "round {round}: totals");
                assert_eq!(
                    rows.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
                    vec![0, 1, 2, 3],
                    "round {round}: accepted stream ran to END in input order"
                );
            }
            Err(_) => assert!(
                rows.is_empty(),
                "round {round}: a refused flow transmits nothing, got {rows:?}"
            ),
        }
        server
            .join()
            .expect("server thread")
            .expect("daemon exits cleanly");
        assert!(!sock.exists(), "round {round}: socket removed on exit");
    }
}
