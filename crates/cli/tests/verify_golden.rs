//! Corpus-wide semi-formal verification golden: `sfqt1 verify --batch`
//! over the checked-in corpus must pass all seven designs and reproduce
//! `tests/golden/corpus_verify.txt` byte for byte. The golden is the same
//! output the `verify` CI job diffs against the release binary, so a drift
//! here means the verification stack changed behaviour, not just a test.

use sfq_cli::run;

#[test]
fn corpus_verify_batch_matches_the_committed_golden() {
    let corpus = concat!(env!("CARGO_MANIFEST_DIR"), "/../bench/corpus");
    let argv: Vec<String> = ["verify", "--batch", corpus]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let mut out = Vec::new();
    run(&argv, &mut out).expect("every corpus design verifies");
    let table = String::from_utf8(out).expect("utf-8 output");
    let golden = include_str!("../../../tests/golden/corpus_verify.txt");
    assert_eq!(
        table, golden,
        "corpus verify table drifted from tests/golden/corpus_verify.txt; \
         inspect the diff and re-bless deliberately if the change is intended"
    );
}
