//! Bit-exact software reference models for the approximate benchmarks.
//!
//! `sin` and `log2` are fixed-point *algorithms*, not closed-form functions,
//! so the circuits are verified against these integer models (which the
//! generators share constants with), exactly like the EPFL suite verifies
//! against its own golden vectors.

/// Constants shared between [`crate::sin_cordic`] and [`sin_cordic_ref`].
#[derive(Debug, Clone)]
pub struct CordicConstants {
    /// `K = Π 1/√(1+2^(−2i))` scaled by `2^(bits−2)`.
    pub k_scaled: u64,
    /// `atan(2^(−i)) / π` scaled by `2^bits` (all entries < 2^(bits−1)).
    pub atan_table: Vec<u64>,
}

/// Computes the CORDIC constant set for a given datapath width.
pub fn cordic_constants(bits: usize, iters: usize) -> CordicConstants {
    let scale = (bits - 2) as u32;
    let k: f64 = (0..iters)
        .map(|i| 1.0 / (1.0 + 0.25f64.powi(i as i32)).sqrt())
        .product();
    let k_scaled = (k * (1u64 << scale) as f64).round() as u64;
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let atan_table = (0..iters)
        .map(|i| {
            let a = (0.5f64.powi(i as i32)).atan() / std::f64::consts::PI;
            ((a * (1u64 << bits) as f64).round() as u64) & mask
        })
        .collect();
    CordicConstants {
        k_scaled,
        atan_table,
    }
}

/// Bit-exact model of the CORDIC sine circuit: returns `(sin, cos)` words
/// (each `bits` wide) for an input angle word.
pub fn sin_cordic_ref(theta: u64, bits: usize, iters: usize) -> (u64, u64) {
    let consts = cordic_constants(bits, iters);
    let mask = (1u64 << bits) - 1;
    let sign_bit = 1u64 << (bits - 1);
    let sext = |v: u64| -> i64 {
        if v & sign_bit != 0 {
            (v | !mask) as i64
        } else {
            v as i64
        }
    };
    let mut x = consts.k_scaled as i64;
    let mut y = 0i64;
    let mut z = sext(theta & mask);
    for (i, &atan) in consts.atan_table.iter().enumerate() {
        let atan = sext(atan);
        // The circuit shifts the masked two's-complement words
        // arithmetically within `bits` bits.
        let xs = sext((x as u64) & mask) >> i;
        let ys = sext((y as u64) & mask) >> i;
        if z < 0 {
            x += ys;
            y -= xs;
            z += atan;
        } else {
            x -= ys;
            y += xs;
            z -= atan;
        }
        x = sext((x as u64) & mask);
        y = sext((y as u64) & mask);
        z = sext((z as u64) & mask);
    }
    ((y as u64) & mask, (x as u64) & mask)
}

/// Bit-exact model of the log₂ circuit: returns `(leading_one_position,
/// fraction_word)` for a non-zero input, with `max(bits/2, 4)` fraction
/// bits (LSB-first packing like the circuit's output word).
pub fn log2_ref(x: u64, bits: usize) -> (u64, u64) {
    assert!(x != 0, "log2 of zero is undefined");
    let pos = 63 - x.leading_zeros() as u64;
    // Normalize into `bits` bits: mantissa in [2^(bits−1), 2^bits).
    let shift = bits as i64 - 1 - pos as i64;
    let mant = if shift >= 0 {
        x << shift
    } else {
        x >> (-shift)
    };
    let frac_bits = (bits / 2).max(4);
    let mut y = mant as u128;
    let mut frac = 0u64;
    for k in 0..frac_bits {
        let sq = y * y; // binary point at 2(bits−1)
        let digit = (sq >> (2 * bits - 1)) & 1;
        frac |= (digit as u64) << (frac_bits - 1 - k);
        y = if digit == 1 {
            (sq >> (bits)) & ((1u128 << bits) - 1)
        } else {
            (sq >> (bits - 1)) & ((1u128 << bits) - 1)
        };
    }
    (pos, frac)
}

/// Reference majority of a bit slice.
pub fn majority_ref(bits: &[bool]) -> bool {
    let ones = bits.iter().filter(|&&b| b).count();
    2 * ones > bits.len()
}
