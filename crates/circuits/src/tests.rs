use crate::reference::{log2_ref, majority_ref, sin_cordic_ref};
use crate::*;
use proptest::prelude::*;

/// Packs scalar operand values into bit-parallel simulation patterns:
/// `values[v]` becomes test vector `v` (one bit lane per vector).
fn pack_patterns(values: &[u64], bits: usize) -> Vec<u64> {
    let mut pats = vec![0u64; bits];
    for (lane, &v) in values.iter().enumerate() {
        for (i, p) in pats.iter_mut().enumerate() {
            *p |= ((v >> i) & 1) << lane;
        }
    }
    pats
}

/// Unpacks one lane of the outputs back into a scalar.
fn unpack_lane(outs: &[u64], lane: usize) -> u64 {
    let mut v = 0u64;
    for (i, &o) in outs.iter().enumerate() {
        v |= ((o >> lane) & 1) << i;
    }
    v
}

#[test]
fn adder_adds() {
    let bits = 16;
    let aig = adder(bits);
    let avals: Vec<u64> = (0..32).map(|i| (i * 2654435761u64) & 0xFFFF).collect();
    let bvals: Vec<u64> = (0..32).map(|i| (i * 40503u64 + 977) & 0xFFFF).collect();
    let mut pats = pack_patterns(&avals, bits);
    pats.extend(pack_patterns(&bvals, bits));
    let outs = aig.simulate(&pats);
    for lane in 0..32 {
        let got = unpack_lane(&outs, lane);
        assert_eq!(got, avals[lane] + bvals[lane], "lane {lane}");
    }
}

#[test]
fn multiplier_multiplies() {
    let bits = 8;
    let aig = multiplier(bits);
    let avals: Vec<u64> = (0..64).map(|i| (i * 37 + 11) & 0xFF).collect();
    let bvals: Vec<u64> = (0..64).map(|i| (i * 91 + 3) & 0xFF).collect();
    let mut pats = pack_patterns(&avals, bits);
    pats.extend(pack_patterns(&bvals, bits));
    let outs = aig.simulate(&pats);
    for lane in 0..64 {
        assert_eq!(
            unpack_lane(&outs, lane),
            avals[lane] * bvals[lane],
            "lane {lane}"
        );
    }
}

#[test]
fn c6288_is_16x16_multiplier() {
    let aig = c6288();
    assert_eq!(aig.num_inputs(), 32);
    assert_eq!(aig.num_outputs(), 32);
    let avals = [0u64, 1, 65535, 12345, 40000];
    let bvals = [0u64, 65535, 65535, 54321, 2];
    let mut pats = pack_patterns(&avals, 16);
    pats.extend(pack_patterns(&bvals, 16));
    let outs = aig.simulate(&pats);
    for lane in 0..avals.len() {
        assert_eq!(unpack_lane(&outs, lane), avals[lane] * bvals[lane]);
    }
}

#[test]
fn square_squares() {
    let bits = 10;
    let aig = square(bits);
    let vals: Vec<u64> = (0..64).map(|i| (i * 53 + 7) & 0x3FF).collect();
    let pats = pack_patterns(&vals, bits);
    let outs = aig.simulate(&pats);
    for (lane, &v) in vals.iter().enumerate() {
        assert_eq!(unpack_lane(&outs, lane), v * v, "lane {lane}");
    }
}

#[test]
fn square_matches_multiplier_structure_savings() {
    // The folded squarer must be smaller than a general multiplier.
    let sq = square(16);
    let mu = multiplier(16);
    assert!(sq.num_live_ands() < mu.num_live_ands());
}

#[test]
fn voter_majority() {
    let n = 31;
    let aig = voter(n);
    // 64 random stimuli via bit-parallel lanes.
    let mut lanes: Vec<Vec<bool>> = Vec::new();
    let mut seed = 0xDEADBEEFu64;
    for _ in 0..64 {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            v.push(seed >> 40 & 1 == 1);
        }
        lanes.push(v);
    }
    let mut pats = vec![0u64; n];
    for (lane, v) in lanes.iter().enumerate() {
        for i in 0..n {
            if v[i] {
                pats[i] |= 1 << lane;
            }
        }
    }
    let outs = aig.simulate(&pats);
    for (lane, v) in lanes.iter().enumerate() {
        assert_eq!(outs[0] >> lane & 1 == 1, majority_ref(v), "lane {lane}");
    }
    // Edge cases: exactly at threshold.
    let mut v = vec![false; n];
    for x in v.iter_mut().take(n / 2) {
        *x = true; // 15 of 31 → not majority
    }
    let pats: Vec<u64> = v.iter().map(|&b| u64::from(b)).collect();
    assert_eq!(aig.simulate(&pats)[0] & 1, 0);
    let mut v2 = vec![false; n];
    for x in v2.iter_mut().take(n / 2 + 1) {
        *x = true; // 16 of 31 → majority
    }
    let pats: Vec<u64> = v2.iter().map(|&b| u64::from(b)).collect();
    assert_eq!(aig.simulate(&pats)[0] & 1, 1);
}

#[test]
fn sin_matches_reference_model() {
    let bits = 10;
    let iters = 6;
    let aig = sin_cordic(bits, iters);
    let thetas: Vec<u64> = (0..64).map(|i| (i * 8 + 1) % (1 << (bits - 1))).collect();
    let pats = pack_patterns(&thetas, bits);
    let outs = aig.simulate(&pats);
    for (lane, &theta) in thetas.iter().enumerate() {
        let (sin_ref, cos_ref) = sin_cordic_ref(theta, bits, iters);
        let sin_got = unpack_lane(&outs[0..bits], lane);
        let cos_got = unpack_lane(&outs[bits..2 * bits], lane);
        assert_eq!(sin_got, sin_ref, "sin lane {lane} θ={theta}");
        assert_eq!(cos_got, cos_ref, "cos lane {lane} θ={theta}");
    }
}

#[test]
fn sin_is_actually_sine() {
    // Numerical sanity: CORDIC output ≈ sin(θ) for θ ∈ [0, π/2).
    let bits = 16;
    let iters = 12;
    let scale = (1u64 << (bits - 2)) as f64;
    for frac in [0.05f64, 0.125, 0.2, 0.25, 0.3, 0.4, 0.45] {
        let theta = (frac * (1u64 << bits) as f64).round() as u64;
        let (sin_fix, _) = sin_cordic_ref(theta, bits, iters);
        let got = sin_fix as f64 / scale;
        let want = (frac * std::f64::consts::PI).sin();
        assert!(
            (got - want).abs() < 0.01,
            "sin({frac}π): got {got}, want {want}"
        );
    }
}

#[test]
fn log2_matches_reference_model() {
    let bits = 8;
    let aig = log2_shift_add(bits);
    let xs: Vec<u64> = (1..65).collect();
    let pats = pack_patterns(&xs, bits);
    let outs = aig.simulate(&pats);
    let int_bits = usize::BITS as usize - (bits - 1).leading_zeros() as usize;
    for (lane, &x) in xs.iter().enumerate() {
        let (pos_ref, frac_ref) = log2_ref(x, bits);
        let pos_got = unpack_lane(&outs[0..int_bits], lane);
        let frac_got = unpack_lane(&outs[int_bits..], lane);
        assert_eq!(pos_got, pos_ref, "int part of log2({x})");
        assert_eq!(frac_got, frac_ref, "frac part of log2({x})");
    }
}

#[test]
fn log2_is_actually_log2() {
    // Numerical sanity on the reference model.
    let bits = 16;
    let frac_bits = bits / 2;
    for x in [3u64, 100, 1000, 40000, 65535] {
        let (pos, frac) = log2_ref(x, bits);
        let got = pos as f64 + frac as f64 / (1u64 << frac_bits) as f64;
        let want = (x as f64).log2();
        assert!(
            (got - want).abs() < 0.01,
            "log2({x}): got {got}, want {want}"
        );
    }
}

#[test]
fn c7552_functions() {
    let bits = 8;
    let aig = c7552_sized(bits);
    let avals: Vec<u64> = (0..64).map(|i| (i * 97 + 13) & 0xFF).collect();
    let bvals: Vec<u64> = (0..64).map(|i| (i * 31 + 200) & 0xFF).collect();
    let mut pats = pack_patterns(&avals, bits);
    pats.extend(pack_patterns(&bvals, bits));
    pats.push(0xAAAA_AAAA_AAAA_AAAA); // cin alternating
    let outs = aig.simulate(&pats);
    for lane in 0..64 {
        let cin = (lane as u64) & 1;
        let sum = unpack_lane(&outs[0..=bits], lane);
        assert_eq!(sum, avals[lane] + bvals[lane] + cin, "sum lane {lane}");
        let gt = outs[bits + 1] >> lane & 1 == 1;
        assert_eq!(gt, avals[lane] > bvals[lane], "cmp lane {lane}");
        let pa = outs[bits + 2] >> lane & 1 == 1;
        assert_eq!(pa, avals[lane].count_ones() % 2 == 1, "par_a lane {lane}");
        let pb = outs[bits + 3] >> lane & 1 == 1;
        assert_eq!(pb, bvals[lane].count_ones() % 2 == 1, "par_b lane {lane}");
    }
}

#[test]
fn full_scale_sizes_are_plausible() {
    // Order-of-magnitude checks against the real suites (not exact counts).
    let adder = Benchmark::Adder.build();
    assert_eq!(adder.num_inputs(), 256);
    assert_eq!(adder.num_outputs(), 129);
    assert!(adder.num_live_ands() > 500 && adder.num_live_ands() < 3000);

    let c6288 = Benchmark::C6288.build();
    assert!(c6288.num_live_ands() > 1500 && c6288.num_live_ands() < 8000);

    let voter = Benchmark::Voter.build();
    assert_eq!(voter.num_inputs(), 1001);
    assert!(voter.num_live_ands() > 4000 && voter.num_live_ands() < 20000);
}

#[test]
fn small_builds_all_verify_against_reference_sim() {
    // Smoke: every benchmark's small instance builds and has sane I/O.
    for b in Benchmark::ALL {
        let aig = b.build_small();
        assert!(aig.num_inputs() > 0, "{}", b.name());
        assert!(aig.num_outputs() > 0, "{}", b.name());
        assert!(aig.num_live_ands() > 0, "{}", b.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn prop_adder_random(a in 0u64..(1 << 20), b in 0u64..(1 << 20)) {
        let bits = 20;
        let aig = adder(bits);
        let mut pats = pack_patterns(&[a], bits);
        pats.extend(pack_patterns(&[b], bits));
        let outs = aig.simulate(&pats);
        prop_assert_eq!(unpack_lane(&outs, 0), a + b);
    }

    #[test]
    fn prop_mult_random(a in 0u64..256, b in 0u64..256) {
        let aig = multiplier(8);
        let mut pats = pack_patterns(&[a], 8);
        pats.extend(pack_patterns(&[b], 8));
        let outs = aig.simulate(&pats);
        prop_assert_eq!(unpack_lane(&outs, 0), a * b);
    }

    #[test]
    fn prop_square_random(a in 0u64..4096) {
        let aig = square(12);
        let pats = pack_patterns(&[a], 12);
        let outs = aig.simulate(&pats);
        prop_assert_eq!(unpack_lane(&outs, 0), a * a);
    }

    #[test]
    fn prop_sub_words_wraps(a in 0u64..65536, b in 0u64..65536) {
        let mut aig = Aig::new("sub");
        let aw = aig.input_word("a", 16);
        let bw = aig.input_word("b", 16);
        let d = sub_words(&mut aig, &aw, &bw);
        aig.output_word("d", &d);
        let mut pats = pack_patterns(&[a], 16);
        pats.extend(pack_patterns(&[b], 16));
        let outs = aig.simulate(&pats);
        prop_assert_eq!(unpack_lane(&outs, 0), a.wrapping_sub(b) & 0xFFFF);
    }

    #[test]
    fn prop_voter_random(bits in proptest::collection::vec(prop::bool::ANY, 15)) {
        let aig = voter(15);
        let pats: Vec<u64> = bits.iter().map(|&b| u64::from(b)).collect();
        let outs = aig.simulate(&pats);
        prop_assert_eq!(outs[0] & 1 == 1, majority_ref(&bits));
    }
}
