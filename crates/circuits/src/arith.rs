//! Word-level arithmetic constructors over AIG literals.
//!
//! These mirror the datapath idioms the EPFL suite's generators use:
//! ripple-carry addition, two's-complement subtraction/negation, array
//! multiplication with carry-save reduction, squaring, and arithmetic
//! shifts. Everything is pure structure — constants fold away inside the
//! AIG's strashing constructors.

use sfq_netlist::{Aig, AigLit};

/// Ripple-carry addition of equal-width words; result has one extra bit
/// (the carry-out).
///
/// # Panics
/// Panics if the words differ in width or are empty.
pub fn add_words(aig: &mut Aig, a: &[AigLit], b: &[AigLit], cin: Option<AigLit>) -> Vec<AigLit> {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    assert!(!a.is_empty(), "empty operands");
    let mut carry = cin.unwrap_or(AigLit::FALSE);
    let mut out = Vec::with_capacity(a.len() + 1);
    for i in 0..a.len() {
        let (s, c) = aig.full_adder(a[i], b[i], carry);
        out.push(s);
        carry = c;
    }
    out.push(carry);
    out
}

/// Two's-complement subtraction `a − b`, same width as the inputs
/// (wrap-around semantics; the borrow is discarded).
///
/// # Panics
/// Panics if the words differ in width or are empty.
pub fn sub_words(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let nb: Vec<AigLit> = b.iter().map(|&x| !x).collect();
    let one = aig.const_true();
    let mut sum = add_words(aig, a, &nb, Some(one));
    sum.truncate(a.len());
    sum
}

/// Two's-complement negation, same width (wrap-around semantics).
pub fn negate_word(aig: &mut Aig, a: &[AigLit]) -> Vec<AigLit> {
    let zeros: Vec<AigLit> = vec![AigLit::FALSE; a.len()];
    sub_words(aig, &zeros, a)
}

/// Shift right by a constant amount; `arithmetic` replicates the sign bit,
/// otherwise zeros shift in. Width is preserved.
pub fn shift_right_arith(
    aig: &mut Aig,
    a: &[AigLit],
    amount: usize,
    arithmetic: bool,
) -> Vec<AigLit> {
    let w = a.len();
    let fill = if arithmetic {
        *a.last().expect("non-empty word")
    } else {
        aig.const_false()
    };
    (0..w)
        .map(|i| if i + amount < w { a[i + amount] } else { fill })
        .collect()
}

/// Array multiplication with carry-save column reduction; the product is
/// `a.len() + b.len()` bits wide.
///
/// # Panics
/// Panics if either operand is empty.
pub fn mul_words(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> Vec<AigLit> {
    assert!(!a.is_empty() && !b.is_empty(), "empty operands");
    let out_w = a.len() + b.len();
    let mut columns: Vec<Vec<AigLit>> = vec![Vec::new(); out_w];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = aig.and(ai, bj);
            if pp != AigLit::FALSE {
                columns[i + j].push(pp);
            }
        }
    }
    reduce_columns(aig, columns)
}

/// Squaring with the folded partial-product trick
/// (`aᵢaⱼ + aⱼaᵢ = aᵢaⱼ` shifted up one column; `aᵢaᵢ = aᵢ`).
///
/// # Panics
/// Panics if the operand is empty.
pub fn square_word(aig: &mut Aig, a: &[AigLit]) -> Vec<AigLit> {
    assert!(!a.is_empty(), "empty operand");
    let out_w = 2 * a.len();
    let mut columns: Vec<Vec<AigLit>> = vec![Vec::new(); out_w];
    for i in 0..a.len() {
        columns[2 * i].push(a[i]); // aᵢ·aᵢ = aᵢ at weight 2i
        for j in (i + 1)..a.len() {
            let pp = aig.and(a[i], a[j]);
            if pp != AigLit::FALSE {
                columns[i + j + 1].push(pp); // doubled cross term
            }
        }
    }
    reduce_columns(aig, columns)
}

/// Carry-save reduction of weighted columns followed by a final ripple add.
fn reduce_columns(aig: &mut Aig, mut columns: Vec<Vec<AigLit>>) -> Vec<AigLit> {
    let out_w = columns.len();
    loop {
        let mut any = false;
        let mut next: Vec<Vec<AigLit>> = vec![Vec::new(); out_w + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while i + 2 < col.len() {
                let (s, c) = aig.full_adder(col[i], col[i + 1], col[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                any = true;
                i += 3;
            }
            if i + 1 < col.len() && col.len() > 2 {
                let (s, c) = aig.half_adder(col[i], col[i + 1]);
                next[w].push(s);
                next[w + 1].push(c);
                any = true;
                i += 2;
            }
            while i < col.len() {
                next[w].push(col[i]);
                i += 1;
            }
        }
        next.truncate(out_w);
        columns = next;
        if !any {
            break;
        }
    }
    // Two rows remain; final ripple-carry pass.
    let mut row_a = Vec::with_capacity(out_w);
    let mut row_b = Vec::with_capacity(out_w);
    for col in &columns {
        debug_assert!(col.len() <= 2, "reduction leaves at most two rows");
        row_a.push(col.first().copied().unwrap_or(AigLit::FALSE));
        row_b.push(col.get(1).copied().unwrap_or(AigLit::FALSE));
    }
    let mut sum = add_words(aig, &row_a, &row_b, None);
    sum.truncate(out_w);
    sum
}
