//! The remaining EPFL arithmetic benchmarks, beyond the paper's Table I
//! subset: barrel shifter (`bar`), four-way maximum (`max`), restoring
//! divider (`div`), integer square root (`sqrt`) and hypotenuse (`hyp`).
//!
//! The paper evaluates on eight circuits; these five complete the EPFL
//! arithmetic set so the flow can be exercised on *control-flavoured*
//! datapaths too (shifters and comparators are mux/AND-rich rather than
//! FA-rich — exactly where T1 cells should *not* fire, which makes them the
//! interesting negative control for detection).

use crate::arith::{add_words, sub_words};
use sfq_netlist::{Aig, AigLit};

/// Logarithmic barrel shifter: rotates the `width`-bit input left by the
/// `shift`-bit amount (EPFL `bar`: width 128, shift 7).
///
/// # Panics
/// Panics unless `width == 1 << shift_bits` and `shift_bits ≥ 1`.
pub fn bar(width: usize, shift_bits: usize) -> Aig {
    assert!(
        shift_bits >= 1 && width == 1 << shift_bits,
        "width must be 2^shift_bits"
    );
    let mut aig = Aig::new(format!("bar{width}"));
    let x = aig.input_word("x", width);
    let s = aig.input_word("s", shift_bits);
    let mut cur = x;
    for (k, &sk) in s.iter().enumerate() {
        let amount = 1usize << k;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            // Rotate left by `amount` when sk is set.
            let rotated = cur[(i + width - amount) % width];
            next.push(aig.mux(sk, rotated, cur[i]));
        }
        cur = next;
    }
    aig.output_word("y", &cur);
    aig
}

/// Reference model for [`bar`]: rotate-left within `width` bits.
pub fn bar_ref(x: u64, shift: u32, width: usize) -> u64 {
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let s = shift % width as u32;
    ((x << s) | (x >> (width as u32 - s).min(63))) & mask
}

/// Unsigned `a > b` comparator via the carry-out of `a + ¬b`.
fn gt(aig: &mut Aig, a: &[AigLit], b: &[AigLit]) -> AigLit {
    let nb: Vec<AigLit> = b.iter().map(|&x| !x).collect();
    let sum = add_words(aig, a, &nb, None);
    *sum.last().expect("carry-out")
}

/// Word-level two-way multiplexer.
fn mux_word(aig: &mut Aig, sel: AigLit, t: &[AigLit], e: &[AigLit]) -> Vec<AigLit> {
    t.iter().zip(e).map(|(&x, &y)| aig.mux(sel, x, y)).collect()
}

/// Four-way maximum of `bits`-wide unsigned words (EPFL `max`: four 128-bit
/// operands).
pub fn max4(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("max{bits}"));
    let words: Vec<Vec<AigLit>> = (0..4)
        .map(|k| aig.input_word(&format!("w{k}"), bits))
        .collect();
    let m01 = {
        let c = gt(&mut aig, &words[0], &words[1]);
        mux_word(&mut aig, c, &words[0], &words[1])
    };
    let m23 = {
        let c = gt(&mut aig, &words[2], &words[3]);
        mux_word(&mut aig, c, &words[2], &words[3])
    };
    let c = gt(&mut aig, &m01, &m23);
    let m = mux_word(&mut aig, c, &m01, &m23);
    aig.output_word("max", &m);
    aig
}

/// Restoring division: `bits`-bit dividend and divisor, producing quotient
/// and remainder (EPFL `div` is 128/128).
///
/// Division by zero yields an all-ones quotient and `remainder = dividend`,
/// matching [`div_ref`].
pub fn div_restoring(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("div{bits}"));
    let n = aig.input_word("n", bits);
    let d = aig.input_word("d", bits);

    // Work in a 'bits+1'-wide remainder so the trial subtraction's borrow
    // is observable as the carry-out.
    let zero = aig.const_false();
    let mut rem: Vec<AigLit> = vec![zero; bits + 1];
    let dz: Vec<AigLit> = {
        let mut w = d.clone();
        w.push(zero);
        w
    };
    let mut quot: Vec<AigLit> = vec![zero; bits];
    for i in (0..bits).rev() {
        // rem = (rem << 1) | n[i]. The restoring invariant keeps rem within
        // `bits` bits before the shift, so the rotated-in top bit is 0.
        rem.rotate_right(1);
        rem[0] = n[i];
        // Trial subtraction.
        let diff = sub_words(&mut aig, &rem, &dz);
        // rem ≥ d ⟺ diff's sign bit (bit `bits`) is 0.
        let ge = !diff[bits];
        quot[i] = ge;
        rem = mux_word(&mut aig, ge, &diff, &rem);
    }
    aig.output_word("q", &quot);
    aig.output_word("r", &rem[..bits]);
    aig
}

/// Reference model for [`div_restoring`].
pub fn div_ref(n: u64, d: u64, bits: usize) -> (u64, u64) {
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    match n.checked_div(d) {
        None => (mask, n & mask),
        Some(q) => (q & mask, (n % d) & mask),
    }
}

/// Digit-by-digit (non-restoring flavoured) integer square root of a
/// `bits`-bit input (`bits` even), producing a `bits/2`-bit root
/// (EPFL `sqrt` is 128 → 64).
///
/// # Panics
/// Panics if `bits` is odd or zero.
pub fn sqrt_word(bits: usize) -> Aig {
    assert!(
        bits >= 2 && bits.is_multiple_of(2),
        "sqrt needs an even width"
    );
    let mut aig = Aig::new(format!("sqrt{bits}"));
    let x = aig.input_word("x", bits);
    let half = bits / 2;
    let zero = aig.const_false();
    let one = aig.const_true();

    // Classic bit-pair digit recurrence, fully unrolled:
    //   rem = (rem << 2) | next two bits;  trial = (root << 2) | 1;
    //   if rem ≥ trial { rem -= trial; root = (root << 1) | 1 }
    //   else           { root = root << 1 }
    // Width bits+2 suffices for rem and trial at every step.
    let w = bits + 2;
    let mut rem: Vec<AigLit> = vec![zero; w];
    let mut root: Vec<AigLit> = vec![zero; w];
    for step in 0..half {
        let hi = bits - 1 - 2 * step;
        let lo = bits - 2 - 2 * step;
        // rem = (rem << 2) | x[hi..lo]
        let mut nrem = vec![zero; w];
        nrem[2..w].copy_from_slice(&rem[..w - 2]);
        nrem[1] = x[hi];
        nrem[0] = x[lo];
        // trial = (root << 2) | 1
        let mut trial = vec![zero; w];
        trial[2..w].copy_from_slice(&root[..w - 2]);
        trial[0] = one;
        let diff = sub_words(&mut aig, &nrem, &trial);
        let ge = {
            // nrem ≥ trial ⟺ no borrow ⟺ carry-out of nrem + ¬trial + 1.
            let nt: Vec<AigLit> = trial.iter().map(|&t| !t).collect();
            let sum = add_words(&mut aig, &nrem, &nt, Some(one));
            sum[w]
        };
        rem = mux_word(&mut aig, ge, &diff, &nrem);
        // root = (root << 1) | ge
        let mut nroot = vec![zero; w];
        nroot[1..w].copy_from_slice(&root[..w - 1]);
        nroot[0] = ge;
        root = nroot;
    }
    aig.output_word("root", &root[..half]);
    aig
}

/// Reference model for [`sqrt_word`].
pub fn sqrt_ref(x: u64) -> u64 {
    let mut r = (x as f64).sqrt() as u64;
    // Float sqrt can be off by one at either end; fix exactly.
    while r.checked_mul(r).is_none_or(|sq| sq > x) {
        r -= 1;
    }
    while (r + 1).checked_mul(r + 1).is_some_and(|sq| sq <= x) {
        r += 1;
    }
    r
}

/// Hypotenuse `⌊√(a² + b²)⌋` of two `bits`-bit operands (EPFL `hyp` is
/// 128-bit; dominated by the squarers and the root recurrence).
pub fn hyp(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("hyp{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let a2 = crate::arith::square_word(&mut aig, &a);
    let b2 = crate::arith::square_word(&mut aig, &b);
    let sum = add_words(&mut aig, &a2, &b2, None); // 2·bits + 1 wide
                                                   // Pad to the next even width for the sqrt recurrence.
    let mut padded = sum;
    if padded.len() % 2 == 1 {
        padded.push(aig.const_false());
    }
    let root = sqrt_inline(&mut aig, &padded);
    aig.output_word("h", &root);
    aig
}

/// Square-root recurrence over an existing word (shared by [`hyp`]).
fn sqrt_inline(aig: &mut Aig, x: &[AigLit]) -> Vec<AigLit> {
    let bits = x.len();
    assert!(bits.is_multiple_of(2));
    let half = bits / 2;
    let zero = aig.const_false();
    let one = aig.const_true();
    let w = bits + 2;
    let mut rem: Vec<AigLit> = vec![zero; w];
    let mut root: Vec<AigLit> = vec![zero; w];
    for step in 0..half {
        let hi = bits - 1 - 2 * step;
        let lo = bits - 2 - 2 * step;
        let mut nrem = vec![zero; w];
        nrem[2..w].copy_from_slice(&rem[..w - 2]);
        nrem[1] = x[hi];
        nrem[0] = x[lo];
        let mut trial = vec![zero; w];
        trial[2..w].copy_from_slice(&root[..w - 2]);
        trial[0] = one;
        let diff = sub_words(aig, &nrem, &trial);
        let ge = {
            let nt: Vec<AigLit> = trial.iter().map(|&t| !t).collect();
            let sum = add_words(aig, &nrem, &nt, Some(one));
            sum[w]
        };
        rem = mux_word(aig, ge, &diff, &nrem);
        let mut nroot = vec![zero; w];
        nroot[1..w].copy_from_slice(&root[..w - 1]);
        nroot[0] = ge;
        root = nroot;
    }
    root[..half].to_vec()
}

/// Reference model for [`hyp`].
pub fn hyp_ref(a: u64, b: u64) -> u64 {
    sqrt_ref(a * a + b * b)
}

/// Number of parity-check bits of the [`ecc`] circuit (as in ISCAS-85
/// c499: eight check bits over 32 data bits).
pub const ECC_CHECK_BITS: usize = 8;

/// The syndrome code of data bit `i`: distinct and nonzero, so the zero
/// syndrome means "no error" and each single-bit error is identifiable.
fn ecc_code(i: usize) -> u8 {
    (i + 1) as u8
}

/// c499-style single-error-correcting circuit: `bits` data inputs plus
/// [`ECC_CHECK_BITS`] received check bits; outputs are the corrected data.
///
/// Three XOR-dominated layers (the ISCAS-85 c499/c1355 function family):
/// parity-check XOR trees over data subsets, syndrome formation
/// (received ⊕ computed), and per-bit correction `d_i ⊕ (syndrome ==
/// code_i)` through XNOR/AND compare trees. XOR-rich but MAJ-free — the
/// sharpest negative control for T1 detection: the T1's `S` output alone
/// cannot justify a cell, because a group needs at least two distinct
/// member functions over the same leaves (paper §II-A, `2 ≤ n ≤ 5`).
///
/// # Panics
/// Panics unless `1 ≤ bits ≤ 64` (the reference model packs data in `u64`
/// and every code must fit the check width).
pub fn ecc(bits: usize) -> Aig {
    assert!((1..=64).contains(&bits), "1..=64 data bits");
    assert!(
        bits < (1 << ECC_CHECK_BITS),
        "codes must fit the check width"
    );
    let mut aig = Aig::new(format!("c499_{bits}"));
    let d = aig.input_word("d", bits);
    let r = aig.input_word("r", ECC_CHECK_BITS);

    // Parity-check XOR trees folded into the received bits: the syndrome.
    let mut syndrome = Vec::with_capacity(ECC_CHECK_BITS);
    for (j, &rj) in r.iter().enumerate() {
        let mut p = rj;
        for (i, &di) in d.iter().enumerate() {
            if ecc_code(i) >> j & 1 == 1 {
                p = aig.xor(p, di);
            }
        }
        syndrome.push(p);
    }

    // Correction: flip data bit i iff the syndrome equals its code.
    let mut outs = Vec::with_capacity(bits);
    for (i, &di) in d.iter().enumerate() {
        let code = ecc_code(i);
        let mut matches = aig.const_true();
        for (j, &sj) in syndrome.iter().enumerate() {
            let lit = if code >> j & 1 == 1 { sj } else { !sj };
            matches = aig.and(matches, lit);
        }
        outs.push(aig.xor(di, matches));
    }
    aig.output_word("o", &outs);
    aig
}

/// Software reference of [`ecc`]: the corrected word given `data` and the
/// `check` bits as received.
pub fn ecc_ref(data: u64, check: u8, bits: usize) -> u64 {
    let syndrome = check ^ ecc_encode(data, bits);
    match (0..bits).find(|&i| ecc_code(i) == syndrome) {
        Some(i) => data ^ (1 << i),
        None => data,
    }
}

/// The check bits a transmitter would attach to `data` (zero syndrome on a
/// clean channel).
pub fn ecc_encode(data: u64, bits: usize) -> u8 {
    let mut parity = 0u8;
    for i in 0..bits {
        if data >> i & 1 == 1 {
            parity ^= ecc_code(i);
        }
    }
    parity
}

/// The extended EPFL arithmetic set (the circuits the paper's Table I does
/// not cover) plus the c499-style ECC control, with the same
/// build/build-small interface as [`Benchmark`](crate::Benchmark).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtBenchmark {
    /// 128-bit barrel shifter (EPFL `bar`).
    Bar,
    /// Four-way 128-bit maximum (EPFL `max`).
    Max,
    /// 64/64 restoring divider (EPFL `div` is 128/128; one size down keeps
    /// the O(bits²) recurrence tractable).
    Div,
    /// 64-bit integer square root (EPFL `sqrt` is 128-bit).
    Sqrt,
    /// 32-bit hypotenuse (EPFL `hyp` is 128-bit).
    Hyp,
    /// 32-bit single-error corrector (ISCAS-85 `c499` stand-in).
    Ecc,
}

impl ExtBenchmark {
    /// All extended benchmarks.
    pub const ALL: [ExtBenchmark; 6] = [
        ExtBenchmark::Bar,
        ExtBenchmark::Max,
        ExtBenchmark::Div,
        ExtBenchmark::Sqrt,
        ExtBenchmark::Hyp,
        ExtBenchmark::Ecc,
    ];

    /// The EPFL/ISCAS suite's name.
    pub fn name(self) -> &'static str {
        match self {
            ExtBenchmark::Bar => "bar",
            ExtBenchmark::Max => "max",
            ExtBenchmark::Div => "div",
            ExtBenchmark::Sqrt => "sqrt",
            ExtBenchmark::Hyp => "hyp",
            ExtBenchmark::Ecc => "c499",
        }
    }

    /// Generates the benchmark at evaluation scale.
    pub fn build(self) -> Aig {
        match self {
            ExtBenchmark::Bar => bar(128, 7),
            ExtBenchmark::Max => max4(128),
            ExtBenchmark::Div => div_restoring(64),
            ExtBenchmark::Sqrt => sqrt_word(64),
            ExtBenchmark::Hyp => hyp(32),
            ExtBenchmark::Ecc => ecc(32),
        }
    }

    /// Generates a scaled-down instance for fast tests (same structure).
    pub fn build_small(self) -> Aig {
        match self {
            ExtBenchmark::Bar => bar(16, 4),
            ExtBenchmark::Max => max4(12),
            ExtBenchmark::Div => div_restoring(8),
            ExtBenchmark::Sqrt => sqrt_word(12),
            ExtBenchmark::Hyp => hyp(6),
            ExtBenchmark::Ecc => ecc(12),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pack(values: &[u64], bits: usize) -> Vec<u64> {
        let mut pats = vec![0u64; bits];
        for (lane, &v) in values.iter().enumerate() {
            for (i, p) in pats.iter_mut().enumerate() {
                *p |= ((v >> i) & 1) << lane;
            }
        }
        pats
    }

    fn unpack(outs: &[u64], lane: usize) -> u64 {
        outs.iter()
            .enumerate()
            .fold(0, |acc, (i, &o)| acc | ((o >> lane) & 1) << i)
    }

    #[test]
    fn bar_rotates() {
        let (width, sbits) = (16, 4);
        let aig = bar(width, sbits);
        let xs: Vec<u64> = (0..32).map(|i| (i * 2654435761u64) & 0xFFFF).collect();
        let ss: Vec<u64> = (0..32).map(|i| i % 16).collect();
        let mut pats = pack(&xs, width);
        pats.extend(pack(&ss, sbits));
        let outs = aig.simulate(&pats);
        for lane in 0..32 {
            assert_eq!(
                unpack(&outs, lane),
                bar_ref(xs[lane], ss[lane] as u32, width),
                "rot({:#x}, {})",
                xs[lane],
                ss[lane]
            );
        }
    }

    #[test]
    fn max4_selects_the_maximum() {
        let bits = 10;
        let aig = max4(bits);
        let mask = (1u64 << bits) - 1;
        let words: Vec<Vec<u64>> = (0..4)
            .map(|k| {
                (0..64)
                    .map(|i| (i * 37 + k * 911 + 5) as u64 & mask)
                    .collect()
            })
            .collect();
        let mut pats = Vec::new();
        for w in &words {
            pats.extend(pack(w, bits));
        }
        let outs = aig.simulate(&pats);
        for lane in 0..64 {
            let expect = words.iter().map(|w| w[lane]).max().unwrap();
            assert_eq!(unpack(&outs, lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn div_divides_including_by_zero() {
        let bits = 8;
        let aig = div_restoring(bits);
        let ns: Vec<u64> = (0..64).map(|i| (i * 73 + 19) & 0xFF).collect();
        let mut ds: Vec<u64> = (0..64).map(|i| (i * 31 + 1) & 0xFF).collect();
        ds[7] = 0; // exercise the division-by-zero contract
        ds[23] = 0;
        let mut pats = pack(&ns, bits);
        pats.extend(pack(&ds, bits));
        let outs = aig.simulate(&pats);
        for (lane, (&n, &d)) in ns.iter().zip(&ds).enumerate() {
            let q = unpack(&outs[..bits], lane);
            let r = unpack(&outs[bits..], lane);
            let (eq, er) = div_ref(n, d, bits);
            assert_eq!((q, r), (eq, er), "{n} / {d}");
        }
    }

    #[test]
    fn sqrt_roots_every_10bit_input() {
        let bits = 10;
        let aig = sqrt_word(bits);
        for chunk in (0..(1u64 << bits)).collect::<Vec<_>>().chunks(64) {
            let pats = pack(chunk, bits);
            let outs = aig.simulate(&pats);
            for (lane, &x) in chunk.iter().enumerate() {
                assert_eq!(unpack(&outs, lane), sqrt_ref(x), "sqrt({x})");
            }
        }
    }

    #[test]
    fn hyp_is_a_hypotenuse() {
        let bits = 6;
        let aig = hyp(bits);
        let avals: Vec<u64> = (0..64).map(|i| i & 0x3F).collect();
        let bvals: Vec<u64> = (0..64).map(|i| (i * 7 + 3) & 0x3F).collect();
        let mut pats = pack(&avals, bits);
        pats.extend(pack(&bvals, bits));
        let outs = aig.simulate(&pats);
        for lane in 0..64 {
            assert_eq!(
                unpack(&outs, lane),
                hyp_ref(avals[lane], bvals[lane]),
                "hyp({}, {})",
                avals[lane],
                bvals[lane]
            );
        }
    }

    #[test]
    fn ecc_matches_reference_on_random_traffic() {
        let bits = 16;
        let aig = ecc(bits);
        let data: Vec<u64> = (0..64).map(|i| (i * 2654435761u64) & 0xFFFF).collect();
        let check: Vec<u64> = (0..64).map(|i| (i * 40503 + 17) & 0xFF).collect();
        let mut pats = pack(&data, bits);
        pats.extend(pack(&check, ECC_CHECK_BITS));
        let outs = aig.simulate(&pats);
        for lane in 0..64 {
            assert_eq!(
                unpack(&outs, lane),
                ecc_ref(data[lane], check[lane] as u8, bits),
                "ecc({:#x}, {:#04x})",
                data[lane],
                check[lane]
            );
        }
    }

    #[test]
    fn ecc_corrects_every_single_bit_error() {
        let bits = 12;
        let aig = ecc(bits);
        let word = 0b1010_0110_1101u64;
        let check = ecc_encode(word, bits);
        // Clean word passes through, every 1-bit corruption is repaired.
        let mut corrupted: Vec<u64> = vec![word];
        corrupted.extend((0..bits).map(|i| word ^ (1 << i)));
        let checks = vec![check as u64; corrupted.len()];
        let mut pats = pack(&corrupted, bits);
        pats.extend(pack(&checks, ECC_CHECK_BITS));
        let outs = aig.simulate(&pats);
        for lane in 0..corrupted.len() {
            assert_eq!(
                unpack(&outs, lane),
                word,
                "bit-{} error must be repaired",
                lane.wrapping_sub(1)
            );
        }
    }

    #[test]
    fn ecc_reference_round_trips_the_encoder() {
        for data in [0u64, 1, 0xFFF, 0xA5A, 0x123] {
            let check = ecc_encode(data, 12);
            assert_eq!(ecc_ref(data, check, 12), data, "clean {data:#x}");
        }
    }

    #[test]
    fn sqrt_ref_is_exact_at_boundaries() {
        for x in [0u64, 1, 2, 3, 4, 8, 15, 16, 17, 24, 25, 26, u32::MAX as u64] {
            let r = sqrt_ref(x);
            assert!(r * r <= x, "floor property at {x}");
            assert!((r + 1) * (r + 1) > x, "tightness at {x}");
        }
    }
}
