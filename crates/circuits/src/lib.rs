//! Structural generators for the paper's benchmark circuits.
//!
//! The paper evaluates on EPFL and ISCAS-85 arithmetic benchmarks. The
//! original suites ship as AIGER/Verilog files; this crate regenerates
//! functionally-verified implementations of the *same arithmetic functions*
//! from scratch (see DESIGN.md §5 for the substitution argument):
//!
//! | paper benchmark | generator | function |
//! |---|---|---|
//! | `adder`      | [`adder`]       | 128-bit ripple-carry addition |
//! | `c6288`      | [`c6288`]       | 16×16 array multiplier (c6288's function) |
//! | `c7552`      | [`c7552`]       | 34-bit adder/comparator/parity mix |
//! | `sin`        | [`sin_cordic`]  | fixed-point sine via CORDIC rotations |
//! | `voter`      | [`voter`]       | 1001-input majority via FA popcount tree |
//! | `square`     | [`square`]      | 64-bit squarer (folded partial products) |
//! | `multiplier` | [`multiplier`]  | array multiplier (64×64 in Table I runs) |
//! | `log2`       | [`log2_shift_add`] | fixed-point log₂ via normalize + digit recurrence |
//!
//! Every generator returns an [`Aig`]; integration tests verify each against
//! plain software arithmetic via bit-parallel simulation. Sizes are
//! parameterized so tests can run scaled-down instances.

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

use sfq_netlist::{Aig, AigLit};

mod arith;
pub mod ext;
pub mod reference;

pub use arith::{add_words, mul_words, negate_word, shift_right_arith, square_word, sub_words};
pub use ext::{bar, div_restoring, hyp, max4, sqrt_word, ExtBenchmark};

/// The benchmark set of the paper's Table I, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// 128-bit adder (EPFL `adder`).
    Adder,
    /// ISCAS-85 c7552 stand-in.
    C7552,
    /// ISCAS-85 c6288: 16×16 multiplier.
    C6288,
    /// EPFL `sin` stand-in (CORDIC).
    Sin,
    /// EPFL `voter` stand-in (1001-input majority).
    Voter,
    /// EPFL `square` stand-in (64-bit squarer).
    Square,
    /// EPFL `multiplier` stand-in.
    Multiplier,
    /// EPFL `log2` stand-in.
    Log2,
}

impl Benchmark {
    /// All benchmarks in Table I row order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Adder,
        Benchmark::C7552,
        Benchmark::C6288,
        Benchmark::Sin,
        Benchmark::Voter,
        Benchmark::Square,
        Benchmark::Multiplier,
        Benchmark::Log2,
    ];

    /// The paper's name for the row.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Adder => "adder",
            Benchmark::C7552 => "c7552",
            Benchmark::C6288 => "c6288",
            Benchmark::Sin => "sin",
            Benchmark::Voter => "voter",
            Benchmark::Square => "square",
            Benchmark::Multiplier => "multiplier",
            Benchmark::Log2 => "log2",
        }
    }

    /// Generates the benchmark at full (paper) scale.
    pub fn build(self) -> Aig {
        match self {
            Benchmark::Adder => adder(128),
            Benchmark::C7552 => c7552(),
            Benchmark::C6288 => c6288(),
            Benchmark::Sin => sin_cordic(24, 12),
            Benchmark::Voter => voter(1001),
            Benchmark::Square => square(64),
            Benchmark::Multiplier => multiplier(64),
            Benchmark::Log2 => log2_shift_add(32),
        }
    }

    /// Generates a scaled-down instance for fast tests (same structure).
    pub fn build_small(self) -> Aig {
        match self {
            Benchmark::Adder => adder(16),
            Benchmark::C7552 => c7552_sized(8),
            Benchmark::C6288 => mult_sized("c6288", 6),
            Benchmark::Sin => sin_cordic(10, 6),
            Benchmark::Voter => voter(31),
            Benchmark::Square => square(10),
            Benchmark::Multiplier => multiplier(8),
            Benchmark::Log2 => log2_shift_add(8),
        }
    }
}

/// `bits`-bit ripple-carry adder: `s = a + b` with carry-out
/// (EPFL `adder` is a 128-bit adder).
pub fn adder(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("adder{bits}"));
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let sum = add_words(&mut aig, &a, &b, None);
    aig.output_word("s", &sum);
    aig
}

/// `bits`×`bits` array multiplier (EPFL `multiplier` is 64×64).
pub fn multiplier(bits: usize) -> Aig {
    mult_sized(&format!("multiplier{bits}"), bits)
}

/// ISCAS-85 c6288: a 16×16 array multiplier.
pub fn c6288() -> Aig {
    mult_sized("c6288", 16)
}

fn mult_sized(name: &str, bits: usize) -> Aig {
    let mut aig = Aig::new(name.to_string());
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let p = mul_words(&mut aig, &a, &b);
    aig.output_word("p", &p);
    aig
}

/// `bits`-bit squarer: `p = a²` (EPFL `square` is 64-bit).
pub fn square(bits: usize) -> Aig {
    let mut aig = Aig::new(format!("square{bits}"));
    let a = aig.input_word("a", bits);
    let p = square_word(&mut aig, &a);
    aig.output_word("p", &p);
    aig
}

/// 1001-input (or any odd `n`) majority via a full-adder popcount tree and
/// final comparison against `n/2` (EPFL `voter`).
///
/// # Panics
/// Panics if `n` is even or below 3.
pub fn voter(n: usize) -> Aig {
    assert!(
        n >= 3 && n % 2 == 1,
        "majority needs an odd input count ≥ 3"
    );
    let mut aig = Aig::new(format!("voter{n}"));
    let ins = aig.input_word("x", n);

    // Carry-save popcount: repeatedly compress columns of equal weight with
    // full adders — exactly the FA-rich structure T1 cells feed on.
    let mut columns: Vec<Vec<AigLit>> = vec![ins];
    loop {
        let mut next: Vec<Vec<AigLit>> = vec![Vec::new(); columns.len() + 1];
        let mut any_compress = false;
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            while i + 2 < col.len() {
                let (s, c) = aig.full_adder(col[i], col[i + 1], col[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                any_compress = true;
                i += 3;
            }
            if i + 1 < col.len() {
                let (s, c) = aig.half_adder(col[i], col[i + 1]);
                next[w].push(s);
                next[w + 1].push(c);
                any_compress = true;
                i += 2;
            }
            while i < col.len() {
                next[w].push(col[i]);
                i += 1;
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
        if !any_compress {
            break;
        }
    }
    // At most two entries per column remain: add the two rows and compare
    // count ≥ (n+1)/2 via the adder's carry-out.
    let width = columns.len();
    let mut wa: Vec<AigLit> = Vec::with_capacity(width);
    let mut wb: Vec<AigLit> = Vec::with_capacity(width);
    for col in &columns {
        assert!(col.len() <= 2, "popcount reduction leaves ≤ 2 per column");
        wa.push(col.first().copied().unwrap_or(AigLit::FALSE));
        wb.push(col.get(1).copied().unwrap_or(AigLit::FALSE));
    }
    let count = add_words(&mut aig, &wa, &wb, None);
    // count ≥ threshold ⟺ count + (2^w − threshold) produces a carry.
    let threshold = (n as u64).div_ceil(2);
    let w = count.len();
    let comp = (1u64 << w) - threshold;
    let comp_bits: Vec<AigLit> = (0..w)
        .map(|i| {
            if comp >> i & 1 == 1 {
                aig.const_true()
            } else {
                aig.const_false()
            }
        })
        .collect();
    let sum = add_words(&mut aig, &count, &comp_bits, None);
    let maj = *sum.last().unwrap(); // carry-out = comparison result
    aig.output("maj", maj);
    aig
}

/// Fixed-point sine via CORDIC rotation (EPFL `sin` computes sin on 24 bits;
/// this generator uses a `bits`-wide datapath and `iters` rotations).
///
/// The input word is an angle expressed as a `bits`-bit fraction of π
/// (meaningful domain `[0, π/2)`, i.e. inputs below `2^(bits−1)`); outputs
/// are the sine and cosine scaled by `2^(bits−2)`.
/// [`reference::sin_cordic_ref`] implements the bit-identical software model.
pub fn sin_cordic(bits: usize, iters: usize) -> Aig {
    assert!(
        (6..=28).contains(&bits),
        "datapath width out of supported range"
    );
    let mut aig = Aig::new(format!("sin{bits}"));
    let theta = aig.input_word("theta", bits);

    let consts = reference::cordic_constants(bits, iters);
    let const_word = |aig: &mut Aig, v: u64, w: usize| -> Vec<AigLit> {
        (0..w)
            .map(|i| {
                if v >> i & 1 == 1 {
                    aig.const_true()
                } else {
                    aig.const_false()
                }
            })
            .collect()
    };

    let mut x = const_word(&mut aig, consts.k_scaled, bits);
    let mut y = const_word(&mut aig, 0, bits);
    let mut z: Vec<AigLit> = theta.clone();

    for (i, &atan) in consts.atan_table.iter().enumerate() {
        let atan_w = const_word(&mut aig, atan, bits);
        // Rotation direction: MSB of z (two's complement sign).
        let neg = *z.last().unwrap();
        let xs = shift_right_arith(&mut aig, &x, i, true);
        let ys = shift_right_arith(&mut aig, &y, i, true);
        let x_minus = sub_words(&mut aig, &x, &ys);
        let x_plus = add_words(&mut aig, &x, &ys, None);
        let y_minus = sub_words(&mut aig, &y, &xs);
        let y_plus = add_words(&mut aig, &y, &xs, None);
        let z_minus = sub_words(&mut aig, &z, &atan_w);
        let z_plus = add_words(&mut aig, &z, &atan_w, None);
        let mut nx = Vec::with_capacity(bits);
        let mut ny = Vec::with_capacity(bits);
        let mut nz = Vec::with_capacity(bits);
        for bit in 0..bits {
            // z < 0 → rotate by −atan(2^-i): x+ys, y−xs, z+atan.
            nx.push(aig.mux(neg, x_plus[bit], x_minus[bit]));
            ny.push(aig.mux(neg, y_minus[bit], y_plus[bit]));
            nz.push(aig.mux(neg, z_plus[bit], z_minus[bit]));
        }
        x = nx;
        y = ny;
        z = nz;
    }
    aig.output_word("sin", &y);
    aig.output_word("cos", &x);
    aig
}

/// Fixed-point log₂ via leading-one normalization and square-and-compare
/// digit recurrence (EPFL `log2` is 32-bit).
///
/// Outputs the leading-one position (integer part) and `max(bits/2, 4)`
/// fraction bits of `log₂` of the normalized mantissa, LSB first.
/// [`reference::log2_ref`] is the bit-identical software model.
pub fn log2_shift_add(bits: usize) -> Aig {
    assert!((4..=32).contains(&bits), "width out of supported range");
    let mut aig = Aig::new(format!("log2_{bits}"));
    let x = aig.input_word("x", bits);
    let int_bits = usize::BITS as usize - (bits - 1).leading_zeros() as usize;

    // Priority encoder for the leading one + normalizing shifter.
    let mut pos: Vec<AigLit> = vec![aig.const_false(); int_bits];
    let mut any_above = aig.const_false();
    let mut mant: Vec<AigLit> = vec![aig.const_false(); bits];
    for i in (0..bits).rev() {
        let not_above = !any_above;
        let found = aig.and(x[i], not_above);
        any_above = aig.or(any_above, x[i]);
        for (b, p) in pos.iter_mut().enumerate() {
            if i >> b & 1 == 1 {
                *p = aig.or(*p, found);
            }
        }
        let shift = bits - 1 - i;
        for j in shift..bits {
            let t = aig.and(found, x[j - shift]);
            mant[j] = aig.or(mant[j], t);
        }
    }
    // Digit recurrence on the normalized mantissa m ∈ [1, 2).
    let frac_bits = (bits / 2).max(4);
    let mut y = mant;
    let mut frac_msb_first: Vec<AigLit> = Vec::with_capacity(frac_bits);
    for _ in 0..frac_bits {
        let sq = square_word(&mut aig, &y);
        // y² ∈ [1,4) with the binary point at 2(bits−1): integer bit 2.
        let digit = sq[2 * bits - 1];
        frac_msb_first.push(digit);
        let mut ny = Vec::with_capacity(bits);
        for j in 0..bits {
            let hi = sq[bits + j]; // renormalized y²/2 when digit = 1
            let lo = sq[bits + j - 1]; // y² when digit = 0
            ny.push(aig.mux(digit, hi, lo));
        }
        y = ny;
    }
    let frac: Vec<AigLit> = frac_msb_first.into_iter().rev().collect();
    aig.output_word("int", &pos);
    aig.output_word("frac", &frac);
    aig
}

/// ISCAS-85 c7552 stand-in: a 34-bit adder plus magnitude comparator and
/// parity trees over the operands — the documented function mix of c7552.
pub fn c7552() -> Aig {
    c7552_sized(34)
}

/// Parameterized c7552 stand-in (34 bits at paper scale).
pub fn c7552_sized(bits: usize) -> Aig {
    let mut aig = Aig::new(if bits == 34 {
        "c7552".to_string()
    } else {
        format!("c7552_{bits}")
    });
    let a = aig.input_word("a", bits);
    let b = aig.input_word("b", bits);
    let cin = aig.input("cin");
    let sum = add_words(&mut aig, &a, &b, Some(cin));
    aig.output_word("s", &sum);
    // Magnitude comparison a > b via the borrow of a − b − 1... use a + ¬b:
    // carry-out = 1 ⟺ a ≥ b + 1 ⟺ a > b (unsigned).
    let nb: Vec<AigLit> = b.iter().map(|&x| !x).collect();
    let diff = add_words(&mut aig, &a, &nb, None);
    aig.output("a_gt_b", *diff.last().unwrap());
    // Parity trees.
    let mut pa = a[0];
    let mut pb = b[0];
    for i in 1..bits {
        pa = aig.xor(pa, a[i]);
        pb = aig.xor(pb, b[i]);
    }
    aig.output("par_a", pa);
    aig.output("par_b", pb);
    aig
}

#[cfg(test)]
mod tests;
