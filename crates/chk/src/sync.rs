//! Model-checked drop-ins for the `std::sync` primitives the workspace's
//! protocols use.
//!
//! Every type here is backed by the *real* std primitive (the data really
//! lives in a real `Mutex`, publications really go through a real
//! `OnceLock`), with a model gate in front: inside
//! [`Model::check`](crate::Model::check) each access is a visible
//! scheduling operation, and blocking is simulated by the scheduler rather
//! than the OS. Outside a model run every operation falls through to the
//! plain std behaviour, so a `chk`-feature build remains fully functional.
//!
//! Memory-model caveat: the scheduler serializes every shim access, so the
//! model only explores sequentially-consistent interleavings — `Ordering`
//! arguments are accepted and ignored. Relaxed-memory bugs are out of
//! scope (that is what the ThreadSanitizer CI leg is for).

use crate::sched::{ctx, ObjId, Pending};
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

/// One always-enabled visible operation, when inside a model run.
fn visible(what: &'static str) {
    if let Some((sched, tid)) = ctx() {
        sched.op(tid, Pending::Free(what));
    }
}

macro_rules! model_atomic_int {
    ($(#[$doc:meta])* $name:ident, $std:ident, $prim:ty) => {
        $(#[$doc])*
        #[derive(Debug, Default)]
        pub struct $name {
            inner: std::sync::atomic::$std,
        }

        impl $name {
            /// Creates the atomic with an initial value. Usable in `static`s.
            pub const fn new(value: $prim) -> Self {
                $name {
                    inner: std::sync::atomic::$std::new(value),
                }
            }

            /// Loads the value. The `Ordering` is accepted for signature
            /// compatibility; the model is sequentially consistent.
            pub fn load(&self, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " load"));
                self.inner.load(Ordering::SeqCst)
            }

            /// Stores a value.
            pub fn store(&self, value: $prim, _order: Ordering) {
                visible(concat!(stringify!($name), " store"));
                self.inner.store(value, Ordering::SeqCst)
            }

            /// Adds to the value, returning the previous value.
            pub fn fetch_add(&self, value: $prim, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " fetch_add"));
                self.inner.fetch_add(value, Ordering::SeqCst)
            }

            /// Subtracts from the value, returning the previous value.
            pub fn fetch_sub(&self, value: $prim, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " fetch_sub"));
                self.inner.fetch_sub(value, Ordering::SeqCst)
            }

            /// Bitwise-ors into the value, returning the previous value.
            pub fn fetch_or(&self, value: $prim, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " fetch_or"));
                self.inner.fetch_or(value, Ordering::SeqCst)
            }

            /// Stores the maximum of the value and the operand, returning
            /// the previous value.
            pub fn fetch_max(&self, value: $prim, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " fetch_max"));
                self.inner.fetch_max(value, Ordering::SeqCst)
            }

            /// Swaps in a new value, returning the previous value.
            pub fn swap(&self, value: $prim, _order: Ordering) -> $prim {
                visible(concat!(stringify!($name), " swap"));
                self.inner.swap(value, Ordering::SeqCst)
            }

            /// Compare-and-exchange; both orderings are ignored (SeqCst).
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                _success: Ordering,
                _failure: Ordering,
            ) -> Result<$prim, $prim> {
                visible(concat!(stringify!($name), " compare_exchange"));
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }

            /// Consumes the atomic, returning the value. Not a visible
            /// operation: unique ownership means no interleaving matters.
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }
        }
    };
}

model_atomic_int!(
    /// Model-checked `AtomicUsize`.
    AtomicUsize,
    AtomicUsize,
    usize
);
model_atomic_int!(
    /// Model-checked `AtomicU32`.
    AtomicU32,
    AtomicU32,
    u32
);
model_atomic_int!(
    /// Model-checked `AtomicU64`.
    AtomicU64,
    AtomicU64,
    u64
);

/// Model-checked `AtomicBool`.
#[derive(Debug, Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    /// Creates the atomic with an initial value. Usable in `static`s.
    pub const fn new(value: bool) -> Self {
        AtomicBool {
            inner: std::sync::atomic::AtomicBool::new(value),
        }
    }

    /// Loads the value (model is sequentially consistent; the `Ordering`
    /// is ignored).
    pub fn load(&self, _order: Ordering) -> bool {
        visible("AtomicBool load");
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores a value.
    pub fn store(&self, value: bool, _order: Ordering) {
        visible("AtomicBool store");
        self.inner.store(value, Ordering::SeqCst)
    }

    /// Swaps in a new value, returning the previous value.
    pub fn swap(&self, value: bool, _order: Ordering) -> bool {
        visible("AtomicBool swap");
        self.inner.swap(value, Ordering::SeqCst)
    }
}

/// Model-checked mutual exclusion: the data lives in a real `std` mutex,
/// but inside a model run acquisition order is decided by the scheduler
/// (the real lock is only ever taken once the model has granted it, so it
/// never blocks on the OS).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    obj: ObjId,
    inner: std::sync::Mutex<T>,
}

/// Guard of a [`Mutex`]; releases the real lock, then the model lock, on
/// drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mx: &'a Mutex<T>,
    std: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates the mutex. Usable in `static`s.
    pub const fn new(value: T) -> Self {
        Mutex {
            obj: ObjId::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, reproducing std's poisoning semantics.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((sched, tid)) = ctx() {
            let id = self.obj.get(&sched);
            sched.op(tid, Pending::Lock(id));
        }
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                mx: self,
                std: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                mx: self,
                std: Some(p.into_inner()),
            })),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard holds the real lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock before the model one: by the time another
        // thread can be granted the model mutex, the real mutex must
        // already be free.
        drop(self.std.take());
        if let Some((sched, tid)) = ctx() {
            let id = self.mx.obj.get(&sched);
            sched.op(tid, Pending::Unlock(id));
        }
    }
}

/// Model-checked condition variable. `notify_one` wakes the lowest-id
/// waiter instead of branching over the choice; spurious wakeups are not
/// modelled — both are documented small-model limits.
#[derive(Debug, Default)]
pub struct Condvar {
    obj: ObjId,
    real: std::sync::Condvar,
}

impl Condvar {
    /// Creates the condvar. Usable in `static`s.
    pub const fn new() -> Self {
        Condvar {
            obj: ObjId::new(),
            real: std::sync::Condvar::new(),
        }
    }

    /// Releases the guard's mutex, parks until notified, reacquires.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let mx = guard.mx;
        if let Some((sched, tid)) = ctx() {
            let m_id = mx.obj.get(&sched);
            let cv_id = self.obj.get(&sched);
            // Disassemble the guard by hand: the model releases the mutex
            // atomically inside `op_wait`, so the guard's own Drop (which
            // would emit a separate unlock op) must not run.
            {
                let mut g = guard;
                drop(g.std.take());
                std::mem::forget(g);
            }
            sched.op_wait(tid, cv_id, m_id);
            // The model granted the reacquisition, so the real lock is free.
            return match mx.inner.lock() {
                Ok(g) => Ok(MutexGuard { mx, std: Some(g) }),
                Err(p) => Err(PoisonError::new(MutexGuard {
                    mx,
                    std: Some(p.into_inner()),
                })),
            };
        }
        let std_guard = {
            let mut g = guard;
            let inner = g.std.take().expect("guard holds the real lock");
            std::mem::forget(g);
            inner
        };
        match self.real.wait(std_guard) {
            Ok(g) => Ok(MutexGuard { mx, std: Some(g) }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                mx,
                std: Some(p.into_inner()),
            })),
        }
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let Some((sched, tid)) = ctx() {
            let id = self.obj.get(&sched);
            sched.op(tid, Pending::NotifyAll(id));
        } else {
            self.real.notify_all();
        }
    }

    /// Wakes one waiter (in the model: the lowest-id one).
    pub fn notify_one(&self) {
        if let Some((sched, tid)) = ctx() {
            let id = self.obj.get(&sched);
            sched.op(tid, Pending::NotifyOne(id));
        } else {
            self.real.notify_one();
        }
    }
}

/// Model-checked write-once cell; `set` really publishes through a real
/// `std::sync::OnceLock`, so a double publication fails exactly as it
/// would in production.
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    obj: ObjId,
    inner: std::sync::OnceLock<T>,
}

/// The name the issue uses for the write-once cell; same type.
pub type OnceCell<T> = OnceLock<T>;

impl<T> OnceLock<T> {
    /// Creates an empty cell. Usable in `static`s.
    pub const fn new() -> Self {
        OnceLock {
            obj: ObjId::new(),
            inner: std::sync::OnceLock::new(),
        }
    }

    /// Reads the published value, if any.
    pub fn get(&self) -> Option<&T> {
        self.touch("OnceLock get");
        self.inner.get()
    }

    /// Publishes a value; `Err` returns it if someone else won the race.
    pub fn set(&self, value: T) -> Result<(), T> {
        self.touch("OnceLock set");
        self.inner.set(value)
    }

    /// Reads the value, publishing `f()` first if the cell is empty.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        self.touch("OnceLock get_or_init");
        self.inner.get_or_init(f)
    }

    /// Consumes the cell, returning the value if one was published. Not a
    /// visible operation: unique ownership means no interleaving matters.
    pub fn into_inner(self) -> Option<T> {
        self.inner.into_inner()
    }

    fn touch(&self, what: &'static str) {
        if let Some((sched, tid)) = ctx() {
            // Registering keeps the cell in the trace's object numbering.
            let _ = self.obj.get(&sched);
            sched.op(tid, Pending::Free(what));
        }
    }
}
