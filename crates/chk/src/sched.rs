//! The deterministic scheduler behind [`Model::check`](crate::Model::check).
//!
//! # How an execution runs
//!
//! Model code runs on real OS threads, but at most one of them makes
//! progress at any instant: every shim operation (lock, unlock, atomic
//! access, notify, wait, join, spawn) is a *visible operation* that parks
//! the calling thread, lets the scheduler pick who runs next, and only
//! proceeds once the baton comes back. Between two visible operations a
//! thread runs arbitrary straight-line code — which is exactly the
//! granularity at which distinct interleavings can differ, because shared
//! state is only ever touched through the shims.
//!
//! The scheduler is therefore a single mutex/condvar pair (`state`/`cv`)
//! handing a baton around: `ExecState::current` names the one runnable
//! thread, everyone else sleeps in [`Sched::park`].
//!
//! # How exploration works
//!
//! Each decision point records which threads were enabled. The explorer in
//! `lib.rs` replays a prescribed prefix of choices and then follows a
//! deterministic default policy (keep running the current thread while it
//! is enabled, else the lowest-id enabled thread — the default never costs
//! a preemption). Alternative choices are explored depth-first by
//! extending the prescribed prefix, skipping branches that would exceed
//! the preemption bound. Identical prefixes replay identically because
//! model code is required to be a pure function of the schedule.

use std::any::Any;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Panic payload used to tear an execution down after a violation: every
/// parked thread is woken, raises `ChkAbort` out of its current shim
/// operation, and unwinds off its stack. The root harness swallows it.
pub(crate) struct ChkAbort;

/// Monotonic execution generation. Shim objects cache their per-execution
/// model id tagged with this, so a `static` shim object that survives
/// across executions (or across two different models) re-registers instead
/// of aliasing a stale id.
static EXEC_GEN: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_gen() -> u64 {
    EXEC_GEN.fetch_add(1, Ordering::Relaxed)
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler handle + thread id of the calling thread, when it is part
/// of a model execution. Shim operations fall back to plain std behaviour
/// when this is `None` (so `chk`-feature builds still work outside
/// [`Model::check`](crate::Model::check)).
pub(crate) fn ctx() -> Option<(Arc<Sched>, usize)> {
    CTX.try_with(|c| c.borrow().clone()).ok().flatten()
}

pub(crate) fn install_ctx(sched: Arc<Sched>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// What a parked thread is about to do. The scheduler decides among
/// *enabled* pending operations; the operation's model effect is applied
/// by the owning thread once it is granted the baton.
#[derive(Clone, Debug)]
pub(crate) enum Pending {
    /// First schedule of a freshly spawned thread.
    Begin,
    /// An always-enabled operation (atomic access, OnceLock access, spawn).
    Free(&'static str),
    /// Waiting to acquire model mutex `m`. Enabled iff `m` is free.
    Lock(u32),
    /// Releasing model mutex `m`. Always enabled.
    Unlock(u32),
    /// Phase one of a condvar wait: atomically release the mutex and become
    /// a waiter. Always enabled (the caller holds the lock).
    StartWait {
        /// Condvar being waited on.
        cv: u32,
        /// Mutex released for the duration of the wait.
        mutex: u32,
    },
    /// Parked on condvar `cv`. Never enabled — a notify converts it back
    /// into `Lock(mutex)`.
    AwaitNotify {
        /// Condvar being waited on.
        cv: u32,
        /// Mutex to reacquire on wakeup.
        mutex: u32,
    },
    /// Waking every waiter of condvar `cv`. Always enabled.
    NotifyAll(u32),
    /// Waking one waiter of `cv`. The model wakes the lowest-id waiter
    /// rather than branching over the choice — see the README's
    /// small-model-limits section.
    NotifyOne(u32),
    /// Joining thread `target`. Enabled iff the target has finished.
    Join(usize),
}

impl Pending {
    fn describe(&self) -> String {
        match self {
            Pending::Begin => "begin".to_string(),
            Pending::Free(what) => (*what).to_string(),
            Pending::Lock(m) => format!("lock m{m}"),
            Pending::Unlock(m) => format!("unlock m{m}"),
            Pending::StartWait { cv, mutex } => format!("wait cv{cv} (releasing m{mutex})"),
            Pending::AwaitNotify { cv, mutex } => {
                format!("parked on cv{cv} (will relock m{mutex})")
            }
            Pending::NotifyAll(cv) => format!("notify_all cv{cv}"),
            Pending::NotifyOne(cv) => format!("notify_one cv{cv}"),
            Pending::Join(t) => format!("join t{t}"),
        }
    }
}

struct ThreadSt {
    pending: Option<Pending>,
    done: bool,
}

/// One decision point recorded beyond the prescribed prefix, in the order
/// the explorer needs to extend its DFS stack.
pub(crate) struct FrameRec {
    /// Choices that were enabled, default policy's pick first, the rest in
    /// ascending thread id.
    pub candidates: Vec<usize>,
    /// The thread that drove this decision (the one whose visible op just
    /// parked it).
    pub driver: usize,
    /// Whether the driver itself was enabled — picking anyone else then
    /// costs a preemption.
    pub driver_enabled: bool,
    /// Preemptions consumed strictly before this decision.
    pub preempt_before: usize,
}

/// Why an execution was declared wrong. Returned inside
/// [`Report`](crate::Report); each variant carries the serialized
/// operation trace of a deterministic replay of the offending schedule.
#[derive(Debug)]
pub enum Violation {
    /// No thread was runnable but some had not finished: a deadlock or a
    /// lost wakeup (threads parked on a condvar nobody will notify again).
    Deadlock {
        /// One line per unfinished thread and the operation it was stuck on.
        blocked: Vec<String>,
        /// Serialized operation trace of the offending schedule.
        trace: Vec<String>,
    },
    /// Model code panicked (a failed assertion, a double publication, a
    /// poisoned lock...).
    Panic {
        /// Rendered panic payload.
        message: String,
        /// Serialized operation trace of the offending schedule.
        trace: Vec<String>,
    },
    /// One execution exceeded `max_steps` visible operations — almost
    /// always a livelock in the model.
    StepLimit {
        /// The configured per-execution step budget that was exhausted.
        steps: usize,
        /// Serialized operation trace of the offending schedule.
        trace: Vec<String>,
    },
    /// A replayed prefix diverged: the model's behaviour is not a pure
    /// function of the schedule (it consulted time, OS randomness, or
    /// state leaked across executions).
    NondeterministicReplay {
        /// Index of the decision whose prescribed choice was not enabled.
        decision: usize,
        /// Serialized operation trace up to the divergence.
        trace: Vec<String>,
    },
}

impl Violation {
    /// The serialized operation trace of the offending schedule.
    pub fn trace(&self) -> &[String] {
        match self {
            Violation::Deadlock { trace, .. }
            | Violation::Panic { trace, .. }
            | Violation::StepLimit { trace, .. }
            | Violation::NondeterministicReplay { trace, .. } => trace,
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Deadlock { blocked, .. } => {
                writeln!(f, "deadlock / lost wakeup; unfinished threads:")?;
                for b in blocked {
                    writeln!(f, "  {b}")?;
                }
                Ok(())
            }
            Violation::Panic { message, .. } => writeln!(f, "model panic: {message}"),
            Violation::StepLimit { steps, .. } => {
                writeln!(
                    f,
                    "execution exceeded {steps} visible operations (livelock?)"
                )
            }
            Violation::NondeterministicReplay { decision, .. } => writeln!(
                f,
                "replay diverged at decision {decision}: model is not deterministic"
            ),
        }
    }
}

struct ExecState {
    threads: Vec<ThreadSt>,
    /// Held-flags of every registered model object, indexed by model id.
    /// (Only mutexes consult their flag; condvars just occupy an id.)
    objects: Vec<bool>,
    current: usize,
    /// Threads not yet finished.
    live: usize,
    prescribed: Vec<usize>,
    decisions_done: usize,
    new_frames: Vec<FrameRec>,
    preemptions: usize,
    steps: usize,
    poisoned: bool,
    done: bool,
    violation: Option<Violation>,
    trace: Vec<String>,
}

/// One execution's scheduler: the baton, the decision log, and the model
/// state of every registered object.
pub(crate) struct Sched {
    state: Mutex<ExecState>,
    cv: Condvar,
    gen: u64,
    max_steps: usize,
    trace_on: bool,
}

impl Sched {
    pub(crate) fn new(prescribed: Vec<usize>, max_steps: usize, trace_on: bool) -> Arc<Sched> {
        Arc::new(Sched {
            state: Mutex::new(ExecState {
                // Thread 0 is the root closure; it starts as the running
                // thread, so it carries no `Begin` op.
                threads: vec![ThreadSt {
                    pending: None,
                    done: false,
                }],
                objects: Vec::new(),
                current: 0,
                live: 1,
                prescribed,
                decisions_done: 0,
                new_frames: Vec::new(),
                preemptions: 0,
                steps: 0,
                poisoned: false,
                done: false,
                violation: None,
                trace: Vec::new(),
            }),
            cv: Condvar::new(),
            gen: next_gen(),
            max_steps,
            trace_on,
        })
    }

    pub(crate) fn gen(&self) -> u64 {
        self.gen
    }

    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers a model object and returns its id. Only ever called by
    /// the currently scheduled thread, so registration order — and with it
    /// every id — is a deterministic function of the schedule.
    pub(crate) fn alloc_object(&self) -> u32 {
        let mut st = self.lock_state();
        let id = st.objects.len() as u32;
        st.objects.push(false);
        id
    }

    /// Allocates a thread slot parked on `Begin`. Called from the parent
    /// thread right after its `spawn` decision point, so ids are
    /// deterministic too.
    pub(crate) fn alloc_thread(&self) -> usize {
        let mut st = self.lock_state();
        let tid = st.threads.len();
        st.threads.push(ThreadSt {
            pending: Some(Pending::Begin),
            done: false,
        });
        st.live += 1;
        tid
    }

    /// One visible operation: registers `pending`, lets the scheduler pick
    /// the next thread, parks until this thread is granted the baton, then
    /// applies the operation's model effect and returns.
    pub(crate) fn op(&self, tid: usize, pending: Pending) {
        let mut st = self.lock_state();
        if st.poisoned {
            drop(st);
            abort_current_thread();
            return;
        }
        st.threads[tid].pending = Some(pending);
        self.schedule_next(&mut st, tid);
        let Some(mut st) = self.park(st, tid) else {
            return;
        };
        let p = st.threads[tid]
            .pending
            .take()
            .expect("a granted thread still carries its pending op");
        if self.trace_on {
            let line = format!("t{tid}: {}", p.describe());
            st.trace.push(line);
        }
        Self::apply_effect(&mut st, &p);
    }

    /// The condvar-wait compound operation: one decision to atomically
    /// release the mutex and become a waiter, then a park that only a
    /// notify (converting the pending op back into a lock acquisition) can
    /// end.
    pub(crate) fn op_wait(&self, tid: usize, cv: u32, mutex: u32) {
        let mut st = self.lock_state();
        if st.poisoned {
            drop(st);
            abort_current_thread();
            return;
        }
        st.threads[tid].pending = Some(Pending::StartWait { cv, mutex });
        self.schedule_next(&mut st, tid);
        let Some(mut st) = self.park(st, tid) else {
            return;
        };
        if self.trace_on {
            let line = format!("t{tid}: wait cv{cv} (releases m{mutex})");
            st.trace.push(line);
        }
        // Granted: release the mutex and become a waiter in one atomic
        // step, then hand the baton straight on — this thread is not
        // runnable again until a notify arrives.
        st.objects[mutex as usize] = false;
        st.threads[tid].pending = Some(Pending::AwaitNotify { cv, mutex });
        self.schedule_next(&mut st, tid);
        let Some(mut st) = self.park(st, tid) else {
            return;
        };
        let p = st.threads[tid]
            .pending
            .take()
            .expect("a granted thread still carries its pending op");
        debug_assert!(
            matches!(p, Pending::Lock(m) if m == mutex),
            "a woken waiter reacquires the mutex it released"
        );
        if self.trace_on {
            let line = format!("t{tid}: woke from cv{cv}, relock m{mutex}");
            st.trace.push(line);
        }
        st.objects[mutex as usize] = true;
    }

    /// First schedule of a spawned thread; its `Begin` op was registered by
    /// the parent at allocation, so this just parks until chosen.
    pub(crate) fn thread_begin(&self, tid: usize) {
        let st = self.lock_state();
        let Some(mut st) = self.park(st, tid) else {
            return;
        };
        let p = st.threads[tid].pending.take();
        debug_assert!(matches!(p, Some(Pending::Begin)));
        if self.trace_on {
            let line = format!("t{tid}: begin");
            st.trace.push(line);
        }
    }

    /// Marks `tid` finished and hands the baton on. Runs from a drop guard,
    /// so it also fires while the thread unwinds from a real panic.
    pub(crate) fn thread_finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].pending = None;
        st.threads[tid].done = true;
        st.live -= 1;
        if st.poisoned {
            return;
        }
        if self.trace_on {
            let line = format!("t{tid}: finish");
            st.trace.push(line);
        }
        self.schedule_next(&mut st, tid);
    }

    /// Finish of the root closure. A non-`ChkAbort` panic payload here is a
    /// violation: an assertion in the model failed, or a child's panic was
    /// propagated out of a scope.
    pub(crate) fn root_finish(&self, tid: usize, panic: Option<&(dyn Any + Send)>) {
        let mut st = self.lock_state();
        st.threads[tid].pending = None;
        st.threads[tid].done = true;
        st.live -= 1;
        if st.poisoned {
            return;
        }
        if let Some(payload) = panic {
            if payload.downcast_ref::<ChkAbort>().is_none() {
                let message = panic_message(payload);
                let trace = std::mem::take(&mut st.trace);
                self.poison(&mut st, Violation::Panic { message, trace });
            }
            return;
        }
        debug_assert!(st.live == 0, "the root outlives every spawned thread");
        self.schedule_next(&mut st, tid);
    }

    fn apply_effect(st: &mut ExecState, p: &Pending) {
        match *p {
            Pending::Begin | Pending::Free(_) | Pending::Join(_) => {}
            Pending::Lock(m) => st.objects[m as usize] = true,
            Pending::Unlock(m) => st.objects[m as usize] = false,
            Pending::NotifyAll(cv) => {
                for t in &mut st.threads {
                    if let Some(Pending::AwaitNotify { cv: c, mutex }) = t.pending {
                        if c == cv {
                            t.pending = Some(Pending::Lock(mutex));
                        }
                    }
                }
            }
            Pending::NotifyOne(cv) => {
                for t in &mut st.threads {
                    if let Some(Pending::AwaitNotify { cv: c, mutex }) = t.pending {
                        if c == cv {
                            t.pending = Some(Pending::Lock(mutex));
                            break;
                        }
                    }
                }
            }
            Pending::StartWait { .. } | Pending::AwaitNotify { .. } => {
                unreachable!("wait phases are handled inside op_wait")
            }
        }
    }

    /// One scheduling decision, driven by the thread that just parked
    /// itself (or finished). Replays the prescribed prefix, then follows
    /// the default policy and records the alternatives for the explorer.
    fn schedule_next(&self, st: &mut ExecState, driver: usize) {
        if st.done || st.poisoned {
            return;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            let trace = std::mem::take(&mut st.trace);
            self.poison(
                st,
                Violation::StepLimit {
                    steps: self.max_steps,
                    trace,
                },
            );
            return;
        }
        let mut enabled: Vec<usize> = Vec::new();
        for i in 0..st.threads.len() {
            let Some(p) = &st.threads[i].pending else {
                continue;
            };
            let runnable = match *p {
                Pending::Lock(m) => !st.objects[m as usize],
                Pending::AwaitNotify { .. } => false,
                Pending::Join(t) => st.threads[t].done,
                _ => true,
            };
            if runnable {
                enabled.push(i);
            }
        }
        if enabled.is_empty() {
            if st.live == 0 {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            let blocked = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.done)
                .map(|(i, t)| {
                    let what = t
                        .pending
                        .as_ref()
                        .map_or_else(|| "running".to_string(), Pending::describe);
                    format!("t{i}: {what}")
                })
                .collect();
            let trace = std::mem::take(&mut st.trace);
            self.poison(st, Violation::Deadlock { blocked, trace });
            return;
        }
        let driver_enabled = enabled.contains(&driver);
        let choice = if st.decisions_done < st.prescribed.len() {
            let c = st.prescribed[st.decisions_done];
            if !enabled.contains(&c) {
                let trace = std::mem::take(&mut st.trace);
                self.poison(
                    st,
                    Violation::NondeterministicReplay {
                        decision: st.decisions_done,
                        trace,
                    },
                );
                return;
            }
            c
        } else {
            // Default policy: keep the driver running while it is enabled
            // (never a preemption), else the lowest-id enabled thread (a
            // free, non-preemptive context switch).
            let c = if driver_enabled { driver } else { enabled[0] };
            let mut candidates = Vec::with_capacity(enabled.len());
            candidates.push(c);
            candidates.extend(enabled.iter().copied().filter(|&e| e != c));
            st.new_frames.push(FrameRec {
                candidates,
                driver,
                driver_enabled,
                preempt_before: st.preemptions,
            });
            c
        };
        if driver_enabled && choice != driver {
            st.preemptions += 1;
        }
        st.decisions_done += 1;
        st.current = choice;
        if choice != driver {
            self.cv.notify_all();
        }
    }

    /// Sleeps until this thread is granted the baton. Returns `None` only
    /// during poisoned teardown of an already-panicking thread (the caller
    /// then skips its model effect and lets the unwind continue).
    fn park<'a>(
        &'a self,
        mut st: MutexGuard<'a, ExecState>,
        tid: usize,
    ) -> Option<MutexGuard<'a, ExecState>> {
        loop {
            if st.poisoned {
                drop(st);
                abort_current_thread();
                return None;
            }
            if st.current == tid {
                return Some(st);
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn poison(&self, st: &mut ExecState, v: Violation) {
        st.poisoned = true;
        if st.violation.is_none() {
            st.violation = Some(v);
        }
        self.cv.notify_all();
    }

    /// Extracts the execution's result once every model thread has exited.
    pub(crate) fn take_outcome(&self) -> (Option<Violation>, Vec<FrameRec>) {
        let mut st = self.lock_state();
        assert!(
            st.done || st.poisoned,
            "an execution ends either complete or poisoned"
        );
        (st.violation.take(), std::mem::take(&mut st.new_frames))
    }
}

/// Raises the teardown payload out of the calling thread, unless it is
/// already unwinding (a drop-handler op during a panic must not
/// double-panic — it just skips its model effect).
fn abort_current_thread() {
    if !std::thread::panicking() {
        std::panic::panic_any(ChkAbort);
    }
}

/// Renders a panic payload the way the test harness would.
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Lazily allocated, generation-tagged model id of one shim object.
#[derive(Debug)]
pub(crate) struct ObjId {
    /// `generation << 32 | id`; generation 0 means unassigned.
    cell: AtomicU64,
}

impl Default for ObjId {
    fn default() -> Self {
        ObjId::new()
    }
}

impl ObjId {
    pub(crate) const fn new() -> Self {
        ObjId {
            cell: AtomicU64::new(0),
        }
    }

    /// The object's id within the current execution, registering it on
    /// first use. Only the scheduled thread calls this, so no races.
    pub(crate) fn get(&self, sched: &Sched) -> u32 {
        let packed = self.cell.load(Ordering::Relaxed);
        let gen_tag = sched.gen() & 0xffff_ffff;
        if packed >> 32 == gen_tag {
            return packed as u32;
        }
        let id = sched.alloc_object();
        self.cell
            .store((gen_tag << 32) | u64::from(id), Ordering::Relaxed);
        id
    }
}
