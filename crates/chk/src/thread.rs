//! Model-checked scoped-thread spawning.
//!
//! The workspace's protocols structure their parallelism exclusively as
//! `std::thread::scope` fan-outs with explicitly joined handles, so that
//! is the shape the model supports: [`spawn_scoped`] wraps
//! `Scope::spawn`, registering the child with the scheduler, and the
//! returned handle's [`join`](ScopedJoinHandle::join) is a visible
//! operation enabled once the child finished.
//!
//! One rule for model code: **join every handle before the scope closes.**
//! `std`'s implicit join at scope exit is invisible to the scheduler — a
//! model thread that reaches it while children still wait for the baton
//! would block the real OS thread without handing the baton on, hanging
//! the execution instead of reporting a violation.

use crate::sched::{clear_ctx, ctx, install_ctx, Pending, Sched};
use std::sync::Arc;

/// Joinable handle of a model-registered scoped thread; a drop-in for
/// `std::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    std: std::thread::ScopedJoinHandle<'scope, T>,
    model: Option<usize>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, returning its result (or the panic
    /// payload, exactly like std).
    pub fn join(self) -> std::thread::Result<T> {
        if let Some(child) = self.model {
            if let Some((sched, tid)) = ctx() {
                sched.op(tid, Pending::Join(child));
            }
        }
        // In a model run the child already finished (the Join op above was
        // only enabled once it had), so this never blocks on the baton —
        // at most it waits out the child's final unwinding.
        self.std.join()
    }
}

/// Marks the thread finished in the scheduler whether the closure returns
/// or unwinds. Declared before the closure runs, so every shim guard
/// inside the closure drops (emitting its model ops) first.
struct FinishGuard {
    sched: Arc<Sched>,
    tid: usize,
}

impl Drop for FinishGuard {
    fn drop(&mut self) {
        self.sched.thread_finish(self.tid);
        clear_ctx();
    }
}

/// Spawns a scoped thread. Inside a model run the child is registered
/// with the scheduler and starts only when first scheduled; outside one,
/// this is exactly `scope.spawn(f)`.
pub fn spawn_scoped<'scope, 'env, F, T>(
    scope: &'scope std::thread::Scope<'scope, 'env>,
    f: F,
) -> ScopedJoinHandle<'scope, T>
where
    F: FnOnce() -> T + Send + 'scope,
    T: Send + 'scope,
{
    let Some((sched, tid)) = ctx() else {
        return ScopedJoinHandle {
            std: scope.spawn(f),
            model: None,
        };
    };
    // The spawn itself is a visible operation; the child slot is allocated
    // right after it, while this thread still holds the baton, so thread
    // ids are deterministic.
    sched.op(tid, Pending::Free("spawn"));
    let child = sched.alloc_thread();
    let sched2 = Arc::clone(&sched);
    let std = scope.spawn(move || {
        install_ctx(Arc::clone(&sched2), child);
        sched2.thread_begin(child);
        let _finish = FinishGuard {
            sched: sched2,
            tid: child,
        };
        f()
    });
    ScopedJoinHandle {
        std,
        model: Some(child),
    }
}
