//! `chk` — an offline, zero-dependency, loom-style model checker for the
//! workspace's synchronization protocols.
//!
//! [`Model::check`] runs a closure over and over, each time forcing a
//! different thread interleaving, until every schedule within the
//! configured preemption bound has been explored. The closure builds its
//! threads and shared state from the shims in [`sync`] and [`thread`];
//! each shim access is a scheduling decision point. Detected violations:
//!
//! - **deadlock / lost wakeup** — no thread runnable, some unfinished
//!   (includes waiters parked on a condvar nobody will notify again);
//! - **panics** — failed assertions, double publication (an
//!   `OnceLock::set(..).is_ok()` assert), poisoned locks;
//! - **livelock** — an execution exceeding the visible-op budget;
//! - **nondeterminism** — a replayed schedule diverging, i.e. model code
//!   that is not a pure function of the schedule.
//!
//! # Small-model limits
//!
//! The scheduler serializes every shim access, so only sequentially
//! consistent interleavings are explored (`Ordering` arguments are
//! ignored); `notify_one` deterministically wakes the lowest-id waiter;
//! spurious wakeups are not generated. Exhaustiveness is relative to the
//! preemption bound: a reported pass means *no violation reachable with at
//! most N preemptions*, which empirically finds the overwhelming majority
//! of real schedule bugs at N = 2 (see ARCHITECTURE.md, "Concurrency
//! correctness").
//!
//! # Writing a model
//!
//! ```
//! use chk::sync::{AtomicUsize, Mutex};
//! use std::sync::atomic::Ordering;
//!
//! let report = chk::Model::new().check(|| {
//!     let hits = AtomicUsize::new(0);
//!     let total = Mutex::new(0usize);
//!     std::thread::scope(|scope| {
//!         let h: Vec<_> = (0..2)
//!             .map(|_| {
//!                 chk::thread::spawn_scoped(scope, || {
//!                     hits.fetch_add(1, Ordering::Relaxed);
//!                     *total.lock().expect("unpoisoned") += 1;
//!                 })
//!             })
//!             .collect();
//!         for handle in h {
//!             handle.join().expect("no worker panic");
//!         }
//!     });
//!     assert_eq!(hits.load(Ordering::Relaxed), 2);
//!     assert_eq!(*total.lock().expect("unpoisoned"), 2);
//! });
//! report.assert_ok("two guarded increments");
//! ```

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod sched;
pub mod sync;
pub mod thread;

pub use sched::Violation;

use sched::{FrameRec, Sched};
use std::sync::Arc;

/// Result of exploring a model.
#[derive(Debug)]
pub struct Report {
    /// How many distinct executions (schedules) ran.
    pub executions: usize,
    /// The first violation found, if any, with a replayed trace.
    pub violation: Option<Violation>,
    /// True when exploration stopped at `max_executions` before the
    /// schedule space was exhausted — a pass with `truncated` set is *not*
    /// an exhaustiveness claim.
    pub truncated: bool,
}

impl Report {
    /// True when exploration completed with no violation.
    pub fn ok(&self) -> bool {
        self.violation.is_none() && !self.truncated
    }

    /// Panics with a rendered trace if the exploration found a violation
    /// or was truncated. `what` names the protocol under test.
    pub fn assert_ok(&self, what: &str) {
        if let Some(v) = &self.violation {
            let mut msg = format!(
                "model `{what}` failed after {} execution(s): {v}",
                self.executions
            );
            msg.push_str("schedule trace:\n");
            for line in v.trace() {
                msg.push_str("  ");
                msg.push_str(line);
                msg.push('\n');
            }
            panic!("{msg}");
        }
        assert!(
            !self.truncated,
            "model `{what}` hit the execution cap after {} executions without \
             exhausting the schedule space — raise max_executions or shrink the model",
            self.executions
        );
    }
}

/// One decision point on the explorer's DFS stack.
struct PFrame {
    candidates: Vec<usize>,
    idx: usize,
    driver: usize,
    driver_enabled: bool,
    preempt_before: usize,
}

/// A model-checking run: configure bounds, then [`check`](Model::check) a
/// closure.
#[derive(Debug, Clone)]
pub struct Model {
    preemption_bound: usize,
    max_executions: usize,
    max_steps: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model::new()
    }
}

impl Model {
    /// Defaults: preemption bound 2, at most 1&nbsp;000&nbsp;000 executions
    /// of at most 100&nbsp;000 visible operations each.
    pub fn new() -> Self {
        Model {
            preemption_bound: 2,
            max_executions: 1_000_000,
            max_steps: 100_000,
        }
    }

    /// Sets the preemption bound: the maximum number of times a schedule
    /// may switch away from a thread that could have kept running.
    pub fn preemptions(mut self, bound: usize) -> Self {
        self.preemption_bound = bound;
        self
    }

    /// Caps the number of executions (schedules) explored.
    pub fn max_executions(mut self, cap: usize) -> Self {
        self.max_executions = cap;
        self
    }

    /// Caps the visible operations of a single execution.
    pub fn max_steps(mut self, cap: usize) -> Self {
        self.max_steps = cap;
        self
    }

    /// Explores every schedule of `f` within the preemption bound.
    ///
    /// `f` runs once per schedule and must be a pure function of the
    /// schedule: build all threads and shared state inside the closure,
    /// never consult time or OS randomness, and join every scoped handle
    /// before its scope closes.
    pub fn check(&self, f: impl Fn() + Sync) -> Report {
        install_quiet_panic_hook();
        let mut stack: Vec<PFrame> = Vec::new();
        let mut executions = 0usize;
        loop {
            if executions >= self.max_executions {
                return Report {
                    executions,
                    violation: None,
                    truncated: true,
                };
            }
            executions += 1;
            let prescribed: Vec<usize> = stack.iter().map(|fr| fr.candidates[fr.idx]).collect();
            let sched = Sched::new(prescribed.clone(), self.max_steps, false);
            run_one(&sched, &f);
            let (violation, new_frames) = sched.take_outcome();
            if violation.is_some() {
                return Report {
                    executions,
                    violation: Some(self.replay_for_trace(&f, prescribed, &new_frames, violation)),
                    truncated: false,
                };
            }
            for fr in new_frames {
                stack.push(PFrame {
                    candidates: fr.candidates,
                    idx: 0,
                    driver: fr.driver,
                    driver_enabled: fr.driver_enabled,
                    preempt_before: fr.preempt_before,
                });
            }
            if !advance(&mut stack, self.preemption_bound) {
                return Report {
                    executions,
                    violation: None,
                    truncated: false,
                };
            }
        }
    }

    /// Deterministically re-runs the violating schedule with tracing on,
    /// so the report carries a readable operation sequence.
    fn replay_for_trace(
        &self,
        f: &(impl Fn() + Sync),
        prescribed: Vec<usize>,
        new_frames: &[FrameRec],
        original: Option<Violation>,
    ) -> Violation {
        let full: Vec<usize> = prescribed
            .into_iter()
            .chain(new_frames.iter().map(|fr| fr.candidates[0]))
            .collect();
        let sched = Sched::new(full, self.max_steps, true);
        run_one(&sched, f);
        let (violation, _) = sched.take_outcome();
        violation
            .or(original)
            .expect("the replayed schedule reproduces the violation")
    }
}

/// Checks `f` with the default [`Model`].
pub fn check(f: impl Fn() + Sync) -> Report {
    Model::new().check(f)
}

/// Runs one execution: the root closure becomes model thread 0 on a fresh
/// OS thread (so a poisoned teardown can unwind it without touching the
/// caller's stack).
fn run_one(sched: &Arc<Sched>, f: &(impl Fn() + Sync)) {
    std::thread::scope(|scope| {
        let sched = Arc::clone(sched);
        scope.spawn(move || {
            sched::install_ctx(Arc::clone(&sched), 0);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
            sched::clear_ctx();
            sched.root_finish(0, result.err().as_deref());
        });
    });
}

/// Advances the DFS odometer to the next unexplored schedule prefix within
/// the preemption bound. Returns false once the space is exhausted.
fn advance(stack: &mut Vec<PFrame>, bound: usize) -> bool {
    loop {
        let Some(frame) = stack.last_mut() else {
            return false;
        };
        loop {
            frame.idx += 1;
            if frame.idx >= frame.candidates.len() {
                break;
            }
            let c = frame.candidates[frame.idx];
            let cost = usize::from(frame.driver_enabled && c != frame.driver);
            if frame.preempt_before + cost <= bound {
                return true;
            }
        }
        stack.pop();
    }
}

/// Suppresses the default panic printout for panics raised inside model
/// executions — explored violations and deliberate test panics would
/// otherwise flood the test output. Installed once, chains to the previous
/// hook for every non-model panic.
fn install_quiet_panic_hook() {
    use std::sync::Once;
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if sched::ctx().is_none() {
                previous(info);
            }
        }));
    });
}
