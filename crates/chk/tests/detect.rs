//! Self-tests: the checker must find the textbook schedule bugs and pass
//! their corrected counterparts — otherwise a green protocol model means
//! nothing.

use chk::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, OnceLock};
use chk::{Model, Violation};
use std::sync::atomic::Ordering;

/// AB/BA lock ordering: the classic deadlock needs one preemption between
/// the two acquisitions.
#[test]
fn detects_abba_deadlock() {
    let report = Model::new().preemptions(2).check(|| {
        let a = Mutex::new(());
        let b = Mutex::new(());
        std::thread::scope(|scope| {
            let t = chk::thread::spawn_scoped(scope, || {
                let _ga = a.lock().expect("unpoisoned");
                let _gb = b.lock().expect("unpoisoned");
            });
            {
                let _gb = b.lock().expect("unpoisoned");
                let _ga = a.lock().expect("unpoisoned");
            }
            let _ = t.join();
        });
    });
    match &report.violation {
        Some(Violation::Deadlock { blocked, .. }) => {
            assert_eq!(blocked.len(), 2, "both threads stuck: {blocked:?}");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
}

/// Lock-ordering discipline (both threads take `a` then `b`) never
/// deadlocks; the checker must exhaust the space and stay silent.
#[test]
fn passes_ordered_locking() {
    let report = Model::new().preemptions(2).check(|| {
        let a = Mutex::new(0usize);
        let b = Mutex::new(0usize);
        std::thread::scope(|scope| {
            let t = chk::thread::spawn_scoped(scope, || {
                *a.lock().expect("unpoisoned") += 1;
                *b.lock().expect("unpoisoned") += 1;
            });
            *a.lock().expect("unpoisoned") += 1;
            *b.lock().expect("unpoisoned") += 1;
            t.join().expect("no panic");
        });
        assert_eq!(*a.lock().expect("unpoisoned"), 2);
        assert_eq!(*b.lock().expect("unpoisoned"), 2);
    });
    report.assert_ok("ordered locking");
    assert!(report.executions > 1, "exploration actually branched");
}

/// The textbook lost wakeup: the waiter checks the flag and then waits,
/// but the setter flips the flag *without the lock* and notifies while the
/// waiter is between its check and its wait — the notify lands on an empty
/// condvar and the waiter sleeps forever.
#[test]
fn detects_lost_wakeup() {
    let report = Model::new().preemptions(2).check(|| {
        let flag = AtomicBool::new(false);
        let m = Mutex::new(());
        let cv = Condvar::new();
        std::thread::scope(|scope| {
            let waiter = chk::thread::spawn_scoped(scope, || {
                let guard = m.lock().expect("unpoisoned");
                if !flag.load(Ordering::SeqCst) {
                    // Bug under test: no re-check loop, and the flag flips
                    // outside the mutex.
                    let _guard = cv.wait(guard).expect("unpoisoned");
                }
            });
            flag.store(true, Ordering::SeqCst);
            cv.notify_all();
            let _ = waiter.join();
        });
    });
    assert!(
        matches!(report.violation, Some(Violation::Deadlock { .. })),
        "expected the lost wakeup to strand the waiter, got {:?}",
        report.violation
    );
}

/// The corrected handshake (flag mutated under the mutex, wait in a
/// re-check loop) has no lost wakeup at the same bound.
#[test]
fn passes_correct_handshake() {
    let report = Model::new().preemptions(2).check(|| {
        let m = Mutex::new(false);
        let cv = Condvar::new();
        std::thread::scope(|scope| {
            let waiter = chk::thread::spawn_scoped(scope, || {
                let mut ready = m.lock().expect("unpoisoned");
                while !*ready {
                    ready = cv.wait(ready).expect("unpoisoned");
                }
            });
            *m.lock().expect("unpoisoned") = true;
            cv.notify_all();
            waiter.join().expect("no panic");
        });
    });
    report.assert_ok("condvar handshake");
}

/// Two threads publishing into the same cell with an `is_ok` assert: one
/// of them must lose, and the model finds the schedule where the assert
/// fires.
#[test]
fn detects_double_publication() {
    let report = Model::new().preemptions(2).check(|| {
        let slot: OnceLock<usize> = OnceLock::new();
        std::thread::scope(|scope| {
            let t = chk::thread::spawn_scoped(scope, || {
                assert!(slot.set(1).is_ok(), "publication raced");
            });
            assert!(slot.set(2).is_ok(), "publication raced");
            let _ = t.join();
        });
    });
    match &report.violation {
        Some(Violation::Panic { message, .. }) => {
            assert!(message.contains("publication raced"), "got: {message}");
        }
        other => panic!("expected the double publication to panic, got {other:?}"),
    }
}

/// A claim protocol (fetch_add hands out distinct indices) makes the
/// publications disjoint; same shape, no violation.
#[test]
fn passes_claimed_publication() {
    let report = Model::new().preemptions(2).check(|| {
        let cursor = AtomicUsize::new(0);
        let slots: Vec<OnceLock<usize>> = (0..2).map(|_| OnceLock::new()).collect();
        let work = |name: usize| {
            let idx = cursor.fetch_add(1, Ordering::SeqCst);
            assert!(slots[idx].set(name).is_ok(), "claimed slot was taken");
        };
        std::thread::scope(|scope| {
            let work = &work;
            let t = chk::thread::spawn_scoped(scope, move || work(1));
            work(0);
            t.join().expect("no panic");
        });
        assert!(slots.iter().all(|s| s.get().is_some()));
    });
    report.assert_ok("claimed publication");
}

/// A torn read-modify-write (load, then store) loses updates; found within
/// one preemption. The guarded version passes — checked in
/// `passes_ordered_locking` above.
#[test]
fn detects_torn_increment() {
    let report = Model::new().preemptions(1).check(|| {
        let n = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let bump = || {
                let seen = n.load(Ordering::SeqCst);
                n.store(seen + 1, Ordering::SeqCst);
            };
            let t = chk::thread::spawn_scoped(scope, bump);
            bump();
            t.join().expect("no panic");
        });
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    });
    match &report.violation {
        Some(Violation::Panic { message, .. }) => {
            assert!(message.contains("an increment was lost"), "got: {message}");
        }
        other => panic!("expected the torn increment to fail, got {other:?}"),
    }
}

/// The preemption bound is real: the torn increment needs one preemption,
/// so bound 0 must explore clean and bound 1 must find it.
#[test]
fn preemption_bound_gates_the_search() {
    let torn = || {
        let n = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let bump = || {
                let seen = n.load(Ordering::SeqCst);
                n.store(seen + 1, Ordering::SeqCst);
            };
            let t = chk::thread::spawn_scoped(scope, bump);
            bump();
            t.join().expect("no panic");
        });
        assert_eq!(n.load(Ordering::SeqCst), 2, "an increment was lost");
    };
    let at_zero = Model::new().preemptions(0).check(torn);
    assert!(
        at_zero.violation.is_none(),
        "no preemptions -> no torn interleaving, got {:?}",
        at_zero.violation
    );
    let at_one = Model::new().preemptions(1).check(torn);
    assert!(
        at_one.violation.is_some(),
        "one preemption exposes the tear"
    );
    assert!(
        at_one.executions >= at_zero.executions,
        "a larger bound explores at least as many schedules"
    );
}

/// Deterministic exploration: the same model explores the same number of
/// executions every time.
#[test]
fn exploration_is_deterministic() {
    let model = || {
        let m = Mutex::new(0usize);
        std::thread::scope(|scope| {
            let t = chk::thread::spawn_scoped(scope, || {
                *m.lock().expect("unpoisoned") += 1;
            });
            *m.lock().expect("unpoisoned") += 1;
            t.join().expect("no panic");
        });
    };
    let a = Model::new().preemptions(2).check(model);
    let b = Model::new().preemptions(2).check(model);
    report_eq(&a, &b);
    a.assert_ok("deterministic exploration");
}

fn report_eq(a: &chk::Report, b: &chk::Report) {
    assert_eq!(a.executions, b.executions);
    assert_eq!(a.violation.is_some(), b.violation.is_some());
    assert_eq!(a.truncated, b.truncated);
}

/// Truncation is reported, never silently treated as a pass.
#[test]
fn truncation_is_visible() {
    let report = Model::new().preemptions(2).max_executions(3).check(|| {
        let m = Mutex::new(0usize);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    chk::thread::spawn_scoped(scope, || {
                        *m.lock().expect("unpoisoned") += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("no panic");
            }
        });
    });
    assert!(report.truncated);
    assert!(!report.ok());
    assert_eq!(report.executions, 3);
}

/// Shims outside a model run fall back to plain std behaviour.
#[test]
fn shims_work_outside_check() {
    let n = AtomicUsize::new(1);
    assert_eq!(n.fetch_add(2, Ordering::SeqCst), 1);
    let m = Mutex::new(5usize);
    *m.lock().expect("unpoisoned") += 1;
    assert_eq!(*m.lock().expect("unpoisoned"), 6);
    let slot = OnceLock::new();
    assert!(slot.set(9usize).is_ok());
    assert!(slot.set(10).is_err());
    assert_eq!(slot.get(), Some(&9));
    let cv = Condvar::new();
    cv.notify_all();
}
