use crate::cp::{CpModel, CpStatus};
use crate::milp::{MilpProblem, MilpStatus};
use crate::simplex::{Cmp, LpProblem, SolverError};
use proptest::prelude::*;

// ------------------------------------------------------------------ LP ----

#[test]
fn lp_simple_maximization() {
    // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18 — classic, opt = 36.
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, f64::INFINITY, -3.0);
    let y = lp.add_var(0.0, f64::INFINITY, -5.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Le, 4.0);
    lp.add_constraint(&[(y, 2.0)], Cmp::Le, 12.0);
    lp.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
    let sol = lp.solve().unwrap();
    assert!((sol.objective + 36.0).abs() < 1e-6);
    assert!((sol.values[x] - 2.0).abs() < 1e-6);
    assert!((sol.values[y] - 6.0).abs() < 1e-6);
}

#[test]
fn lp_with_ge_and_eq_constraints() {
    // min x + y s.t. x + 2y ≥ 4, x - y = 1 → y = 1, x = 2.
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, f64::INFINITY, 1.0);
    let y = lp.add_var(0.0, f64::INFINITY, 1.0);
    lp.add_constraint(&[(x, 1.0), (y, 2.0)], Cmp::Ge, 4.0);
    lp.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Eq, 1.0);
    let sol = lp.solve().unwrap();
    assert!((sol.values[x] - 2.0).abs() < 1e-6);
    assert!((sol.values[y] - 1.0).abs() < 1e-6);
}

#[test]
fn lp_detects_infeasible() {
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, 10.0, 1.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Ge, 5.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Le, 3.0);
    assert_eq!(lp.solve().unwrap_err(), SolverError::Infeasible);
}

#[test]
fn lp_detects_unbounded() {
    let mut lp = LpProblem::new();
    let _x = lp.add_var(0.0, f64::INFINITY, -1.0); // maximize x, unconstrained
    let _ = lp.add_var(0.0, 1.0, 0.0);
    assert_eq!(lp.solve().unwrap_err(), SolverError::Unbounded);
}

#[test]
fn lp_respects_lower_bounds() {
    // Shifted bounds: min x with x ∈ [3, 8] → 3.
    let mut lp = LpProblem::new();
    let x = lp.add_var(3.0, 8.0, 1.0);
    let sol = lp.solve().unwrap();
    assert!((sol.values[x] - 3.0).abs() < 1e-6);
    // And negative lower bounds.
    let mut lp = LpProblem::new();
    let x = lp.add_var(-5.0, 5.0, 1.0);
    lp.add_constraint(&[(x, 1.0)], Cmp::Ge, -2.0);
    let sol = lp.solve().unwrap();
    assert!((sol.values[x] + 2.0).abs() < 1e-6);
}

#[test]
fn lp_rejects_bad_bounds() {
    let mut lp = LpProblem::new();
    let _x = lp.add_var(2.0, 1.0, 1.0);
    assert!(matches!(
        lp.solve().unwrap_err(),
        SolverError::BadBounds { .. }
    ));
}

#[test]
fn lp_degenerate_no_cycle() {
    // Degenerate vertex (multiple constraints meeting): Bland's rule must
    // still terminate.
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, f64::INFINITY, -0.75);
    let y = lp.add_var(0.0, f64::INFINITY, 150.0);
    let z = lp.add_var(0.0, f64::INFINITY, -0.02);
    let w = lp.add_var(0.0, f64::INFINITY, 6.0);
    lp.add_constraint(&[(x, 0.25), (y, -60.0), (z, -0.04), (w, 9.0)], Cmp::Le, 0.0);
    lp.add_constraint(&[(x, 0.5), (y, -90.0), (z, -0.02), (w, 3.0)], Cmp::Le, 0.0);
    lp.add_constraint(&[(z, 1.0)], Cmp::Le, 1.0);
    let sol = lp.solve().unwrap();
    assert!(
        (sol.objective + 0.05).abs() < 1e-4,
        "beale cycling example optimum"
    );
}

// ---------------------------------------------------------------- MILP ----

#[test]
fn milp_knapsack() {
    // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, binary → 21 (b,c,d).
    let mut p = MilpProblem::new();
    let a = p.add_bool_var(-8.0, "a");
    let b = p.add_bool_var(-11.0, "b");
    let c = p.add_bool_var(-6.0, "c");
    let d = p.add_bool_var(-4.0, "d");
    p.add_constraint(&[(a, 5.0), (b, 7.0), (c, 4.0), (d, 3.0)], Cmp::Le, 14.0);
    let sol = p.solve().unwrap();
    assert_eq!(sol.status, MilpStatus::Optimal);
    assert!((sol.objective + 21.0).abs() < 1e-6);
    assert_eq!(sol.int_value(a), 0);
    assert_eq!(sol.int_value(b), 1);
    assert_eq!(sol.int_value(c), 1);
    assert_eq!(sol.int_value(d), 1);
}

#[test]
fn milp_integrality_changes_optimum() {
    // LP relaxation gives fractional x; MILP must round properly.
    // max x + y, 2x + 3y ≤ 12, 3x + 2y ≤ 12 → LP opt (2.4, 2.4); ILP opt 4.
    let mut p = MilpProblem::new();
    let x = p.add_int_var(0.0, 10.0, -1.0, "x");
    let y = p.add_int_var(0.0, 10.0, -1.0, "y");
    p.add_constraint(&[(x, 2.0), (y, 3.0)], Cmp::Le, 12.0);
    p.add_constraint(&[(x, 3.0), (y, 2.0)], Cmp::Le, 12.0);
    let sol = p.solve().unwrap();
    assert!((sol.objective + 4.0).abs() < 1e-6);
}

#[test]
fn milp_mixed_continuous_integer() {
    // min 2x + y, x integer, y continuous; x + y ≥ 3.5, x ≤ 2.
    // Best: x = 2 (cost 4) + y = 1.5 (cost 1.5) = 5.5? Or x = 0, y = 3.5 → 3.5.
    let mut p = MilpProblem::new();
    let x = p.add_int_var(0.0, 2.0, 2.0, "x");
    let y = p.add_var(0.0, f64::INFINITY, 1.0, "y");
    p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 3.5);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 3.5).abs() < 1e-6);
    assert_eq!(sol.int_value(x), 0);
}

#[test]
fn milp_infeasible_integer_box() {
    // 0.4 ≤ x ≤ 0.6 with x integer: LP feasible, ILP infeasible.
    let mut p = MilpProblem::new();
    let x = p.add_int_var(0.0, 1.0, 1.0, "x");
    p.add_constraint(&[(x, 1.0)], Cmp::Ge, 0.4);
    p.add_constraint(&[(x, 1.0)], Cmp::Le, 0.6);
    assert_eq!(p.solve().unwrap_err(), SolverError::Infeasible);
}

#[test]
fn milp_big_m_disjunction() {
    // Model |x - y| ≥ 2 on [0,4]² via indicator b:
    //   x - y ≥ 2 - M·(1-b),  y - x ≥ 2 - M·b,  M = 10
    // minimize x + y → (0,2) or (2,0), objective 2.
    let mut p = MilpProblem::new();
    let x = p.add_int_var(0.0, 4.0, 1.0, "x");
    let y = p.add_int_var(0.0, 4.0, 1.0, "y");
    let b = p.add_bool_var(0.0, "b");
    let m = 10.0;
    p.add_constraint(&[(x, 1.0), (y, -1.0), (b, -m)], Cmp::Ge, 2.0 - m);
    p.add_constraint(&[(y, 1.0), (x, -1.0), (b, m)], Cmp::Ge, 2.0);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 2.0).abs() < 1e-6);
    let (xv, yv) = (sol.int_value(x), sol.int_value(y));
    assert!((xv - yv).abs() >= 2);
}

#[test]
fn milp_retiming_shaped_problem() {
    // A miniature of the phase-assignment ILP: a diamond u→{v,w}→t with
    // n = 2 phases; σ(u)=0. Chain vars k per driver, minimize Σk.
    //   σv, σw ≥ 1; σt ≥ σv+1, σw+1;
    //   2·ku ≥ max(σv,σw) − 2 ; 2·kv ≥ σt − σv − 2 ; …
    let n = 2.0;
    let mut p = MilpProblem::new();
    let sv = p.add_int_var(1.0, 20.0, 0.0, "sv");
    let sw = p.add_int_var(1.0, 20.0, 0.0, "sw");
    let st = p.add_int_var(2.0, 20.0, 0.0, "st");
    let ku = p.add_int_var(0.0, 20.0, 1.0, "ku");
    let kv = p.add_int_var(0.0, 20.0, 1.0, "kv");
    let kw = p.add_int_var(0.0, 20.0, 1.0, "kw");
    p.add_constraint(&[(st, 1.0), (sv, -1.0)], Cmp::Ge, 1.0);
    p.add_constraint(&[(st, 1.0), (sw, -1.0)], Cmp::Ge, 1.0);
    // driver u at stage 0 feeds v and w: n·ku ≥ σv − n, n·ku ≥ σw − n
    p.add_constraint(&[(ku, n), (sv, -1.0)], Cmp::Ge, -n);
    p.add_constraint(&[(ku, n), (sw, -1.0)], Cmp::Ge, -n);
    p.add_constraint(&[(kv, n), (st, -1.0), (sv, 1.0)], Cmp::Ge, -n);
    p.add_constraint(&[(kw, n), (st, -1.0), (sw, 1.0)], Cmp::Ge, -n);
    let sol = p.solve().unwrap();
    // Everything fits inside one period: σv=σw=1, σt=2, zero DFFs.
    assert!((sol.objective - 0.0).abs() < 1e-6);
}

#[test]
fn milp_node_limit_reports_status() {
    let mut p = MilpProblem::new();
    // A small but branching-heavy problem.
    let vars: Vec<_> = (0..12)
        .map(|i| p.add_bool_var(-((i % 5) as f64 + 1.0), format!("v{i}")))
        .collect();
    let terms: Vec<_> = vars.iter().map(|&v| (v, 3.0)).collect();
    p.add_constraint(&terms, Cmp::Le, 17.0);
    p.set_node_limit(3);
    match p.solve() {
        Ok(sol) => assert_eq!(sol.status, MilpStatus::FeasibleLimit),
        Err(SolverError::IterationLimit) => {}
        Err(e) => panic!("unexpected error {e}"),
    }
}

// ------------------------------------------------------------------ CP ----

#[test]
fn cp_all_different_minimum() {
    let mut m = CpModel::new();
    let a = m.new_int_var(3, 5, "a");
    let b = m.new_int_var(3, 5, "b");
    let c = m.new_int_var(3, 5, "c");
    m.add_all_different(&[a, b, c]);
    m.set_objective(&[(a, 1), (b, 1), (c, 1)]);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.objective, 12);
    let mut vals = sol.values.clone();
    vals.sort();
    assert_eq!(vals, vec![3, 4, 5]);
}

#[test]
fn cp_all_different_pigeonhole_infeasible() {
    let mut m = CpModel::new();
    let vars: Vec<_> = (0..4)
        .map(|i| m.new_int_var(0, 2, format!("x{i}")))
        .collect();
    m.add_all_different(&vars);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Infeasible);
}

#[test]
fn cp_linear_and_alldiff_interaction() {
    // x+y+z = 6, all different, domains [0,3]. x = 0 would need y+z = 6
    // with y ≠ z in [0,3] — impossible; the optimum is x = 1 via {1,2,3}.
    let mut m = CpModel::new();
    let x = m.new_int_var(0, 3, "x");
    let y = m.new_int_var(0, 3, "y");
    let z = m.new_int_var(0, 3, "z");
    m.add_linear(&[(x, 1), (y, 1), (z, 1)], 6, 6);
    m.add_all_different(&[x, y, z]);
    m.set_objective(&[(x, 1)]); // minimize x
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.value(x), 1);
    let mut vals = sol.values.clone();
    vals.sort();
    assert_eq!(vals, vec![1, 2, 3]);
}

#[test]
fn cp_le_offset_chains() {
    // x + 3 ≤ y, y + 2 ≤ z, z ≤ 10: minimize z − x → 5.
    let mut m = CpModel::new();
    let x = m.new_int_var(0, 10, "x");
    let y = m.new_int_var(0, 10, "y");
    let z = m.new_int_var(0, 10, "z");
    m.add_le_offset(x, 3, y);
    m.add_le_offset(y, 2, z);
    m.set_objective(&[(z, 1), (x, -1)]);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.objective, 5);
}

#[test]
fn cp_no_objective_returns_first_solution() {
    let mut m = CpModel::new();
    let x = m.new_int_var(2, 7, "x");
    let y = m.new_int_var(2, 7, "y");
    m.add_linear(&[(x, 1), (y, 1)], 9, 9);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.value(x) + sol.value(y), 9);
}

#[test]
fn cp_negative_coefficients() {
    // 2x − 3y ∈ [0, 1], x ∈ [0,9], y ∈ [0,9], maximize y.
    let mut m = CpModel::new();
    let x = m.new_int_var(0, 9, "x");
    let y = m.new_int_var(0, 9, "y");
    m.add_linear(&[(x, 2), (y, -3)], 0, 1);
    m.set_objective(&[(y, -1)]);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.value(y), 6);
    assert_eq!(sol.value(x), 9);
}

#[test]
fn milp_warm_start_is_used_and_validated() {
    // minimize x + y  s.t.  x + y ≥ 5, integers in [0, 10].
    let build = || {
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, 10.0, 1.0, "x");
        let y = p.add_int_var(0.0, 10.0, 1.0, "y");
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        p
    };

    // A feasible warm start: accepted as incumbent, then improved to 5.
    let mut p = build();
    p.set_warm_start(vec![4.0, 4.0]);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);

    // An infeasible warm start must be ignored, not believed.
    let mut p = build();
    p.set_warm_start(vec![1.0, 1.0]); // violates x + y ≥ 5
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);

    // A fractional warm start on integer variables is ignored too.
    let mut p = build();
    p.set_warm_start(vec![2.5, 2.5]);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);
    assert!(sol.values.iter().all(|v| (v - v.round()).abs() < 1e-6));
}

#[test]
fn milp_warm_start_pairs_matches_positional() {
    // The id-keyed handoff API must behave exactly like the positional one:
    // mentioned variables carry their value, unmentioned ones default to
    // their lower bound, and an infeasible point is still ignored.
    let build = || {
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, 10.0, 1.0, "x");
        let y = p.add_int_var(2.0, 10.0, 1.0, "y");
        p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        (p, x, y)
    };

    // Full pairs, any order.
    let (mut p, x, y) = build();
    p.set_warm_start_pairs(&[(y, 4.0), (x, 4.0)]);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);

    // Partial pairs: y defaults to its lower bound (2), x carries 3 — the
    // defaulted point is feasible and seeds the incumbent.
    let (mut p, x, _y) = build();
    p.set_warm_start_pairs(&[(x, 3.0)]);
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);

    // Infeasible pairs are validated away like positional warm starts.
    let (mut p, x, y) = build();
    p.set_warm_start_pairs(&[(x, 0.0), (y, 2.0)]); // violates x + y ≥ 5
    let sol = p.solve().unwrap();
    assert!((sol.objective - 5.0).abs() < 1e-6);

    // Falsifiability: on a model whose cold B&B needs real branching, the
    // pair-keyed optimum must prune exactly like the positional one — if
    // the pairs were ignored, swapped between variables, or defaulted
    // wrongly, the node count would exceed the positional run's.
    let build_chain = || {
        let mut p = MilpProblem::new();
        let vars: Vec<_> = (0..6)
            .map(|i| p.add_int_var(0.0, 9.0, 1.0, format!("x{i}")))
            .collect();
        for w in vars.windows(2) {
            p.add_constraint(&[(w[1], 1.0), (w[0], -1.0)], Cmp::Ge, 1.0);
        }
        (p, vars)
    };
    let (cold, _) = build_chain();
    let baseline = cold.solve().unwrap();
    let (mut positional, _) = build_chain();
    positional.set_warm_start(baseline.values.clone());
    let pos_sol = positional.solve().unwrap();
    let (mut paired, vars) = build_chain();
    let pairs: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, baseline.values[i]))
        .collect();
    paired.set_warm_start_pairs(&pairs);
    let pair_sol = paired.solve().unwrap();
    assert!((pair_sol.objective - baseline.objective).abs() < 1e-6);
    assert_eq!(
        pair_sol.nodes, pos_sol.nodes,
        "pair-keyed warm start must prune exactly like the positional one"
    );
    assert!(
        pair_sol.nodes <= baseline.nodes,
        "warm-started search explored more nodes ({}) than cold ({})",
        pair_sol.nodes,
        baseline.nodes
    );
}

#[test]
fn milp_warm_start_at_optimum_prunes_search() {
    // With the optimum handed over, B&B only needs to prove it.
    let mut p = MilpProblem::new();
    let vars: Vec<_> = (0..6)
        .map(|i| p.add_int_var(0.0, 9.0, 1.0, format!("x{i}")))
        .collect();
    for w in vars.windows(2) {
        p.add_constraint(&[(w[1], 1.0), (w[0], -1.0)], Cmp::Ge, 1.0);
    }
    let baseline = p.solve().unwrap();
    let mut warm = p.clone();
    warm.set_warm_start(baseline.values.clone());
    let sol = warm.solve().unwrap();
    assert!((sol.objective - baseline.objective).abs() < 1e-6);
    assert!(
        sol.nodes <= baseline.nodes,
        "warm start explored more nodes ({}) than cold ({})",
        sol.nodes,
        baseline.nodes
    );
}

#[test]
fn milp_branch_priority_preserves_optimality() {
    // Same model solved under opposite priorities must agree on the optimum.
    let build = |prio_first: bool| {
        let mut p = MilpProblem::new();
        let x = p.add_int_var(0.0, 7.0, 2.0, "x");
        let y = p.add_int_var(0.0, 7.0, 3.0, "y");
        let b = p.add_bool_var(5.0, "b");
        p.add_constraint(&[(x, 2.0), (y, 3.0)], Cmp::Ge, 11.0);
        p.add_constraint(&[(x, 1.0), (b, 7.0)], Cmp::Ge, 4.0);
        if prio_first {
            p.set_branch_priority(b, 5);
            p.set_branch_priority(x, 1);
        } else {
            p.set_branch_priority(y, 5);
        }
        p
    };
    let a = build(true).solve().unwrap();
    let b = build(false).solve().unwrap();
    assert!((a.objective - b.objective).abs() < 1e-6);
}

#[test]
fn milp_integral_objective_bound_rounding_still_exact() {
    // A model with a weak LP relaxation (the chain-variable shape from
    // phase assignment): n·k ≥ σ − 4 with σ free in [1, 13]. The LP bound
    // is fractional; integral-objective rounding may prune, never cut the
    // optimum.
    let mut p = MilpProblem::new();
    let sigma = p.add_int_var(1.0, 13.0, 0.0, "sigma");
    let k1 = p.add_int_var(0.0, 4.0, 1.0, "k1");
    let k2 = p.add_int_var(0.0, 4.0, 1.0, "k2");
    // σ must be at least 9 via a side constraint.
    p.add_constraint(&[(sigma, 1.0)], Cmp::Ge, 9.0);
    p.add_constraint(&[(k1, 4.0), (sigma, -1.0)], Cmp::Ge, -4.0);
    p.add_constraint(&[(k2, 4.0), (sigma, -1.0)], Cmp::Ge, -6.0);
    let sol = p.solve().unwrap();
    // σ = 9: k1 ≥ ⌈5/4⌉ = 2, k2 ≥ ⌈3/4⌉ = 1 → objective 3.
    assert!(
        (sol.objective - 3.0).abs() < 1e-6,
        "objective {}",
        sol.objective
    );
}

#[test]
fn lp_feasibility_and_objective_probes() {
    let mut lp = LpProblem::new();
    let x = lp.add_var(0.0, 5.0, 2.0);
    let y = lp.add_var(1.0, 4.0, -1.0);
    lp.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 6.0);
    assert!(lp.is_feasible(&[2.0, 3.0]));
    assert!(!lp.is_feasible(&[5.0, 4.0]), "violates x + y ≤ 6");
    assert!(!lp.is_feasible(&[2.0, 0.0]), "violates y ≥ 1");
    assert!(!lp.is_feasible(&[2.0]), "wrong arity");
    assert!((lp.objective_value(&[2.0, 3.0]) - 1.0).abs() < 1e-9);
    assert_eq!(lp.objective_coef(x), 2.0);
}

#[test]
fn cp_t1_arrival_model() {
    // The exact shape DFF insertion solves per T1 cell: arrival stages
    // a_k ∈ [max(σ(i_k), σT1−n), σT1−1], alldifferent, minimize extra DFFs
    // ≈ minimize Σ (a_k − σ(i_k) > 0 cost). Here σT1 = 6, n = 4,
    // fanin stages {3, 3, 5}.
    let mut m = CpModel::new();
    let a1 = m.new_int_var(3, 5, "a1");
    let a2 = m.new_int_var(3, 5, "a2");
    let a3 = m.new_int_var(5, 5, "a3"); // fanin at 5 can only arrive at 5
    m.add_all_different(&[a1, a2, a3]);
    m.set_objective(&[(a1, 1), (a2, 1), (a3, 1)]);
    let sol = m.solve();
    assert_eq!(sol.status, CpStatus::Optimal);
    assert_eq!(sol.value(a3), 5);
    let mut first_two = vec![sol.value(a1), sol.value(a2)];
    first_two.sort();
    assert_eq!(first_two, vec![3, 4]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random small LPs: simplex optimum must match brute-force over a grid
    /// of basic solutions (we verify feasibility + objective is a lower
    /// bound of grid search).
    #[test]
    fn prop_lp_vs_grid(coefs in proptest::collection::vec((-4i32..5, -4i32..5, 0i32..15), 1..5),
                       obj in proptest::collection::vec(-3i32..4, 2)) {
        let mut lp = LpProblem::new();
        let x = lp.add_var(0.0, 6.0, obj[0] as f64);
        let y = lp.add_var(0.0, 6.0, obj[1] as f64);
        for &(a, b, c) in &coefs {
            lp.add_constraint(&[(x, a as f64), (y, b as f64)], Cmp::Le, c as f64);
        }
        // Grid-search feasible integer points.
        let mut grid_best: Option<f64> = None;
        for xi in 0..=6 {
            for yi in 0..=6 {
                let ok = coefs.iter().all(|&(a, b, c)| a * xi + b * yi <= c);
                if ok {
                    let v = (obj[0] * xi + obj[1] * yi) as f64;
                    grid_best = Some(grid_best.map_or(v, |g: f64| g.min(v)));
                }
            }
        }
        match lp.solve() {
            Ok(sol) => {
                // LP optimum ≤ best grid point (grid points are feasible).
                if let Some(g) = grid_best {
                    prop_assert!(sol.objective <= g + 1e-6);
                }
                // Solution must satisfy all constraints.
                for &(a, b, c) in &coefs {
                    prop_assert!(a as f64 * sol.values[x] + b as f64 * sol.values[y] <= c as f64 + 1e-6);
                }
            }
            // A feasible grid point with an infeasible LP would be a bug —
            // (0,0) is always checked by the grid.
            Err(SolverError::Infeasible) => prop_assert!(grid_best.is_none()),
            Err(e) => return Err(TestCaseError::fail(format!("solver error {e}"))),
        }
    }

    /// MILP on pure-integer knapsacks must equal exhaustive search.
    #[test]
    fn prop_milp_vs_bruteforce(weights in proptest::collection::vec(1i64..8, 3..7),
                               values in proptest::collection::vec(1i64..9, 3..7),
                               cap in 4i64..20) {
        let n = weights.len().min(values.len());
        let mut p = MilpProblem::new();
        let vars: Vec<_> = (0..n).map(|i| p.add_bool_var(-(values[i] as f64), format!("v{i}"))).collect();
        let terms: Vec<_> = (0..n).map(|i| (vars[i], weights[i] as f64)).collect();
        p.add_constraint(&terms, Cmp::Le, cap as f64);
        let sol = p.solve().unwrap();
        let mut best = 0i64;
        for mask in 0u32..(1 << n) {
            let w: i64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| weights[i]).sum();
            if w <= cap {
                let v: i64 = (0..n).filter(|&i| mask >> i & 1 == 1).map(|i| values[i]).sum();
                best = best.max(v);
            }
        }
        prop_assert!((sol.objective + best as f64).abs() < 1e-6,
            "milp {} vs brute {}", -sol.objective, best);
    }

    /// CP all_different + bounds must agree with exhaustive enumeration.
    #[test]
    fn prop_cp_alldiff_vs_bruteforce(lows in proptest::collection::vec(0i64..4, 3),
                                     spans in proptest::collection::vec(0i64..4, 3)) {
        let mut m = CpModel::new();
        let vars: Vec<_> = (0..3)
            .map(|i| m.new_int_var(lows[i], lows[i] + spans[i], format!("x{i}")))
            .collect();
        m.add_all_different(&vars);
        m.set_objective(&[(vars[0], 1), (vars[1], 1), (vars[2], 1)]);
        let sol = m.solve();
        // Brute force.
        let mut best: Option<i64> = None;
        for a in lows[0]..=lows[0] + spans[0] {
            for b in lows[1]..=lows[1] + spans[1] {
                for c in lows[2]..=lows[2] + spans[2] {
                    if a != b && b != c && a != c {
                        let s = a + b + c;
                        best = Some(best.map_or(s, |x: i64| x.min(s)));
                    }
                }
            }
        }
        match best {
            Some(b) => {
                prop_assert_eq!(sol.status, CpStatus::Optimal);
                prop_assert_eq!(sol.objective, b);
            }
            None => prop_assert_eq!(sol.status, CpStatus::Infeasible),
        }
    }
}
