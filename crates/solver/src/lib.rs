//! Exact optimization substrates for SFQ retiming: a mixed-integer linear
//! programming solver and a small CP-SAT-style constraint solver.
//!
//! The paper implements phase assignment as an ILP and DFF insertion as a
//! CP-SAT model, both through Google OR-Tools. This crate provides the same
//! two capabilities from scratch:
//!
//! * [`MilpProblem`] — minimize a linear objective over continuous and
//!   integer variables with linear constraints. Solved by branch & bound
//!   over a dense two-phase primal [`simplex`] with Bland's rule.
//! * [`CpModel`] — bounded integer variables, linear constraints,
//!   `all_different`, and branch-and-bound minimization with bounds
//!   propagation.
//!
//! Both solvers are *exact* on the sizes the flow hands them (the paper's
//! formulations per-benchmark are compact; our harness additionally falls
//! back to a heuristic engine above a size threshold — see `sfq-core`).
//!
//! # Example
//!
//! ```
//! use sfq_solver::{MilpProblem, Cmp};
//!
//! // minimize x + 2y  s.t.  x + y ≥ 3, x - y ≤ 1, x,y ∈ [0,10] integer
//! let mut p = MilpProblem::new();
//! let x = p.add_int_var(0.0, 10.0, 1.0, "x");
//! let y = p.add_int_var(0.0, 10.0, 2.0, "y");
//! p.add_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
//! p.add_constraint(&[(x, 1.0), (y, -1.0)], Cmp::Le, 1.0);
//! let sol = p.solve().unwrap();
//! assert_eq!(sol.value(x).round() as i64, 2);
//! assert_eq!(sol.value(y).round() as i64, 1);
//! assert!((sol.objective - 4.0).abs() < 1e-6);
//! ```

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod cp;
pub mod milp;
pub mod simplex;

pub use cp::{CpModel, CpSolution, CpStatus, CpVar};
pub use milp::{MilpProblem, MilpSolution, MilpStatus, VarId};
pub use simplex::{Cmp, LpProblem, LpSolution, LpStatus, SolverError};

#[cfg(test)]
mod tests;
