//! Dense two-phase primal simplex for linear programs.
//!
//! Variables carry finite lower bounds (shifted to zero internally) and
//! optional finite upper bounds (added as explicit rows). Bland's rule makes
//! the iteration finite; a generous iteration cap guards against numerical
//! pathologies. The implementation favours clarity and robustness over
//! speed — the MILP layer above solves one dense LP per branch-and-bound
//! node, and the flow only sends it compact formulations.

use std::fmt;

const TOL: f64 = 1e-7;

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// Errors from LP construction or solving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolverError {
    /// The constraint system admits no feasible point.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration cap was hit (numerical trouble).
    IterationLimit,
    /// A variable was declared with `lb > ub` or a non-finite bound.
    BadBounds {
        /// Index of the offending variable.
        var: usize,
    },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "problem is infeasible"),
            SolverError::Unbounded => write!(f, "objective is unbounded"),
            SolverError::IterationLimit => write!(f, "simplex iteration limit reached"),
            SolverError::BadBounds { var } => write!(f, "variable {var} has invalid bounds"),
        }
    }
}

impl std::error::Error for SolverError {}

/// Outcome classification of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal basic solution was found.
    Optimal,
}

/// A solved LP: objective value and a value per structural variable.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Objective at the optimum.
    pub objective: f64,
    /// Variable values in declaration order.
    pub values: Vec<f64>,
    /// Solve status (always [`LpStatus::Optimal`] when returned as `Ok`).
    pub status: LpStatus,
}

#[derive(Debug, Clone)]
struct Constraint {
    terms: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// A linear program: minimize `c·x` subject to linear constraints and
/// variable bounds.
///
/// # Example
///
/// ```
/// use sfq_solver::{Cmp, LpProblem};
/// let mut lp = LpProblem::new();
/// let x = lp.add_var(0.0, f64::INFINITY, -1.0); // maximize x
/// lp.add_constraint(&[(x, 2.0)], Cmp::Le, 5.0);
/// let sol = lp.solve().unwrap();
/// assert!((sol.values[x] - 2.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LpProblem {
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LpProblem {
    /// Creates an empty LP.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable with bounds `[lb, ub]` (`ub` may be `f64::INFINITY`)
    /// and objective coefficient `obj`. Returns its column index.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64) -> usize {
        self.lower.push(lb);
        self.upper.push(ub);
        self.objective.push(obj);
        self.lower.len() - 1
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.lower.len()
    }

    /// Number of constraints (upper-bound rows not included).
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a linear constraint `Σ coef·var  cmp  rhs`.
    ///
    /// Terms may repeat a variable; coefficients accumulate.
    pub fn add_constraint(&mut self, terms: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        self.constraints.push(Constraint {
            terms: terms.to_vec(),
            cmp,
            rhs,
        });
    }

    /// Overrides the bounds of an existing variable (used by branch & bound).
    pub fn set_bounds(&mut self, var: usize, lb: f64, ub: f64) {
        self.lower[var] = lb;
        self.upper[var] = ub;
    }

    /// Bounds of a variable.
    pub fn bounds(&self, var: usize) -> (f64, f64) {
        (self.lower[var], self.upper[var])
    }

    /// Objective coefficient of a variable.
    pub fn objective_coef(&self, var: usize) -> f64 {
        self.objective[var]
    }

    /// Evaluates the objective at a point.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        x.iter().zip(&self.objective).map(|(a, c)| a * c).sum()
    }

    /// Checks a point against all bounds and constraints (within `1e-6`).
    pub fn is_feasible(&self, x: &[f64]) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        const FEAS_TOL: f64 = 1e-6;
        for (v, &xv) in x.iter().enumerate() {
            if xv < self.lower[v] - FEAS_TOL || xv > self.upper[v] + FEAS_TOL {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + FEAS_TOL,
                Cmp::Ge => lhs >= c.rhs - FEAS_TOL,
                Cmp::Eq => (lhs - c.rhs).abs() <= FEAS_TOL,
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Solves the LP.
    ///
    /// # Errors
    /// [`SolverError::Infeasible`], [`SolverError::Unbounded`],
    /// [`SolverError::IterationLimit`] or [`SolverError::BadBounds`].
    pub fn solve(&self) -> Result<LpSolution, SolverError> {
        let n = self.num_vars();
        for v in 0..n {
            if !self.lower[v].is_finite() || self.lower[v] > self.upper[v] + TOL {
                return Err(SolverError::BadBounds { var: v });
            }
        }

        // Shift x = lb + x', x' ≥ 0; collect rows (including ub rows).
        #[derive(Clone)]
        struct Row {
            coefs: Vec<(usize, f64)>,
            cmp: Cmp,
            rhs: f64,
        }
        let mut rows: Vec<Row> = Vec::with_capacity(self.constraints.len() + n);
        for c in &self.constraints {
            let mut shift = 0.0;
            let mut dense: std::collections::HashMap<usize, f64> = std::collections::HashMap::new();
            for &(v, a) in &c.terms {
                *dense.entry(v).or_insert(0.0) += a;
            }
            let mut coefs: Vec<(usize, f64)> = Vec::with_capacity(dense.len());
            for (&v, &a) in &dense {
                if a.abs() > 0.0 {
                    coefs.push((v, a));
                    shift += a * self.lower[v];
                }
            }
            coefs.sort_by_key(|&(v, _)| v);
            rows.push(Row {
                coefs,
                cmp: c.cmp,
                rhs: c.rhs - shift,
            });
        }
        for v in 0..n {
            if self.upper[v].is_finite() {
                let span = self.upper[v] - self.lower[v];
                rows.push(Row {
                    coefs: vec![(v, 1.0)],
                    cmp: Cmp::Le,
                    rhs: span,
                });
            }
        }

        // Normalize RHS ≥ 0.
        for r in rows.iter_mut() {
            if r.rhs < 0.0 {
                for t in r.coefs.iter_mut() {
                    t.1 = -t.1;
                }
                r.rhs = -r.rhs;
                r.cmp = match r.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        let m = rows.len();
        // Columns: structural (n) + slacks + artificials.
        let num_slacks = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let num_artificials = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let total = n + num_slacks + num_artificials;

        let mut tab = vec![vec![0.0f64; total + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificial_cols: Vec<usize> = Vec::new();
        let mut slack_idx = n;
        let mut art_idx = n + num_slacks;
        for (i, r) in rows.iter().enumerate() {
            for &(v, a) in &r.coefs {
                tab[i][v] = a;
            }
            tab[i][total] = r.rhs;
            match r.cmp {
                Cmp::Le => {
                    tab[i][slack_idx] = 1.0;
                    basis[i] = slack_idx;
                    slack_idx += 1;
                }
                Cmp::Ge => {
                    tab[i][slack_idx] = -1.0;
                    slack_idx += 1;
                    tab[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    artificial_cols.push(art_idx);
                    art_idx += 1;
                }
                Cmp::Eq => {
                    tab[i][art_idx] = 1.0;
                    basis[i] = art_idx;
                    artificial_cols.push(art_idx);
                    art_idx += 1;
                }
            }
        }

        let max_iter = 2000 + 200 * (m + total);

        // ---- phase 1 ----
        if !artificial_cols.is_empty() {
            let mut cost = vec![0.0f64; total];
            for &c in &artificial_cols {
                cost[c] = 1.0;
            }
            let obj = run_simplex(&mut tab, &mut basis, &cost, total, max_iter, None)?;
            if obj > 1e-6 {
                return Err(SolverError::Infeasible);
            }
            // Drive remaining artificials out of the basis.
            let art_set: std::collections::HashSet<usize> =
                artificial_cols.iter().copied().collect();
            for i in 0..m {
                if art_set.contains(&basis[i]) {
                    let mut pivoted = false;
                    for j in 0..n + num_slacks {
                        if tab[i][j].abs() > TOL {
                            pivot(&mut tab, &mut basis, i, j);
                            pivoted = true;
                            break;
                        }
                    }
                    if !pivoted {
                        // Redundant row: zero it (leave artificial basic at 0).
                    }
                }
            }
        }

        // ---- phase 2 ----
        let mut cost = vec![0.0f64; total];
        cost[..n].copy_from_slice(&self.objective);
        let banned: std::collections::HashSet<usize> = artificial_cols.iter().copied().collect();
        let obj = run_simplex(&mut tab, &mut basis, &cost, total, max_iter, Some(&banned))?;

        // Read out structural values (undo the shift).
        let mut values = vec![0.0f64; n];
        for i in 0..m {
            if basis[i] < n {
                values[basis[i]] = tab[i][total];
            }
        }
        for (v, value) in values.iter_mut().enumerate() {
            *value += self.lower[v];
        }
        let shift_obj: f64 = (0..n).map(|v| self.objective[v] * self.lower[v]).sum();
        Ok(LpSolution {
            objective: obj + shift_obj,
            values,
            status: LpStatus::Optimal,
        })
    }
}

/// Runs primal simplex with Bland's rule on the tableau.
///
/// Bland's first-improving-column rule needs more pivots than steeper
/// pricing on paper, but it is cycle-free and — measured on this crate's
/// branch-and-bound workloads — beats Dantzig pricing, whose steepest
/// columns thrash on the highly degenerate scheduling polytopes the flow
/// produces.
///
/// Returns the final objective value of `cost` over the basic solution.
fn run_simplex(
    tab: &mut [Vec<f64>],
    basis: &mut [usize],
    cost: &[f64],
    total: usize,
    max_iter: usize,
    banned: Option<&std::collections::HashSet<usize>>,
) -> Result<f64, SolverError> {
    let m = tab.len();
    for _iter in 0..max_iter {
        // Reduced costs: d_j = c_j - c_B · column_j.
        let cb: Vec<f64> = basis.iter().map(|&b| cost[b]).collect();
        let in_basis: Vec<bool> = {
            let mut v = vec![false; total];
            for &b in basis.iter() {
                if b < total {
                    v[b] = true;
                }
            }
            v
        };
        let mut entering: Option<usize> = None;
        for j in 0..total {
            if in_basis[j] || banned.is_some_and(|s| s.contains(&j)) {
                continue;
            }
            let mut d = cost[j];
            for i in 0..m {
                if cb[i] != 0.0 {
                    d -= cb[i] * tab[i][j];
                }
            }
            if d < -TOL {
                entering = Some(j); // Bland: first improving column
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal: compute objective.
            let mut obj = 0.0;
            for i in 0..m {
                obj += cost[basis[i]] * tab[i][total];
            }
            return Ok(obj);
        };
        // Ratio test (Bland tie-break on smallest basis column).
        let mut leave: Option<(usize, f64)> = None;
        for i in 0..m {
            if tab[i][j] > TOL {
                let ratio = tab[i][total] / tab[i][j];
                match leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < lr - TOL || (ratio < lr + TOL && basis[i] < basis[li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i, _)) = leave else {
            return Err(SolverError::Unbounded);
        };
        pivot(tab, basis, i, j);
    }
    Err(SolverError::IterationLimit)
}

fn pivot(tab: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize) {
    let width = tab[0].len();
    let p = tab[row][col];
    for x in tab[row].iter_mut() {
        *x /= p;
    }
    let (before, rest) = tab.split_at_mut(row);
    let (pivot_row, after) = rest.split_first_mut().expect("row index in range");
    for r in before.iter_mut().chain(after.iter_mut()) {
        let f = r[col];
        if f != 0.0 {
            for (x, &p) in r.iter_mut().zip(pivot_row.iter()).take(width) {
                *x -= f * p;
            }
        }
    }
    basis[row] = col;
}
