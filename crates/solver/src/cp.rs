//! A small CP-SAT-style solver: bounded integer variables, linear
//! constraints, `all_different`, and branch-and-bound minimization.
//!
//! This is the stand-in for the CP-SAT model the paper uses for DFF
//! insertion (the distinct-arrival-stage constraint of eq. 5 is an
//! `all_different` over small integer domains). Propagation is
//! bounds-consistent for linear constraints; `all_different` combines
//! fixed-value pruning with a Hall-style interval feasibility check, which is
//! complete for the interval domains used here.

use std::fmt;

/// Handle to a CP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CpVar(pub usize);

/// Termination status of a CP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpStatus {
    /// Proven optimal (or first solution when no objective was set).
    Optimal,
    /// Search hit the node limit with an incumbent.
    FeasibleLimit,
    /// Proven infeasible.
    Infeasible,
    /// Node limit hit without finding any solution.
    Unknown,
}

impl fmt::Display for CpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CpStatus::Optimal => "optimal",
            CpStatus::FeasibleLimit => "feasible (node limit)",
            CpStatus::Infeasible => "infeasible",
            CpStatus::Unknown => "unknown (node limit)",
        };
        f.write_str(s)
    }
}

/// A CP solution: one value per variable plus the objective.
#[derive(Debug, Clone)]
pub struct CpSolution {
    /// Assigned values in variable order.
    pub values: Vec<i64>,
    /// Objective value (0 when no objective was set).
    pub objective: i64,
    /// How the search ended.
    pub status: CpStatus,
    /// Search nodes explored.
    pub nodes: usize,
}

impl CpSolution {
    /// Value of a variable.
    pub fn value(&self, v: CpVar) -> i64 {
        self.values[v.0]
    }
}

#[derive(Debug, Clone)]
struct Linear {
    terms: Vec<(usize, i64)>,
    lo: i64,
    hi: i64,
}

/// A constraint-programming model (integer variables, minimization).
///
/// # Example
///
/// ```
/// use sfq_solver::CpModel;
/// // Three arrival stages in [3, 5], pairwise distinct, minimizing their sum.
/// let mut m = CpModel::new();
/// let a = m.new_int_var(3, 5, "a");
/// let b = m.new_int_var(3, 5, "b");
/// let c = m.new_int_var(3, 5, "c");
/// m.add_all_different(&[a, b, c]);
/// m.set_objective(&[(a, 1), (b, 1), (c, 1)]);
/// let sol = m.solve();
/// assert_eq!(sol.objective, 12); // 3 + 4 + 5
/// ```
#[derive(Debug, Clone, Default)]
pub struct CpModel {
    domains: Vec<(i64, i64)>,
    names: Vec<String>,
    linears: Vec<Linear>,
    alldiffs: Vec<Vec<usize>>,
    objective: Vec<(usize, i64)>,
    node_limit: usize,
}

impl CpModel {
    /// Creates an empty model with the default node limit (1 000 000).
    pub fn new() -> Self {
        CpModel {
            node_limit: 1_000_000,
            ..Default::default()
        }
    }

    /// Sets the search node limit.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit.max(1);
    }

    /// Adds an integer variable with inclusive domain `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn new_int_var(&mut self, lo: i64, hi: i64, name: impl Into<String>) -> CpVar {
        assert!(lo <= hi, "empty initial domain");
        self.domains.push((lo, hi));
        self.names.push(name.into());
        CpVar(self.domains.len() - 1)
    }

    /// Adds `lo ≤ Σ coef·var ≤ hi` (use `i64::MIN`/`i64::MAX` for one-sided).
    pub fn add_linear(&mut self, terms: &[(CpVar, i64)], lo: i64, hi: i64) {
        self.linears.push(Linear {
            terms: terms.iter().map(|&(v, c)| (v.0, c)).collect(),
            lo,
            hi,
        });
    }

    /// Convenience: `x + offset ≤ y`.
    pub fn add_le_offset(&mut self, x: CpVar, offset: i64, y: CpVar) {
        self.add_linear(&[(y, 1), (x, -1)], offset, i64::MAX);
    }

    /// Requires all listed variables to take pairwise distinct values.
    pub fn add_all_different(&mut self, vars: &[CpVar]) {
        self.alldiffs.push(vars.iter().map(|v| v.0).collect());
    }

    /// Sets the (minimization) objective `Σ coef·var`.
    pub fn set_objective(&mut self, terms: &[(CpVar, i64)]) {
        self.objective = terms.iter().map(|&(v, c)| (v.0, c)).collect();
    }

    /// Solves the model; never panics on infeasibility — inspect
    /// [`CpSolution::status`].
    pub fn solve(&self) -> CpSolution {
        let mut search = Search {
            model: self,
            best: None,
            nodes: 0,
            limit_hit: false,
        };
        let mut domains = self.domains.clone();
        if search.propagate(&mut domains) {
            search.dfs(domains);
        }
        let nodes = search.nodes;
        match search.best {
            Some((objective, values)) => CpSolution {
                values,
                objective,
                status: if search.limit_hit {
                    CpStatus::FeasibleLimit
                } else {
                    CpStatus::Optimal
                },
                nodes,
            },
            None => CpSolution {
                values: Vec::new(),
                objective: 0,
                status: if search.limit_hit {
                    CpStatus::Unknown
                } else {
                    CpStatus::Infeasible
                },
                nodes,
            },
        }
    }
}

struct Search<'a> {
    model: &'a CpModel,
    best: Option<(i64, Vec<i64>)>,
    nodes: usize,
    limit_hit: bool,
}

impl Search<'_> {
    fn objective_bounds(&self, domains: &[(i64, i64)]) -> (i64, i64) {
        let mut lo = 0i64;
        let mut hi = 0i64;
        for &(v, c) in &self.model.objective {
            let (dlo, dhi) = domains[v];
            if c >= 0 {
                lo += c * dlo;
                hi += c * dhi;
            } else {
                lo += c * dhi;
                hi += c * dlo;
            }
        }
        (lo, hi)
    }

    /// Fixpoint propagation; returns false on failure (empty domain).
    fn propagate(&self, domains: &mut [(i64, i64)]) -> bool {
        loop {
            let mut changed = false;
            for lin in &self.model.linears {
                if !propagate_linear(lin, domains, &mut changed) {
                    return false;
                }
            }
            for ad in &self.model.alldiffs {
                if !propagate_alldiff(ad, domains, &mut changed) {
                    return false;
                }
            }
            // Objective bound pruning.
            if let Some((best, _)) = &self.best {
                let (olo, _) = self.objective_bounds(domains);
                if olo >= *best {
                    return false;
                }
            }
            if !changed {
                return true;
            }
        }
    }

    fn dfs(&mut self, domains: Vec<(i64, i64)>) {
        if self.nodes >= self.model.node_limit {
            self.limit_hit = true;
            return;
        }
        self.nodes += 1;

        // Pick the unfixed variable with the smallest domain.
        let mut pick: Option<(usize, i64)> = None;
        for (v, &(lo, hi)) in domains.iter().enumerate() {
            if lo < hi {
                let size = hi - lo;
                if pick.map(|(_, s)| size < s).unwrap_or(true) {
                    pick = Some((v, size));
                }
            }
        }
        let Some((v, _)) = pick else {
            // All fixed: record solution.
            let values: Vec<i64> = domains.iter().map(|&(lo, _)| lo).collect();
            let obj: i64 = self
                .model
                .objective
                .iter()
                .map(|&(v, c)| c * values[v])
                .sum();
            let better = self.best.as_ref().map(|(b, _)| obj < *b).unwrap_or(true);
            if better {
                self.best = Some((obj, values));
            }
            return;
        };

        // Branch: small domains enumerate values (ordered to help the
        // objective); large domains split in half to keep the tree shallow.
        let (lo, hi) = domains[v];
        let coef: i64 = self
            .model
            .objective
            .iter()
            .filter(|&&(ov, _)| ov == v)
            .map(|&(_, c)| c)
            .sum();
        let prefer_low = coef >= 0;
        let size = hi - lo + 1;
        let children: Vec<(i64, i64)> = if size <= 8 {
            let vals: Vec<i64> = if prefer_low {
                (lo..=hi).collect()
            } else {
                (lo..=hi).rev().collect()
            };
            vals.into_iter().map(|x| (x, x)).collect()
        } else {
            let mid = lo + (hi - lo) / 2;
            if prefer_low {
                vec![(lo, mid), (mid + 1, hi)]
            } else {
                vec![(mid + 1, hi), (lo, mid)]
            }
        };
        for (clo, chi) in children {
            if self.nodes >= self.model.node_limit {
                self.limit_hit = true;
                return;
            }
            let mut child = domains.to_vec();
            child[v] = (clo, chi);
            if self.propagate(&mut child) {
                self.dfs(child);
            }
        }
    }
}

fn propagate_linear(lin: &Linear, domains: &mut [(i64, i64)], changed: &mut bool) -> bool {
    // All interval arithmetic in i128 so i64::MIN/MAX sentinels for
    // one-sided constraints cannot overflow.
    let lin_lo = lin.lo as i128;
    let lin_hi = lin.hi as i128;
    let mut sum_lo = 0i128;
    let mut sum_hi = 0i128;
    for &(v, c) in &lin.terms {
        let (lo, hi) = domains[v];
        let c = c as i128;
        if c >= 0 {
            sum_lo += c * lo as i128;
            sum_hi += c * hi as i128;
        } else {
            sum_lo += c * hi as i128;
            sum_hi += c * lo as i128;
        }
    }
    if sum_lo > lin_hi || sum_hi < lin_lo {
        return false;
    }
    // Tighten each variable.
    for &(v, c) in &lin.terms {
        if c == 0 {
            continue;
        }
        let (lo, hi) = domains[v];
        let c128 = c as i128;
        let (term_lo, term_hi) = if c >= 0 {
            (c128 * lo as i128, c128 * hi as i128)
        } else {
            (c128 * hi as i128, c128 * lo as i128)
        };
        let rest_lo = sum_lo - term_lo;
        let rest_hi = sum_hi - term_hi;
        // lin.lo ≤ c·x + rest ≤ lin.hi  →  c·x ∈ [lin.lo - rest_hi, lin.hi - rest_lo]
        let cx_lo = lin_lo.saturating_sub(rest_hi);
        let cx_hi = lin_hi.saturating_sub(rest_lo);
        let (mut new_lo, mut new_hi) = (lo as i128, hi as i128);
        if c > 0 {
            new_lo = new_lo.max(div_ceil(cx_lo, c128));
            new_hi = new_hi.min(div_floor(cx_hi, c128));
        } else {
            // c < 0: the bounds swap sides after division.
            new_lo = new_lo.max(div_ceil(cx_hi, c128));
            new_hi = new_hi.min(div_floor(cx_lo, c128));
        }
        if new_lo > new_hi {
            return false;
        }
        let clamped = (
            new_lo.max(i64::MIN as i128) as i64,
            new_hi.min(i64::MAX as i128) as i64,
        );
        if clamped != (lo, hi) {
            domains[v] = clamped;
            *changed = true;
        }
    }
    true
}

fn propagate_alldiff(vars: &[usize], domains: &mut [(i64, i64)], changed: &mut bool) -> bool {
    // Fixed-value pruning: remove fixed values from other variables' bounds.
    loop {
        let mut local_change = false;
        for (i, &v) in vars.iter().enumerate() {
            let (lo, hi) = domains[v];
            if lo != hi {
                continue;
            }
            for (j, &w) in vars.iter().enumerate() {
                if i == j {
                    continue;
                }
                let (wlo, whi) = domains[w];
                if wlo == lo && whi == lo {
                    return false; // two vars fixed to the same value
                }
                if wlo == lo {
                    domains[w] = (wlo + 1, whi);
                    local_change = true;
                } else if whi == lo {
                    domains[w] = (wlo, whi - 1);
                    local_change = true;
                }
                let (nlo, nhi) = domains[w];
                if nlo > nhi {
                    return false;
                }
            }
        }
        if local_change {
            *changed = true;
        } else {
            break;
        }
    }
    // Hall-interval feasibility: sort by upper bound, greedily assign the
    // smallest available value ≥ lo. Complete for interval domains.
    let mut items: Vec<(i64, i64)> = vars.iter().map(|&v| domains[v]).collect();
    items.sort_by_key(|&(lo, hi)| (hi, lo));
    let mut used: Vec<i64> = Vec::with_capacity(items.len());
    for (lo, hi) in items {
        let mut candidate = lo;
        loop {
            if used.binary_search(&candidate).is_err() {
                break;
            }
            candidate += 1;
        }
        if candidate > hi {
            return false;
        }
        let pos = used.binary_search(&candidate).unwrap_err();
        used.insert(pos, candidate);
    }
    true
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r > 0) == (b > 0)) {
        q + 1
    } else {
        q
    }
}

fn div_floor(a: i128, b: i128) -> i128 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r > 0) != (b > 0)) {
        q - 1
    } else {
        q
    }
}
