//! Mixed-integer linear programming by branch & bound.
//!
//! LP relaxations are solved by the [`crate::simplex`] module; branching is
//! most-fractional-variable with depth-first search and incumbent pruning.
//! Exactness is what the flow needs from this layer (the paper reports
//! optimally retimed DFF counts); scale is handled upstream by only sending
//! compact formulations here.

use crate::simplex::{Cmp, LpProblem, SolverError};

/// Handle to a MILP variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// Termination status of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// Proven optimal.
    Optimal,
    /// A feasible incumbent was returned but the node limit stopped the
    /// proof of optimality.
    FeasibleLimit,
}

/// A MILP solution.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    /// Objective value of the incumbent.
    pub objective: f64,
    /// Values per variable (integer variables are integral within 1e-6).
    pub values: Vec<f64>,
    /// Whether optimality was proven.
    pub status: MilpStatus,
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
}

impl MilpSolution {
    /// Value of a variable.
    pub fn value(&self, v: VarId) -> f64 {
        self.values[v.0]
    }

    /// Value of an integer variable, rounded.
    pub fn int_value(&self, v: VarId) -> i64 {
        self.values[v.0].round() as i64
    }
}

/// A mixed-integer linear program (minimization).
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone, Default)]
pub struct MilpProblem {
    lp: LpProblem,
    integer: Vec<bool>,
    names: Vec<String>,
    node_limit: usize,
    warm_start: Option<Vec<f64>>,
    branch_priority: Vec<i32>,
}

const INT_TOL: f64 = 1e-6;

impl MilpProblem {
    /// Creates an empty problem with the default node limit (200 000).
    pub fn new() -> Self {
        MilpProblem {
            lp: LpProblem::new(),
            integer: Vec::new(),
            names: Vec::new(),
            node_limit: 200_000,
            warm_start: None,
            branch_priority: Vec::new(),
        }
    }

    /// Sets the branch-and-bound node limit.
    pub fn set_node_limit(&mut self, limit: usize) {
        self.node_limit = limit.max(1);
    }

    /// Provides a candidate solution as the initial incumbent.
    ///
    /// Branch & bound prunes every node whose LP bound cannot beat the
    /// incumbent, so a good warm start (e.g. from a heuristic) shrinks the
    /// search enormously. The point is validated at solve time; an
    /// infeasible or non-integral warm start is silently ignored.
    pub fn set_warm_start(&mut self, values: Vec<f64>) {
        self.warm_start = Some(values);
    }

    /// Provides the initial incumbent by variable id — the order-independent
    /// handoff API for callers that build their warm start while creating
    /// variables (e.g. the phase-assignment engine seeding branch & bound
    /// from a heuristic incumbent). Variables not mentioned default to their
    /// lower bound; like [`set_warm_start`](Self::set_warm_start), the point
    /// is validated at solve time and silently ignored if infeasible.
    pub fn set_warm_start_pairs(&mut self, pairs: &[(VarId, f64)]) {
        let mut values: Vec<f64> = (0..self.num_vars()).map(|v| self.lp.bounds(v).0).collect();
        for &(v, x) in pairs {
            values[v.0] = x;
        }
        self.warm_start = Some(values);
    }

    /// Adds a continuous variable with bounds and objective coefficient.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64, name: impl Into<String>) -> VarId {
        let v = self.lp.add_var(lb, ub, obj);
        self.integer.push(false);
        self.names.push(name.into());
        self.branch_priority.push(0);
        VarId(v)
    }

    /// Adds an integer variable with bounds and objective coefficient.
    pub fn add_int_var(&mut self, lb: f64, ub: f64, obj: f64, name: impl Into<String>) -> VarId {
        let v = self.lp.add_var(lb, ub, obj);
        self.integer.push(true);
        self.names.push(name.into());
        self.branch_priority.push(0);
        VarId(v)
    }

    /// Sets the branch priority of a variable (default 0). When several
    /// integer variables are fractional, branching picks the highest
    /// priority first — put structural decisions (e.g. schedule stages)
    /// above derived counters whose value follows from them.
    pub fn set_branch_priority(&mut self, v: VarId, priority: i32) {
        self.branch_priority[v.0] = priority;
    }

    /// Adds a binary (0/1) variable.
    pub fn add_bool_var(&mut self, obj: f64, name: impl Into<String>) -> VarId {
        self.add_int_var(0.0, 1.0, obj, name)
    }

    /// Adds a linear constraint `Σ coef·var  cmp  rhs`.
    pub fn add_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        let raw: Vec<(usize, f64)> = terms.iter().map(|&(v, c)| (v.0, c)).collect();
        self.lp.add_constraint(&raw, cmp, rhs);
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.integer.len()
    }

    /// Name of a variable (diagnostics).
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.0]
    }

    /// Solves the problem to optimality (or best incumbent at node limit).
    ///
    /// # Errors
    /// [`SolverError::Infeasible`] if no integer-feasible point exists;
    /// [`SolverError::Unbounded`] / [`SolverError::IterationLimit`] from the
    /// LP layer.
    pub fn solve(&self) -> Result<MilpSolution, SolverError> {
        #[derive(Clone)]
        struct Node {
            bounds: Vec<(f64, f64)>,
            lower_bound: f64,
        }
        let root_bounds: Vec<(f64, f64)> =
            (0..self.num_vars()).map(|v| self.lp.bounds(v)).collect();

        // When the objective is an integer combination of integer variables,
        // every attainable value is integral, so LP bounds can be rounded up
        // before pruning — the single cheapest cut there is.
        let integral_objective = (0..self.num_vars()).all(|v| {
            let c = self.lp.objective_coef(v);
            c == 0.0 || (self.integer[v] && c.fract() == 0.0)
        });
        let sharpen = |bound: f64| -> f64 {
            if integral_objective {
                (bound - 1e-6).ceil()
            } else {
                bound
            }
        };

        let mut stack = vec![Node {
            bounds: root_bounds,
            lower_bound: f64::NEG_INFINITY,
        }];
        let mut incumbent: Option<(f64, Vec<f64>)> = None;
        if let Some(ws) = &self.warm_start {
            let integral = ws
                .iter()
                .zip(&self.integer)
                .all(|(&x, &int)| !int || (x - x.round()).abs() <= INT_TOL);
            if integral && self.lp.is_feasible(ws) {
                incumbent = Some((self.lp.objective_value(ws), ws.clone()));
            }
        }
        let mut nodes = 0usize;
        let mut hit_limit = false;

        while let Some(node) = stack.pop() {
            if nodes >= self.node_limit {
                hit_limit = true;
                break;
            }
            nodes += 1;
            if let Some((best, _)) = &incumbent {
                if node.lower_bound >= *best - 1e-9 {
                    continue; // pruned by bound
                }
            }
            let mut lp = self.lp.clone();
            for (v, &(lb, ub)) in node.bounds.iter().enumerate() {
                if lb > ub + INT_TOL {
                    // Empty box.
                    continue;
                }
                lp.set_bounds(v, lb, ub);
            }
            if node.bounds.iter().any(|&(lb, ub)| lb > ub + INT_TOL) {
                continue;
            }
            let sol = match lp.solve() {
                Ok(s) => s,
                Err(SolverError::Infeasible) => continue,
                Err(e) => return Err(e),
            };
            let node_bound = sharpen(sol.objective);
            if let Some((best, _)) = &incumbent {
                if node_bound >= *best - 1e-9 {
                    continue;
                }
            }
            // Branch variable: highest priority, then most fractional.
            let mut branch_var: Option<(usize, i32, f64)> = None;
            for v in 0..self.num_vars() {
                if !self.integer[v] {
                    continue;
                }
                let x = sol.values[v];
                let frac = (x - x.round()).abs();
                if frac > INT_TOL {
                    let prio = self.branch_priority[v];
                    let dist = (x - x.floor() - 0.5).abs(); // closeness to .5
                    let better = match branch_var {
                        None => true,
                        Some((_, bp, bd)) => prio > bp || (prio == bp && dist < bd),
                    };
                    if better {
                        branch_var = Some((v, prio, dist));
                    }
                }
            }
            let branch_var = branch_var.map(|(v, _, d)| (v, d));
            match branch_var {
                None => {
                    // Integer feasible.
                    let better = incumbent
                        .as_ref()
                        .map(|(best, _)| sol.objective < *best - 1e-9)
                        .unwrap_or(true);
                    if better {
                        incumbent = Some((sol.objective, sol.values.clone()));
                    }
                }
                Some((v, _)) => {
                    let x = sol.values[v];
                    let (lb, ub) = node.bounds[v];
                    // Down branch: x ≤ floor.
                    let mut down = node.bounds.clone();
                    down[v] = (lb, x.floor());
                    // Up branch: x ≥ ceil.
                    let mut up = node.bounds.clone();
                    up[v] = (x.ceil(), ub);
                    // Explore the branch closer to the LP optimum first
                    // (pushed last → popped first).
                    let frac = x - x.floor();
                    let d = Node {
                        bounds: down,
                        lower_bound: node_bound,
                    };
                    let u = Node {
                        bounds: up,
                        lower_bound: node_bound,
                    };
                    if frac > 0.5 {
                        stack.push(d);
                        stack.push(u);
                    } else {
                        stack.push(u);
                        stack.push(d);
                    }
                }
            }
        }

        match incumbent {
            Some((objective, values)) => Ok(MilpSolution {
                objective,
                values,
                status: if hit_limit {
                    MilpStatus::FeasibleLimit
                } else {
                    MilpStatus::Optimal
                },
                nodes,
            }),
            None => {
                if hit_limit {
                    Err(SolverError::IterationLimit)
                } else {
                    Err(SolverError::Infeasible)
                }
            }
        }
    }
}
