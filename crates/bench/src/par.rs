//! Feature-gated fan-out for independent experiment units.
//!
//! With the `parallel` cargo feature, [`map`] runs one scoped worker thread
//! per item (`std::thread::scope` — the registry is unreachable from this
//! build environment, so the harness uses the standard library instead of
//! rayon); without it, a plain sequential map. Results always come back in
//! item order, so callers print identical tables either way. The units this
//! crate fans out (Table I rows, per-stage profiles) are heavyweight —
//! seconds to minutes each — so one thread per item is the right
//! granularity and work stealing would buy nothing.
//!
//! Wall-clock timings measured *inside* a parallel run are noisier than
//! sequential ones (the flows contend for cores); the binaries that report
//! per-stage timing say so in their output when the feature is active.

/// True when the `parallel` feature is compiled in.
pub const ENABLED: bool = cfg!(feature = "parallel");

/// Maps `f` over `items`, in parallel when the `parallel` feature is on.
/// Output order always matches input order.
#[cfg(feature = "parallel")]
pub fn map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    std::thread::scope(|scope| {
        for (slot, item) in slots.iter_mut().zip(items) {
            let f = &f;
            scope.spawn(move || {
                *slot = Some(f(item));
            });
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("worker filled its slot"))
        .collect()
}

/// Maps `f` over `items`, in parallel when the `parallel` feature is on.
/// Output order always matches input order.
#[cfg(not(feature = "parallel"))]
pub fn map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    items.into_iter().map(f).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn map_preserves_order() {
        let out = super::map((0..32).collect::<Vec<i32>>(), |x| x * x);
        assert_eq!(out, (0..32).map(|x| x * x).collect::<Vec<_>>());
    }
}
