//! Batched flow driver over the checked-in external-design corpus.
//!
//! `crates/bench/corpus/` holds small AIGER (`.aag`) and BLIF (`.blif`)
//! designs stored in **canonical form** — each file is byte-identical to
//! `Design::write_native` of its own parse, so interchange regressions show
//! up as plain byte diffs. [`run_corpus`] applies the paper's 4φ-vs-T1
//! protocol to every design, fanning the flows over
//! [`sfq_netlist::par::workers`] scoped threads under `--features parallel`
//! with an input-order merge: the formatted table is bit-identical between
//! sequential and parallel builds, which CI checks against the committed
//! golden `tests/golden/corpus_table.txt`.

use sfq_core::{run_flow_on_design, FlowConfig, FlowError, FlowReport};
use sfq_netlist::design::{Design, DesignError};
use sfq_netlist::par;
use std::fmt;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The checked-in corpus directory (`crates/bench/corpus`).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// Errors from the corpus driver.
#[derive(Debug)]
pub enum CorpusError {
    /// Listing the corpus directory failed.
    Io {
        /// The directory involved.
        dir: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The directory holds no `.aag`/`.blif` designs.
    Empty(String),
    /// A design failed to load or parse.
    Design(DesignError),
    /// A flow failed on one design.
    Flow {
        /// The corpus file the flow ran on.
        file: String,
        /// The flow failure.
        source: FlowError,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { dir, source } => write!(f, "{dir}: {source}"),
            CorpusError::Empty(dir) => write!(f, "{dir}: no .aag/.blif designs"),
            CorpusError::Design(e) => write!(f, "{e}"),
            CorpusError::Flow { file, source } => write!(f, "{file}: {source}"),
        }
    }
}

impl std::error::Error for CorpusError {}

impl From<DesignError> for CorpusError {
    fn from(e: DesignError) -> Self {
        CorpusError::Design(e)
    }
}

/// One corpus design with its measured 4φ and T1 reports.
#[derive(Debug, Clone)]
pub struct CorpusRow {
    /// Corpus file name (the row label).
    pub file: String,
    /// The parsed design.
    pub design: Design,
    /// The 4φ baseline flow report.
    pub four: FlowReport,
    /// The 4φ+T1 flow report.
    pub t1: FlowReport,
}

/// Loads every `.aag`/`.blif` design of `dir` in file-name order, through a
/// content-hash parse cache.
///
/// # Errors
/// [`CorpusError`] on I/O or parse failures, or an empty directory.
pub fn load_corpus(dir: &Path) -> Result<Vec<(String, Design)>, CorpusError> {
    let (designs, _cache_hits) = sfq_netlist::design::load_dir(dir)?;
    if designs.is_empty() {
        return Err(CorpusError::Empty(dir.display().to_string()));
    }
    Ok(designs)
}

/// Runs the 4φ and 4φ+T1 flows on every design of `dir`.
///
/// Flows fan over scoped worker threads under `--features parallel`; rows
/// come back in input (file-name) order either way.
///
/// # Errors
/// [`CorpusError`] — the first failure in input order.
pub fn run_corpus(dir: &Path) -> Result<Vec<CorpusRow>, CorpusError> {
    let designs = load_corpus(dir)?;
    let results: Vec<Result<CorpusRow, CorpusError>> =
        par::map_ordered(designs, |(file, design)| {
            let flow = |config: &FlowConfig| {
                run_flow_on_design(&design, config).map_err(|source| CorpusError::Flow {
                    file: file.clone(),
                    source,
                })
            };
            let four = flow(&FlowConfig::multiphase(4))?.report;
            let t1 = flow(&FlowConfig::t1(4))?.report;
            Ok(CorpusRow {
                file,
                design,
                four,
                t1,
            })
        });
    results.into_iter().collect()
}

/// Formats corpus rows in the `table1_extended` layout (4φ vs T1 per
/// design, with DFF/area ratios). Deterministic — no wall-clock columns —
/// so the output can be golden-diffed.
pub fn format_corpus_table(rows: &[CorpusRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>4} | {:>4} {:>4} | {:>5} {:>4} | {:>7} {:>7} {:>5} | {:>8} {:>8} {:>5} | {:>4} {:>4}",
        "design", "fmt", "in", "out", "found", "used", "DFF 4φ", "DFF T1", "r",
        "Area 4φ", "Area T1", "r", "D4φ", "DT1"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "{:<16} {:>4} | {:>4} {:>4} | {:>5} {:>4} | {:>7} {:>7} {:>5.2} | {:>8} {:>8} {:>5.2} | {:>4} {:>4}",
            row.file,
            row.design.format.extension(),
            row.design.aig.num_inputs(),
            row.design.aig.num_outputs(),
            row.t1.t1_found,
            row.t1.t1_used,
            row.four.num_dffs,
            row.t1.num_dffs,
            row.t1.num_dffs as f64 / row.four.num_dffs.max(1) as f64,
            row.four.area,
            row.t1.area,
            row.t1.area as f64 / row.four.area.max(1) as f64,
            row.four.depth_cycles,
            row.t1.depth_cycles
        );
    }
    out
}
