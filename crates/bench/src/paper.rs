//! The published Table I of the paper, transcribed verbatim.
//!
//! Used by the `table1` binary and the integration tests to report
//! measured-vs-paper ratios. Absolute values are **not** expected to match
//! (our benchmark generators and JJ library are documented substitutes —
//! DESIGN.md §5); the reproduction target is the *shape*: which flow wins
//! per metric, and roughly by how much.

/// One row of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Benchmark name as printed in the paper.
    pub name: &'static str,
    /// "T1 cells found".
    pub t1_found: usize,
    /// "T1 cells used".
    pub t1_used: usize,
    /// Path-balancing DFFs for the 1φ / 4φ / T1 flows.
    pub dff: [u64; 3],
    /// Area in JJs for the 1φ / 4φ / T1 flows.
    pub area: [u64; 3],
    /// Depth in cycles for the 1φ / 4φ / T1 flows.
    pub depth: [u64; 3],
}

impl PaperRow {
    /// `T1 / 1φ` and `T1 / 4φ` DFF ratios (the paper's "Ratio vs." columns).
    pub fn dff_ratios(&self) -> (f64, f64) {
        ratios(self.dff)
    }

    /// `T1 / 1φ` and `T1 / 4φ` area ratios.
    pub fn area_ratios(&self) -> (f64, f64) {
        ratios(self.area)
    }

    /// `T1 / 1φ` and `T1 / 4φ` depth ratios.
    pub fn depth_ratios(&self) -> (f64, f64) {
        ratios(self.depth)
    }
}

fn ratios(v: [u64; 3]) -> (f64, f64) {
    (v[2] as f64 / v[0] as f64, v[2] as f64 / v[1] as f64)
}

/// The paper's Table I, row for row.
pub const PAPER_TABLE1: [PaperRow; 8] = [
    PaperRow {
        name: "adder",
        t1_found: 127,
        t1_used: 127,
        dff: [32_768, 7_963, 5_958],
        area: [238_419, 64_784, 48_844],
        depth: [128, 32, 33],
    },
    PaperRow {
        name: "c7552",
        t1_found: 17,
        t1_used: 9,
        dff: [2_489, 713, 765],
        area: [32_038, 19_606, 19_907],
        depth: [16, 4, 5],
    },
    PaperRow {
        name: "c6288",
        t1_found: 142,
        t1_used: 142,
        dff: [2_625, 1_431, 1_349],
        area: [47_198, 38_840, 35_386],
        depth: [29, 8, 10],
    },
    PaperRow {
        name: "sin",
        t1_found: 81,
        t1_used: 77,
        dff: [13_416, 4_631, 4_714],
        area: [164_938, 103_443, 102_806],
        depth: [88, 22, 25],
    },
    PaperRow {
        name: "voter",
        t1_found: 252,
        t1_used: 252,
        dff: [10_651, 5_779, 5_584],
        area: [222_101, 187_997, 182_972],
        depth: [38, 10, 11],
    },
    PaperRow {
        name: "square",
        t1_found: 861,
        t1_used: 806,
        dff: [44_675, 16_645, 14_304],
        area: [525_311, 329_101, 301_287],
        depth: [126, 32, 32],
    },
    PaperRow {
        name: "multiplier",
        t1_found: 824,
        t1_used: 769,
        dff: [58_717, 14_641, 13_745],
        area: [682_792, 374_260, 356_984],
        depth: [136, 33, 36],
    },
    PaperRow {
        name: "log2",
        t1_found: 644,
        t1_used: 593,
        dff: [86_985, 33_790, 33_946],
        area: [978_178, 605_813, 598_292],
        depth: [160, 40, 47],
    },
];

/// The averages row printed at the bottom of the paper's Table I:
/// `(dff_vs_1φ, dff_vs_4φ, area_vs_1φ, area_vs_4φ, depth_vs_1φ, depth_vs_4φ)`.
pub const PAPER_AVERAGES: (f64, f64, f64, f64, f64, f64) = (0.35, 0.94, 0.59, 0.94, 0.29, 1.13);

/// Looks up a paper row by benchmark name.
pub fn paper_row(name: &str) -> Option<&'static PaperRow> {
    PAPER_TABLE1.iter().find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transcription_matches_printed_ratios() {
        // The paper prints the per-row ratios; re-deriving them from the
        // absolute columns guards the transcription.
        let printed_dff: [(f64, f64); 8] = [
            (0.18, 0.75),
            (0.31, 1.07),
            (0.51, 0.94),
            (0.35, 1.02),
            (0.52, 0.97),
            (0.32, 0.86),
            (0.23, 0.94),
            (0.39, 1.00),
        ];
        let printed_area: [(f64, f64); 8] = [
            (0.20, 0.75),
            (0.62, 1.02),
            (0.75, 0.91),
            (0.62, 0.99),
            (0.82, 0.97),
            (0.57, 0.92),
            (0.52, 0.95),
            (0.61, 0.99),
        ];
        for (i, row) in PAPER_TABLE1.iter().enumerate() {
            let (d1, d4) = row.dff_ratios();
            assert!(
                (d1 - printed_dff[i].0).abs() < 0.011,
                "{}: dff vs 1φ",
                row.name
            );
            assert!(
                (d4 - printed_dff[i].1).abs() < 0.011,
                "{}: dff vs 4φ",
                row.name
            );
            let (a1, a4) = row.area_ratios();
            assert!(
                (a1 - printed_area[i].0).abs() < 0.011,
                "{}: area vs 1φ",
                row.name
            );
            assert!(
                (a4 - printed_area[i].1).abs() < 0.011,
                "{}: area vs 4φ",
                row.name
            );
        }
    }

    #[test]
    fn averages_match_printed_row() {
        let n = PAPER_TABLE1.len() as f64;
        let avg = |f: fn(&PaperRow) -> (f64, f64)| {
            let (s1, s4) = PAPER_TABLE1
                .iter()
                .fold((0.0, 0.0), |(s1, s4), r| (s1 + f(r).0, s4 + f(r).1));
            (s1 / n, s4 / n)
        };
        let (d1, d4) = avg(PaperRow::dff_ratios);
        let (a1, a4) = avg(PaperRow::area_ratios);
        let (p1, p4) = avg(PaperRow::depth_ratios);
        assert!((d1 - PAPER_AVERAGES.0).abs() < 0.011);
        assert!((d4 - PAPER_AVERAGES.1).abs() < 0.011);
        assert!((a1 - PAPER_AVERAGES.2).abs() < 0.011);
        assert!((a4 - PAPER_AVERAGES.3).abs() < 0.011);
        assert!((p1 - PAPER_AVERAGES.4).abs() < 0.011);
        assert!((p4 - PAPER_AVERAGES.5).abs() < 0.011);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(paper_row("adder").unwrap().t1_used, 127);
        assert!(paper_row("nonesuch").is_none());
    }
}
