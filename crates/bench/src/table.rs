//! Runs the paper's Table I experiment and formats it in the paper's layout.

use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig, FlowError};
use sfq_netlist::CutConfig;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Benchmark instance size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Full size, as evaluated in the paper (128-bit adder, 64×64
    /// multiplier, 1001-input voter, …). Minutes of runtime.
    Paper,
    /// Structurally identical scaled-down instances for smoke runs and CI.
    Small,
}

/// One measured row of Table I: the three flows on one benchmark.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name (the paper's row label).
    pub name: String,
    /// T1 candidates with positive gain ("found").
    pub t1_found: usize,
    /// T1 cells committed ("used").
    pub t1_used: usize,
    /// Path-balancing DFFs for 1φ / 4φ / T1.
    pub dff: [u64; 3],
    /// Area in JJs for 1φ / 4φ / T1.
    pub area: [u64; 3],
    /// Depth in cycles for 1φ / 4φ / T1.
    pub depth: [u64; 3],
    /// Wall-clock time of each flow.
    pub runtime: [Duration; 3],
}

impl TableRow {
    /// `T1/1φ` and `T1/4φ` ratios for one metric column.
    fn ratios(v: [u64; 3]) -> (f64, f64) {
        (v[2] as f64 / v[0] as f64, v[2] as f64 / v[1] as f64)
    }

    /// DFF-count ratios `T1/1φ`, `T1/4φ`.
    pub fn dff_ratios(&self) -> (f64, f64) {
        Self::ratios(self.dff)
    }

    /// Area ratios `T1/1φ`, `T1/4φ`.
    pub fn area_ratios(&self) -> (f64, f64) {
        Self::ratios(self.area)
    }

    /// Depth ratios `T1/1φ`, `T1/4φ`.
    pub fn depth_ratios(&self) -> (f64, f64) {
        Self::ratios(self.depth)
    }
}

/// Runs the 1φ, 4φ and T1 flows on one benchmark.
///
/// # Errors
/// Propagates the first [`FlowError`]; every flow self-verifies (timing
/// audit + functional equivalence), so an error means a real bug, not noise.
pub fn run_row(bench: Benchmark, scale: Scale) -> Result<TableRow, FlowError> {
    run_row_with(bench, scale, CutConfig::default())
}

/// [`run_row`] with an explicit cut-enumeration configuration — the hook the
/// cut-budget regression tests use to assert that tightening
/// [`CutConfig::max_cuts`] does not change any Table I number.
///
/// # Errors
/// Propagates the first [`FlowError`], like [`run_row`].
pub fn run_row_with(
    bench: Benchmark,
    scale: Scale,
    cut_config: CutConfig,
) -> Result<TableRow, FlowError> {
    let aig = match scale {
        Scale::Paper => bench.build(),
        Scale::Small => bench.build_small(),
    };
    let mut configs = [
        FlowConfig::single_phase(),
        FlowConfig::multiphase(4),
        FlowConfig::t1(4),
    ];
    for config in &mut configs {
        config.cut_config = cut_config;
    }
    let mut dff = [0u64; 3];
    let mut area = [0u64; 3];
    let mut depth = [0u64; 3];
    let mut runtime = [Duration::ZERO; 3];
    let mut found_used = (0usize, 0usize);
    for (i, config) in configs.iter().enumerate() {
        let start = Instant::now();
        let result = run_flow(&aig, config)?;
        runtime[i] = start.elapsed();
        dff[i] = result.report.num_dffs as u64;
        area[i] = result.report.area;
        depth[i] = u64::from(result.report.depth_cycles);
        if config.use_t1 {
            found_used = (result.report.t1_found, result.report.t1_used);
        }
    }
    Ok(TableRow {
        name: bench.name().to_string(),
        t1_found: found_used.0,
        t1_used: found_used.1,
        dff,
        area,
        depth,
        runtime,
    })
}

/// Runs the full Table I experiment (all eight benchmarks).
///
/// `progress` is invoked with each finished row (for incremental printing).
/// With the `parallel` feature the rows run concurrently on scoped worker
/// threads ([`crate::par`]); results and `progress` calls still come in
/// table order, so the printed output is identical — only the `runtime`
/// fields get noisier from core contention.
///
/// # Errors
/// Propagates the first [`FlowError`] in table order.
pub fn run_table(
    scale: Scale,
    mut progress: impl FnMut(&TableRow),
) -> Result<Vec<TableRow>, FlowError> {
    let results = crate::par::map(Benchmark::ALL.to_vec(), |bench| run_row(bench, scale));
    let mut rows = Vec::with_capacity(results.len());
    for result in results {
        let row = result?;
        progress(&row);
        rows.push(row);
    }
    Ok(rows)
}

/// A DFF baseline below this count cannot support a meaningful savings
/// ratio (our depth-balanced voter generator leaves the 4φ baseline with
/// single-digit balancing DFFs; dividing by it says nothing about the
/// method). Such ratios are printed with a `*` and excluded from the
/// averages row.
const DEGENERATE_DFF_BASELINE: u64 = 20;

/// Formats measured rows in the layout of the paper's Table I, including
/// the trailing averages row.
///
/// DFF ratios over degenerate baselines (fewer than 20 DFFs — see
/// `DEGENERATE_DFF_BASELINE`) are marked `*` and excluded from the
/// averages; a footnote is appended when that happens.
pub fn format_table(rows: &[TableRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>5} | {:>8} {:>8} {:>8} {:>6} {:>6} | {:>9} {:>9} {:>9} {:>5} {:>5} | {:>4} {:>4} {:>4} {:>5} {:>5}",
        "benchmark", "found", "used",
        "DFF 1φ", "DFF 4φ", "DFF T1", "r1φ", "r4φ",
        "Area 1φ", "Area 4φ", "Area T1", "r1φ", "r4φ",
        "D1φ", "D4φ", "DT1", "r1φ", "r4φ",
    );
    let mut sums = [0.0f64; 6];
    let mut counts = [0usize; 6];
    let add = |k: usize, v: f64, degenerate: bool, sums: &mut [f64; 6], counts: &mut [usize; 6]| {
        if !degenerate {
            sums[k] += v;
            counts[k] += 1;
        }
    };
    let mut any_degenerate = false;
    for row in rows {
        let (d1, d4) = row.dff_ratios();
        let (a1, a4) = row.area_ratios();
        let (p1, p4) = row.depth_ratios();
        let deg1 = row.dff[0] < DEGENERATE_DFF_BASELINE;
        let deg4 = row.dff[1] < DEGENERATE_DFF_BASELINE;
        any_degenerate |= deg1 || deg4;
        add(0, d1, deg1, &mut sums, &mut counts);
        add(1, d4, deg4, &mut sums, &mut counts);
        add(2, a1, false, &mut sums, &mut counts);
        add(3, a4, false, &mut sums, &mut counts);
        add(4, p1, false, &mut sums, &mut counts);
        add(5, p4, false, &mut sums, &mut counts);
        let fmt_ratio = |v: f64, deg: bool| {
            if deg {
                format!("{v:.2}*")
            } else {
                format!("{v:.2}")
            }
        };
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>5} | {:>8} {:>8} {:>8} {:>6} {:>6} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>4} {:>4} {:>4} {:>5.2} {:>5.2}",
            row.name, row.t1_found, row.t1_used,
            row.dff[0], row.dff[1], row.dff[2],
            fmt_ratio(d1, deg1), fmt_ratio(d4, deg4),
            row.area[0], row.area[1], row.area[2], a1, a4,
            row.depth[0], row.depth[1], row.depth[2], p1, p4,
        );
    }
    if !rows.is_empty() {
        let avg = |k: usize| sums[k] / counts[k].max(1) as f64;
        let _ = writeln!(
            out,
            "{:<12} {:>6} {:>5} | {:>8} {:>8} {:>8} {:>6.2} {:>6.2} | {:>9} {:>9} {:>9} {:>5.2} {:>5.2} | {:>4} {:>4} {:>4} {:>5.2} {:>5.2}",
            "Average", "", "",
            "", "", "", avg(0), avg(1),
            "", "", "", avg(2), avg(3),
            "", "", "", avg(4), avg(5),
        );
    }
    if any_degenerate {
        let _ = writeln!(
            out,
            "* baseline has < {DEGENERATE_DFF_BASELINE} balancing DFFs — ratio \
             excluded from the average (no savings to measure against)",
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_dff_baselines_are_marked_and_excluded() {
        let mk = |name: &str, dff: [u64; 3]| TableRow {
            name: name.into(),
            t1_found: 1,
            t1_used: 1,
            dff,
            area: [100, 50, 40],
            depth: [10, 4, 5],
            runtime: [Duration::ZERO; 3],
        };
        // One healthy row (ratio 0.5) and one with a 2-DFF baseline.
        let rows = vec![mk("healthy", [1000, 100, 50]), mk("degen", [1000, 2, 500])];
        let text = format_table(&rows);
        assert!(
            text.contains("250.00*"),
            "degenerate ratio is marked:\n{text}"
        );
        assert!(
            text.contains("excluded from the average"),
            "footnote present"
        );
        // The r4φ average is the healthy row's 0.50 alone, not (0.5+250)/2.
        let avg_line = text
            .lines()
            .find(|l| l.starts_with("Average"))
            .expect("avg row");
        assert!(
            avg_line.contains("0.50"),
            "average excludes the outlier: {avg_line}"
        );
        assert!(
            !avg_line.contains("125"),
            "naive average leaked in: {avg_line}"
        );

        // Without degenerate rows there is no footnote.
        let clean = format_table(&[mk("healthy", [1000, 100, 50])]);
        assert!(
            !clean.contains('*'),
            "no footnote on clean tables:\n{clean}"
        );
    }

    #[test]
    fn small_adder_row_has_t1_wins() {
        let row = run_row(Benchmark::Adder, Scale::Small).expect("flows succeed");
        assert!(row.t1_used > 0, "the adder is the T1 showcase");
        assert!(row.dff[2] < row.dff[0], "T1 beats 1φ on DFFs");
        assert!(row.area[2] < row.area[0], "T1 beats 1φ on area");
        assert!(
            row.area[2] < row.area[1],
            "T1 beats 4φ on area for the adder"
        );
        let text = format_table(std::slice::from_ref(&row));
        assert!(text.contains("adder"));
        assert!(text.contains("Average"));
    }
}
