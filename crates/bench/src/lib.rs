//! Experiment harness for the DAC 2024 T1-cell paper reproduction.
//!
//! Every table and figure in the paper's evaluation has a regeneration
//! entry point here:
//!
//! | artifact | regenerate with |
//! |---|---|
//! | Table I (8 benchmarks × {1φ, 4φ, T1}) | `cargo run -p sfq-bench --release --bin table1` |
//! | Fig. 1b (T1 waveform) | `cargo run -p sfq-bench --bin fig1b` |
//! | Fig. 1c (T1 full adder, 3 phases) | `cargo run --release --example t1_full_adder` |
//! | Ext-A: phase-count ablation | `cargo run -p sfq-bench --release --bin ablation_phases` |
//! | Ext-B: exact-vs-heuristic ablation | `cargo run -p sfq-bench --release --bin ablation_solver` |
//! | Ext-C: gain-threshold ablation | `cargo run -p sfq-bench --release --bin ablation_gain` |
//! | external-design corpus (aag/blif batch) | `cargo run -p sfq-bench --release --bin table_corpus` |
//! | flow runtimes | `cargo bench -p sfq-bench` |
//!
//! The [`paper`] module stores the published Table I numbers so binaries and
//! tests can report measured-vs-paper deltas; [`table`] runs the flows and
//! formats rows in the paper's layout. The `BENCH_flow.json` snapshot
//! schema and the perf-recording workflow are documented in this crate's
//! `README.md`.

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod corpus;
pub mod paper;
pub mod par;
pub mod table;

pub use corpus::{format_corpus_table, load_corpus, run_corpus, CorpusError, CorpusRow};
pub use paper::{paper_row, PaperRow, PAPER_AVERAGES, PAPER_TABLE1};
pub use table::{format_table, run_row, run_row_with, run_table, Scale, TableRow};
