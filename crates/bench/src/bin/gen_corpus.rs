//! Regenerates the checked-in external-design corpus
//! (`crates/bench/corpus/`): small arithmetic/control designs in both
//! interchange formats, stored in **canonical form** — every file is
//! byte-identical to `Design::write_native` of its own parse, so the
//! round-trip tests can diff bytes against the on-disk file.
//!
//! ```text
//! cargo run -p sfq-bench --bin gen_corpus
//! ```
//!
//! Run it only when the corpus is deliberately changed, and commit the
//! results; the corpus tests and CI golden diffs pin the current bytes.

use sfq_bench::corpus::corpus_dir;
use sfq_circuits as circuits;
use sfq_netlist::design::{Design, DesignFormat};
use sfq_netlist::Aig;

/// 8:1 multiplexer — a control-flavoured, T1-poor counterweight to the
/// arithmetic rows.
fn mux8() -> Aig {
    let mut aig = Aig::new("mux8");
    let s: Vec<_> = (0..3).map(|k| aig.input(format!("s[{k}]"))).collect();
    let d: Vec<_> = (0..8).map(|k| aig.input(format!("d[{k}]"))).collect();
    let mut layer = d;
    for sel in &s {
        layer = layer
            .chunks(2)
            .map(|pair| aig.mux(*sel, pair[1], pair[0]))
            .collect();
    }
    aig.output("y", layer[0]);
    aig
}

/// 12-input odd-parity tree (XOR-saturated, MAJ-free: T1 groups cannot
/// form, the sharpest control row).
fn parity12() -> Aig {
    let mut aig = Aig::new("parity12");
    let xs: Vec<_> = (0..12).map(|k| aig.input(format!("x[{k}]"))).collect();
    let p = xs[1..].iter().fold(xs[0], |acc, &x| aig.xor(acc, x));
    aig.output("p", p);
    aig
}

/// Writes `aig` in `format`, canonicalized by a double write→parse cycle
/// (the second cycle is provably a fixpoint; the assert guards the claim).
fn canonical(aig: &Aig, format: DesignFormat) -> String {
    let w1 = Design {
        aig: aig.clone(),
        format,
    }
    .write_native();
    let name = aig.name().to_string();
    let w2 = Design::parse(&w1, format, &name)
        .expect("generated design re-parses")
        .write_native();
    let w3 = Design::parse(&w2, format, &name)
        .expect("canonical design re-parses")
        .write_native();
    assert_eq!(w2, w3, "{name}: canonical form must be a fixpoint");
    w2
}

fn main() -> std::io::Result<()> {
    let dir = corpus_dir();
    std::fs::create_dir_all(&dir)?;
    let designs: Vec<(&str, Aig, DesignFormat)> = vec![
        ("adder8", circuits::adder(8), DesignFormat::Aag),
        ("mult4", circuits::multiplier(4), DesignFormat::Aag),
        ("c7552_mini", circuits::c7552_sized(4), DesignFormat::Aag),
        ("parity12", parity12(), DesignFormat::Aag),
        ("square4", circuits::square(4), DesignFormat::Blif),
        ("voter7", circuits::voter(7), DesignFormat::Blif),
        ("mux8", mux8(), DesignFormat::Blif),
    ];
    for (name, aig, format) in designs {
        let path = dir.join(format!("{name}.{}", format.extension()));
        std::fs::write(&path, canonical(&aig, format))?;
        println!("wrote {}", path.display());
    }
    Ok(())
}
