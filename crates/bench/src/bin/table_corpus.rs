//! The Table I protocol (4φ baseline vs 4φ+T1) over the checked-in
//! external-design corpus — AIGER and BLIF files ingested through the
//! unified `sfq_netlist::design` frontend instead of the programmatic
//! generators, exercising the interchange path end to end.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin table_corpus [-- <dir>]
//! ```
//!
//! Stdout carries only the deterministic table (CI diffs it against
//! `tests/golden/corpus_table.txt`, in both sequential and
//! `--features parallel` builds); progress goes to stderr.

use sfq_bench::corpus::{corpus_dir, format_corpus_table, run_corpus};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::args()
        .nth(1)
        .map(std::path::PathBuf::from)
        .unwrap_or_else(corpus_dir);
    let start = Instant::now();
    let rows = run_corpus(&dir)?;
    eprintln!(
        "ran 2 flows × {} corpus designs from {} in {:.1?}",
        rows.len(),
        dir.display(),
        start.elapsed()
    );
    print!("{}", format_corpus_table(&rows));
    Ok(())
}
