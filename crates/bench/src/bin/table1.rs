//! Regenerates the paper's Table I: eight arithmetic benchmarks × the 1φ,
//! 4φ and 4φ+T1 flows, reporting T1 cells found/used, path-balancing DFFs,
//! area (JJs) and depth (cycles), with ratio and average columns.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin table1            # paper scale
//! cargo run -p sfq-bench --release --bin table1 -- --small # CI scale
//! ```

use sfq_bench::{format_table, paper_row, run_table, Scale, TableRow};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = if std::env::args().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Paper
    };
    eprintln!(
        "running Table I at {scale:?} scale (three flows per row; use --small for a fast run)\n"
    );

    let rows = run_table(scale, |row: &TableRow| {
        eprintln!(
            "  {:<12} done ({:.1?} / {:.1?} / {:.1?})",
            row.name, row.runtime[0], row.runtime[1], row.runtime[2]
        );
    })?;

    println!("\n== measured (this machine, this library) ==\n");
    println!("{}", format_table(&rows));

    println!("== measured vs paper (T1/4φ ratios; shape comparison) ==\n");
    println!(
        "{:<12} {:>10} {:>10} {:>12} {:>12}",
        "benchmark", "area meas", "area paper", "dff meas", "dff paper"
    );
    for row in &rows {
        if let Some(p) = paper_row(&row.name) {
            let (_, a4) = row.area_ratios();
            let (_, d4) = row.dff_ratios();
            let (_, pa4) = p.area_ratios();
            let (_, pd4) = p.dff_ratios();
            println!(
                "{:<12} {:>10.2} {:>10.2} {:>12.2} {:>12.2}",
                row.name, a4, pa4, d4, pd4
            );
        }
    }
    Ok(())
}
