//! Extension experiment: the paper's Table I protocol applied to the five
//! EPFL arithmetic benchmarks the paper did not evaluate (bar, max, div,
//! sqrt, hyp) plus a c499-style error corrector.
//!
//! These are the control-flavoured datapaths — mux-, comparator- and
//! parity-rich rather than full-adder-rich — so the expected shape is the
//! opposite of the adder rows: few T1 candidates, commits only where an
//! embedded carry chain exists (div/sqrt/hyp), and T1 area ≈ 4φ area
//! elsewhere. c499 is the sharpest control: XOR-saturated yet MAJ-free, so
//! T1 groups (which need ≥ 2 distinct functions per leaf set) cannot form.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin table1_extended [-- --small]
//! ```

use sfq_circuits::ExtBenchmark;
use sfq_core::{run_flow, FlowConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");

    println!(
        "{:<8} {:>6} {:>5} | {:>8} {:>8} {:>5} | {:>9} {:>9} {:>5} | {:>4} {:>4}",
        "bench", "found", "used", "DFF 4φ", "DFF T1", "r", "Area 4φ", "Area T1", "r", "D4φ", "DT1"
    );
    for bench in ExtBenchmark::ALL {
        let aig = if small {
            bench.build_small()
        } else {
            bench.build()
        };
        let t0 = Instant::now();
        let four = run_flow(&aig, &FlowConfig::multiphase(4))?.report;
        let t1 = run_flow(&aig, &FlowConfig::t1(4))?.report;
        let elapsed = t0.elapsed();
        println!(
            "{:<8} {:>6} {:>5} | {:>8} {:>8} {:>5.2} | {:>9} {:>9} {:>5.2} | {:>4} {:>4}   ({:.1?})",
            bench.name(),
            t1.t1_found,
            t1.t1_used,
            four.num_dffs,
            t1.num_dffs,
            t1.num_dffs as f64 / four.num_dffs.max(1) as f64,
            four.area,
            t1.area,
            t1.area as f64 / four.area as f64,
            four.depth_cycles,
            t1.depth_cycles,
            elapsed
        );
    }
    println!(
        "\nexpected shape: r(area) ≈ 1 on bar/max/c499 (mux/parity-rich), < 1 on div/sqrt/hyp (carry-chain cores)"
    );
    Ok(())
}
