//! Engine comparison probe: heuristic vs exact phase assignment wall-clock
//! on a mapped ripple adder (used to calibrate the `PhaseEngine::Auto`
//! threshold; see DESIGN.md §3.2).
use sfq_core::{assign_phases, PhaseEngine};
use sfq_netlist::{map_aig, Library};
use std::time::Instant;

fn main() {
    let bits: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let aig = sfq_circuits::adder(bits);
    let net = map_aig(&aig, &Library::default());
    println!("adder{bits}: mapped gates = {}", net.num_gates());
    for n in [1u8, 4] {
        let t = Instant::now();
        let h = assign_phases(&net, n, PhaseEngine::Heuristic).expect("feasible");
        println!(
            "heuristic n={n}: {:?} (out stage {})",
            t.elapsed(),
            h.output_stage
        );
        let t = Instant::now();
        let e = assign_phases(&net, n, PhaseEngine::Exact).expect("feasible");
        println!(
            "exact     n={n}: {:?} (out stage {})",
            t.elapsed(),
            e.output_stage
        );
    }
}
