//! Ext-C ablation: sweep the T1 gain threshold `ΔA > θ` on the multiplier.
//!
//! The paper commits every candidate with positive JJ gain (θ = 0). A
//! higher cutoff commits fewer, higher-value T1 cells — fewer extra stages,
//! less area recovered. This sweep exposes that trade-off.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin ablation_gain [-- --small]
//! ```

use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let aig = if small {
        Benchmark::Multiplier.build_small()
    } else {
        Benchmark::Multiplier.build()
    };
    println!("design: {} ({} AIG nodes)\n", aig.name(), aig.num_ands());

    let baseline = run_flow(&aig, &FlowConfig::multiphase(4))?.report;
    println!(
        "4φ baseline: {} DFFs, {} JJ, depth {}\n",
        baseline.num_dffs, baseline.area, baseline.depth_cycles
    );

    println!(
        "{:>5} {:>6} {:>6} {:>8} {:>10} {:>6} {:>10}",
        "θ", "found", "used", "#DFF", "area", "depth", "area/4φ"
    );
    for theta in [0i64, 10, 20, 30, 40, 60, 90, 10_000] {
        let mut config = FlowConfig::t1(4);
        config.gain_threshold = theta;
        let r = run_flow(&aig, &config)?.report;
        println!(
            "{:>5} {:>6} {:>6} {:>8} {:>10} {:>6} {:>10.3}",
            theta,
            r.t1_found,
            r.t1_used,
            r.num_dffs,
            r.area,
            r.depth_cycles,
            r.area as f64 / baseline.area as f64
        );
    }
    println!("\nθ = ∞ recovers the plain 4φ flow (no T1 cells commit)");
    Ok(())
}
