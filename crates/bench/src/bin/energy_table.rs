//! Ext-E extension: first-order RSFQ energy accounting of the three flows.
//!
//! The paper reduces quality to JJ counts; this table extends the comparison
//! to power, the metric the paper's introduction motivates. Conventional
//! RSFQ static (bias) power is proportional to the JJ count, so the T1
//! flow's area savings translate directly into static-power savings; the
//! dynamic side is measured by streaming random operand waves through the
//! pulse simulator and charging every switching event per the documented
//! model (`sfq_sim::energy`).
//!
//! ```text
//! cargo run -p sfq-bench --release --bin energy_table
//! ```

use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig, FlowResult};
use sfq_netlist::Library;
use sfq_sim::energy::{measure_energy, EnergyModel};
use sfq_sim::PulseSim;

/// Deterministic operand waves for the dynamic-energy measurement.
fn random_waves(inputs: usize, count: usize) -> Vec<Vec<bool>> {
    let mut state = 0xE4E6_55A5_11CE_B00Cu64;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    (0..count)
        .map(|_| (0..inputs).map(|_| next() & 1 == 1).collect())
        .collect()
}

fn energy_of(
    res: &FlowResult,
    waves: &[Vec<bool>],
    lib: &Library,
    model: &EnergyModel,
) -> sfq_sim::EnergyReport {
    let (_, trace) = PulseSim::new(&res.timed)
        .run_traced(waves)
        .expect("audited flows simulate without hazards");
    measure_energy(&res.timed, &trace, waves.len(), lib, model)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = Library::default();
    let model = EnergyModel::default();
    const WAVES: usize = 32;

    println!(
        "RSFQ energy model: {:.2} aJ/switching JJ, {:.2} µW static/JJ, clock {} GHz, {} random waves\n",
        model.e_switch_aj, model.static_uw_per_jj, model.clock_ghz, WAVES
    );
    println!(
        "{:<12} | {:>9} {:>9} {:>9} | {:>10} {:>10} {:>10} | {:>7} {:>7}",
        "benchmark",
        "P_stat 4φ",
        "P_stat T1",
        "ratio",
        "E/op 4φ",
        "E/op T1",
        "ratio",
        "P_tot4φ",
        "P_totT1"
    );
    println!(
        "{:<12} | {:>9} {:>9} {:>9} | {:>10} {:>10} {:>10} | {:>7} {:>7}",
        "", "µW", "µW", "", "aJ", "aJ", "", "µW", "µW"
    );

    let mut stat_ratios = Vec::new();
    let mut dyn_ratios = Vec::new();
    for bench in Benchmark::ALL {
        // Energy needs full pulse traces of every wave, so this table always
        // uses the scaled-down instances; the paper-scale area story is
        // table1's job.
        let aig = bench.build_small();
        let waves = random_waves(aig.num_inputs(), WAVES);

        let r4 = run_flow(&aig, &FlowConfig::multiphase(4))?;
        let rt = run_flow(&aig, &FlowConfig::t1(4))?;
        let e4 = energy_of(&r4, &waves, &lib, &model);
        let et = energy_of(&rt, &waves, &lib, &model);

        let stat_ratio = et.static_power_uw / e4.static_power_uw;
        let dyn_ratio = et.energy_per_wave_aj / e4.energy_per_wave_aj;
        stat_ratios.push(stat_ratio);
        dyn_ratios.push(dyn_ratio);
        println!(
            "{:<12} | {:>9.1} {:>9.1} {:>9.2} | {:>10.0} {:>10.0} {:>10.2} | {:>7.0} {:>7.0}",
            bench.name(),
            e4.static_power_uw,
            et.static_power_uw,
            stat_ratio,
            e4.energy_per_wave_aj,
            et.energy_per_wave_aj,
            dyn_ratio,
            e4.total_power_uw,
            et.total_power_uw,
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\naverage T1/4φ: static power {:.2}, dynamic energy/op {:.2}",
        mean(&stat_ratios),
        mean(&dyn_ratios)
    );
    println!(
        "\nReading: static power tracks the Table I area ratios (bias current is\n\
         per-JJ), so the paper's area claim is an energy claim in conventional\n\
         RSFQ; dynamic energy additionally benefits from T1 cells computing\n\
         three functions per firing."
    );
    Ok(())
}
