//! Regenerates the paper's Fig. 1b: the T1 cell's pulse response to the
//! data patterns `{a}`, `{a,b}`, `{a,b,c}` across three clock periods.
//!
//! ```text
//! cargo run -p sfq-bench --bin fig1b          # ASCII waveform
//! cargo run -p sfq-bench --bin fig1b -- --csv # machine-readable
//! ```

use sfq_sim::waveform::fig1b_waveform;

fn main() {
    let wf = fig1b_waveform();
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", wf.render_csv());
    } else {
        println!("Fig. 1b — T1 cell simulation (data patterns a; a,b; a,b,c):\n");
        println!("{}", wf.render_ascii());
        println!("reading: every T pulse toggles the loop; Q* fires on 0→1, C* on 1→0;");
        println!("the R (clock) pulse emits S only if the loop holds a 1.");
    }
}
