//! Scaling probe: per-stage wall-clock on the Table I instances.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin profile_scale             # paper scale, table to stdout
//! cargo run -p sfq-bench --release --bin profile_scale -- --small  # scaled-down instances
//! cargo run -p sfq-bench --release --bin profile_scale -- --json -
//! ```
//!
//! `--json PATH` additionally writes the snapshot as a machine-readable
//! `sfq-t1-flow-profile/v1` object (`-` for stdout, with the human table
//! moving to stderr). The committed `BENCH_flow.json` at the repo root is
//! a **different, wrapping** schema (`sfq-t1-flow-trajectory/v1`): it
//! holds an array of these snapshot objects over time. To record a new
//! perf PR, emit a snapshot with `--json -`, give it a `label`, and
//! append it to that file's `snapshots` array by hand (or with jq) — do
//! **not** point `--json` at `BENCH_flow.json`, which would overwrite the
//! history with a bare snapshot.
//!
//! With `--features parallel` the benchmarks profile concurrently (one
//! scoped thread each); stage timings then include core contention, so
//! prefer the sequential default when recording official numbers.

use sfq_bench::par;
use sfq_circuits::Benchmark;
use sfq_core::{assign_phases, detect_t1, insert_dffs, PhaseEngine};
use sfq_netlist::{map_aig, CutConfig, Library};
use std::time::{Duration, Instant};

struct ProfileRow {
    name: &'static str,
    aig_ands: usize,
    gates: usize,
    t1_used: usize,
    build: Duration,
    map: Duration,
    detect: Duration,
    phase: Duration,
    dff: Duration,
    dffs: usize,
}

fn profile(bench: Benchmark, small: bool) -> ProfileRow {
    let lib = Library::default();
    let t0 = Instant::now();
    let aig = if small {
        bench.build_small()
    } else {
        bench.build()
    };
    let t_build = t0.elapsed();
    let t0 = Instant::now();
    // Mirror run_flow exactly (map, sweep dead cells, detect) so the
    // t1/dff columns line up with table1's.
    let (mapped, _) = map_aig(&aig, &lib).cleaned();
    let t_map = t0.elapsed();
    let t0 = Instant::now();
    let det = detect_t1(&mapped, &lib, &CutConfig::default());
    let t_det = t0.elapsed();
    let t0 = Instant::now();
    let asg = assign_phases(&det.network, 4, PhaseEngine::Heuristic).expect("feasible");
    let t_phase = t0.elapsed();
    let t0 = Instant::now();
    let timed = insert_dffs(&det.network, &asg, 4).expect("insertable");
    let t_dff = t0.elapsed();
    ProfileRow {
        name: bench.name(),
        aig_ands: aig.num_ands(),
        gates: mapped.num_gates(),
        t1_used: det.used,
        build: t_build,
        map: t_map,
        detect: t_det,
        phase: t_phase,
        dff: t_dff,
        dffs: timed.num_dffs(),
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn render_json(rows: &[ProfileRow], small: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"sfq-t1-flow-profile/v1\",\n");
    out.push_str(&format!(
        "  \"scale\": \"{}\",\n",
        if small { "small" } else { "paper" }
    ));
    out.push_str(&format!("  \"parallel\": {},\n", par::ENABLED));
    out.push_str("  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"aig_ands\": {}, \"gates\": {}, \"t1_used\": {}, \
             \"dffs\": {}, \"stage_ms\": {{\"build\": {:.3}, \"map\": {:.3}, \
             \"detect\": {:.3}, \"phase\": {:.3}, \"dff\": {:.3}}}}}{}\n",
            r.name,
            r.aig_ands,
            r.gates,
            r.t1_used,
            r.dffs,
            ms(r.build),
            ms(r.map),
            ms(r.detect),
            ms(r.phase),
            ms(r.dff),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        match args.get(i + 1) {
            // A following flag is not a path — default to stdout.
            Some(p) if !p.starts_with('-') => p.clone(),
            _ => "-".to_string(),
        }
    });
    // With JSON going to stdout, the human table moves to stderr so the
    // output stays pipeable (`profile_scale --json - | jq ...`).
    let json_on_stdout = json_path.as_deref() == Some("-");

    if par::ENABLED {
        eprintln!("profiling all benchmarks concurrently (timings include core contention)");
    }
    let rows = par::map(Benchmark::ALL.to_vec(), |b| profile(b, small));

    for r in &rows {
        let line = format!(
            "{:<12} aig={:>6} gates={:>6} t1={:>5} | build {:.1?} map {:.1?} detect {:.1?} phase {:.1?} dff {:.1?} | dffs={}",
            r.name, r.aig_ands, r.gates, r.t1_used,
            r.build, r.map, r.detect, r.phase, r.dff, r.dffs
        );
        if json_on_stdout {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }

    if let Some(path) = json_path {
        let json = render_json(&rows, small);
        if path == "-" {
            print!("{json}");
        } else {
            std::fs::write(&path, json).expect("write --json output");
            eprintln!("wrote {path}");
        }
    }
}
