//! Scaling probe: per-stage wall-clock on the big Table I instances.
use sfq_circuits::Benchmark;
use sfq_core::{assign_phases, detect_t1, insert_dffs, PhaseEngine};
use sfq_netlist::{map_aig, CutConfig, Library};
use std::time::Instant;

fn main() {
    let lib = Library::default();
    for bench in Benchmark::ALL {
        let t0 = Instant::now();
        let aig = bench.build();
        let t_build = t0.elapsed();
        let t0 = Instant::now();
        // Mirror run_flow exactly (map, sweep dead cells, detect) so the
        // t1/dff columns line up with table1's.
        let (mapped, _) = map_aig(&aig, &lib).cleaned();
        let t_map = t0.elapsed();
        let t0 = Instant::now();
        let det = detect_t1(&mapped, &lib, &CutConfig::default());
        let t_det = t0.elapsed();
        let t0 = Instant::now();
        let asg = assign_phases(&det.network, 4, PhaseEngine::Heuristic).expect("feasible");
        let t_phase = t0.elapsed();
        let t0 = Instant::now();
        let timed = insert_dffs(&det.network, &asg, 4).expect("insertable");
        let t_dff = t0.elapsed();
        println!(
            "{:<12} aig={:>6} gates={:>6} t1={:>5} | build {:.1?} map {:.1?} detect {:.1?} phase {:.1?} dff {:.1?} | dffs={}",
            bench.name(), aig.num_ands(), mapped.num_gates(), det.used,
            t_build, t_map, t_det, t_phase, t_dff, timed.num_dffs()
        );
    }
}
