//! Ext-A ablation: sweep the number of clock phases `n ∈ {1..8}` and report
//! how DFF count, area and depth respond, with and without T1 cells.
//!
//! The paper fixes `n = 4`; this sweep shows why: DFF savings saturate
//! around 4–6 phases while depth (in cycles) keeps shrinking only slowly,
//! and T1 cells need `n ≥ 4` to have three distinct arrival slots plus the
//! firing slot within one period.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin ablation_phases [-- --small]
//! ```

use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let small = std::env::args().any(|a| a == "--small");
    let benches = [Benchmark::Adder, Benchmark::C6288];

    for bench in benches {
        let aig = if small {
            bench.build_small()
        } else {
            bench.build()
        };
        println!("== {} ({} AIG nodes) ==\n", aig.name(), aig.num_ands());
        println!(
            "{:>2} {:>6} | {:>8} {:>10} {:>6} | {:>8} {:>10} {:>6} {:>6}",
            "n", "", "DFF", "area", "depth", "DFF", "area", "depth", "used"
        );
        println!(
            "{:>2} {:>6} | {:>27} | {:>33}",
            "", "", "-------- no T1 --------", "---------- with T1 ----------"
        );
        for n in 1..=8u8 {
            let plain = run_flow(&aig, &FlowConfig::multiphase(n))?.report;
            // With n < 4 the T1 input window has < 3 distinct slots, so
            // detection cannot commit any cell; run it anyway to show that.
            let t1 = run_flow(&aig, &FlowConfig::t1(n))?.report;
            println!(
                "{:>2} {:>6} | {:>8} {:>10} {:>6} | {:>8} {:>10} {:>6} {:>6}",
                n,
                "",
                plain.num_dffs,
                plain.area,
                plain.depth_cycles,
                t1.num_dffs,
                t1.area,
                t1.depth_cycles,
                t1.t1_used
            );
        }
        println!();
    }
    Ok(())
}
