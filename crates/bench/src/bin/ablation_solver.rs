//! Ext-B ablation: exact MILP vs heuristic phase assignment.
//!
//! The paper solves phase assignment with an ILP (OR-Tools). Our workspace
//! has both an exact MILP engine and a scalable local-search engine; this
//! binary measures the objective gap and runtime between them on circuits
//! small enough for the exact engine.
//!
//! ```text
//! cargo run -p sfq-bench --release --bin ablation_solver
//! ```

use sfq_circuits as circuits;
use sfq_core::{run_flow, FlowConfig, PhaseEngine};
use sfq_netlist::Aig;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let designs: Vec<Aig> = vec![
        circuits::adder(4),
        circuits::adder(8),
        circuits::c7552_sized(4),
        circuits::multiplier(3),
        circuits::voter(7),
        circuits::square(4),
    ];

    println!(
        "{:<12} {:>6} | {:>8} {:>10} | {:>8} {:>10} | {:>6}",
        "design", "gates", "DFF(ex)", "time(ex)", "DFF(heu)", "time(heu)", "gap"
    );
    for aig in &designs {
        for use_t1 in [false, true] {
            let mut exact_cfg = if use_t1 {
                FlowConfig::t1(4)
            } else {
                FlowConfig::multiphase(4)
            };
            exact_cfg.engine = PhaseEngine::Exact;
            let mut heur_cfg = exact_cfg.clone();
            heur_cfg.engine = PhaseEngine::Heuristic;

            let t0 = Instant::now();
            let exact = run_flow(aig, &exact_cfg)?.report;
            let t_exact = t0.elapsed();
            let t1 = Instant::now();
            let heur = run_flow(aig, &heur_cfg)?.report;
            let t_heur = t1.elapsed();

            let gap = heur.num_dffs as i64 - exact.num_dffs as i64;
            println!(
                "{:<12} {:>6} | {:>8} {:>10.2?} | {:>8} {:>10.2?} | {:>+6}",
                format!("{}{}", aig.name(), if use_t1 { "+T1" } else { "" }),
                exact.num_gates,
                exact.num_dffs,
                t_exact,
                heur.num_dffs,
                t_heur,
                gap
            );
            // The exact engine is the oracle: the heuristic may only lose.
            assert!(gap >= 0, "heuristic can never beat a correct exact optimum");
        }
    }
    println!("\ngap = heuristic DFFs − exact DFFs (0 means the heuristic found an optimum)");
    Ok(())
}
