//! Ext-F extension: Monte-Carlo analog timing margins of the T1 discipline.
//!
//! The paper's model is discrete: distinct stages ⇒ no pulse overlap. On
//! silicon the stage spacing is `period / n` and pulses jitter, so the
//! discipline has a finite analog margin that *shrinks as the phase count
//! grows*. This sweep quantifies the hazard probability of flow-produced
//! netlists across jitter levels and phase counts — the design-space
//! dimension the ILP cannot see (see `sfq_sim::margin` for the model).
//!
//! ```text
//! cargo run -p sfq-bench --release --bin margin_mc
//! ```

use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig};
use sfq_sim::margin::{analyze_margins, MarginConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let aig = Benchmark::Adder.build_small();
    println!(
        "benchmark: {} (scaled), clock period 25 ps (40 GHz), 2 ps pulse resolution, 2000 trials\n",
        aig.name()
    );
    println!(
        "{:>2} {:>8} {:>6} | {:>10} {:>12} {:>12} {:>12}",
        "n", "spacing", "T1", "jitter ps", "hazard rate", "worst sep ps", "mean sep ps"
    );

    for phases in [4u8, 5, 6, 8] {
        let res = run_flow(&aig, &FlowConfig::t1(phases))?;
        let t1 = res.report.t1_used;
        for jitter in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let cfg = MarginConfig {
                jitter_ps: jitter,
                trials: 2000,
                ..MarginConfig::default()
            };
            let r = analyze_margins(&res.timed, &cfg);
            println!(
                "{:>2} {:>8.2} {:>6} | {:>10.2} {:>12.4} {:>12.2} {:>12.2}",
                phases,
                r.stage_spacing_ps,
                t1,
                jitter,
                r.hazard_rate(),
                r.worst_separation_ps,
                r.mean_min_separation_ps,
            );
        }
        println!();
    }
    println!(
        "Reading: at fixed clock rate, raising the phase count buys DFFs but\n\
         sells analog margin — the n=4 choice of the paper sits before the\n\
         hazard-rate knee for ~1 ps-class jitter."
    );
    Ok(())
}
