//! External-design corpus integration: every checked-in `.aag`/`.blif`
//! design must ingest through the unified `Design` frontend, survive the
//! full five-stage flow (build→map→detect→phase→dff) with a clean timing
//! audit, round-trip write→read→write byte-identically (the corpus is
//! stored in canonical form, so the bytes must equal the on-disk file), and
//! reproduce the committed golden batch table.

use sfq_bench::corpus::{corpus_dir, format_corpus_table, load_corpus, run_corpus};
use sfq_core::{run_flow_on_design, FlowConfig};
use sfq_netlist::design::{Design, DesignFormat};

#[test]
fn corpus_has_both_formats_and_enough_designs() {
    let designs = load_corpus(&corpus_dir()).expect("corpus loads");
    assert!(
        designs.len() >= 6,
        "corpus must hold at least six designs, found {}",
        designs.len()
    );
    for format in [DesignFormat::Aag, DesignFormat::Blif] {
        assert!(
            designs.iter().any(|(_, d)| d.format == format),
            "corpus must cover {format}"
        );
    }
}

#[test]
fn every_corpus_design_runs_the_full_flow_and_audits() {
    for (file, design) in load_corpus(&corpus_dir()).expect("corpus loads") {
        let res = run_flow_on_design(&design, &FlowConfig::t1(4))
            .unwrap_or_else(|e| panic!("{file}: flow failed: {e}"));
        res.timed
            .audit()
            .unwrap_or_else(|e| panic!("{file}: audit failed: {e}"));
        let baseline = run_flow_on_design(&design, &FlowConfig::multiphase(4))
            .unwrap_or_else(|e| panic!("{file}: 4φ flow failed: {e}"));
        assert!(
            res.report.area <= baseline.report.area,
            "{file}: T1 flow must never cost area over the 4φ baseline"
        );
    }
}

#[test]
fn every_corpus_file_is_canonical_and_round_trips_bytewise() {
    let dir = corpus_dir();
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("corpus dir") {
        let path = entry.expect("dir entry").path();
        if !matches!(
            path.extension().and_then(|e| e.to_str()),
            Some("aag") | Some("blif")
        ) {
            continue;
        }
        let original = std::fs::read_to_string(&path).expect("read corpus file");
        let design = Design::read(&path).expect("corpus file parses");
        let rewritten = design.write_native();
        assert_eq!(
            rewritten,
            original,
            "{}: corpus files are stored canonically; regenerate with \
             `cargo run -p sfq-bench --bin gen_corpus`",
            path.display()
        );
        // And the fixpoint holds for another cycle.
        let again = Design::parse(&rewritten, design.format, "rt").expect("rewrite parses");
        assert_eq!(
            again.write_native(),
            rewritten,
            "{}: write→read→write must be byte-identical",
            path.display()
        );
        checked += 1;
    }
    assert!(checked >= 6, "round-trip must cover the whole corpus");
}

#[test]
fn corpus_table_matches_the_committed_golden() {
    let rows = run_corpus(&corpus_dir()).expect("corpus flows run");
    let table = format_corpus_table(&rows);
    let golden = include_str!("../../../tests/golden/corpus_table.txt");
    assert_eq!(
        table, golden,
        "corpus batch table drifted from tests/golden/corpus_table.txt; \
         inspect the diff and re-bless deliberately if the change is intended"
    );
}
