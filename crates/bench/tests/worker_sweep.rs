//! Determinism sweep over worker counts: the Table I (small scale) numbers
//! must be byte-identical for every worker count, and must match the
//! committed golden `tests/golden/table1_small.txt`. This is the in-process
//! half of the contract the CI `sequential` job checks across *builds*
//! (default/parallel vs `--no-default-features`): parallelism is a
//! scheduling decision, never an observable one.

use sfq_bench::{format_table, run_row_with, Scale};
use sfq_circuits::Benchmark;
use sfq_netlist::{par, CutConfig};

fn table_text() -> String {
    let rows: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| {
            run_row_with(b, Scale::Small, CutConfig::default())
                .expect("flows self-verify; failure is a real bug")
        })
        .collect();
    format_table(&rows)
}

#[test]
fn table1_small_is_worker_count_independent() {
    // Worker counts beyond the host's cores are deliberate oversubscription
    // (capped by par::MAX_WORKERS): single-core CI still exercises the
    // parallel merges this way. One test fn owns the process-global
    // override, so there is no cross-test race to guard against.
    let reference = table_text();
    for w in [1usize, 2, 4, 8] {
        par::force_workers(w);
        let swept = table_text();
        par::force_workers(0);
        assert_eq!(reference, swept, "table1 --small drifted at {w} workers");
    }
    let golden = include_str!("../../../tests/golden/table1_small.txt");
    assert!(
        golden.contains(&reference),
        "golden table1_small.txt no longer embeds the measured table"
    );
}
