//! Regression tests for the per-node cut budget ([`CutConfig::max_cuts`]).
//!
//! The budget is a *pruning* knob: 3-feasible nodes rarely carry more than
//! a handful of surviving cuts, so the default budget of 24 is headroom,
//! not a load-bearing constant. These tests pin that down:
//!
//! * lowering the budget to 16 or 12 must leave every number of
//!   `table1 --small` unchanged (checked against both an in-process default
//!   run and the committed golden file `tests/golden/table1_small.txt`);
//! * the subset property itself (budgeted cut sets ⊆ unbudgeted ones) is a
//!   netlist proptest, `prop_cut_budget_prunes_to_subset`.

use sfq_bench::{format_table, run_row_with, Scale};
use sfq_circuits::Benchmark;
use sfq_netlist::CutConfig;

fn table_text(max_cuts: usize) -> String {
    let rows: Vec<_> = Benchmark::ALL
        .iter()
        .map(|&b| {
            run_row_with(
                b,
                Scale::Small,
                CutConfig {
                    max_leaves: 3,
                    max_cuts,
                },
            )
            .expect("flows self-verify; failure is a real bug")
        })
        .collect();
    format_table(&rows)
}

#[test]
fn lowering_cut_budget_preserves_table1_small() {
    let reference = table_text(24);
    for budget in [16usize, 12] {
        let tightened = table_text(budget);
        assert_eq!(
            reference, tightened,
            "max_cuts = {budget} changed Table I (small scale)"
        );
    }
    // Golden-diff: the committed table1 --small transcript embeds the same
    // formatted table, so the tightened-budget output also matches the
    // golden file, not just this process's own reference run.
    let golden = include_str!("../../../tests/golden/table1_small.txt");
    assert!(
        golden.contains(&reference),
        "golden table1_small.txt no longer embeds the measured table"
    );
}
