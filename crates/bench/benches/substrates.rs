//! Criterion microbenchmarks for the substrates the flow is built on:
//! technology mapping, cut enumeration, T1 detection, phase assignment,
//! DFF insertion, pulse simulation, interchange formats (BLIF/Verilog) and
//! the post-flow analyses (energy, jitter margins) — each measured in
//! isolation so regressions are attributable to a single stage.

use criterion::{criterion_group, criterion_main, Criterion};
use sfq_circuits as circuits;
use sfq_core::{assign_phases, detect_t1, insert_dffs, run_flow, FlowConfig, PhaseEngine};
use sfq_netlist::{blif, enumerate_cuts, export, map_aig, CutConfig, Library};
use sfq_sim::energy::{measure_energy, EnergyModel};
use sfq_sim::margin::{analyze_margins, MarginConfig};
use sfq_sim::{simulate_waves, PulseSim};

fn bench_substrates(c: &mut Criterion) {
    let lib = Library::default();
    let aig = circuits::adder(32);
    let mapped = map_aig(&aig, &lib);
    let cut_config = CutConfig::default();

    c.bench_function("map_aig/adder32", |b| b.iter(|| map_aig(&aig, &lib)));

    c.bench_function("enumerate_cuts/adder32", |b| {
        b.iter(|| enumerate_cuts(&mapped, &cut_config))
    });

    c.bench_function("detect_t1/adder32", |b| {
        b.iter(|| detect_t1(&mapped, &lib, &cut_config))
    });

    let detected = detect_t1(&mapped, &lib, &cut_config).network;
    c.bench_function("assign_phases/adder32_t1", |b| {
        b.iter(|| assign_phases(&detected, 4, PhaseEngine::Heuristic).expect("feasible"))
    });

    let assignment = assign_phases(&detected, 4, PhaseEngine::Heuristic).expect("feasible");
    c.bench_function("insert_dffs/adder32_t1", |b| {
        b.iter(|| insert_dffs(&detected, &assignment, 4).expect("insertable"))
    });

    let timed = run_flow(&aig, &FlowConfig::t1(4))
        .expect("flow succeeds")
        .timed;
    let waves: Vec<Vec<bool>> = (0..4)
        .map(|w| (0..aig.num_inputs()).map(|i| (i + w) % 3 == 0).collect())
        .collect();
    c.bench_function("simulate_waves/adder32_t1", |b| {
        b.iter(|| simulate_waves(&timed, &waves).expect("no hazards"))
    });

    // Interchange formats: render and re-parse the mapped netlist.
    c.bench_function("render_blif/adder32", |b| {
        b.iter(|| export::render_blif(&mapped))
    });
    let text = export::render_blif(&mapped);
    c.bench_function("parse_blif/adder32", |b| {
        b.iter(|| blif::parse_blif(&text).expect("exported blif parses"))
    });
    c.bench_function("render_verilog/adder32", |b| {
        b.iter(|| export::render_verilog(&mapped))
    });

    // Post-flow analyses.
    let (_, trace) = PulseSim::new(&timed)
        .run_traced(&waves)
        .expect("no hazards");
    c.bench_function("measure_energy/adder32_t1", |b| {
        b.iter(|| measure_energy(&timed, &trace, waves.len(), &lib, &EnergyModel::default()))
    });
    let margin_cfg = MarginConfig {
        trials: 200,
        ..MarginConfig::default()
    };
    c.bench_function("analyze_margins/adder32_t1_200", |b| {
        b.iter(|| analyze_margins(&timed, &margin_cfg))
    });
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
