//! Focused criterion benches for the flow's two hottest layers — the
//! regression gates of the hot-path overhaul (see ISSUE 1 / ROADMAP):
//!
//! * `assign_phases/*` — heuristic coordinate descent, T1-detected subjects;
//! * `enumerate_cuts/*` — 3-feasible cut enumeration on mapped networks.
//!
//! The IDs deliberately match `substrates.rs` (`assign_phases/adder32_t1`,
//! `enumerate_cuts/adder32`) so historical numbers stay comparable, with
//! additional sizes to expose scaling behaviour rather than a single point.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sfq_circuits as circuits;
use sfq_core::{assign_phases, detect_t1, insert_dffs, PhaseEngine};
use sfq_netlist::{enumerate_cuts, map_aig, CutConfig, Library};

fn bench_hotpaths(c: &mut Criterion) {
    let lib = Library::default();
    let cut_config = CutConfig::default();

    for bits in [32usize, 64] {
        let aig = circuits::adder(bits);
        c.bench_function(format!("map_aig/adder{bits}"), |b| {
            b.iter(|| map_aig(&aig, &lib))
        });
        let mapped = map_aig(&aig, &lib);
        c.bench_function(format!("enumerate_cuts/adder{bits}"), |b| {
            b.iter(|| enumerate_cuts(&mapped, &cut_config))
        });
        c.bench_function(format!("detect_t1/adder{bits}"), |b| {
            b.iter(|| detect_t1(&mapped, &lib, &cut_config))
        });

        let detected = detect_t1(&mapped, &lib, &cut_config).network;
        c.bench_function(format!("assign_phases/adder{bits}_t1"), |b| {
            b.iter(|| assign_phases(&detected, 4, PhaseEngine::Heuristic).expect("feasible"))
        });
    }

    // A multiplier is the cut-enumeration stress case: reconvergent
    // carry-save structure yields far more cut merges per node than the
    // linear adder chain.
    let mult_aig = circuits::multiplier(12);
    c.bench_function("map_aig/multiplier12", |b| {
        b.iter(|| map_aig(&mult_aig, &lib))
    });
    let mult = map_aig(&mult_aig, &lib);
    c.bench_function("enumerate_cuts/multiplier12", |b| {
        b.iter(|| enumerate_cuts(&mult, &cut_config))
    });
    c.bench_function("detect_t1/multiplier12", |b| {
        b.iter(|| detect_t1(&mult, &lib, &cut_config))
    });
    c.bench_function("cleaned/multiplier12", |b| b.iter(|| mult.cleaned()));
    let mult_det = detect_t1(&mult, &lib, &cut_config).network;
    c.bench_function("assign_phases/multiplier12_t1", |b| {
        b.iter(|| assign_phases(&mult_det, 4, PhaseEngine::Heuristic).expect("feasible"))
    });
    let mult_asg = assign_phases(&mult_det, 4, PhaseEngine::Heuristic).expect("feasible");
    c.bench_function("insert_dffs/multiplier12", |b| {
        b.iter(|| insert_dffs(&mult_det, &mult_asg, 4).expect("insertable"))
    });

    // Paper-scale log2: the Table I row where the back three stages are
    // nearly balanced (ROADMAP's perf targets). `enumerate_cuts`/`detect_t1`
    // gate the ISSUE 3 pruning/parallelism work; `assign_phases/log2_t1`
    // and `insert_dffs/log2` gate the ISSUE 4 timing-engine refactor of the
    // phase/dff stages. The same IDs measure the parallel path when the
    // bench is compiled with `--features parallel`.
    let log2_aig = circuits::log2_shift_add(32);
    let (log2, _) = map_aig(&log2_aig, &lib).cleaned();
    c.bench_function("enumerate_cuts/log2", |b| {
        b.iter(|| enumerate_cuts(&log2, &cut_config))
    });
    c.bench_function("detect_t1/log2", |b| {
        b.iter(|| detect_t1(&log2, &lib, &cut_config))
    });
    let log2_det = detect_t1(&log2, &lib, &cut_config).network;
    c.bench_function("assign_phases/log2_t1", |b| {
        b.iter(|| assign_phases(&log2_det, 4, PhaseEngine::Heuristic).expect("feasible"))
    });
    let log2_asg = assign_phases(&log2_det, 4, PhaseEngine::Heuristic).expect("feasible");
    c.bench_function("insert_dffs/log2", |b| {
        b.iter(|| insert_dffs(&log2_det, &log2_asg, 4).expect("insertable"))
    });

    // ISSUE 9 gates. `enumerate_cuts_frontier/log2` drives the
    // work-stealing frontier driver explicitly, with at least two workers,
    // so the gate measures the parallel scheduler even on hosts where the
    // `enumerate_cuts` dispatcher would fall back to the sequential path.
    #[cfg(feature = "parallel")]
    {
        let w = sfq_netlist::par::workers().max(2);
        c.bench_function("enumerate_cuts_frontier/log2", |b| {
            b.iter(|| sfq_netlist::enumerate_cuts_frontier(&log2, &cut_config, w))
        });
    }
    // `detect_sort/log2` gates the chunked parallel sort + deterministic
    // k-way merge behind detect's match-record phase: synthetic records at
    // log2's cell volume under a duplicate-free key, sorted through the
    // same `par::sort_unstable_by_key` primitive detect calls.
    let recs: Vec<(u64, u32)> = (0..(log2.num_cells() as u32).saturating_mul(4))
        .map(|i| {
            let mut x = u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            x ^= x >> 31;
            (x, i)
        })
        .collect();
    c.bench_function("detect_sort/log2", |b| {
        b.iter_batched(
            || recs.clone(),
            |mut v| {
                sfq_netlist::par::sort_unstable_by_key(&mut v, |r| *r);
                v
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(benches, bench_hotpaths);
criterion_main!(benches);
