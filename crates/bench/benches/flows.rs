//! Criterion runtimes for the Table I flows (the paper reports results from
//! an Apple M1 laptop; ours come from whatever host runs `cargo bench`).
//!
//! One group per flow configuration, one benchmark-circuit ID each, at the
//! scaled-down sizes so a full `cargo bench` stays in minutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sfq_circuits::Benchmark;
use sfq_core::{run_flow, FlowConfig};

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_flows");
    group.sample_size(10);
    for bench in Benchmark::ALL {
        let aig = bench.build_small();
        for (label, config) in [
            ("1phase", FlowConfig::single_phase()),
            ("4phase", FlowConfig::multiphase(4)),
            ("t1", FlowConfig::t1(4)),
        ] {
            // Skip the equivalence check inside the timed loop: it is a
            // verification feature, not part of the flow cost the paper
            // would report.
            let mut config = config;
            config.equivalence_words = 0;
            group.bench_with_input(BenchmarkId::new(label, bench.name()), &aig, |b, aig| {
                b.iter(|| run_flow(aig, &config).expect("flow succeeds"))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
