//! Offline stand-in for the `proptest` property-testing crate.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, API-compatible subset of proptest 1.x: the [`proptest!`] macro
//! with `#![proptest_config(..)]`, [`Strategy`] with `prop_map`/`boxed`,
//! integer-range / tuple / `prop::collection::vec` / `any::<T>()` /
//! `prop::bool::ANY` strategies, [`prop_oneof!`], and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, on purpose:
//!
//! * **no shrinking** — a failing case reports its generated inputs via the
//!   panic message (every test here prints its own diagnostics), but the
//!   shim does not minimize them;
//! * **deterministic seeding** — case `i` of test `t` always draws from an
//!   RNG seeded by `hash(t) ⊕ i`, so CI failures reproduce locally without a
//!   persistence file.

use std::ops::{Range, RangeInclusive};

// =====================================================================
// RNG
// =====================================================================

/// Deterministic xorshift* stream used by all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is ≤ 2⁻⁶⁴·bound,
        // irrelevant for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

// =====================================================================
// Strategy core
// =====================================================================

/// Generates values of an associated type from a [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe alias: any boxed strategy is itself a strategy.
pub type BoxedStrategy<V> = Box<dyn StrategyObj<V>>;

/// Object-safe mirror of [`Strategy`] for boxing.
pub trait StrategyObj<V> {
    fn generate_obj(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> StrategyObj<S::Value> for S {
    fn generate_obj(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.as_ref().generate_obj(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed alternatives (see [`prop_oneof!`]).
pub struct OneOf<V>(pub Vec<BoxedStrategy<V>>);

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].generate(rng)
    }
}

// ---- primitive strategies -------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Marker for full-domain generation of a primitive type.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()` — the full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Primitive types with a canonical full-domain strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- tuples ---------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

// ---- collections ----------------------------------------------------------

/// Size specification for [`collection::vec`]: a count or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// Strategy producing vectors of `element` with a length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace (`prop::bool::ANY`, `prop::collection::vec`).
pub mod prop {
    pub mod bool {
        /// Full-domain boolean strategy.
        pub const ANY: super::super::Any<bool> = super::super::Any(std::marker::PhantomData);
    }
    pub use super::collection;
}

// =====================================================================
// Runner
// =====================================================================

/// Per-`proptest!` block configuration; only `cases` is interpreted.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Accepted for struct-literal compatibility; unused by the shim.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why a generated case did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure, mirroring proptest's `TestCaseError::fail`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection, mirroring proptest's `TestCaseError::reject`.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic seed for `(test name, case index)`.
pub fn case_seed(name: &str, case: u32) -> u64 {
    // FNV-1a over the name, mixed with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Executes the body of one `proptest!`-generated test.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rejected = 0u32;
    let max_rejects = config.cases.saturating_mul(8).max(1024);
    let mut case = 0u32;
    let mut executed = 0u32;
    while executed < config.cases {
        let mut rng = TestRng::new(case_seed(name, case));
        case += 1;
        match body(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest '{name}': too many prop_assume! rejections \
                         ({rejected} rejects for {executed} accepted cases)"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case #{} (seed {:#x}): {}",
                    case - 1,
                    case_seed(name, case - 1),
                    msg
                );
            }
        }
    }
}

/// Everything a test module needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

// =====================================================================
// Macros
// =====================================================================

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |__rng| {
                $crate::__proptest_bindings! { __rng; $($params)* }
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

/// One `let` binding per parameter: `pat in strategy` draws from the given
/// strategy; bare `name: Type` draws from `any::<Type>()` (proptest's
/// implicit-`Arbitrary` parameter form).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bindings {
    ($rng:ident;) => {};
    ($rng:ident; $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
    };
    ($rng:ident; $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bindings! { $rng; $($rest)* }
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::Strategy::generate(&$crate::any::<$ty>(), $rng);
        $crate::__proptest_bindings! { $rng; $($rest)* }
    };
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Skips the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: {:?}, right: {:?})",
            ::std::format!($($fmt)+), l, r
        );
    }};
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (both: {:?})",
            ::std::format!($($fmt)+), l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(-4i32..5), &mut rng);
            assert!((-4..5).contains(&w));
        }
    }

    #[test]
    fn vec_lengths_respect_size_range() {
        let mut rng = crate::TestRng::new(11);
        let s = collection::vec(0u8..4, 4..40);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((4..40).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 4));
        }
        let fixed = collection::vec(prop::bool::ANY, 15);
        assert_eq!(fixed.generate(&mut rng).len(), 15);
    }

    #[test]
    fn seeding_is_deterministic() {
        let a = crate::case_seed("t", 3);
        let b = crate::case_seed("t", 3);
        assert_eq!(a, b);
        assert_ne!(crate::case_seed("t", 4), a);
        assert_ne!(crate::case_seed("u", 3), a);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The macro pipeline itself: patterns, tuples, oneof, assume.
        #[test]
        fn macro_roundtrip(v in collection::vec((0u8..4, any::<bool>()), 1..9),
                           x in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assume!(!v.is_empty());
            prop_assert!(x == 1 || x == 2);
            for (a, _) in v {
                prop_assert!(a < 4, "a = {}", a);
            }
        }
    }
}
