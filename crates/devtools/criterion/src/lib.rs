//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this workspace vendors a
//! minimal, API-compatible subset of criterion 0.5: [`Criterion`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. It measures for real
//! — adaptive batching to amortize timer overhead, a fixed number of timed
//! samples, median/min/max reporting — but performs no statistical outlier
//! analysis and writes no HTML reports.
//!
//! Command-line behaviour matches what `cargo bench` needs: any non-flag
//! argument is a substring filter on benchmark IDs (`cargo bench -- phase`),
//! and the `--bench`/`--save-baseline`/`--noplot` flags criterion users pass
//! are accepted and ignored.

use std::hint;
use std::time::{Duration, Instant};

/// Re-export used by benches to defeat constant folding.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("label", param)` renders as `label/param`.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// A bare id without a parameter component.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    /// Number of iterations the harness asks for in the current sample.
    iters: u64,
    /// Measured wall-clock of the sample body.
    elapsed: Duration,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Runs `routine` `self.iters` times and records the total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Like [`iter`](Self::iter) but consumes per-iteration inputs produced
    /// by `setup` outside the timed region.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        let inputs: Vec<I> = (0..self.iters).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            hint::black_box(routine(input));
        }
        self.elapsed = start.elapsed();
    }
}

/// Batch sizing hint (accepted for API compatibility; batching is uniform).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone)]
struct Config {
    sample_count: usize,
    /// Target wall-clock per sample; iteration counts adapt to reach it.
    target_sample_time: Duration,
    filters: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            sample_count: 20,
            target_sample_time: Duration::from_millis(50),
            filters: Vec::new(),
        }
    }
}

/// The harness entry point; construct via `Criterion::default()`.
#[derive(Debug, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Reads substring filters from the process arguments, skipping the
    /// flags cargo and criterion callers conventionally pass.
    pub fn configure_from_args(mut self) -> Self {
        self.config.filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-') && a != "benches")
            .collect();
        self
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_count = n.max(2);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }

    /// Measures one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let cfg = self.config.clone();
        run_benchmark(&id, &cfg, cfg.sample_count, f);
        self
    }

    /// Runs the registered target functions (used by [`criterion_main!`]).
    pub fn final_summary(&self) {}
}

/// A group of benchmarks sharing a name prefix and sample settings.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    /// Accepted for API compatibility; the shim has no global time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Measures `f` under `<group>/<id>` with `input` passed through.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        let cfg = self.criterion.config.clone();
        let samples = self.sample_count.unwrap_or(cfg.sample_count);
        run_benchmark(&full, &cfg, samples, |b| f(b, input));
        self
    }

    /// Measures `f` under `<group>/<id>`.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let cfg = self.criterion.config.clone();
        let samples = self.sample_count.unwrap_or(cfg.sample_count);
        run_benchmark(&full, &cfg, samples, f);
        self
    }

    /// Ends the group (formatting-only in the shim).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher<'_>)>(id: &str, cfg: &Config, samples: usize, mut f: F) {
    if !cfg.filters.is_empty() && !cfg.filters.iter().any(|p| id.contains(p.as_str())) {
        return;
    }
    // Calibrate: find an iteration count whose sample hits the target time.
    let mut iters = 1u64;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: Default::default(),
        };
        f(&mut b);
        if b.elapsed >= cfg.target_sample_time || iters >= 1 << 30 {
            break b.elapsed.as_secs_f64() / iters as f64;
        }
        // Jump straight towards the target rather than pure doubling.
        let est = b.elapsed.as_secs_f64().max(1e-9) / iters as f64;
        let want = (cfg.target_sample_time.as_secs_f64() / est).ceil() as u64;
        iters = want.clamp(iters * 2, iters * 64).max(iters + 1);
    };
    let _ = per_iter;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            _marker: Default::default(),
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = per_iter_ns[0];
    let max = per_iter_ns[per_iter_ns.len() - 1];
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{id:<44} time:   [{} {} {}]  ({} samples × {} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max),
        samples,
        iters
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs each registered group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
