//! Workspace developer tooling. Currently one tool: `srclint`, the
//! text/AST-light source lint that keeps the workspace's unsafe- and
//! concurrency-invariants from regressing (see [`srclint`]).

#![deny(missing_docs)]

pub mod srclint;
