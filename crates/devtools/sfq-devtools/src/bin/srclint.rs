//! Workspace source-invariant lint. Run from anywhere in the workspace:
//! `cargo run -p sfq-devtools --bin srclint`. Exits nonzero on findings.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // Under `cargo run`, CARGO_MANIFEST_DIR is crates/devtools/sfq-devtools;
    // the workspace root is three levels up. Fall back to the current
    // directory for a direct binary invocation.
    if let Ok(dir) = std::env::var("CARGO_MANIFEST_DIR") {
        let mut p = PathBuf::from(dir);
        for _ in 0..3 {
            p.pop();
        }
        if p.join("Cargo.toml").is_file() {
            return p;
        }
    }
    std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."))
}

fn main() {
    let root = workspace_root();
    match sfq_devtools::srclint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("srclint: clean ({})", root.display());
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("srclint: {} finding(s)", findings.len());
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("srclint: failed to scan {}: {e}", root.display());
            std::process::exit(2);
        }
    }
}
