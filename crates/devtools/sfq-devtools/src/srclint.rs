//! `srclint` — the workspace source-invariant lint.
//!
//! Text/AST-light by design (no registry deps, no syn): it scans every
//! `.rs` file with a comment/string-aware line sanitizer and enforces the
//! invariants that keep the concurrency story auditable:
//!
//! - **`unsafe-safety`** — every `unsafe` keyword carries a `// SAFETY:`
//!   comment on the same line or within the three lines above it.
//! - **`concurrency-containment`** — raw `std::sync::Mutex`,
//!   `std::sync::Condvar`, and `std::thread::spawn` appear only in the
//!   designated sync-shim modules (`crates/*/src/sync.rs`), in
//!   `crates/chk`, in devtools, and in test code. Production code reaches
//!   the primitives through its crate's `sync` module, which is the single
//!   point where the `chk` model-checking feature swaps them out.
//! - **`server-no-unwrap`** — no `unwrap()`/`expect()` in `sfq-server`'s
//!   request-handling paths (`daemon.rs`, `jobs.rs`, `state.rs`,
//!   `protocol.rs`): a malformed request or poisoned lock must degrade,
//!   never crash the daemon.
//! - **`no-static-mut`** — `static mut` is banned outright.
//! - **`cfg-feature-declared`** — every `feature = "..."` named in a
//!   `cfg`/`cfg_attr` condition is declared in the owning crate's
//!   manifest, so a typo can't silently compile a feature gate away.
//!
//! Known textual limits (documented, deliberate): multi-line string
//! literals and `r#"..."#` raw strings are not tracked across lines, and
//! `#[cfg(test)]` regions are approximated as "everything from the first
//! `#[cfg(test)]` line to end of file" — which matches the workspace's
//! universal tests-module-at-the-bottom layout.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// One lint finding, formatted as `path:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier.
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Strips comments from one line of Rust source, tracking block-comment
/// state across lines. String literal *contents* are dropped too unless
/// `keep_strings` (they could contain any token); char literals and
/// lifetimes are distinguished well enough for token scanning.
fn sanitize_line(line: &str, in_block_comment: &mut bool, keep_strings: bool) -> String {
    let b = line.as_bytes();
    let mut out = String::with_capacity(line.len());
    let mut i = 0;
    while i < b.len() {
        if *in_block_comment {
            if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                *in_block_comment = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => break,
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                *in_block_comment = true;
                i += 2;
            }
            b'"' => {
                let start = i;
                i += 1;
                while i < b.len() {
                    if b[i] == b'\\' {
                        i += 2;
                        continue;
                    }
                    if b[i] == b'"' {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                if keep_strings {
                    out.push_str(&line[start..i.min(b.len())]);
                } else {
                    out.push_str("\"\"");
                }
            }
            b'\'' => {
                // Char literal vs lifetime: a literal is `'x'` or `'\x'`;
                // anything else (e.g. `'scope`) is a lifetime.
                let is_escape = i + 1 < b.len() && b[i + 1] == b'\\';
                let is_char = is_escape || (i + 2 < b.len() && b[i + 2] == b'\'');
                if is_char {
                    i += 1;
                    while i < b.len() {
                        if b[i] == b'\\' {
                            i += 2;
                            continue;
                        }
                        if b[i] == b'\'' {
                            i += 1;
                            break;
                        }
                        i += 1;
                    }
                    out.push_str("' '");
                } else {
                    out.push('\'');
                    i += 1;
                }
            }
            c => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    out
}

/// Whether `text` contains `token` as a standalone token (neither side
/// continues an identifier).
fn has_token(text: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = text[from..].find(token) {
        let at = from + pos;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = after >= text.len()
            || !text[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
        if before_ok && after_ok {
            return true;
        }
        from = at + token.len();
    }
    false
}

/// Files allowed to hold raw std concurrency primitives.
fn concurrency_exempt(rel: &str) -> bool {
    rel.starts_with("crates/chk/")
        || rel.starts_with("crates/devtools/")
        || rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.contains("/benches/")
        // The per-crate sync-shim modules: the one sanctioned home of the
        // raw primitives, swapped out under the `chk` feature.
        || (rel.starts_with("crates/") && rel.ends_with("/src/sync.rs"))
}

/// The sfq-server request-handling paths where `unwrap`/`expect` is banned.
fn server_request_path(rel: &str) -> bool {
    matches!(
        rel,
        "crates/server/src/daemon.rs"
            | "crates/server/src/jobs.rs"
            | "crates/server/src/state.rs"
            | "crates/server/src/protocol.rs"
            | "crates/server/src/queue.rs"
    )
}

/// Extracts every `feature = "name"` from a line that carries a cfg
/// condition.
fn cfg_features(sanitized_with_strings: &str) -> Vec<String> {
    let s = sanitized_with_strings;
    if !s.contains("cfg") {
        return Vec::new();
    }
    let mut names = Vec::new();
    let mut from = 0;
    while let Some(pos) = s[from..].find("feature") {
        let at = from + pos;
        from = at + "feature".len();
        let rest = s[from..].trim_start();
        let Some(rest) = rest.strip_prefix('=') else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('"') else {
            continue;
        };
        if let Some(end) = rest.find('"') {
            names.push(rest[..end].to_string());
        }
    }
    names
}

/// Lints one file's content. `features` is the set of feature names the
/// owning crate's manifest declares.
pub fn lint_source(rel: &str, content: &str, features: &BTreeSet<String>) -> Vec<Finding> {
    let mut findings = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let mut in_block_comment = false;
    let mut in_block_comment_keep = false;
    let mut past_cfg_test = false;
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx + 1;
        let code = sanitize_line(raw, &mut in_block_comment, false);
        let code_with_strings = sanitize_line(raw, &mut in_block_comment_keep, true);
        if code.contains("#[cfg(test)]") {
            past_cfg_test = true;
        }

        // unsafe-safety: applies everywhere, tests included — an
        // undocumented unsafe block in a test is still an audit gap.
        if has_token(&code, "unsafe") && !code.contains("unsafe_code") {
            let documented = raw.contains("SAFETY:")
                || lines[idx.saturating_sub(3)..idx]
                    .iter()
                    .any(|l| l.contains("SAFETY:"));
            if !documented {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "unsafe-safety",
                    message: "`unsafe` without a `// SAFETY:` comment on the same line \
                              or within the three lines above"
                        .to_string(),
                });
            }
        }

        // no-static-mut: applies everywhere.
        if has_token(&code, "static") && code.contains("static mut ") {
            findings.push(Finding {
                path: rel.to_string(),
                line: line_no,
                rule: "no-static-mut",
                message: "`static mut` is banned; use an atomic, a lock, or OnceLock".to_string(),
            });
        }

        // cfg-feature-declared: applies everywhere.
        for name in cfg_features(&code_with_strings) {
            if !features.contains(&name) {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "cfg-feature-declared",
                    message: format!(
                        "cfg names feature `{name}` which the crate's manifest does not declare"
                    ),
                });
            }
        }

        if past_cfg_test {
            continue;
        }

        // concurrency-containment: production code only.
        if !concurrency_exempt(rel) {
            for token in [
                "std::thread::spawn",
                "std::sync::Mutex",
                "std::sync::Condvar",
            ] {
                if code.contains(token) {
                    findings.push(Finding {
                        path: rel.to_string(),
                        line: line_no,
                        rule: "concurrency-containment",
                        message: format!(
                            "raw `{token}` outside the sync-shim modules; import it \
                             through the crate's `sync` module instead"
                        ),
                    });
                }
            }
            let trimmed = code.trim_start();
            if trimmed.starts_with("use std::sync::{")
                && (has_token(trimmed, "Mutex") || has_token(trimmed, "Condvar"))
            {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: line_no,
                    rule: "concurrency-containment",
                    message: "raw `Mutex`/`Condvar` import from std::sync outside the \
                              sync-shim modules"
                        .to_string(),
                });
            }
        }

        // server-no-unwrap: request-handling paths only.
        if server_request_path(rel) && (code.contains(".unwrap()") || code.contains(".expect(")) {
            findings.push(Finding {
                path: rel.to_string(),
                line: line_no,
                rule: "server-no-unwrap",
                message: "unwrap/expect in a request-handling path; degrade instead \
                          (e.g. `unwrap_or_else(|e| e.into_inner())` for lock poisoning)"
                    .to_string(),
            });
        }
    }
    findings
}

/// Parses the feature names a Cargo manifest declares: `[features]` keys
/// plus optional dependencies (whose names are implicit features).
pub fn manifest_features(manifest: &str) -> BTreeSet<String> {
    let mut features = BTreeSet::new();
    let mut section = String::new();
    for raw in manifest.lines() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            // `[dependencies.foo]` style subsections.
            if let Some(dep) = section
                .strip_prefix("dependencies.")
                .or_else(|| section.strip_prefix("dev-dependencies."))
            {
                section = format!("dep-subsection:{dep}");
            }
            continue;
        }
        if section == "features" {
            if let Some((key, _)) = line.split_once('=') {
                let key = key.trim();
                if !key.is_empty() && !key.starts_with('#') {
                    features.insert(key.to_string());
                }
            }
        } else if section.ends_with("dependencies") {
            if line.contains("optional") && line.contains("true") {
                if let Some((key, _)) = line.split_once('=') {
                    features.insert(key.trim().to_string());
                }
            }
        } else if let Some(dep) = section.strip_prefix("dep-subsection:") {
            if line.replace(' ', "") == "optional=true" {
                features.insert(dep.to_string());
            }
        }
    }
    features
}

/// Collects every `.rs` file under `root`, skipping build output and VCS
/// metadata. Paths come back sorted for deterministic output.
fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// The manifest governing `file`: the nearest `Cargo.toml` walking up
/// toward (and including) `root`.
fn owning_manifest(root: &Path, file: &Path) -> Option<PathBuf> {
    let mut dir = file.parent()?.to_path_buf();
    loop {
        let candidate = dir.join("Cargo.toml");
        if candidate.is_file() {
            return Some(candidate);
        }
        if dir == root {
            return None;
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Lints the whole workspace rooted at `root`. Returns all findings,
/// sorted by path and line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut manifest_cache: std::collections::BTreeMap<PathBuf, BTreeSet<String>> =
        std::collections::BTreeMap::new();
    let mut findings = Vec::new();
    for file in collect_rs_files(root)? {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let content = std::fs::read_to_string(&file)?;
        let features = match owning_manifest(root, &file) {
            Some(manifest_path) => manifest_cache
                .entry(manifest_path.clone())
                .or_insert_with(|| {
                    std::fs::read_to_string(&manifest_path)
                        .map(|m| manifest_features(&m))
                        .unwrap_or_default()
                })
                .clone(),
            None => BTreeSet::new(),
        };
        findings.extend(lint_source(&rel, &content, &features));
    }
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feats(names: &[&str]) -> BTreeSet<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn undocumented_unsafe_is_flagged_and_safety_comment_clears_it() {
        let bad = "fn f() {\n    unsafe {\n        work();\n    }\n}\n";
        let found = lint_source("crates/x/src/lib.rs", bad, &feats(&[]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "unsafe-safety");
        assert_eq!(found[0].line, 2);

        let good = "fn f() {\n    // SAFETY: no aliasing, checked above.\n    unsafe {\n        work();\n    }\n}\n";
        assert!(lint_source("crates/x/src/lib.rs", good, &feats(&[])).is_empty());
    }

    #[test]
    fn unsafe_in_comments_strings_and_forbid_attr_is_ignored() {
        let content =
            "// unsafe in a comment\nlet s = \"unsafe in a string\";\n#![forbid(unsafe_code)]\n";
        assert!(lint_source("crates/x/src/lib.rs", content, &feats(&[])).is_empty());
    }

    #[test]
    fn raw_primitives_flagged_outside_shims_allowed_inside() {
        let content =
            "use std::sync::Mutex;\nlet m: std::sync::Condvar;\nstd::thread::spawn(|| {});\n";
        let found = lint_source("crates/x/src/other.rs", content, &feats(&[]));
        assert_eq!(found.len(), 3);
        assert!(found.iter().all(|f| f.rule == "concurrency-containment"));

        assert!(lint_source("crates/x/src/sync.rs", content, &feats(&[])).is_empty());
        assert!(lint_source("crates/chk/src/sched.rs", content, &feats(&[])).is_empty());
        assert!(lint_source("crates/x/tests/stress.rs", content, &feats(&[])).is_empty());
    }

    #[test]
    fn brace_imports_of_mutex_are_flagged() {
        let content = "use std::sync::{Condvar, Mutex};\n";
        let found = lint_source("crates/x/src/other.rs", content, &feats(&[]));
        assert_eq!(found.len(), 1);
        // But innocuous std::sync imports are not.
        let ok = "use std::sync::{mpsc, Arc, OnceLock};\n";
        assert!(lint_source("crates/x/src/other.rs", ok, &feats(&[])).is_empty());
    }

    #[test]
    fn cfg_test_region_is_exempt_from_containment_and_unwrap() {
        let content = "fn main() {}\n#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_source("crates/server/src/state.rs", content, &feats(&[])).is_empty());
    }

    #[test]
    fn server_unwrap_flagged_only_on_request_paths() {
        let content = "fn f() { y.lock().expect(\"lock\"); }\n";
        let found = lint_source("crates/server/src/daemon.rs", content, &feats(&[]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "server-no-unwrap");
        assert!(lint_source("crates/server/src/client.rs", content, &feats(&[])).is_empty());
        assert!(lint_source("crates/cli/src/lib.rs", content, &feats(&[])).is_empty());
    }

    #[test]
    fn static_mut_is_always_flagged() {
        let content = "static mut COUNTER: usize = 0;\n";
        let found = lint_source("crates/chk/src/sched.rs", content, &feats(&[]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "no-static-mut");
    }

    #[test]
    fn undeclared_cfg_feature_is_flagged() {
        let content = "#[cfg(feature = \"parallel\")]\nfn a() {}\n#[cfg(any(test, feature = \"paralel\"))]\nfn b() {}\nlet x = cfg!(feature = \"parallel\");\n";
        let found = lint_source("crates/x/src/lib.rs", content, &feats(&["parallel"]));
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, "cfg-feature-declared");
        assert!(found[0].message.contains("paralel"));
    }

    #[test]
    fn manifest_features_cover_sections_and_optional_deps() {
        let manifest = "[package]\nname = \"x\"\n\n[features]\ndefault = [\"parallel\"]\nparallel = []\nchk = [\"dep:chk\"]\n\n[dependencies]\nchk = { workspace = true, optional = true }\nserde = \"1\"\n\n[dependencies.extra]\nversion = \"1\"\noptional = true\n";
        let f = manifest_features(manifest);
        for name in ["default", "parallel", "chk", "extra"] {
            assert!(f.contains(name), "missing {name}: {f:?}");
        }
        assert!(!f.contains("serde"));
    }

    #[test]
    fn feature_mention_in_doc_comment_is_ignored() {
        let content = "/// Enable with cfg feature = \"made-up\" for fun.\nfn f() {}\n";
        assert!(lint_source("crates/x/src/lib.rs", content, &feats(&[])).is_empty());
    }
}
