//! T1-aware multiphase technology mapping for SFQ circuits.
//!
//! This crate implements the contribution of *"Unleashing the Power of
//! T1-cells in SFQ Arithmetic Circuits"* (DAC 2024): a three-stage flow that
//!
//! 1. **detects** groups of cuts realizable by a single T1 flip-flop
//!    (XOR3 / MAJ3 / OR3 and complements over shared leaves) and replaces
//!    their fanout-free cones when the JJ-area gain is positive
//!    ([`detect`], paper §II-A, eq. 2);
//! 2. **assigns a clock stage** `σ(g) = n·S(g) + φ(g)` to every clocked cell
//!    under an `n`-phase clock, minimizing path-balancing DFFs subject to the
//!    T1 input-separation constraint ([`phase`], §II-B, eqs. 1, 3, 4) — with
//!    an exact MILP engine and a scalable local-search engine;
//! 3. **inserts DFF chains** so every pulse is consumed within its lifetime
//!    and the three T1 fanins arrive at pairwise-distinct stages
//!    ([`dff`], §II-C, eq. 5).
//!
//! The single-phase (`n = 1`) and plain multiphase (`n = 4`, no T1) baselines
//! of the paper's Table I are the same machinery with detection disabled —
//! see [`FlowConfig`].
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_netlist::Aig;
//!
//! // A 4-bit ripple-carry adder.
//! let mut aig = Aig::new("add4");
//! let a = aig.input_word("a", 4);
//! let b = aig.input_word("b", 4);
//! let mut carry = aig.const_false();
//! let mut sums = Vec::new();
//! for i in 0..4 {
//!     let (s, c) = aig.full_adder(a[i], b[i], carry);
//!     sums.push(s);
//!     carry = c;
//! }
//! sums.push(carry);
//! aig.output_word("s", &sums);
//!
//! let result = run_flow(&aig, &FlowConfig::t1(4)).unwrap();
//! assert!(result.report.t1_used >= 1);
//! result.timed.audit().unwrap();
//! ```

// Every public item in this workspace is documented; keep it that way.
#![deny(missing_docs)]

pub mod chains;
pub mod detect;
pub mod detect_reference;
pub mod dff;
pub mod engine;
pub mod flow;
pub mod phase;
pub mod report;
pub mod supervise;
pub mod timed;

pub use detect::{detect_t1, detect_t1_with_threshold, T1Detection, T1Group};
pub use detect_reference::{detect_t1_reference, detect_t1_with_threshold_reference};
pub use dff::{insert_dffs, insert_dffs_reference};
pub use engine::TimingEngine;
pub use flow::{
    run_flow, run_flow_on_design, run_flow_on_network, FlowConfig, FlowError, FlowReport,
    FlowResult,
};
pub use supervise::{
    run_flow_supervised, supervise, supervise_task, FlowOutcome, Limits, TaskOutcome,
};

pub use phase::{
    arrival_cost, assign_phases, assign_phases_reference, assign_phases_with_restarts,
    solve_arrivals, solve_arrivals_cp, solve_arrivals_enum, ArrivalCache, PhaseEngine, PhaseError,
    StageAssignment,
};
pub use timed::{TimedNetwork, TimingError};

#[cfg(test)]
mod tests;
