//! Multiphase clock-stage assignment (paper §II-B).
//!
//! Every clocked cell gets a stage `σ(g) = n·S(g) + φ(g)` (eq. 1). The
//! objective is the number of path-balancing DFFs the subsequent insertion
//! step will materialize: one shared chain per driven pin plus the exact-tap
//! DFFs that T1 input separation (eqs. 3–5) and primary-output alignment
//! demand. Two engines solve the problem:
//!
//! * [`PhaseEngine::Exact`] — a MILP over stage variables, per-pin chain
//!   variables and explicit T1 arrival-slot variables with pairwise
//!   distinctness (big-M booleans). Modelling arrivals explicitly subsumes
//!   the paper's eq. 4 separation-cost approximation: a delayed arrival is
//!   charged through the chain variable of its driver directly.
//! * [`PhaseEngine::Heuristic`] — ASAP seeding followed by coordinate-descent
//!   stage moves evaluated against the *true* materialization cost (the same
//!   [`chains`](crate::chains) planner DFF insertion runs), so the heuristic
//!   optimizes exactly what gets built.
//!
//! `Auto` picks Exact below a size threshold and Heuristic above it, which is
//! how the Table I benchmarks run.
//!
//! Since the timing-engine refactor the public entry points
//! ([`assign_phases`], [`assign_phases_with_restarts`]) run on
//! [`TimingEngine`](crate::engine::TimingEngine), which shares its resolved
//! arrivals and chain plans with DFF insertion; this module keeps the
//! problem model (views, arrival solvers, cost model, the MILP) and the
//! original descent, the latter alive as the executable specification
//! [`assign_phases_reference`]. The hot-path notes below describe that
//! reference descent; the engine inherits all of them and adds the
//! incremental invalidation documented in [`crate::engine`].
//!
//! # Hot-path design (see `benches/hotpaths.rs` for the regression gates)
//!
//! The heuristic inner loop evaluates `O(cells × candidates)` stage moves per
//! descent pass, each re-pricing a handful of pins; at Table I scale that is
//! millions of pin costings per run. Three mechanisms keep it fast:
//!
//! * **Closed-form arrival solving.** [`solve_arrivals`] no longer
//!   enumerates the `O(w³)` window; it reduces the problem to *relative*
//!   slots `r_k = σ_j − a_k` where the DFF cost of fanin `k` is
//!   `⌊Δ_k/n⌋ + [r_k < Δ_k mod n]` (`Δ_k = σ_j − σ_fanin`), and the optimal
//!   distinct assignment is found by greedy placement along each of the 3!
//!   value orders — six candidates instead of hundreds. The result is
//!   bit-identical to the old enumerator (minimum cost, then
//!   lexicographically smallest arrival vector; the reference enumerator
//!   survives as [`solve_arrivals_enum`] and the test suite sweeps the full
//!   domain against it and the CP model).
//! * **Memoized arrivals.** The reduced problem depends only on
//!   `(Δ_k mod n, min(Δ_k, n−1))` per fanin — not on absolute stages — so
//!   the same key recurs thousands of times per run as the descent slides
//!   whole regions of the netlist. [`ArrivalCache`] memoizes the relative
//!   solution; one cache is shared by the heuristic's cost model, the MILP
//!   warm-start, and DFF insertion.
//! * **Incremental bookkeeping.** Pin lookup is a flat
//!   `cell × port`-indexed table (no hashing); the common output stage is
//!   maintained by a histogram tracker so a candidate's `σ_out` is O(1)
//!   instead of a primary-output rescan; primary-output pin costs are
//!   refreshed lazily via a generation stamp when `σ_out` moves (previously
//!   every accepted move rescanned every PO pin); per-cell affected-pin
//!   lists are precomputed in CSR form; and chain costs are counted
//!   arithmetically ([`chains::chain_cost_sorted`](crate::chains::chain_cost_sorted))
//!   into reusable scratch buffers instead of materializing plan vectors.
//!
//! Measured effect (criterion medians, one dev machine, 2026-07):
//! `assign_phases/adder32_t1` 169 µs → 33 µs (5.1×),
//! `assign_phases/multiplier12_t1` 1.11 ms → 0.31 ms (3.6×); at paper
//! scale the phase stage of `profile_scale` dropped 3.7–16× per benchmark
//! (log2: 112 ms → 30 ms) with bit-identical assignments. Current numbers
//! live in `BENCH_flow.json` at the repo root.

use crate::chains::chain_cost_sorted;
use sfq_netlist::{CellId, CellKind, Network, Signal, T1_NUM_PORTS};
use sfq_solver::{Cmp, MilpProblem, SolverError};
use std::cell::RefCell;
use std::collections::HashMap;

/// Which solver runs phase assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEngine {
    /// Exact MILP (bounded sizes).
    Exact,
    /// ASAP + coordinate descent (any size).
    Heuristic,
    /// Exact when the network is small enough, heuristic otherwise.
    Auto,
}

/// A stage (σ) per cell plus the common primary-output stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAssignment {
    /// Stage per cell (indexed by `CellId`); primary inputs are 0.
    pub stages: Vec<u32>,
    /// Common stage at which every primary output is sampled.
    pub output_stage: u32,
}

/// Errors from phase assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseError {
    /// T1 cells need at least 4 phases (3 distinct arrival slots in a window
    /// of `n − 1` stages).
    TooFewPhasesForT1 {
        /// The requested phase count.
        phases: u8,
    },
    /// `phases` must be at least 1.
    ZeroPhases,
    /// The exact engine failed (size, numerics); callers may retry with the
    /// heuristic.
    Milp(SolverError),
    /// The network is cyclic or malformed.
    BadNetwork(String),
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::TooFewPhasesForT1 { phases } => {
                write!(f, "T1 cells need ≥ 4 phases, got {phases}")
            }
            PhaseError::ZeroPhases => write!(f, "need at least one clock phase"),
            PhaseError::Milp(e) => write!(f, "exact phase assignment failed: {e}"),
            PhaseError::BadNetwork(e) => write!(f, "bad network: {e}"),
        }
    }
}

impl std::error::Error for PhaseError {}

// ======================================================================
// Shared structural view
// ======================================================================

/// Per-pin sink lists of the subject network.
#[derive(Debug, Clone, Default)]
pub(crate) struct PinSinks {
    /// Plain (window-tapping) consumer cells.
    pub plain: Vec<CellId>,
    /// `(t1 cell, fanin index)` consumers.
    pub t1: Vec<(CellId, usize)>,
    /// Number of primary outputs driven by the pin.
    pub outputs: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct NetView {
    /// Driven pins with their sinks, in deterministic (signal) order.
    pub pins: Vec<(Signal, PinSinks)>,
    /// Flat `cell × port → pin index` table (`u32::MAX` = undriven pin);
    /// replaces the former per-probe `HashMap<Signal, usize>`.
    pin_of: Vec<u32>,
    /// All T1 cells.
    pub t1_cells: Vec<CellId>,
    /// Topological order of cells.
    pub order: Vec<CellId>,
}

#[inline]
pub(crate) fn flat_pin(s: Signal) -> usize {
    s.cell.0 as usize * T1_NUM_PORTS + s.port as usize
}

impl NetView {
    /// Pin index of a signal, if any sink or output reads it.
    #[inline]
    pub fn pin_lookup(&self, s: Signal) -> Option<usize> {
        match self.pin_of[flat_pin(s)] {
            u32::MAX => None,
            i => Some(i as usize),
        }
    }
}

pub(crate) fn build_view(net: &Network) -> Result<NetView, PhaseError> {
    let order = net
        .topological_order()
        .map_err(|e| PhaseError::BadNetwork(e.to_string()))?;
    // Accumulate sinks directly into the flat pin table; iterating it in
    // index order afterwards yields pins sorted by `Signal` (cell, then
    // port), matching the former sorted-map construction exactly.
    let mut flat: Vec<PinSinks> = vec![PinSinks::default(); net.num_cells() * T1_NUM_PORTS];
    let mut t1_cells = Vec::new();
    for id in net.cell_ids() {
        let kind = net.kind(id);
        let is_t1 = matches!(kind, CellKind::T1 { .. });
        if is_t1 {
            t1_cells.push(id);
        }
        for (k, &f) in net.fanins(id).iter().enumerate() {
            let e = &mut flat[flat_pin(f)];
            if is_t1 {
                e.t1.push((id, k));
            } else {
                e.plain.push(id);
            }
        }
    }
    for &o in net.outputs() {
        flat[flat_pin(o)].outputs += 1;
    }
    let mut pins: Vec<(Signal, PinSinks)> = Vec::new();
    let mut pin_of = vec![u32::MAX; flat.len()];
    for (idx, sinks) in flat.iter_mut().enumerate() {
        if sinks.plain.is_empty() && sinks.t1.is_empty() && sinks.outputs == 0 {
            continue;
        }
        let sig = Signal {
            cell: CellId((idx / T1_NUM_PORTS) as u32),
            port: (idx % T1_NUM_PORTS) as u8,
        };
        pin_of[idx] = pins.len() as u32;
        pins.push((sig, std::mem::take(sinks)));
    }
    Ok(NetView {
        pins,
        pin_of,
        t1_cells,
        order,
    })
}

// ======================================================================
// T1 arrival-slot solving (shared with DFF insertion)
// ======================================================================

/// Fanin-order permutations of the three arrival values, in the order that
/// makes the greedy sweep below return the lexicographically-smallest
/// minimum-cost arrival vector (see `solve_arrivals_rel`).
const ARRIVAL_PERMS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// Solves the window-relative arrival problem: choose pairwise-distinct
/// `r_k ∈ [1, cap_k]` minimizing `Σ [r_k < m_k]`, tie-broken towards the
/// lexicographically smallest arrival vector (`a_k = σ_j − r_k`, i.e. the
/// *largest* `r_0`, then `r_1`, then `r_2`).
///
/// `m_k = Δ_k mod n` and `cap_k = min(Δ_k, n−1)` with `Δ_k = σ_j − σ_fanin`:
/// within the window every fanin's DFF cost is `⌊Δ_k/n⌋` plus one extra DFF
/// iff its slot is *later* than `m_k` stages before `σ_j` — so the choice
/// depends only on `(m, cap)` per fanin, which is what makes memoization by
/// relative key effective.
///
/// Exactness of the 3!-permutation greedy: per-fanin cost is nondecreasing
/// in the arrival stage, so for any fixed relative order of the three
/// arrival values the pointwise-minimal (greedy) assignment is optimal and
/// lexicographically minimal; scanning all six orders covers every optimum.
pub(crate) fn solve_arrivals_rel(m: [u32; 3], cap: [u32; 3]) -> Option<[u8; 3]> {
    let mut best: Option<(u32, [u32; 3])> = None;
    for perm in ARRIVAL_PERMS {
        // perm[0] takes the earliest arrival = the largest r.
        let mut r = [0u32; 3];
        let mut prev = u32::MAX;
        let mut ok = true;
        for &k in &perm {
            let v = cap[k].min(prev.saturating_sub(1));
            if v == 0 {
                ok = false;
                break;
            }
            r[k] = v;
            prev = v;
        }
        if !ok {
            continue;
        }
        let cost = (0..3).map(|k| u32::from(r[k] < m[k])).sum::<u32>();
        let better = match &best {
            None => true,
            // Larger r is an earlier arrival: prefer (r[0], r[1], r[2])
            // lexicographically *largest* among equal costs, which is the
            // arrival vector lexicographically smallest.
            Some((bc, br)) => cost < *bc || (cost == *bc && r > *br),
        };
        if better {
            best = Some((cost, r));
        }
    }
    best.map(|(_, r)| [r[0] as u8, r[1] as u8, r[2] as u8])
}

/// Window-relative reduction of one arrival query: `(m_k, cap_k)` per fanin,
/// or `None` when some fanin fires at/after the window closes.
/// Packs one window-relative arrival key (`m`, `cap`, `n`, each `< 256`)
/// into a `u64`. The single source of truth for the memo-key bit layout,
/// shared by [`ArrivalCache`] and the engine's open-addressed memo so the
/// two can never drift. `n ∈ 1..=255` lands in bits 48..56, so a packed
/// key is never 0 — the engine memo uses 0 as its empty-slot marker.
#[inline]
pub(crate) fn pack_arrival_key(m: [u32; 3], cap: [u32; 3], n: u32) -> u64 {
    debug_assert!((1..256).contains(&n));
    u64::from(m[0] as u8)
        | u64::from(cap[0] as u8) << 8
        | u64::from(m[1] as u8) << 16
        | u64::from(cap[1] as u8) << 24
        | u64::from(m[2] as u8) << 32
        | u64::from(cap[2] as u8) << 40
        | u64::from(n as u8) << 48
}

#[inline]
pub(crate) fn arrival_key(
    fanin_stages: [u32; 3],
    sigma_j: u32,
    n: u32,
) -> Option<([u32; 3], [u32; 3])> {
    debug_assert!(n >= 1);
    let mut m = [0u32; 3];
    let mut cap = [0u32; 3];
    for k in 0..3 {
        if fanin_stages[k] >= sigma_j {
            return None; // Δ_k < 1: the fanin cannot arrive inside the window
        }
        let delta = sigma_j - fanin_stages[k];
        m[k] = delta % n;
        cap[k] = delta.min(n - 1);
    }
    Some((m, cap))
}

/// Chooses pairwise-distinct arrival stages for the three fanins of a T1
/// cell at stage `sigma_j`, minimizing the chain DFFs needed to realize
/// them. `fanin_stages[k]` is the stage of the k-th fanin's driving cell.
///
/// Returns `None` when no feasible assignment exists (the caller's stage
/// bounds make this unreachable in the flow).
///
/// Closed-form small-candidate solver; produces exactly the result of the
/// reference enumerator [`solve_arrivals_enum`] (minimum cost, then
/// lexicographically smallest arrival vector) at O(1) instead of O(n³).
pub fn solve_arrivals(fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
    let (m, cap) = arrival_key(fanin_stages, sigma_j, n)?;
    let r = solve_arrivals_rel(m, cap)?;
    Some([
        sigma_j - u32::from(r[0]),
        sigma_j - u32::from(r[1]),
        sigma_j - u32::from(r[2]),
    ])
}

/// The original O(window³) arrival enumerator, kept as the reference
/// implementation: the test suite sweeps [`solve_arrivals`] against it (and
/// against [`solve_arrivals_cp`]) over the full small-parameter domain.
pub fn solve_arrivals_enum(fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
    let win_lo = sigma_j.saturating_sub(n - 1);
    let win_hi = sigma_j.checked_sub(1)?;
    let mut best: Option<(usize, [u32; 3])> = None;
    let dom = |k: usize| -> std::ops::RangeInclusive<u32> { fanin_stages[k].max(win_lo)..=win_hi };
    for a0 in dom(0) {
        for a1 in dom(1) {
            if a1 == a0 {
                continue;
            }
            for a2 in dom(2) {
                if a2 == a0 || a2 == a1 {
                    continue;
                }
                let arr = [a0, a1, a2];
                let cost = arrival_cost(fanin_stages, arr, n);
                let better = match &best {
                    None => true,
                    Some((bc, ba)) => cost < *bc || (cost == *bc && arr < *ba),
                };
                if better {
                    best = Some((cost, arr));
                }
            }
        }
    }
    best.map(|(_, a)| a)
}

/// Memo cache for [`solve_arrivals`] keyed by the window-relative reduction
/// `(Δ_k mod n, min(Δ_k, n−1))₍k₌₀‥₂₎` plus `n` — the full invariant of the
/// solve, independent of absolute stages. One instance is shared by the
/// heuristic's cost model, the MILP warm-start and DFF insertion; the same
/// key recurs thousands of times per flow because coordinate descent slides
/// whole regions of the netlist without changing stage *differences*.
///
/// Interior-mutable so read-mostly holders can share `&ArrivalCache`.
#[derive(Debug, Default)]
pub struct ArrivalCache {
    memo: RefCell<HashMap<u64, Option<[u8; 3]>>>,
}

impl ArrivalCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`solve_arrivals`].
    pub fn solve(&self, fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
        if n >= 256 {
            // The packed key truncates components to bytes (valid because
            // m, cap < n ≤ 255 for every in-tree phase count, which comes
            // from a u8). Phase counts beyond that skip the memo rather
            // than risk key collisions.
            return solve_arrivals(fanin_stages, sigma_j, n);
        }
        let (m, cap) = arrival_key(fanin_stages, sigma_j, n)?;
        // cap < n ≤ 255 and m < n, so every component fits a byte.
        let key = pack_arrival_key(m, cap, n);
        let rel = *self
            .memo
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| solve_arrivals_rel(m, cap));
        let r = rel?;
        Some([
            sigma_j - u32::from(r[0]),
            sigma_j - u32::from(r[1]),
            sigma_j - u32::from(r[2]),
        ])
    }

    /// Number of distinct keys memoized so far (diagnostics).
    pub fn len(&self) -> usize {
        self.memo.borrow().len()
    }

    /// True when nothing has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.memo.borrow().is_empty()
    }
}

/// [`solve_arrivals`] through the CP-SAT-lite solver (the paper implements
/// DFF insertion on CP-SAT; eq. 5 is the `all_different` below).
///
/// Exact, like the enumerator, and guaranteed to find the same *cost*;
/// equal-cost solutions may differ in the arrival vector itself, which is
/// why the flow canonically uses [`solve_arrivals`] everywhere (the
/// heuristic's objective and DFF insertion must see identical arrivals) and
/// uses this model as a cross-check: [`insert_dffs`](crate::insert_dffs)
/// re-derives every arrival cost through it in debug builds, and the test
/// suite sweeps the full input space.
pub fn solve_arrivals_cp(fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
    use sfq_solver::{CpModel, CpStatus};
    let win_lo = i64::from(sigma_j.saturating_sub(n - 1));
    let win_hi = i64::from(sigma_j.checked_sub(1)?);

    let mut m = CpModel::new();
    let mut avars = Vec::with_capacity(3);
    let mut objective = Vec::new();
    for (k, &s) in fanin_stages.iter().enumerate() {
        let lo = i64::from(s).max(win_lo);
        if lo > win_hi {
            return None; // fanin fires after the window closes
        }
        let a = m.new_int_var(lo, win_hi, format!("a{k}"));
        // k_a = ⌈(a − σ_fanin)/n⌉ via  n·k_a ≥ a − σ_fanin, minimized.
        let span = (win_hi - i64::from(s)).max(0); // non-negative: lo ≤ win_hi
        let max_k = (span + i64::from(n) - 1) / i64::from(n);
        let ka = m.new_int_var(0, max_k, format!("k{k}"));
        m.add_linear(&[(ka, i64::from(n)), (a, -1)], -i64::from(s), i64::MAX);
        objective.push((ka, 1));
        avars.push(a);
    }
    m.add_all_different(&avars);
    m.set_objective(&objective);
    let sol = m.solve();
    if !matches!(sol.status, CpStatus::Optimal | CpStatus::FeasibleLimit) {
        return None;
    }
    Some([
        sol.value(avars[0]) as u32,
        sol.value(avars[1]) as u32,
        sol.value(avars[2]) as u32,
    ])
}

/// DFF cost of one arrival assignment: `Σ ⌈(aₖ − σ(fanin_k))/n⌉`.
pub fn arrival_cost(fanin_stages: [u32; 3], arrivals: [u32; 3], n: u32) -> usize {
    (0..3)
        .map(|k| {
            let s = fanin_stages[k];
            if arrivals[k] <= s {
                0
            } else {
                ((arrivals[k] - s) as usize).div_ceil(n as usize)
            }
        })
        .sum()
}

// ======================================================================
// Cost evaluation (the heuristic's objective = true materialization cost)
// ======================================================================

pub(crate) struct CostModel<'a> {
    pub net: &'a Network,
    /// Pin→sinks index; outside the heuristic it feeds the [`total_cost`]
    /// oracle the test suite checks DFF insertion against.
    ///
    /// [`total_cost`]: CostModel::total_cost
    #[cfg_attr(not(test), allow(dead_code))]
    pub view: &'a NetView,
    pub n: u32,
    /// Shared arrival memo (heuristic, MILP warm-start, DFF insertion).
    cache: &'a ArrivalCache,
    /// Reusable exact-tap scratch for the counting-only chain cost.
    taps: RefCell<Vec<u32>>,
}

impl<'a> CostModel<'a> {
    pub fn new(net: &'a Network, view: &'a NetView, n: u32, cache: &'a ArrivalCache) -> Self {
        CostModel {
            net,
            view,
            n,
            cache,
            taps: RefCell::new(Vec::new()),
        }
    }

    /// Arrival stages for one T1 cell under `stages`.
    pub fn arrivals(&self, t1: CellId, stages: &[u32]) -> Option<[u32; 3]> {
        let f = self.net.fanins(t1);
        let fs = [
            stages[f[0].cell.0 as usize],
            stages[f[1].cell.0 as usize],
            stages[f[2].cell.0 as usize],
        ];
        self.cache.solve(fs, stages[t1.0 as usize], self.n)
    }

    /// Chain DFF count of one pin; `None` on arrival infeasibility.
    ///
    /// Counting-only: exact taps are gathered into a reusable scratch
    /// buffer and costed arithmetically; no chain plan is materialized.
    pub fn pin_cost(
        &self,
        pin: Signal,
        sinks: &PinSinks,
        stages: &[u32],
        output_stage: u32,
    ) -> Option<usize> {
        let su = stages[pin.cell.0 as usize];
        let mut max_plain: Option<u32> = None;
        for &v in &sinks.plain {
            let s = stages[v.0 as usize];
            if max_plain.is_none_or(|m| s > m) {
                max_plain = Some(s);
            }
        }
        let mut taps = self.taps.borrow_mut();
        taps.clear();
        for &(t1, k) in &sinks.t1 {
            let arr = self.arrivals(t1, stages)?;
            if arr[k] > su {
                taps.push(arr[k]);
            }
        }
        if sinks.outputs > 0 && output_stage > su {
            taps.push(output_stage);
        }
        taps.sort_unstable();
        taps.dedup();
        Some(chain_cost_sorted(su, &taps, max_plain, self.n))
    }

    /// Total DFF count over all pins; `None` on any infeasibility.
    ///
    /// This is the oracle the engines' objectives are tested against
    /// (`tests::heuristic_objective_equals_materialized_dffs`); the engines
    /// themselves evaluate incremental per-pin deltas.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn total_cost(&self, stages: &[u32], output_stage: u32) -> Option<usize> {
        let mut total = 0usize;
        for (pin, sinks) in &self.view.pins {
            total += self.pin_cost(*pin, sinks, stages, output_stage)?;
        }
        Some(total)
    }
}

// ======================================================================
// ASAP seeding
// ======================================================================

pub(crate) fn t1_lower_bound(mut fs: [u32; 3]) -> u32 {
    fs.sort_unstable();
    (fs[0] + 3).max(fs[1] + 2).max(fs[2] + 1)
}

/// Earliest feasible stage of clocked cell `id` given its fanin stages:
/// `1 + max(fanins)` for ordinary cells, the eq.-3 T1 window bound for T1
/// cells. The single source of the per-cell causality rule, shared by ASAP
/// seeding, both descents' candidate windows, and the engine's restart
/// perturbation (whose feasibility-by-construction argument relies on
/// using exactly this bound).
#[inline]
pub(crate) fn clocked_lower_bound(net: &Network, stages: &[u32], id: CellId) -> u32 {
    let f = net.fanins(id);
    if matches!(net.kind(id), CellKind::T1 { .. }) {
        t1_lower_bound([
            stages[f[0].cell.0 as usize],
            stages[f[1].cell.0 as usize],
            stages[f[2].cell.0 as usize],
        ])
    } else {
        1 + f
            .iter()
            .map(|s| stages[s.cell.0 as usize])
            .max()
            .unwrap_or(0)
    }
}

pub(crate) fn asap_stages(net: &Network, view: &NetView) -> Vec<u32> {
    let mut stages = vec![0u32; net.num_cells()];
    for &id in &view.order {
        if !net.kind(id).is_clocked() {
            continue;
        }
        stages[id.0 as usize] = clocked_lower_bound(net, &stages, id);
    }
    stages
}

pub(crate) fn max_output_stage(net: &Network, stages: &[u32]) -> u32 {
    net.outputs()
        .iter()
        .map(|o| stages[o.cell.0 as usize])
        .max()
        .unwrap_or(0)
}

// ======================================================================
// Public entry
// ======================================================================

/// Assigns clock stages to every cell of `net` under an `n`-phase clock.
///
/// Runs on the incremental [`TimingEngine`](crate::engine::TimingEngine);
/// bit-identical to [`assign_phases_reference`], the executable
/// specification the differential harness checks it against.
///
/// # Errors
/// [`PhaseError::TooFewPhasesForT1`] when the network contains T1 cells and
/// `n < 4`; [`PhaseError::Milp`] when the exact engine fails.
pub fn assign_phases(
    net: &Network,
    n: u8,
    engine: PhaseEngine,
) -> Result<StageAssignment, PhaseError> {
    assign_phases_with_restarts(net, n, engine, 1)
}

/// [`assign_phases`] with deterministic multi-restart descent: restart 0 is
/// the plain ASAP descent (so `restarts == 1` is exactly [`assign_phases`]);
/// restarts `1..` descend from deterministically perturbed ASAP seeds, and
/// the smallest `(DFF cost, restart index)` wins. Under `--features
/// parallel` the extra restarts fan over [`sfq_netlist::par::workers`] with
/// a bit-identical merge, so the result never depends on the worker count.
/// Restarts apply to the heuristic paths; the exact MILP paths ignore them
/// (their warm start stays the single-descent incumbent).
///
/// # Errors
/// As [`assign_phases`].
pub fn assign_phases_with_restarts(
    net: &Network,
    n: u8,
    engine: PhaseEngine,
    restarts: usize,
) -> Result<StageAssignment, PhaseError> {
    let mut eng = crate::engine::TimingEngine::new(net, n)?;
    eng.assign(engine, restarts)
}

/// The pre-engine phase assignment, kept alive as the executable
/// specification of [`assign_phases`]: ASAP seeding plus the original
/// incremental coordinate descent ([`PhaseEngine::Heuristic`]), and the
/// same MILP formulation warm-started from that descent
/// ([`PhaseEngine::Exact`] / [`PhaseEngine::Auto`]).
/// `tests/differential_mapping.rs` asserts bit-identical assignments
/// against the engine across every benchmark generator.
///
/// # Errors
/// As [`assign_phases`].
pub fn assign_phases_reference(
    net: &Network,
    n: u8,
    engine: PhaseEngine,
) -> Result<StageAssignment, PhaseError> {
    if n == 0 {
        return Err(PhaseError::ZeroPhases);
    }
    let view = build_view(net)?;
    if !view.t1_cells.is_empty() && n < 4 {
        return Err(PhaseError::TooFewPhasesForT1 { phases: n });
    }
    let cache = ArrivalCache::new();
    match engine {
        PhaseEngine::Exact => {
            let seed = heuristic_assign(net, &view, n as u32, &cache);
            exact_assign(net, &view, n as u32, EXACT_NODE_LIMIT, &cache, seed)
        }
        PhaseEngine::Heuristic => Ok(heuristic_assign(net, &view, n as u32, &cache)),
        PhaseEngine::Auto => {
            // Calibrated with the `profile_flow` binary: the exact engine is
            // sub-second up to ~40 clocked cells at n = 1 or n ≥ 4, but each
            // T1 cell adds three big-M ordering booleans whose branching
            // dominates, and intermediate phase counts (n = 2, 3) blow up
            // the optimality proof (314 s on a 38-gate adder at n = 3). Auto
            // therefore runs the exact engine under a small node budget —
            // warm-started from the heuristic incumbent it can only improve
            // on it — and falls back to the heuristic outright at scale.
            let clocked = net.cell_ids().filter(|&c| net.kind(c).is_clocked()).count();
            if clocked <= 40 && view.t1_cells.len() <= 4 {
                let seed = heuristic_assign(net, &view, n as u32, &cache);
                exact_assign(net, &view, n as u32, AUTO_NODE_LIMIT, &cache, seed)
            } else {
                Ok(heuristic_assign(net, &view, n as u32, &cache))
            }
        }
    }
}

/// Node budget of [`PhaseEngine::Exact`]: enough to prove optimality on
/// every instance the test oracle uses.
pub(crate) const EXACT_NODE_LIMIT: usize = 200_000;

/// Node budget of [`PhaseEngine::Auto`]'s bounded-effort exact runs:
/// bounds any single phase assignment to ~1 s (each node re-solves an LP,
/// ≈ 2 ms on 40-cell instances) while still closing small gaps over the
/// heuristic incumbent — on the adder8 probe, 500 nodes keep the full
/// n = 2 improvement (77 → 71 DFFs) found by the unbounded engine.
pub(crate) const AUTO_NODE_LIMIT: usize = 500;

// ======================================================================
// Exact MILP engine
// ======================================================================

pub(crate) fn exact_assign(
    net: &Network,
    view: &NetView,
    n: u32,
    node_limit: usize,
    cache: &ArrivalCache,
    seed: StageAssignment,
) -> Result<StageAssignment, PhaseError> {
    // The caller's heuristic solution (the reference descent or the timing
    // engine's — bit-identical by contract) seeds branch & bound: it is
    // always feasible, so the MILP starts with a strong incumbent and mostly
    // just proves (or slightly improves) it. `cache` memoizes the handful of
    // arrival re-solves the warm start needs; the reference path shares it
    // with its heuristic seed, the engine path passes a fresh one (its own
    // memo lives in the engine — exact instances are ≤ 40 cells, so the
    // re-solves are noise).
    let seed_model = CostModel::new(net, view, n, cache);

    let asap = asap_stages(net, view);
    let depth_bound = (asap.iter().copied().max().unwrap_or(0) + n + 4).max(seed.output_stage + 2);
    let h = depth_bound as f64;
    let big_m = h + n as f64 + 2.0;

    // Longest path (in clocked edges) from each cell to a primary output:
    // σ(id) + rev[id] ≤ σ_out ≤ h gives a valid ALAP upper bound. Together
    // with the ASAP lower bound this shrinks every stage variable's box,
    // which is where most of the LP-relaxation slack lives.
    let rev = reverse_distances(net);

    let mut p = MilpProblem::new();
    // Warm-start values, recorded per variable id and handed to the solver
    // through the order-independent pair API.
    let mut ws: Vec<(sfq_solver::VarId, f64)> = Vec::new();
    // Stage vars for clocked cells (inputs fixed at 0 — no var).
    let mut sigma: HashMap<CellId, sfq_solver::VarId> = HashMap::new();
    for id in net.cell_ids() {
        if net.kind(id).is_clocked() {
            let lo = f64::from(asap[id.0 as usize].max(1));
            let ub = h - f64::from(rev[id.0 as usize]);
            let v = p.add_int_var(lo, ub, 0.0, format!("s{}", id.0));
            p.set_branch_priority(v, 2);
            sigma.insert(id, v);
            ws.push((v, f64::from(seed.stages[id.0 as usize])));
        }
    }
    let stage_term =
        |id: CellId| -> Option<(sfq_solver::VarId, f64)> { sigma.get(&id).map(|&v| (v, 1.0)) };

    let out_lb = net
        .outputs()
        .iter()
        .map(|o| asap[o.cell.0 as usize])
        .max()
        .unwrap_or(0);
    let sigma_out = p.add_int_var(f64::from(out_lb), h, 0.0, "s_out");
    p.set_branch_priority(sigma_out, 1);
    ws.push((sigma_out, f64::from(seed.output_stage)));

    // Arrival vars per T1 fanin.
    let mut arrivals: HashMap<(CellId, usize), sfq_solver::VarId> = HashMap::new();
    for &t1 in &view.t1_cells {
        let seed_arr = seed_model
            .arrivals(t1, &seed.stages)
            .expect("heuristic assignment is arrival-feasible");
        let sj = sigma[&t1];
        let mut avars = Vec::new();
        for k in 0..3 {
            let fanin_lb = f64::from(asap[net.fanins(t1)[k].cell.0 as usize]);
            let a = p.add_int_var(fanin_lb, h - 1.0, 0.0, format!("a{}_{}", t1.0, k));
            p.set_branch_priority(a, 1);
            ws.push((a, f64::from(seed_arr[k])));
            arrivals.insert((t1, k), a);
            avars.push(a);
            // window: σj − (n−1) ≤ a ≤ σj − 1
            p.add_constraint(&[(sj, 1.0), (a, -1.0)], Cmp::Le, (n - 1) as f64);
            p.add_constraint(&[(sj, 1.0), (a, -1.0)], Cmp::Ge, 1.0);
            // a ≥ σ(fanin driver)
            let f = net.fanins(t1)[k];
            if let Some((fv, _)) = stage_term(f.cell) {
                p.add_constraint(&[(a, 1.0), (fv, -1.0)], Cmp::Ge, 0.0);
            } // inputs are at stage 0: a ≥ 0 already holds
        }
        // pairwise distinct via big-M order booleans
        for (x, y) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let b = p.add_bool_var(0.0, format!("o{}_{}{}", t1.0, x, y));
            p.set_branch_priority(b, 3);
            ws.push((b, f64::from(seed_arr[x] > seed_arr[y])));
            // a_x + 1 ≤ a_y + M(1−b)  and  a_y + 1 ≤ a_x + M·b
            p.add_constraint(
                &[(avars[y], 1.0), (avars[x], -1.0), (b, big_m)],
                Cmp::Ge,
                1.0,
            );
            p.add_constraint(
                &[(avars[x], 1.0), (avars[y], -1.0), (b, -big_m)],
                Cmp::Ge,
                1.0 - big_m,
            );
        }
    }

    // Edge causality + chain variables per driven pin.
    for (pin, sinks) in &view.pins {
        let k_var = p.add_int_var(0.0, h, 1.0, format!("k{}_{}", pin.cell.0, pin.port));
        ws.push((k_var, seed_chain_k(&seed, &seed_model, *pin, sinks, n)));
        let driver = stage_term(pin.cell);
        // helper closures to build terms with/without the driver var
        let add_edge = |p: &mut MilpProblem, consumer: sfq_solver::VarId| {
            // σv − σu ≥ 1
            let mut terms = vec![(consumer, 1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, -1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 1.0);
        };
        for &v in &sinks.plain {
            let sv = sigma[&v];
            add_edge(&mut p, sv);
            // n·k ≥ σv − σu − n
            let mut terms = vec![(k_var, n as f64), (sv, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, -(n as f64));
        }
        for &(t1, k) in &sinks.t1 {
            let a = arrivals[&(t1, k)];
            // n·k_pin ≥ a − σu  (exact tap needs ⌈(a−σu)/n⌉ DFFs)
            let mut terms = vec![(k_var, n as f64), (a, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 0.0);
        }
        if sinks.outputs > 0 {
            // σ_out ≥ σu; n·k ≥ σ_out − σu
            let mut ge = vec![(sigma_out, 1.0)];
            if let Some((du, _)) = driver {
                ge.push((du, -1.0));
            }
            p.add_constraint(&ge, Cmp::Ge, 0.0);
            let mut terms = vec![(k_var, n as f64), (sigma_out, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 0.0);
        }
    }

    debug_assert_eq!(ws.len(), p.num_vars(), "one warm-start value per variable");
    p.set_warm_start_pairs(&ws);
    p.set_node_limit(node_limit);
    let sol = p.solve().map_err(PhaseError::Milp)?;
    let mut stages = vec![0u32; net.num_cells()];
    for (id, var) in &sigma {
        stages[id.0 as usize] = sol.int_value(*var) as u32;
    }
    let output_stage = sol.int_value(sigma_out) as u32;
    Ok(StageAssignment {
        stages,
        output_stage,
    })
}

/// Longest clocked path (edge count) from each cell to any primary output.
fn reverse_distances(net: &Network) -> Vec<u32> {
    let order = net.topological_order().expect("subject network is acyclic");
    let mut rev = vec![0u32; net.num_cells()];
    for &id in order.iter().rev() {
        let d = rev[id.0 as usize];
        for f in net.fanins(id) {
            let fd = &mut rev[f.cell.0 as usize];
            *fd = (*fd).max(d + 1);
        }
    }
    rev
}

/// Minimal chain-variable value consistent with the MILP's `k` constraints
/// under the seed assignment (the linearized chain count the objective sums).
fn seed_chain_k(
    seed: &StageAssignment,
    model: &CostModel<'_>,
    pin: Signal,
    sinks: &PinSinks,
    n: u32,
) -> f64 {
    let su = i64::from(seed.stages[pin.cell.0 as usize]);
    let n = i64::from(n);
    let ceil_div = |x: i64, d: i64| -> i64 {
        if x <= 0 {
            0
        } else {
            (x + d - 1) / d
        }
    };
    let mut k = 0i64;
    for &v in &sinks.plain {
        k = k.max(ceil_div(i64::from(seed.stages[v.0 as usize]) - su - n, n));
    }
    for &(t1, idx) in &sinks.t1 {
        let arr = model
            .arrivals(t1, &seed.stages)
            .expect("heuristic assignment is arrival-feasible");
        k = k.max(ceil_div(i64::from(arr[idx]) - su, n));
    }
    if sinks.outputs > 0 {
        k = k.max(ceil_div(i64::from(seed.output_stage) - su, n));
    }
    k as f64
}

// ======================================================================
// Heuristic engine
// ======================================================================

/// Exact-maximum tracker over the primary-output driver stages: a histogram
/// plus the current maximum, so evaluating "σ_out if cell `c` moved to
/// stage `s`" is O(1) per candidate (one exclusion scan per *cell*, not per
/// candidate) and accepted moves update in O(1) amortized.
pub(crate) struct OutputTracker {
    /// `po_count[c]` = number of primary outputs driven by cell `c`.
    pub(crate) po_count: Vec<u32>,
    /// `hist[s]` = number of primary outputs whose driver sits at stage `s`.
    hist: Vec<u32>,
    /// Current maximum driver stage (= σ_out while descending).
    pub(crate) max: u32,
}

impl OutputTracker {
    pub(crate) fn new(net: &Network, stages: &[u32]) -> Self {
        let mut po_count = vec![0u32; net.num_cells()];
        let mut hist: Vec<u32> = Vec::new();
        let mut max = 0u32;
        for o in net.outputs() {
            let c = o.cell.0 as usize;
            po_count[c] += 1;
            let s = stages[c] as usize;
            if hist.len() <= s {
                hist.resize(s + 1, 0);
            }
            hist[s] += 1;
            max = max.max(s as u32);
        }
        OutputTracker {
            po_count,
            hist,
            max,
        }
    }

    /// Maximum PO driver stage when all of `cell`'s outputs are excluded.
    /// Called once per descended cell (not per candidate).
    pub(crate) fn max_excluding(&self, cell: CellId, cell_stage: u32) -> u32 {
        let cnt = self.po_count[cell.0 as usize];
        debug_assert!(cnt > 0, "only PO-driving cells query the tracker");
        if cell_stage < self.max || self.hist[self.max as usize] > cnt {
            return self.max;
        }
        // This cell holds every output at the current maximum: scan down.
        let mut s = self.max;
        while s > 0 {
            s -= 1;
            if self.hist[s as usize] > 0 {
                return s;
            }
        }
        0
    }

    /// Commits a stage move of a PO-driving cell.
    pub(crate) fn move_cell(&mut self, cell: CellId, from: u32, to: u32, new_max: u32) {
        let cnt = self.po_count[cell.0 as usize];
        self.hist[from as usize] -= cnt;
        if self.hist.len() <= to as usize {
            self.hist.resize(to as usize + 1, 0);
        }
        self.hist[to as usize] += cnt;
        self.max = new_max;
    }
}

/// Structural (stage-independent) per-cell data for the descent, built once:
/// the affected-pin list (own pins, fanin pins, and the fanin pins of every
/// adjacent T1 cell whose arrival solve the move perturbs), sorted/deduped,
/// in CSR layout.
struct AffectedIndex {
    offsets: Vec<u32>,
    pins: Vec<u32>,
}

impl AffectedIndex {
    fn build(net: &Network, view: &NetView) -> Self {
        let mut offsets = Vec::with_capacity(net.num_cells() + 1);
        let mut pins: Vec<u32> = Vec::new();
        let mut scratch: Vec<u32> = Vec::new();
        let mut t1_consumers: Vec<CellId> = Vec::new();
        offsets.push(0);
        for id in net.cell_ids() {
            let kind = net.kind(id);
            if kind.is_clocked() {
                scratch.clear();
                t1_consumers.clear();
                let add_pin = |s: Signal, out: &mut Vec<u32>| {
                    if let Some(pi) = view.pin_lookup(s) {
                        out.push(pi as u32);
                    }
                };
                for port in 0..kind.num_ports() {
                    let pin = Signal {
                        cell: id,
                        port: port as u8,
                    };
                    add_pin(pin, &mut scratch);
                    if let Some(pi) = view.pin_lookup(pin) {
                        for &(t1, _) in &view.pins[pi].1.t1 {
                            t1_consumers.push(t1);
                        }
                    }
                }
                for &fi in net.fanins(id) {
                    add_pin(fi, &mut scratch);
                }
                if matches!(kind, CellKind::T1 { .. }) {
                    t1_consumers.push(id);
                }
                for &t1 in &t1_consumers {
                    for &fi in net.fanins(t1) {
                        add_pin(fi, &mut scratch);
                    }
                }
                scratch.sort_unstable();
                scratch.dedup();
                pins.extend_from_slice(&scratch);
            }
            offsets.push(pins.len() as u32);
        }
        AffectedIndex { offsets, pins }
    }

    fn of(&self, id: CellId) -> &[u32] {
        let i = id.0 as usize;
        &self.pins[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

fn heuristic_assign(
    net: &Network,
    view: &NetView,
    n: u32,
    cache: &ArrivalCache,
) -> StageAssignment {
    let model = CostModel::new(net, view, n, cache);
    let mut stages = asap_stages(net, view);
    let mut tracker = OutputTracker::new(net, &stages);
    let mut output_stage = tracker.max;
    debug_assert_eq!(output_stage, max_output_stage(net, &stages));

    let affected_index = AffectedIndex::build(net, view);
    let po_pins: Vec<u32> = view
        .pins
        .iter()
        .enumerate()
        .filter(|(_, (_, sinks))| sinks.outputs > 0)
        .map(|(pi, _)| pi as u32)
        .collect();

    // Per-pin cached costs. PO-pin entries additionally depend on σ_out and
    // are revalidated lazily against `out_gen` (bumped when σ_out moves), so
    // an accepted move never rescans the whole primary-output frontier.
    let mut pin_cost: Vec<usize> = view
        .pins
        .iter()
        .map(|(pin, sinks)| {
            model
                .pin_cost(*pin, sinks, &stages, output_stage)
                .expect("ASAP stages are feasible")
        })
        .collect();
    let mut out_gen: u32 = 0;
    let mut pin_gen: Vec<u32> = vec![0; view.pins.len()];

    /// Reads a pin's cached cost, recomputing PO pins stamped before the
    /// last σ_out change.
    ///
    /// A free fn taking split borrows (not a closure) because the candidate
    /// loop mutates `stages` between calls; the argument count is the price
    /// of keeping the borrow regions disjoint.
    #[allow(clippy::too_many_arguments)]
    fn cached_cost(
        pi: usize,
        view: &NetView,
        model: &CostModel<'_>,
        stages: &[u32],
        output_stage: u32,
        out_gen: u32,
        pin_cost: &mut [usize],
        pin_gen: &mut [u32],
    ) -> usize {
        let (pin, sinks) = &view.pins[pi];
        if sinks.outputs > 0 && pin_gen[pi] != out_gen {
            pin_cost[pi] = model
                .pin_cost(*pin, sinks, stages, output_stage)
                .expect("incumbent assignment is feasible");
            pin_gen[pi] = out_gen;
        }
        pin_cost[pi]
    }

    let mut cands: Vec<u32> = Vec::new();
    let max_passes = 10;
    for _pass in 0..max_passes {
        let mut improved = false;
        for &id in &view.order {
            let kind = net.kind(id);
            if !kind.is_clocked() {
                continue;
            }
            let current = stages[id.0 as usize];
            // Feasible range from neighbors.
            let lo = clocked_lower_bound(net, &stages, id);
            let mut hi = u32::MAX;
            for port in 0..kind.num_ports() {
                let pin = Signal {
                    cell: id,
                    port: port as u8,
                };
                if let Some(pi) = view.pin_lookup(pin) {
                    let sinks = &view.pins[pi].1;
                    for &v in &sinks.plain {
                        hi = hi.min(stages[v.0 as usize] - 1);
                    }
                    for &(t1, _) in &sinks.t1 {
                        hi = hi.min(stages[t1.0 as usize] - 1);
                    }
                }
            }
            if lo > hi {
                continue; // pinned by neighbors
            }
            // Candidate stages: near lo, near hi, near current.
            cands.clear();
            let push_range = |cands: &mut Vec<u32>, from: u32, to: u32| {
                for s in from..=to {
                    cands.push(s);
                }
            };
            let span = 2 * n;
            push_range(&mut cands, lo, lo.saturating_add(span).min(hi));
            if hi != u32::MAX {
                push_range(&mut cands, hi.saturating_sub(span).max(lo), hi);
            }
            cands.push(current);
            cands.sort_unstable();
            cands.dedup();

            let affected = affected_index.of(id);
            let drives_output = tracker.po_count[id.0 as usize] > 0;
            // σ_out with this cell's outputs excluded: constant across the
            // candidate loop, so each candidate's σ_out is a single max().
            let excl_out = if drives_output {
                tracker.max_excluding(id, current)
            } else {
                0
            };

            let mut base_affected = 0usize;
            for &pi in affected {
                base_affected += cached_cost(
                    pi as usize,
                    view,
                    &model,
                    &stages,
                    output_stage,
                    out_gen,
                    &mut pin_cost,
                    &mut pin_gen,
                );
            }
            if drives_output {
                // A candidate of this cell may move σ_out, and the delta of
                // an off-list PO pin is measured against its cached cost —
                // revalidate any entry stamped before the last σ_out change
                // now, while `stages` still holds the incumbent.
                for &pi in &po_pins {
                    cached_cost(
                        pi as usize,
                        view,
                        &model,
                        &stages,
                        output_stage,
                        out_gen,
                        &mut pin_cost,
                        &mut pin_gen,
                    );
                }
            }
            let mut best: Option<(i64, u32, u32)> = None; // (delta, stage, new σ_out)
            for &cand in &cands {
                if cand == current {
                    continue; // baseline delta is 0 by definition
                }
                stages[id.0 as usize] = cand;
                let new_out = if drives_output {
                    excl_out.max(cand)
                } else {
                    output_stage
                };
                let out_changed = new_out != output_stage;
                let mut ok = true;
                let mut new_affected = 0usize;
                for &pi in affected {
                    let (pin, sinks) = &view.pins[pi as usize];
                    match model.pin_cost(*pin, sinks, &stages, new_out) {
                        Some(c) => new_affected += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                // On a σ_out change, every PO pin not already covered above
                // changes cost too.
                let mut extra_delta = 0i64;
                if ok && out_changed {
                    for &pi in &po_pins {
                        if affected.binary_search(&pi).is_ok() {
                            continue;
                        }
                        let (pin, sinks) = &view.pins[pi as usize];
                        match model.pin_cost(*pin, sinks, &stages, new_out) {
                            // `pin_cost[pi]` is fresh: every PO pin was
                            // revalidated above, before `stages` was probed.
                            Some(c) => extra_delta += c as i64 - pin_cost[pi as usize] as i64,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    let delta = new_affected as i64 - base_affected as i64 + extra_delta;
                    let better = match best {
                        None => delta < 0,
                        Some((bd, bs, _)) => delta < bd || (delta == bd && cand < bs),
                    };
                    if better {
                        best = Some((delta, cand, new_out));
                    }
                }
            }
            stages[id.0 as usize] = current;
            if let Some((_, cand, new_out)) = best {
                stages[id.0 as usize] = cand;
                if drives_output {
                    tracker.move_cell(id, current, cand, new_out);
                }
                if new_out != output_stage {
                    output_stage = new_out;
                    out_gen = out_gen.wrapping_add(1);
                }
                improved = true;
                // Refresh the affected caches; PO pins outside the list
                // refresh lazily through their generation stamp.
                for &pi in affected {
                    let (pin, sinks) = &view.pins[pi as usize];
                    pin_cost[pi as usize] = model
                        .pin_cost(*pin, sinks, &stages, output_stage)
                        .expect("accepted move is feasible");
                    pin_gen[pi as usize] = out_gen;
                }
            }
        }
        if !improved {
            break;
        }
    }
    // σ_out may be lowered if all PO drivers sit below it.
    output_stage = max_output_stage(net, &stages);
    StageAssignment {
        stages,
        output_stage,
    }
}

// NOTE for careful readers of the candidate loop: the mutable-borrow dance
// around `cached_cost` is why it is a free fn taking split borrows instead
// of a closure — `stages` is also mutated per candidate, and the Rust borrow
// checker (correctly) demands the cache refresh and the stage probe never
// alias.
