//! Multiphase clock-stage assignment (paper §II-B).
//!
//! Every clocked cell gets a stage `σ(g) = n·S(g) + φ(g)` (eq. 1). The
//! objective is the number of path-balancing DFFs the subsequent insertion
//! step will materialize: one shared chain per driven pin plus the exact-tap
//! DFFs that T1 input separation (eqs. 3–5) and primary-output alignment
//! demand. Two engines solve the problem:
//!
//! * [`PhaseEngine::Exact`] — a MILP over stage variables, per-pin chain
//!   variables and explicit T1 arrival-slot variables with pairwise
//!   distinctness (big-M booleans). Modelling arrivals explicitly subsumes
//!   the paper's eq. 4 separation-cost approximation: a delayed arrival is
//!   charged through the chain variable of its driver directly.
//! * [`PhaseEngine::Heuristic`] — ASAP seeding followed by coordinate-descent
//!   stage moves evaluated against the *true* materialization cost (the same
//!   [`chains`](crate::chains) planner DFF insertion runs), so the heuristic
//!   optimizes exactly what gets built.
//!
//! `Auto` picks Exact below a size threshold and Heuristic above it, which is
//! how the Table I benchmarks run.

use crate::chains::{chain_cost, ChainDemand};
use sfq_netlist::{CellId, CellKind, Network, Signal};
use sfq_solver::{Cmp, MilpProblem, SolverError};
use std::collections::HashMap;

/// Which solver runs phase assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseEngine {
    /// Exact MILP (bounded sizes).
    Exact,
    /// ASAP + coordinate descent (any size).
    Heuristic,
    /// Exact when the network is small enough, heuristic otherwise.
    Auto,
}

/// A stage (σ) per cell plus the common primary-output stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAssignment {
    /// Stage per cell (indexed by `CellId`); primary inputs are 0.
    pub stages: Vec<u32>,
    /// Common stage at which every primary output is sampled.
    pub output_stage: u32,
}

/// Errors from phase assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseError {
    /// T1 cells need at least 4 phases (3 distinct arrival slots in a window
    /// of `n − 1` stages).
    TooFewPhasesForT1 { phases: u8 },
    /// `phases` must be at least 1.
    ZeroPhases,
    /// The exact engine failed (size, numerics); callers may retry with the
    /// heuristic.
    Milp(SolverError),
    /// The network is cyclic or malformed.
    BadNetwork(String),
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::TooFewPhasesForT1 { phases } => {
                write!(f, "T1 cells need ≥ 4 phases, got {phases}")
            }
            PhaseError::ZeroPhases => write!(f, "need at least one clock phase"),
            PhaseError::Milp(e) => write!(f, "exact phase assignment failed: {e}"),
            PhaseError::BadNetwork(e) => write!(f, "bad network: {e}"),
        }
    }
}

impl std::error::Error for PhaseError {}

// ======================================================================
// Shared structural view
// ======================================================================

/// Per-pin sink lists of the subject network.
#[derive(Debug, Clone, Default)]
pub(crate) struct PinSinks {
    /// Plain (window-tapping) consumer cells.
    pub plain: Vec<CellId>,
    /// `(t1 cell, fanin index)` consumers.
    pub t1: Vec<(CellId, usize)>,
    /// Number of primary outputs driven by the pin.
    pub outputs: usize,
}

#[derive(Debug, Clone)]
pub(crate) struct NetView {
    /// Driven pins with their sinks, in deterministic order.
    pub pins: Vec<(Signal, PinSinks)>,
    /// Pin index per signal.
    pub pin_index: HashMap<Signal, usize>,
    /// All T1 cells.
    pub t1_cells: Vec<CellId>,
    /// Topological order of cells.
    pub order: Vec<CellId>,
}

pub(crate) fn build_view(net: &Network) -> Result<NetView, PhaseError> {
    let order =
        net.topological_order().map_err(|e| PhaseError::BadNetwork(e.to_string()))?;
    let mut sinks: HashMap<Signal, PinSinks> = HashMap::new();
    let mut t1_cells = Vec::new();
    for id in net.cell_ids() {
        let kind = net.kind(id);
        let is_t1 = matches!(kind, CellKind::T1 { .. });
        if is_t1 {
            t1_cells.push(id);
        }
        for (k, &f) in net.fanins(id).iter().enumerate() {
            let e = sinks.entry(f).or_default();
            if is_t1 {
                e.t1.push((id, k));
            } else {
                e.plain.push(id);
            }
        }
    }
    for &o in net.outputs() {
        sinks.entry(o).or_default().outputs += 1;
    }
    let mut pins: Vec<(Signal, PinSinks)> = sinks.into_iter().collect();
    pins.sort_by_key(|&(s, _)| s);
    let pin_index = pins.iter().enumerate().map(|(i, &(s, _))| (s, i)).collect();
    Ok(NetView { pins, pin_index, t1_cells, order })
}

// ======================================================================
// T1 arrival-slot solving (shared with DFF insertion)
// ======================================================================

/// Chooses pairwise-distinct arrival stages for the three fanins of a T1
/// cell at stage `sigma_j`, minimizing the chain DFFs needed to realize
/// them. `fanin_stages[k]` is the stage of the k-th fanin's driving cell.
///
/// Returns `None` when no feasible assignment exists (the caller's stage
/// bounds make this unreachable in the flow).
pub fn solve_arrivals(fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
    let win_lo = sigma_j.saturating_sub(n - 1);
    let win_hi = sigma_j.checked_sub(1)?;
    let mut best: Option<(usize, [u32; 3])> = None;
    let dom = |k: usize| -> std::ops::RangeInclusive<u32> {
        fanin_stages[k].max(win_lo)..=win_hi
    };
    for a0 in dom(0) {
        for a1 in dom(1) {
            if a1 == a0 {
                continue;
            }
            for a2 in dom(2) {
                if a2 == a0 || a2 == a1 {
                    continue;
                }
                let arr = [a0, a1, a2];
                let cost: usize = (0..3)
                    .map(|k| {
                        let s = fanin_stages[k];
                        if arr[k] == s {
                            0
                        } else {
                            ((arr[k] - s) as usize).div_ceil(n as usize)
                        }
                    })
                    .sum();
                let better = match &best {
                    None => true,
                    Some((bc, ba)) => cost < *bc || (cost == *bc && arr < *ba),
                };
                if better {
                    best = Some((cost, arr));
                }
            }
        }
    }
    best.map(|(_, a)| a)
}

/// [`solve_arrivals`] through the CP-SAT-lite solver (the paper implements
/// DFF insertion on CP-SAT; eq. 5 is the `all_different` below).
///
/// Exact, like the enumerator, and guaranteed to find the same *cost*;
/// equal-cost solutions may differ in the arrival vector itself, which is
/// why the flow canonically uses [`solve_arrivals`] everywhere (the
/// heuristic's objective and DFF insertion must see identical arrivals) and
/// uses this model as a cross-check: [`insert_dffs`](crate::insert_dffs)
/// re-derives every arrival cost through it in debug builds, and the test
/// suite sweeps the full input space.
pub fn solve_arrivals_cp(fanin_stages: [u32; 3], sigma_j: u32, n: u32) -> Option<[u32; 3]> {
    use sfq_solver::{CpModel, CpStatus};
    let win_lo = i64::from(sigma_j.saturating_sub(n - 1));
    let win_hi = i64::from(sigma_j.checked_sub(1)?);

    let mut m = CpModel::new();
    let mut avars = Vec::with_capacity(3);
    let mut objective = Vec::new();
    for (k, &s) in fanin_stages.iter().enumerate() {
        let lo = i64::from(s).max(win_lo);
        if lo > win_hi {
            return None; // fanin fires after the window closes
        }
        let a = m.new_int_var(lo, win_hi, format!("a{k}"));
        // k_a = ⌈(a − σ_fanin)/n⌉ via  n·k_a ≥ a − σ_fanin, minimized.
        let span = (win_hi - i64::from(s)).max(0); // non-negative: lo ≤ win_hi
        let max_k = (span + i64::from(n) - 1) / i64::from(n);
        let ka = m.new_int_var(0, max_k, format!("k{k}"));
        m.add_linear(&[(ka, i64::from(n)), (a, -1)], -i64::from(s), i64::MAX);
        objective.push((ka, 1));
        avars.push(a);
    }
    m.add_all_different(&avars);
    m.set_objective(&objective);
    let sol = m.solve();
    if !matches!(sol.status, CpStatus::Optimal | CpStatus::FeasibleLimit) {
        return None;
    }
    Some([
        sol.value(avars[0]) as u32,
        sol.value(avars[1]) as u32,
        sol.value(avars[2]) as u32,
    ])
}

/// DFF cost of one arrival assignment: `Σ ⌈(aₖ − σ(fanin_k))/n⌉`.
pub fn arrival_cost(fanin_stages: [u32; 3], arrivals: [u32; 3], n: u32) -> usize {
    (0..3)
        .map(|k| {
            let s = fanin_stages[k];
            if arrivals[k] <= s {
                0
            } else {
                ((arrivals[k] - s) as usize).div_ceil(n as usize)
            }
        })
        .sum()
}

// ======================================================================
// Cost evaluation (the heuristic's objective = true materialization cost)
// ======================================================================

pub(crate) struct CostModel<'a> {
    pub net: &'a Network,
    /// Pin→sinks index; outside the heuristic it feeds the [`total_cost`]
    /// oracle the test suite checks DFF insertion against.
    ///
    /// [`total_cost`]: CostModel::total_cost
    #[cfg_attr(not(test), allow(dead_code))]
    pub view: &'a NetView,
    pub n: u32,
}

impl CostModel<'_> {
    /// Arrival stages for one T1 cell under `stages`.
    pub fn arrivals(&self, t1: CellId, stages: &[u32]) -> Option<[u32; 3]> {
        let f = self.net.fanins(t1);
        let fs = [
            stages[f[0].cell.0 as usize],
            stages[f[1].cell.0 as usize],
            stages[f[2].cell.0 as usize],
        ];
        solve_arrivals(fs, stages[t1.0 as usize], self.n)
    }

    /// Chain demand of one pin under `stages` (arrivals resolved on the fly).
    ///
    /// Returns `None` if some adjacent T1 has no feasible arrival assignment.
    pub fn demand(
        &self,
        pin: Signal,
        sinks: &PinSinks,
        stages: &[u32],
        output_stage: u32,
    ) -> Option<ChainDemand> {
        let su = stages[pin.cell.0 as usize];
        let mut d = ChainDemand::default();
        for &v in &sinks.plain {
            d.plain.push(stages[v.0 as usize]);
        }
        for &(t1, k) in &sinks.t1 {
            let arr = self.arrivals(t1, stages)?;
            if arr[k] > su {
                d.exact.push(arr[k]);
            }
        }
        if sinks.outputs > 0 && output_stage > su {
            d.exact.push(output_stage);
        }
        Some(d)
    }

    /// Chain DFF count of one pin; `None` on arrival infeasibility.
    pub fn pin_cost(
        &self,
        pin: Signal,
        sinks: &PinSinks,
        stages: &[u32],
        output_stage: u32,
    ) -> Option<usize> {
        let su = stages[pin.cell.0 as usize];
        let d = self.demand(pin, sinks, stages, output_stage)?;
        Some(chain_cost(su, &d, self.n))
    }

    /// Total DFF count over all pins; `None` on any infeasibility.
    ///
    /// This is the oracle the engines' objectives are tested against
    /// (`tests::heuristic_objective_equals_materialized_dffs`); the engines
    /// themselves evaluate incremental per-pin deltas.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn total_cost(&self, stages: &[u32], output_stage: u32) -> Option<usize> {
        let mut total = 0usize;
        for (pin, sinks) in &self.view.pins {
            total += self.pin_cost(*pin, sinks, stages, output_stage)?;
        }
        Some(total)
    }
}

// ======================================================================
// ASAP seeding
// ======================================================================

fn t1_lower_bound(mut fs: [u32; 3]) -> u32 {
    fs.sort_unstable();
    (fs[0] + 3).max(fs[1] + 2).max(fs[2] + 1)
}

pub(crate) fn asap_stages(net: &Network, view: &NetView) -> Vec<u32> {
    let mut stages = vec![0u32; net.num_cells()];
    for &id in &view.order {
        let kind = net.kind(id);
        if !kind.is_clocked() {
            continue;
        }
        let f = net.fanins(id);
        stages[id.0 as usize] = if matches!(kind, CellKind::T1 { .. }) {
            t1_lower_bound([
                stages[f[0].cell.0 as usize],
                stages[f[1].cell.0 as usize],
                stages[f[2].cell.0 as usize],
            ])
        } else {
            1 + f.iter().map(|s| stages[s.cell.0 as usize]).max().unwrap_or(0)
        };
    }
    stages
}

fn max_output_stage(net: &Network, stages: &[u32]) -> u32 {
    net.outputs().iter().map(|o| stages[o.cell.0 as usize]).max().unwrap_or(0)
}

// ======================================================================
// Public entry
// ======================================================================

/// Assigns clock stages to every cell of `net` under an `n`-phase clock.
///
/// # Errors
/// [`PhaseError::TooFewPhasesForT1`] when the network contains T1 cells and
/// `n < 4`; [`PhaseError::Milp`] when the exact engine fails.
pub fn assign_phases(
    net: &Network,
    n: u8,
    engine: PhaseEngine,
) -> Result<StageAssignment, PhaseError> {
    if n == 0 {
        return Err(PhaseError::ZeroPhases);
    }
    let view = build_view(net)?;
    if !view.t1_cells.is_empty() && n < 4 {
        return Err(PhaseError::TooFewPhasesForT1 { phases: n });
    }
    match engine {
        PhaseEngine::Exact => exact_assign(net, &view, n as u32, EXACT_NODE_LIMIT),
        PhaseEngine::Heuristic => Ok(heuristic_assign(net, &view, n as u32)),
        PhaseEngine::Auto => {
            // Calibrated with the `profile_flow` binary: the exact engine is
            // sub-second up to ~40 clocked cells at n = 1 or n ≥ 4, but each
            // T1 cell adds three big-M ordering booleans whose branching
            // dominates, and intermediate phase counts (n = 2, 3) blow up
            // the optimality proof (314 s on a 38-gate adder at n = 3). Auto
            // therefore runs the exact engine under a small node budget —
            // warm-started from the heuristic incumbent it can only improve
            // on it — and falls back to the heuristic outright at scale.
            let clocked =
                net.cell_ids().filter(|&c| net.kind(c).is_clocked()).count();
            if clocked <= 40 && view.t1_cells.len() <= 4 {
                exact_assign(net, &view, n as u32, AUTO_NODE_LIMIT)
            } else {
                Ok(heuristic_assign(net, &view, n as u32))
            }
        }
    }
}

/// Node budget of [`PhaseEngine::Exact`]: enough to prove optimality on
/// every instance the test oracle uses.
const EXACT_NODE_LIMIT: usize = 200_000;

/// Node budget of [`PhaseEngine::Auto`]'s bounded-effort exact runs:
/// bounds any single phase assignment to ~1 s (each node re-solves an LP,
/// ≈ 2 ms on 40-cell instances) while still closing small gaps over the
/// heuristic incumbent — on the adder8 probe, 500 nodes keep the full
/// n = 2 improvement (77 → 71 DFFs) found by the unbounded engine.
const AUTO_NODE_LIMIT: usize = 500;

// ======================================================================
// Exact MILP engine
// ======================================================================

fn exact_assign(
    net: &Network,
    view: &NetView,
    n: u32,
    node_limit: usize,
) -> Result<StageAssignment, PhaseError> {
    // The heuristic solution seeds branch & bound: it is always feasible, so
    // the MILP starts with a strong incumbent and mostly just proves (or
    // slightly improves) it.
    let seed = heuristic_assign(net, view, n);
    let seed_model = CostModel { net, view, n };

    let asap = asap_stages(net, view);
    let depth_bound =
        (asap.iter().copied().max().unwrap_or(0) + n + 4).max(seed.output_stage + 2);
    let h = depth_bound as f64;
    let big_m = h + n as f64 + 2.0;

    // Longest path (in clocked edges) from each cell to a primary output:
    // σ(id) + rev[id] ≤ σ_out ≤ h gives a valid ALAP upper bound. Together
    // with the ASAP lower bound this shrinks every stage variable's box,
    // which is where most of the LP-relaxation slack lives.
    let rev = reverse_distances(net);

    let mut p = MilpProblem::new();
    // Warm-start values, pushed in lockstep with every variable creation.
    let mut ws: Vec<f64> = Vec::new();
    // Stage vars for clocked cells (inputs fixed at 0 — no var).
    let mut sigma: HashMap<CellId, sfq_solver::VarId> = HashMap::new();
    for id in net.cell_ids() {
        if net.kind(id).is_clocked() {
            let lo = f64::from(asap[id.0 as usize].max(1));
            let ub = h - f64::from(rev[id.0 as usize]);
            let v = p.add_int_var(lo, ub, 0.0, format!("s{}", id.0));
            p.set_branch_priority(v, 2);
            sigma.insert(id, v);
            ws.push(f64::from(seed.stages[id.0 as usize]));
        }
    }
    let stage_term = |id: CellId| -> Option<(sfq_solver::VarId, f64)> {
        sigma.get(&id).map(|&v| (v, 1.0))
    };

    let out_lb = net
        .outputs()
        .iter()
        .map(|o| asap[o.cell.0 as usize])
        .max()
        .unwrap_or(0);
    let sigma_out = p.add_int_var(f64::from(out_lb), h, 0.0, "s_out");
    p.set_branch_priority(sigma_out, 1);
    ws.push(f64::from(seed.output_stage));

    // Arrival vars per T1 fanin.
    let mut arrivals: HashMap<(CellId, usize), sfq_solver::VarId> = HashMap::new();
    for &t1 in &view.t1_cells {
        let seed_arr = seed_model
            .arrivals(t1, &seed.stages)
            .expect("heuristic assignment is arrival-feasible");
        let sj = sigma[&t1];
        let mut avars = Vec::new();
        for k in 0..3 {
            let fanin_lb = f64::from(asap[net.fanins(t1)[k].cell.0 as usize]);
            let a = p.add_int_var(fanin_lb, h - 1.0, 0.0, format!("a{}_{}", t1.0, k));
            p.set_branch_priority(a, 1);
            ws.push(f64::from(seed_arr[k]));
            arrivals.insert((t1, k), a);
            avars.push(a);
            // window: σj − (n−1) ≤ a ≤ σj − 1
            p.add_constraint(&[(sj, 1.0), (a, -1.0)], Cmp::Le, (n - 1) as f64);
            p.add_constraint(&[(sj, 1.0), (a, -1.0)], Cmp::Ge, 1.0);
            // a ≥ σ(fanin driver)
            let f = net.fanins(t1)[k];
            if let Some((fv, _)) = stage_term(f.cell) {
                p.add_constraint(&[(a, 1.0), (fv, -1.0)], Cmp::Ge, 0.0);
            } // inputs are at stage 0: a ≥ 0 already holds
        }
        // pairwise distinct via big-M order booleans
        for (x, y) in [(0usize, 1usize), (0, 2), (1, 2)] {
            let b = p.add_bool_var(0.0, format!("o{}_{}{}", t1.0, x, y));
            p.set_branch_priority(b, 3);
            ws.push(f64::from(seed_arr[x] > seed_arr[y]));
            // a_x + 1 ≤ a_y + M(1−b)  and  a_y + 1 ≤ a_x + M·b
            p.add_constraint(
                &[(avars[y], 1.0), (avars[x], -1.0), (b, big_m)],
                Cmp::Ge,
                1.0,
            );
            p.add_constraint(
                &[(avars[x], 1.0), (avars[y], -1.0), (b, -big_m)],
                Cmp::Ge,
                1.0 - big_m,
            );
        }
    }

    // Edge causality + chain variables per driven pin.
    for (pin, sinks) in &view.pins {
        let k_var = p.add_int_var(0.0, h, 1.0, format!("k{}_{}", pin.cell.0, pin.port));
        ws.push(seed_chain_k(&seed, &seed_model, *pin, sinks, n));
        let driver = stage_term(pin.cell);
        // helper closures to build terms with/without the driver var
        let add_edge = |p: &mut MilpProblem, consumer: sfq_solver::VarId| {
            // σv − σu ≥ 1
            let mut terms = vec![(consumer, 1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, -1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 1.0);
        };
        for &v in &sinks.plain {
            let sv = sigma[&v];
            add_edge(&mut p, sv);
            // n·k ≥ σv − σu − n
            let mut terms = vec![(k_var, n as f64), (sv, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, -(n as f64));
        }
        for &(t1, k) in &sinks.t1 {
            let a = arrivals[&(t1, k)];
            // n·k_pin ≥ a − σu  (exact tap needs ⌈(a−σu)/n⌉ DFFs)
            let mut terms = vec![(k_var, n as f64), (a, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 0.0);
        }
        if sinks.outputs > 0 {
            // σ_out ≥ σu; n·k ≥ σ_out − σu
            let mut ge = vec![(sigma_out, 1.0)];
            if let Some((du, _)) = driver {
                ge.push((du, -1.0));
            }
            p.add_constraint(&ge, Cmp::Ge, 0.0);
            let mut terms = vec![(k_var, n as f64), (sigma_out, -1.0)];
            if let Some((du, _)) = driver {
                terms.push((du, 1.0));
            }
            p.add_constraint(&terms, Cmp::Ge, 0.0);
        }
    }

    debug_assert_eq!(ws.len(), p.num_vars(), "one warm-start value per variable");
    p.set_warm_start(ws);
    p.set_node_limit(node_limit);
    let sol = p.solve().map_err(PhaseError::Milp)?;
    let mut stages = vec![0u32; net.num_cells()];
    for (id, var) in &sigma {
        stages[id.0 as usize] = sol.int_value(*var) as u32;
    }
    let output_stage = sol.int_value(sigma_out) as u32;
    Ok(StageAssignment { stages, output_stage })
}

/// Longest clocked path (edge count) from each cell to any primary output.
fn reverse_distances(net: &Network) -> Vec<u32> {
    let order = net.topological_order().expect("subject network is acyclic");
    let mut rev = vec![0u32; net.num_cells()];
    for &id in order.iter().rev() {
        let d = rev[id.0 as usize];
        for f in net.fanins(id) {
            let fd = &mut rev[f.cell.0 as usize];
            *fd = (*fd).max(d + 1);
        }
    }
    rev
}

/// Minimal chain-variable value consistent with the MILP's `k` constraints
/// under the seed assignment (the linearized chain count the objective sums).
fn seed_chain_k(
    seed: &StageAssignment,
    model: &CostModel<'_>,
    pin: Signal,
    sinks: &PinSinks,
    n: u32,
) -> f64 {
    let su = i64::from(seed.stages[pin.cell.0 as usize]);
    let n = i64::from(n);
    let ceil_div = |x: i64, d: i64| -> i64 { if x <= 0 { 0 } else { (x + d - 1) / d } };
    let mut k = 0i64;
    for &v in &sinks.plain {
        k = k.max(ceil_div(i64::from(seed.stages[v.0 as usize]) - su - n, n));
    }
    for &(t1, idx) in &sinks.t1 {
        let arr = model
            .arrivals(t1, &seed.stages)
            .expect("heuristic assignment is arrival-feasible");
        k = k.max(ceil_div(i64::from(arr[idx]) - su, n));
    }
    if sinks.outputs > 0 {
        k = k.max(ceil_div(i64::from(seed.output_stage) - su, n));
    }
    k as f64
}

// ======================================================================
// Heuristic engine
// ======================================================================

fn heuristic_assign(net: &Network, view: &NetView, n: u32) -> StageAssignment {
    let model = CostModel { net, view, n };
    let mut stages = asap_stages(net, view);
    let mut output_stage = max_output_stage(net, stages.as_slice());

    // Per-pin cached costs.
    let mut pin_cost: Vec<usize> = view
        .pins
        .iter()
        .map(|(pin, sinks)| {
            model
                .pin_cost(*pin, sinks, &stages, output_stage)
                .expect("ASAP stages are feasible")
        })
        .collect();

    let max_passes = 10;
    for _pass in 0..max_passes {
        let mut improved = false;
        for &id in &view.order {
            let kind = net.kind(id);
            if !kind.is_clocked() {
                continue;
            }
            let current = stages[id.0 as usize];
            // Feasible range from neighbors.
            let f = net.fanins(id);
            let lo = if matches!(kind, CellKind::T1 { .. }) {
                t1_lower_bound([
                    stages[f[0].cell.0 as usize],
                    stages[f[1].cell.0 as usize],
                    stages[f[2].cell.0 as usize],
                ])
            } else {
                1 + f.iter().map(|s| stages[s.cell.0 as usize]).max().unwrap_or(0)
            };
            let mut hi = u32::MAX;
            for port in 0..kind.num_ports() {
                let pin = Signal { cell: id, port: port as u8 };
                if let Some(&pi) = view.pin_index.get(&pin) {
                    let sinks = &view.pins[pi].1;
                    for &v in &sinks.plain {
                        hi = hi.min(stages[v.0 as usize] - 1);
                    }
                    for &(t1, _) in &sinks.t1 {
                        hi = hi.min(stages[t1.0 as usize] - 1);
                    }
                }
            }
            if lo > hi {
                continue; // pinned by neighbors
            }
            // Candidate stages: near lo, near hi, near current.
            let mut cands: Vec<u32> = Vec::new();
            let push_range = |cands: &mut Vec<u32>, from: u32, to: u32| {
                for s in from..=to {
                    cands.push(s);
                }
            };
            let span = 2 * n;
            push_range(&mut cands, lo, lo.saturating_add(span).min(hi));
            if hi != u32::MAX {
                push_range(&mut cands, hi.saturating_sub(span).max(lo), hi);
            }
            cands.push(current);
            cands.sort_unstable();
            cands.dedup();

            // Affected pins: own pins, fanin pins, and for T1 consumers all
            // of their fanin pins (arrival re-solve moves their taps).
            let mut affected: Vec<usize> = Vec::new();
            let add_pin = |s: Signal, affected: &mut Vec<usize>| {
                if let Some(&pi) = view.pin_index.get(&s) {
                    affected.push(pi);
                }
            };
            for port in 0..kind.num_ports() {
                add_pin(Signal { cell: id, port: port as u8 }, &mut affected);
            }
            for &fi in f {
                add_pin(fi, &mut affected);
            }
            let mut t1_consumers: Vec<CellId> = Vec::new();
            for port in 0..kind.num_ports() {
                let pin = Signal { cell: id, port: port as u8 };
                if let Some(&pi) = view.pin_index.get(&pin) {
                    for &(t1, _) in &view.pins[pi].1.t1 {
                        t1_consumers.push(t1);
                    }
                }
            }
            if matches!(kind, CellKind::T1 { .. }) {
                t1_consumers.push(id);
            }
            for &t1 in &t1_consumers {
                for &fi in net.fanins(t1) {
                    add_pin(fi, &mut affected);
                }
            }
            // Output-stage sensitivity: moving a PO driver may change σ_out.
            let drives_output = (0..kind.num_ports()).any(|port| {
                let pin = Signal { cell: id, port: port as u8 };
                view.pin_index
                    .get(&pin)
                    .is_some_and(|&pi| view.pins[pi].1.outputs > 0)
            });
            affected.sort_unstable();
            affected.dedup();

            let base_affected: usize = affected.iter().map(|&pi| pin_cost[pi]).sum();
            let mut best: Option<(i64, u32, u32)> = None; // (delta, stage, new σ_out)
            for &cand in &cands {
                if cand == current {
                    continue; // baseline delta is 0 by definition
                }
                stages[id.0 as usize] = cand;
                let new_out =
                    if drives_output { max_output_stage(net, &stages) } else { output_stage };
                let out_changed = new_out != output_stage;
                let mut ok = true;
                let mut new_affected = 0usize;
                for &pi in &affected {
                    let (pin, sinks) = &view.pins[pi];
                    match model.pin_cost(*pin, sinks, &stages, new_out) {
                        Some(c) => new_affected += c,
                        None => {
                            ok = false;
                            break;
                        }
                    }
                }
                // On a σ_out change, every PO pin not already covered above
                // changes cost too.
                let mut extra_delta = 0i64;
                if ok && out_changed {
                    for (pi, (pin, sinks)) in view.pins.iter().enumerate() {
                        if sinks.outputs == 0 || affected.binary_search(&pi).is_ok() {
                            continue;
                        }
                        match model.pin_cost(*pin, sinks, &stages, new_out) {
                            Some(c) => extra_delta += c as i64 - pin_cost[pi] as i64,
                            None => {
                                ok = false;
                                break;
                            }
                        }
                    }
                }
                if ok {
                    let delta = new_affected as i64 - base_affected as i64 + extra_delta;
                    let better = match best {
                        None => delta < 0,
                        Some((bd, bs, _)) => delta < bd || (delta == bd && cand < bs),
                    };
                    if better {
                        best = Some((delta, cand, new_out));
                    }
                }
            }
            stages[id.0 as usize] = current;
            if let Some((_, cand, new_out)) = best {
                stages[id.0 as usize] = cand;
                let out_changed = new_out != output_stage;
                output_stage = new_out;
                improved = true;
                // Refresh caches.
                for &pi in &affected {
                    let (pin, sinks) = &view.pins[pi];
                    pin_cost[pi] = model
                        .pin_cost(*pin, sinks, &stages, output_stage)
                        .expect("accepted move is feasible");
                }
                if out_changed {
                    for (pi, (pin, sinks)) in view.pins.iter().enumerate() {
                        if sinks.outputs > 0 {
                            pin_cost[pi] = model
                                .pin_cost(*pin, sinks, &stages, output_stage)
                                .expect("accepted move is feasible");
                        }
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    // σ_out may be lowered if all PO drivers sit below it.
    output_stage = max_output_stage(net, &stages);
    StageAssignment { stages, output_stage }
}
