//! Post-flow statistics: stage occupancy, phase load, and the clock
//! schedule a physical-design team would hand to clock-tree synthesis.
//!
//! The flow's headline numbers (DFFs, area, depth) live in
//! [`FlowReport`](crate::FlowReport); this module answers the follow-up
//! questions: *how evenly are cells spread over the `n` phases* (each phase
//! is a separate clock distribution network, so imbalance is routing pain),
//! *where are the crowded stages*, and *what are the per-phase clock
//! offsets* for a given period.
//!
//! # Example
//!
//! ```
//! use sfq_core::{run_flow, FlowConfig};
//! use sfq_core::report::StageReport;
//! use sfq_netlist::Aig;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut aig = Aig::new("fa");
//! let a = aig.input("a");
//! let b = aig.input("b");
//! let c = aig.input("c");
//! let (s, co) = aig.full_adder(a, b, c);
//! aig.output("s", s);
//! aig.output("co", co);
//! let res = run_flow(&aig, &FlowConfig::t1(4))?;
//!
//! let report = StageReport::summarize(&res.timed);
//! assert_eq!(report.phases, 4);
//! assert_eq!(report.clocked_cells(), report.cells_per_phase.iter().sum());
//! println!("{report}");
//! # Ok(())
//! # }
//! ```

use crate::timed::TimedNetwork;
use sfq_netlist::CellKind;
use std::fmt;

/// Stage/phase occupancy statistics of a retimed netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// Number of clock phases (`n`).
    pub phases: u8,
    /// The common primary-output stage.
    pub output_stage: u32,
    /// Clocked cells firing on each phase `φ ∈ 0..n` (T1 cells count on
    /// their own firing phase).
    pub cells_per_phase: Vec<usize>,
    /// Path-balancing DFFs among [`cells_per_phase`](Self::cells_per_phase).
    pub dffs_per_phase: Vec<usize>,
    /// Clocked cells firing at each stage `σ ∈ 0..=output_stage`.
    pub cells_per_stage: Vec<usize>,
    /// The busiest stage and its cell count.
    pub peak: (u32, usize),
}

impl StageReport {
    /// Collects the statistics of one retimed netlist.
    pub fn summarize(timed: &TimedNetwork) -> Self {
        let n = timed.num_phases as usize;
        let net = &timed.network;
        let mut cells_per_phase = vec![0usize; n];
        let mut dffs_per_phase = vec![0usize; n];
        let mut cells_per_stage = vec![0usize; timed.output_stage as usize + 1];
        for id in net.cell_ids() {
            let kind = net.kind(id);
            if !kind.is_clocked() {
                continue;
            }
            let stage = timed.stages[id.0 as usize];
            let phase = (stage % timed.num_phases as u32) as usize;
            cells_per_phase[phase] += 1;
            if matches!(kind, CellKind::Dff) {
                dffs_per_phase[phase] += 1;
            }
            if let Some(slot) = cells_per_stage.get_mut(stage as usize) {
                *slot += 1;
            }
        }
        let peak = cells_per_stage
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| *c)
            .map(|(s, &c)| (s as u32, c))
            .unwrap_or((0, 0));
        StageReport {
            phases: timed.num_phases,
            output_stage: timed.output_stage,
            cells_per_phase,
            dffs_per_phase,
            cells_per_stage,
            peak,
        }
    }

    /// Total clocked cells (gates + DFFs + T1 cells).
    pub fn clocked_cells(&self) -> usize {
        self.cells_per_phase.iter().sum()
    }

    /// Phase-load imbalance: busiest phase over the ideal even split
    /// (1.0 = perfectly balanced; relevant because each phase is its own
    /// clock distribution network).
    pub fn phase_imbalance(&self) -> f64 {
        let total = self.clocked_cells();
        if total == 0 {
            return 1.0;
        }
        let max = self.cells_per_phase.iter().copied().max().unwrap_or(0);
        max as f64 * self.phases as f64 / total as f64
    }

    /// Per-phase clock arrival offsets for a full period of `period_ps`:
    /// `(phase, offset in ps, cells on that phase)`.
    pub fn clock_schedule(&self, period_ps: f64) -> Vec<(u8, f64, usize)> {
        let spacing = period_ps / f64::from(self.phases);
        (0..self.phases)
            .map(|p| (p, f64::from(p) * spacing, self.cells_per_phase[p as usize]))
            .collect()
    }
}

impl fmt::Display for StageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} clocked cells over {} stages ({} phases), peak {} cells at stage {}",
            self.clocked_cells(),
            self.output_stage + 1,
            self.phases,
            self.peak.1,
            self.peak.0
        )?;
        writeln!(f, "phase load (imbalance {:.2}):", self.phase_imbalance())?;
        let max = self
            .cells_per_phase
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(1);
        for (p, (&cells, &dffs)) in self
            .cells_per_phase
            .iter()
            .zip(&self.dffs_per_phase)
            .enumerate()
        {
            let bar = "#".repeat(cells * 40 / max);
            writeln!(f, "  φ{p}: {cells:>6} cells ({dffs:>6} DFFs) {bar}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{run_flow, FlowConfig};
    use sfq_netlist::Aig;

    fn adder(bits: usize) -> Aig {
        let mut aig = Aig::new("adder");
        let a = aig.input_word("a", bits);
        let b = aig.input_word("b", bits);
        let mut carry = aig.const_false();
        let mut sums = Vec::new();
        for k in 0..bits {
            let (s, c) = aig.full_adder(a[k], b[k], carry);
            sums.push(s);
            carry = c;
        }
        sums.push(carry);
        aig.output_word("s", &sums);
        aig
    }

    #[test]
    fn counts_add_up_across_views() {
        let res = run_flow(&adder(8), &FlowConfig::t1(4)).expect("flow");
        let r = StageReport::summarize(&res.timed);
        let net = &res.timed.network;
        let clocked = net.cell_ids().filter(|&c| net.kind(c).is_clocked()).count();
        assert_eq!(
            r.clocked_cells(),
            clocked,
            "phase view covers every clocked cell"
        );
        assert_eq!(
            r.cells_per_stage.iter().sum::<usize>(),
            clocked,
            "stage view covers every clocked cell"
        );
        assert_eq!(
            r.dffs_per_phase.iter().sum::<usize>(),
            res.report.num_dffs,
            "DFF view matches the flow report"
        );
        assert_eq!(r.peak.1, *r.cells_per_stage.iter().max().expect("nonempty"));
    }

    #[test]
    fn single_phase_concentrates_everything_on_phase_zero() {
        let res = run_flow(&adder(4), &FlowConfig::single_phase()).expect("flow");
        let r = StageReport::summarize(&res.timed);
        assert_eq!(r.phases, 1);
        assert_eq!(r.cells_per_phase.len(), 1);
        assert!((r.phase_imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clock_schedule_spaces_phases_evenly() {
        let res = run_flow(&adder(4), &FlowConfig::multiphase(4)).expect("flow");
        let r = StageReport::summarize(&res.timed);
        let sched = r.clock_schedule(100.0);
        assert_eq!(sched.len(), 4);
        for (k, &(p, off, _)) in sched.iter().enumerate() {
            assert_eq!(p as usize, k);
            assert!((off - 25.0 * k as f64).abs() < 1e-12);
        }
        let listed: usize = sched.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(listed, r.clocked_cells());
    }

    #[test]
    fn display_renders_one_bar_per_phase() {
        let res = run_flow(&adder(4), &FlowConfig::multiphase(4)).expect("flow");
        let r = StageReport::summarize(&res.timed);
        let text = r.to_string();
        assert!(text.contains("φ0:"));
        assert!(text.contains("φ3:"));
        assert!(text.contains("imbalance"));
    }
}
